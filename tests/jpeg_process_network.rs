//! End-to-end integration: the JPEG per-block pipeline distributed over a
//! 1x3 tile array (shift | DCT | quantize+zigzag), with the intermediate
//! blocks shipped tile-to-tile over real links — byte-identical JFIF
//! output against the monolithic host encoder.

use remorph::fabric::{CostModel, Direction, Mesh, Word};
use remorph::kernels::fft::programs::{copy_program, init_copy_vars};
use remorph::kernels::jpeg::bitio::BitWriter;
use remorph::kernels::jpeg::encoder::{encode, EncoderConfig};
use remorph::kernels::jpeg::huffman::{ac_luma_spec, dc_luma_spec, encode_block, EncTable};
use remorph::kernels::jpeg::image::GrayImage;
use remorph::kernels::jpeg::programs::{
    dct_program, load_jpeg_constants, quantize_program, shift_program, zigzag_program, PX, SH, T2,
};
use remorph::kernels::jpeg::quant::QuantTable;
use remorph::sim::{ArraySim, Epoch, EpochRunner, TileSetup};

const CPVARS: u16 = 470;

/// Runs one block through the 3-tile pipeline and returns the zig-zag
/// scan it produces.
fn block_through_tiles(runner: &mut EpochRunner, mesh: &Mesh, block: &[u8; 64]) -> [i32; 64] {
    // Deliver pixels into tile 0.
    for (i, &px) in block.iter().enumerate() {
        runner.sim.tiles[0]
            .dmem
            .poke(PX as usize + i, Word::wrap(px as i64))
            .unwrap();
    }
    let east = |t: usize| mesh.disconnected().with(t, Direction::East);
    let idle = remorph::isa::assemble("halt").unwrap();
    // vcp: tile0 SH -> tile1 SH (64 words); tile1 T2 -> tile2 T2.
    init_copy_vars(&mut runner.sim.tiles[0], CPVARS, SH, SH, 0);
    init_copy_vars(&mut runner.sim.tiles[1], CPVARS, T2, T2, 0);
    let epochs = vec![
        Epoch {
            name: "shift@0".into(),
            links: mesh.disconnected(),
            setups: vec![(
                0,
                TileSetup {
                    program: Some(shift_program()),
                    data_patches: vec![],
                },
            )],
            budget: 100_000,
        },
        Epoch {
            name: "ship shifted 0->1".into(),
            links: east(0),
            setups: vec![(
                0,
                TileSetup {
                    program: Some(copy_program(64, false, CPVARS)),
                    data_patches: vec![],
                },
            )],
            budget: 100_000,
        },
        Epoch {
            name: "dct@1".into(),
            links: mesh.disconnected(),
            setups: vec![
                (
                    0,
                    TileSetup {
                        program: Some(idle.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    1,
                    TileSetup {
                        program: Some(dct_program()),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        },
        Epoch {
            name: "ship coefficients 1->2".into(),
            links: east(1),
            setups: vec![(
                1,
                TileSetup {
                    program: Some(copy_program(64, false, CPVARS)),
                    data_patches: vec![],
                },
            )],
            budget: 100_000,
        },
        Epoch {
            name: "quantize+zigzag@2".into(),
            links: mesh.disconnected(),
            setups: vec![
                (
                    1,
                    TileSetup {
                        program: Some(idle.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    2,
                    TileSetup {
                        program: Some(quantize_program()),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        },
        Epoch {
            name: "zigzag@2".into(),
            links: mesh.disconnected(),
            setups: vec![(
                2,
                TileSetup {
                    program: Some(zigzag_program()),
                    data_patches: vec![],
                },
            )],
            budget: 100_000,
        },
    ];
    runner.run_schedule(&epochs).expect("pipeline runs");
    std::array::from_fn(|i| {
        runner.sim.tiles[2]
            .dmem
            .peek(SH as usize + i)
            .unwrap()
            .value() as i32
    })
}

#[test]
fn distributed_pipeline_is_byte_identical_to_encoder() {
    let img = GrayImage::rings(16, 16); // 4 blocks
    let quality = 75u8;
    let qt = QuantTable::luma(quality);

    let mesh = Mesh::new(1, 3);
    let mut sim = ArraySim::new(mesh);
    // Constants: tile1 needs the DCT tables, tile2 the quantizer tables.
    for t in 0..3 {
        load_jpeg_constants(&mut sim.tiles[t], &qt);
    }
    let mut runner = EpochRunner::new(sim, CostModel::default());

    // Entropy-code the tile-produced scans on the host and compare with
    // the monolithic encoder byte for byte.
    let dc = EncTable::from_spec(&dc_luma_spec());
    let ac = EncTable::from_spec(&ac_luma_spec());
    let mut w = BitWriter::new();
    let mut pred = 0i32;
    for by in 0..img.blocks_y() {
        for bx in 0..img.blocks_x() {
            let scan = block_through_tiles(&mut runner, &mesh, &img.block(bx, by));
            encode_block(&mut w, &dc, &ac, &scan, &mut pred);
        }
    }
    let tile_entropy = w.finish();

    let full = encode(&img, &EncoderConfig { quality });
    // The monolithic stream ends with the entropy segment + EOI marker.
    let tail = &full[full.len() - 2 - tile_entropy.len()..full.len() - 2];
    assert_eq!(
        tail,
        &tile_entropy[..],
        "tile-pipeline entropy data must be byte-identical"
    );
}

#[test]
fn pipeline_charges_reconfiguration_between_stages() {
    let qt = QuantTable::luma(50);
    let mesh = Mesh::new(1, 3);
    let mut sim = ArraySim::new(mesh);
    for t in 0..3 {
        load_jpeg_constants(&mut sim.tiles[t], &qt);
    }
    let mut runner = EpochRunner::new(sim, CostModel::with_link_cost(300.0));
    let img = GrayImage::gradient(8, 8);
    let _ = block_through_tiles(&mut runner, &mesh, &img.block(0, 0));
    // Every tile was reprogrammed at least once; links changed for the two
    // shipping epochs.
    for t in 0..3 {
        assert!(runner.sim.stats[t].reconfig_cycles > 0, "tile {t}");
    }
    assert_eq!(runner.sim.stats[0].words_sent, 64);
    assert_eq!(runner.sim.stats[1].words_sent, 64);
    assert_eq!(runner.sim.stats[2].words_sent, 0);
}

/// The complete per-block pipeline — including Huffman entropy coding —
/// executed on tiles: shift/DCT/quantize/zigzag on one tile and the
/// two-stage entropy coder on another, with the scan shipped over a link.
#[test]
fn fully_tile_executed_encoder_including_entropy() {
    use remorph::kernels::jpeg::entropy_programs::{load_entropy_tables, run_entropy_block, SCAN};
    use remorph::kernels::jpeg::huffman::{ac_luma_spec, category, dc_luma_spec, magnitude_bits};
    use remorph::kernels::jpeg::programs::run_block_pipeline;

    let img = GrayImage::checkerboard(24, 24, 3);
    let quality = 70u8;
    let qt = QuantTable::luma(quality);
    let dc = EncTable::from_spec(&dc_luma_spec());
    let ac = EncTable::from_spec(&ac_luma_spec());

    // Entropy tile persists its DC predictor across blocks.
    let mut entropy_tile = remorph::fabric::Tile::new(9);
    load_entropy_tables(&mut entropy_tile, &dc, &ac);

    // Host reference bit stream for the whole image.
    let mut w = BitWriter::new();
    let mut pred = 0i32;
    let mut host_bit_count = 0usize;
    let mut tile_bits = Vec::new();
    for by in 0..img.blocks_y() {
        for bx in 0..img.blocks_x() {
            // Stage tile: pixels -> zig-zag scan (validated bit-exact
            // against the host in its own tests).
            let (scan, _) = run_block_pipeline(&img.block(bx, by), &qt);
            // Entropy tile: scan words arrive in its SCAN region (the
            // shipping hop is exercised by the other tests); run prep+emit.
            let run = run_entropy_block(&mut entropy_tile, &scan);
            tile_bits.extend(run.bits);
            // Host side.
            let diff = scan[0] - pred;
            host_bit_count +=
                dc.code(category(diff) as u8).unwrap().1 as usize + category(diff) as usize;
            let _ = magnitude_bits(diff, category(diff));
            let mut run_len = 0u32;
            for &v in &scan[1..] {
                if v == 0 {
                    run_len += 1;
                    continue;
                }
                while run_len >= 16 {
                    host_bit_count += ac.code(0xf0).unwrap().1 as usize;
                    run_len -= 16;
                }
                let cat = category(v);
                host_bit_count +=
                    ac.code(((run_len as u8) << 4) | cat as u8).unwrap().1 as usize + cat as usize;
                run_len = 0;
            }
            if run_len > 0 {
                host_bit_count += ac.code(0x00).unwrap().1 as usize;
            }
            encode_block(&mut w, &dc, &ac, &scan, &mut pred);
        }
    }
    let host_bytes = w.finish();
    let mut r = remorph::kernels::jpeg::bitio::BitReader::new(&host_bytes);
    let host_bits: Vec<bool> = (0..host_bit_count).map(|_| r.bit().unwrap() == 1).collect();
    assert_eq!(
        tile_bits, host_bits,
        "tile-executed entropy stream must be bit-identical across a whole image"
    );
    // Keep the SCAN constant visible so layout drift fails loudly.
    assert_eq!(SCAN, 0);
}
