//! End-to-end integration: a 16-point radix-2 FFT executed on a 2x1 tile
//! array of the cycle-driven simulator — vertical exchange over real
//! links, cross-tile butterflies with remote writes, local stages, epoch
//! reconfiguration between programs — validated bit-exact against the
//! functional partitioned model and numerically against the f64 oracle.

use remorph::fabric::{CostModel, Direction, Mesh};
use remorph::isa::encode_program;
use remorph::kernels::fft::fixed::{relative_error, twiddle_fx, Cfx};
use remorph::kernels::fft::partition::FftPlan;
use remorph::kernels::fft::pipeline::run_partitioned;
use remorph::kernels::fft::programs::{
    bf_program, copy_program, cross_bf_program, init_copy_vars, tw_base,
};
use remorph::kernels::fft::reference::{bit_reverse, fft, Cf64};
use remorph::sim::{ArraySim, Epoch, EpochRunner, TileSetup};

const N: usize = 16;
const M: usize = 8;
/// Received-partner-half buffer (above the 3M+41 BF layout).
const RECV: u16 = 400;
/// Copy-variable block for the vcp programs.
const CPVARS: u16 = 480;

fn load_tile_points(sim: &mut ArraySim, t: usize, data: &[Cfx]) {
    for (i, c) in data.iter().enumerate() {
        sim.tiles[t].dmem.poke(2 * i, c.re).unwrap();
        sim.tiles[t].dmem.poke(2 * i + 1, c.im).unwrap();
    }
}

fn read_tile_points(sim: &ArraySim, t: usize, m: usize) -> Vec<Cfx> {
    (0..m)
        .map(|i| Cfx {
            re: sim.tiles[t].dmem.peek(2 * i).unwrap(),
            im: sim.tiles[t].dmem.peek(2 * i + 1).unwrap(),
        })
        .collect()
}

/// Preloads the stage-s twiddles a tile's butterflies need, in visit order.
fn load_cross_twiddles(sim: &mut ArraySim, t: usize, indices: &[usize]) {
    let base = tw_base(M) as usize;
    for (j, &k) in indices.iter().enumerate() {
        let w = twiddle_fx(N, k);
        sim.tiles[t].dmem.poke(base + 2 * j, w.re).unwrap();
        sim.tiles[t].dmem.poke(base + 2 * j + 1, w.im).unwrap();
    }
}

fn load_local_twiddles(sim: &mut ArraySim, t: usize, s: usize) {
    let h = N >> (s + 1);
    let base = tw_base(M) as usize;
    for j in 0..h {
        let w = twiddle_fx(N, (j << s) % N);
        sim.tiles[t].dmem.poke(base + 2 * j, w.re).unwrap();
        sim.tiles[t].dmem.poke(base + 2 * j + 1, w.im).unwrap();
    }
}

#[test]
fn sixteen_point_fft_on_two_tiles() {
    let plan = FftPlan::new(N, M).unwrap();
    assert_eq!(plan.rows(), 2);
    assert_eq!(plan.cross_stages(), 1);

    let signal: Vec<Cf64> = (0..N)
        .map(|i| Cf64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos() * 0.8))
        .collect();
    let input: Vec<Cfx> = signal.iter().map(|&c| Cfx::from_c(c)).collect();

    // --- set up the array: tile 0 = row 0 (x0..x7), tile 1 = row 1. -----
    let mesh = Mesh::new(2, 1);
    let mut sim = ArraySim::new(mesh);
    load_tile_points(&mut sim, 0, &input[..M]);
    load_tile_points(&mut sim, 1, &input[M..]);

    // Stage-0 twiddles: tile 0 computes butterflies g=0..4 (indices g),
    // tile 1 computes g=4..8.
    load_cross_twiddles(&mut sim, 0, &[0, 1, 2, 3]);
    load_cross_twiddles(&mut sim, 1, &[4, 5, 6, 7]);

    // Copy variables for the exchange vcp programs.
    // Tile 0 ships its second half (words 8..16) into tile 1's RECV.
    init_copy_vars(&mut sim.tiles[0], CPVARS, 8, RECV, 0);
    // Tile 1 ships its first half (words 0..8) into tile 0's RECV.
    init_copy_vars(&mut sim.tiles[1], CPVARS, 0, RECV, 0);

    let both_links = mesh
        .disconnected()
        .with(0, Direction::South)
        .with(1, Direction::North);

    let vcp = copy_program(8, false, CPVARS);
    // Cross butterflies: tile 0 is the upper partner (owns tops at words
    // 0..8, partner half received at RECV, bottoms written remotely to the
    // partner's words 0..8). Tile 1 is the lower partner (owns bottoms at
    // words 8..16, tops received at RECV, tops written remotely to the
    // partner's words 8..16).
    let bf0_upper = cross_bf_program(M, 4, 0, RECV, 0, true);
    let bf0_lower = cross_bf_program(M, 4, 8, RECV, 8, false);

    let cost = CostModel::with_link_cost(100.0);
    let mut runner = EpochRunner::new(sim, cost);

    // --- epoch 1: vertical exchange (Figure 9). --------------------------
    let e_exchange = Epoch {
        name: "vcp exchange".into(),
        links: both_links.clone(),
        setups: vec![
            (
                0,
                TileSetup {
                    program: Some(vcp.clone()),
                    data_patches: vec![],
                },
            ),
            (
                1,
                TileSetup {
                    program: Some(vcp.clone()),
                    data_patches: vec![],
                },
            ),
        ],
        budget: 100_000,
    };
    // --- epoch 2: cross-tile butterflies with remote result writes. ------
    let e_bf0 = Epoch {
        name: "BF0 (cross)".into(),
        links: both_links,
        setups: vec![
            (
                0,
                TileSetup {
                    program: Some(bf0_upper),
                    data_patches: vec![],
                },
            ),
            (
                1,
                TileSetup {
                    program: Some(bf0_lower),
                    data_patches: vec![],
                },
            ),
        ],
        budget: 100_000,
    };
    let report = runner
        .run_schedule(&[e_exchange, e_bf0])
        .expect("cross stage runs");
    assert_eq!(report.epochs.len(), 2);
    assert!(report.epochs[0].words_copied == 16); // 8 words each way
    assert!(report.epochs[1].words_copied == 16); // 4 complex results each way

    // --- epochs 3..5: local stages on both tiles. -------------------------
    for s in 1..plan.stages() {
        let h = N >> (s + 1);
        for t in 0..2 {
            load_local_twiddles(&mut runner.sim, t, s);
        }
        // Both tiles run the same local-stage program; no links needed.
        let prog = bf_program(M, h);
        let epoch = Epoch {
            name: format!("BF{s} (local)"),
            links: Mesh::new(2, 1).disconnected(),
            setups: vec![
                (
                    0,
                    TileSetup {
                        program: Some(prog.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    1,
                    TileSetup {
                        program: Some(prog),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        };
        // Twiddles differ per stage but are identical across the two rows
        // for local stages of this plan, so a plain program reload works.
        runner.run_epoch(&epoch).expect("local stage runs");
    }

    // --- gather and compare. ----------------------------------------------
    let mut flat = read_tile_points(&runner.sim, 0, M);
    flat.extend(read_tile_points(&runner.sim, 1, M));
    let bits = N.trailing_zeros();
    let mut got = vec![Cfx::default(); N];
    for (g, v) in flat.iter().enumerate() {
        got[bit_reverse(g, bits)] = *v;
    }

    // Bit-exact against the functional partitioned model...
    let (want, _) = run_partitioned(plan, &input).unwrap();
    assert_eq!(got, want, "array execution must be bit-exact");

    // ...and numerically against the f64 oracle.
    let mut oracle = signal.clone();
    fft(&mut oracle);
    let err = relative_error(&got, &oracle);
    assert!(err < 1e-4, "relative error {err}");
}

#[test]
fn eq1_accounting_is_consistent() {
    // The Eq. 1 report's total must equal compute + reconfig, and the
    // reconfiguration must be charged per changed link and rewritten word.
    let mesh = Mesh::new(2, 1);
    let sim = ArraySim::new(mesh);
    let cost = CostModel::with_link_cost(250.0);
    let mut runner = EpochRunner::new(sim, cost);
    let idle = remorph::isa::assemble("halt").unwrap();
    let epoch = Epoch {
        name: "links only".into(),
        links: mesh
            .disconnected()
            .with(0, Direction::South)
            .with(1, Direction::North),
        setups: vec![(
            0,
            TileSetup {
                program: Some(idle),
                data_patches: vec![],
            },
        )],
        budget: 1000,
    };
    let rep = runner.run_epoch(&epoch).unwrap();
    // Two links changed at 250 ns plus one instruction word (50 ns).
    assert!((rep.reconfig_ns - (2.0 * 250.0 + 50.0)).abs() < 1e-9);
    assert_eq!(rep.links_changed, 2);
}

/// The interpreter-level program and the array-level execution agree on
/// the *cost* too: a BF0 epoch's compute time matches the single-tile
/// cycle measurement.
#[test]
fn epoch_compute_time_matches_program_cycles() {
    use remorph::fabric::Tile;
    use remorph::isa::{run, PeState};

    let prog = bf_program(M, 2);
    let mut tile = Tile::new(0);
    // load sample data
    for i in 0..2 * M {
        tile.dmem
            .poke(i, remorph::fabric::Word::wrap(i as i64))
            .unwrap();
    }
    tile.load_program(&encode_program(&prog)).unwrap();
    let mut pe = PeState::new();
    let solo_cycles = run(&mut tile, &mut pe, 100_000).unwrap().cycles;

    let mesh = Mesh::new(1, 1);
    let mut sim = ArraySim::new(mesh);
    for i in 0..2 * M {
        sim.tiles[0]
            .dmem
            .poke(i, remorph::fabric::Word::wrap(i as i64))
            .unwrap();
    }
    let cost = CostModel::default();
    let mut runner = EpochRunner::new(sim, cost);
    let rep = runner
        .run_epoch(&Epoch {
            name: "bf".into(),
            links: mesh.disconnected(),
            setups: vec![(
                0,
                TileSetup {
                    program: Some(prog),
                    data_patches: vec![],
                },
            )],
            budget: 1_000_000,
        })
        .unwrap();
    let epoch_cycles = (rep.compute_ns / cost.cycle_ns()).round() as u64;
    assert_eq!(epoch_cycles, solo_cycles);
}

/// The same 16-point FFT spread over TWO columns of a 2x2 array: column 0
/// (tiles 0,2) runs stages 0-1 with the vertical exchange, ships its data
/// east over hcp links, and column 1 (tiles 1,3) finishes stages 2-3 with
/// twiddles preloaded at configuration time — the multi-column structure
/// of Sec. 3.1, links and all.
#[test]
fn sixteen_point_fft_on_two_columns() {
    let plan = FftPlan::new(N, M).unwrap();
    let signal: Vec<Cf64> = (0..N)
        .map(|i| Cf64::new((i as f64 * 0.45).cos(), (i as f64 * 0.8).sin() * 0.6))
        .collect();
    let input: Vec<Cfx> = signal.iter().map(|&c| Cfx::from_c(c)).collect();

    let mesh = Mesh::new(2, 2);
    let (c0_top, c0_bot, c1_top, c1_bot) = (0usize, 2usize, 1usize, 3usize);
    let mut sim = ArraySim::new(mesh);
    load_tile_points(&mut sim, c0_top, &input[..M]);
    load_tile_points(&mut sim, c0_bot, &input[M..]);

    // Stage-0 twiddles in column 0; stage-2/3 twiddles preloaded in
    // column 1 (the "more columns -> no runtime twiddle reload" effect).
    load_cross_twiddles(&mut sim, c0_top, &[0, 1, 2, 3]);
    load_cross_twiddles(&mut sim, c0_bot, &[4, 5, 6, 7]);

    init_copy_vars(&mut sim.tiles[c0_top], CPVARS, 8, RECV, 0);
    init_copy_vars(&mut sim.tiles[c0_bot], CPVARS, 0, RECV, 0);

    let vertical = mesh
        .disconnected()
        .with(c0_top, Direction::South)
        .with(c0_bot, Direction::North);
    let horizontal = mesh
        .disconnected()
        .with(c0_top, Direction::East)
        .with(c0_bot, Direction::East);

    let cost = CostModel::with_link_cost(100.0);
    let mut runner = EpochRunner::new(sim, cost);

    // Column 0: exchange, BF0 (cross), BF1 (local h=4).
    let vcp = copy_program(8, false, CPVARS);
    runner
        .run_epoch(&Epoch {
            name: "col0 vcp".into(),
            links: vertical.clone(),
            setups: vec![
                (
                    c0_top,
                    TileSetup {
                        program: Some(vcp.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    c0_bot,
                    TileSetup {
                        program: Some(vcp.clone()),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        })
        .unwrap();
    runner
        .run_epoch(&Epoch {
            name: "col0 BF0".into(),
            links: vertical,
            setups: vec![
                (
                    c0_top,
                    TileSetup {
                        program: Some(cross_bf_program(M, 4, 0, RECV, 0, true)),
                        data_patches: vec![],
                    },
                ),
                (
                    c0_bot,
                    TileSetup {
                        program: Some(cross_bf_program(M, 4, 8, RECV, 8, false)),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        })
        .unwrap();
    for t in [c0_top, c0_bot] {
        load_local_twiddles(&mut runner.sim, t, 1);
    }
    let bf1 = bf_program(M, N >> 2);
    runner
        .run_epoch(&Epoch {
            name: "col0 BF1".into(),
            links: Mesh::new(2, 2).disconnected(),
            setups: vec![
                (
                    c0_top,
                    TileSetup {
                        program: Some(bf1.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    c0_bot,
                    TileSetup {
                        program: Some(bf1),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        })
        .unwrap();

    // hcp: each column-0 tile ships its full 2M words east.
    for t in [c0_top, c0_bot] {
        init_copy_vars(&mut runner.sim.tiles[t], CPVARS, 0, 0, 0);
    }
    let hcp = copy_program(2 * M as u16, false, CPVARS);
    let rep = runner
        .run_epoch(&Epoch {
            name: "hcp col0 -> col1".into(),
            links: horizontal,
            setups: vec![
                (
                    c0_top,
                    TileSetup {
                        program: Some(hcp.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    c0_bot,
                    TileSetup {
                        program: Some(hcp),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        })
        .unwrap();
    assert_eq!(rep.words_copied, 2 * 2 * M as u64);

    // Column 1: stages 2 and 3 with preloaded twiddles (no data patches
    // in these epochs — assert it).
    for s in 2..plan.stages() {
        for t in [c1_top, c1_bot] {
            load_local_twiddles(&mut runner.sim, t, s);
        }
        let prog = bf_program(M, N >> (s + 1));
        let rep = runner
            .run_epoch(&Epoch {
                name: format!("col1 BF{s}"),
                links: Mesh::new(2, 2).disconnected(),
                setups: vec![
                    (
                        c1_top,
                        TileSetup {
                            program: Some(prog.clone()),
                            data_patches: vec![],
                        },
                    ),
                    (
                        c1_bot,
                        TileSetup {
                            program: Some(prog),
                            data_patches: vec![],
                        },
                    ),
                ],
                budget: 100_000,
            })
            .unwrap();
        assert_eq!(rep.words_copied, 0, "local stages move no data");
    }

    // Gather from column 1 and compare bit-exact with the one-column run.
    let mut flat = read_tile_points(&runner.sim, c1_top, M);
    flat.extend(read_tile_points(&runner.sim, c1_bot, M));
    let bits = N.trailing_zeros();
    let mut got = vec![Cfx::default(); N];
    for (g, v) in flat.iter().enumerate() {
        got[bit_reverse(g, bits)] = *v;
    }
    let (want, _) = run_partitioned(plan, &input).unwrap();
    assert_eq!(got, want, "two-column execution must be bit-exact");
    let mut oracle = signal.clone();
    fft(&mut oracle);
    assert!(relative_error(&got, &oracle) < 1e-4);
}

/// Column-level pipelining: while column 1 finishes FFT #1's local stages,
/// column 0 is already computing FFT #2's cross stage — in the *same*
/// epoch, tiles in both columns executing simultaneously. The epoch's
/// compute time must be close to the max of the two column workloads, not
/// their sum.
#[test]
#[allow(clippy::needless_range_loop)]
fn two_ffts_pipelined_across_columns() {
    let mesh = Mesh::new(2, 2);
    let (c0_top, c0_bot, c1_top, c1_bot) = (0usize, 2usize, 1usize, 3usize);
    let sig = |phase: f64| -> Vec<Cfx> {
        (0..N)
            .map(|i| Cfx::from_f64((i as f64 * 0.3 + phase).sin(), (i as f64 * 0.9).cos()))
            .collect()
    };
    let (fft_a, fft_b) = (sig(0.0), sig(1.0));

    let mut sim = ArraySim::new(mesh);
    // FFT A has already passed through column 0 (simulate by loading its
    // post-stage-1 state into column 1); FFT B enters column 0 now.
    let plan = FftPlan::new(N, M).unwrap();
    let mut part_a = remorph::kernels::fft::pipeline::PartitionedFft::load(plan, &fft_a).unwrap();
    part_a.run_stage(0);
    part_a.run_stage(1);
    let a_state = part_a.gather(); // DIF order after unscramble? No: gather unscrambles.
                                   // We need the raw row state, not the gathered order: reload by running
                                   // the stages on a scratch copy and reading rows through the public API
                                   // is not available; instead run stage 2,3 expectations from the model.
                                   // Column 1 gets FFT A's intermediate rows by re-deriving them:
    let mut rows_a = [fft_a[..M].to_vec(), fft_a[M..].to_vec()];
    // DIF stage 0 (cross) then stage 1 (local) on the host, same math as
    // butterfly_dif (duplicated here to obtain raw row state).
    {
        use remorph::kernels::fft::fixed::butterfly_dif;
        use remorph::kernels::fft::twiddle::butterfly_twiddle;
        for i in 0..M {
            let w = twiddle_fx(N, butterfly_twiddle(N, 0, i).unwrap());
            let (t, u) = butterfly_dif(rows_a[0][i], rows_a[1][i], w);
            rows_a[0][i] = t;
            rows_a[1][i] = u;
        }
        let h = N >> 2;
        for r in 0..2 {
            for i in 0..M {
                let g = r * M + i;
                if g % (2 * h) < h {
                    let w = twiddle_fx(N, butterfly_twiddle(N, 1, g).unwrap());
                    let (t, u) = butterfly_dif(rows_a[r][i], rows_a[r][i + h], w);
                    rows_a[r][i] = t;
                    rows_a[r][i + h] = u;
                }
            }
        }
    }
    let _ = a_state;
    load_tile_points(&mut sim, c1_top, &rows_a[0]);
    load_tile_points(&mut sim, c1_bot, &rows_a[1]);
    load_tile_points(&mut sim, c0_top, &fft_b[..M]);
    load_tile_points(&mut sim, c0_bot, &fft_b[M..]);

    load_cross_twiddles(&mut sim, c0_top, &[0, 1, 2, 3]);
    load_cross_twiddles(&mut sim, c0_bot, &[4, 5, 6, 7]);
    load_local_twiddles(&mut sim, c1_top, 2);
    load_local_twiddles(&mut sim, c1_bot, 2);
    init_copy_vars(&mut sim.tiles[c0_top], CPVARS, 8, RECV, 0);
    init_copy_vars(&mut sim.tiles[c0_bot], CPVARS, 0, RECV, 0);

    let links = mesh
        .disconnected()
        .with(c0_top, Direction::South)
        .with(c0_bot, Direction::North);
    let cost = CostModel::default();
    let mut runner = EpochRunner::new(sim, cost);

    // ONE epoch: column 0 exchanges FFT B while column 1 runs FFT A's BF2.
    let vcp = copy_program(8, false, CPVARS);
    let bf2 = bf_program(M, N >> 3);
    let rep1 = runner
        .run_epoch(&Epoch {
            name: "col0 vcp(B) || col1 BF2(A)".into(),
            links: links.clone(),
            setups: vec![
                (
                    c0_top,
                    TileSetup {
                        program: Some(vcp.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    c0_bot,
                    TileSetup {
                        program: Some(vcp),
                        data_patches: vec![],
                    },
                ),
                (
                    c1_top,
                    TileSetup {
                        program: Some(bf2.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    c1_bot,
                    TileSetup {
                        program: Some(bf2),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        })
        .unwrap();
    // Both columns were busy in the same epoch.
    let busy: Vec<u64> = runner.sim.stats.iter().map(|s| s.busy_cycles).collect();
    assert!(busy.iter().all(|&b| b > 0), "{busy:?}");
    // The epoch lasted ~max(col0 work, col1 work): each column alone takes
    // fewer cycles than the two summed.
    let col0 = busy[c0_top].max(busy[c0_bot]);
    let col1 = busy[c1_top].max(busy[c1_bot]);
    let epoch_cycles = (rep1.compute_ns / cost.cycle_ns()).round() as u64;
    assert!(
        epoch_cycles <= col0.max(col1) + 2,
        "epoch {epoch_cycles} should be max({col0},{col1})"
    );
    assert!(epoch_cycles < col0 + col1, "columns did not overlap");

    // Continue FFT B's cross butterflies while FFT A finishes BF3; then
    // check FFT A's final value is exactly the functional model's.
    load_local_twiddles(&mut runner.sim, c1_top, 3);
    load_local_twiddles(&mut runner.sim, c1_bot, 3);
    let bf3 = bf_program(M, N >> 4);
    runner
        .run_epoch(&Epoch {
            name: "col0 BF0(B) || col1 BF3(A)".into(),
            links,
            setups: vec![
                (
                    c0_top,
                    TileSetup {
                        program: Some(cross_bf_program(M, 4, 0, RECV, 0, true)),
                        data_patches: vec![],
                    },
                ),
                (
                    c0_bot,
                    TileSetup {
                        program: Some(cross_bf_program(M, 4, 8, RECV, 8, false)),
                        data_patches: vec![],
                    },
                ),
                (
                    c1_top,
                    TileSetup {
                        program: Some(bf3.clone()),
                        data_patches: vec![],
                    },
                ),
                (
                    c1_bot,
                    TileSetup {
                        program: Some(bf3),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 100_000,
        })
        .unwrap();

    let mut flat = read_tile_points(&runner.sim, c1_top, M);
    flat.extend(read_tile_points(&runner.sim, c1_bot, M));
    let bits = N.trailing_zeros();
    let mut got_a = vec![Cfx::default(); N];
    for (g, v) in flat.iter().enumerate() {
        got_a[bit_reverse(g, bits)] = *v;
    }
    let (want_a, _) = run_partitioned(plan, &fft_a).unwrap();
    assert_eq!(got_a, want_a, "pipelined FFT A must still be bit-exact");
}
