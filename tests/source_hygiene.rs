//! Source-level hygiene gate: the verifier, the linter, the simulator
//! and the telemetry pipeline are the components that *reject or observe
//! other code*, so they must not panic on bad input themselves. Non-test
//! code in `cgra-verify`, `cgra-lint`, `cgra-sim` and `cgra-telemetry`
//! reports failures through structured `Result`/`Diagnostic` values —
//! this scan keeps `.unwrap()` / `.expect(` from creeping back in.

use std::fs;
use std::path::Path;

/// Strips everything from the first `#[cfg(test)]` marker onward. In
/// this repo test modules always sit at the end of a file, so the
/// remainder is exactly the shipped code. Line comments (including doc
/// comments, whose examples may legitimately unwrap) are dropped too.
fn shipped_code(src: &str) -> String {
    src.lines()
        .take_while(|l| !l.contains("#[cfg(test)]"))
        .filter(|l| !l.trim_start().starts_with("//"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn scan_dir(dir: &Path, offenders: &mut Vec<String>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            scan_dir(&path, offenders);
            continue;
        }
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let src =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        for (i, line) in shipped_code(&src).lines().enumerate() {
            if line.contains(".unwrap()") || line.contains(".expect(") {
                offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
}

#[test]
fn verify_and_sim_use_structured_errors() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut offenders = Vec::new();
    for crate_dir in [
        "crates/verify/src",
        "crates/lint/src",
        "crates/sim/src",
        "crates/telemetry/src",
    ] {
        scan_dir(&root.join(crate_dir), &mut offenders);
    }
    assert!(
        offenders.is_empty(),
        "unwrap/expect in shipped verifier/simulator code (use structured \
         errors or diagnostics instead):\n{}",
        offenders.join("\n")
    );
}
