//! Cross-crate property tests: randomized inputs exercising the
//! correctness invariants that tie the substrates together.

use proptest::prelude::*;

use remorph::fabric::{CostModel, Word};
use remorph::kernels::fft::fixed::{relative_error, Cfx};
use remorph::kernels::fft::partition::FftPlan;
use remorph::kernels::fft::pipeline::run_partitioned;
use remorph::kernels::fft::programs::single_tile_fft;
use remorph::kernels::fft::reference::{bit_reverse, fft, Cf64};
use remorph::kernels::jpeg::decoder::decode;
use remorph::kernels::jpeg::encoder::{encode, EncoderConfig};
use remorph::kernels::jpeg::image::GrayImage;
use remorph::map::rebalance::{rebalance_one, rebalance_opt, rebalance_two};
use remorph::map::{evaluate, ProcessNetwork, ProcessSpec};

fn arb_signal(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-0.9f64..0.9, -0.9f64..0.9), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The partitioned tile dataflow computes the same transform as the
    /// textbook FFT for every (N, M) decomposition.
    #[test]
    fn partitioned_fft_matches_reference(
        sig in arb_signal(256),
        log_m in 1u32..8,
    ) {
        let n = 256;
        let m = 1usize << log_m;
        let plan = FftPlan::new(n, m).unwrap();
        let signal: Vec<Cf64> = sig.iter().map(|&(r, i)| Cf64::new(r, i)).collect();
        let mut oracle = signal.clone();
        fft(&mut oracle);
        let input: Vec<Cfx> = signal.iter().map(|&c| Cfx::from_c(c)).collect();
        let (got, _) = run_partitioned(plan, &input).unwrap();
        prop_assert!(relative_error(&got, &oracle) < 1e-4);
    }

    /// Executing the generated BF programs on the interpreter is bit-exact
    /// with the functional model for random inputs.
    #[test]
    fn pe_fft_bit_exact(sig in arb_signal(64)) {
        let n = 64;
        let input: Vec<Cfx> = sig.iter().map(|&(r, i)| Cfx::from_f64(r, i)).collect();
        let (dif, _) = single_tile_fft(&input);
        let mut got = vec![Cfx::default(); n];
        for (g, v) in dif.iter().enumerate() {
            got[bit_reverse(g, n.trailing_zeros())] = *v;
        }
        let plan = FftPlan::new(n, n).unwrap();
        let (want, _) = run_partitioned(plan, &input).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Encode -> decode round trip always succeeds and keeps PSNR sane on
    /// random smooth-ish images.
    #[test]
    fn jpeg_roundtrip_never_fails(
        seed in 0u64..10_000,
        w in 8usize..40,
        h in 8usize..40,
        quality in 30u8..=95,
    ) {
        let img = GrayImage::noise(w, h, seed);
        let bytes = encode(&img, &EncoderConfig { quality });
        let back = decode(&bytes).unwrap();
        prop_assert_eq!((back.width, back.height), (w, h));
        // Even noise at q30 keeps more than 10 dB.
        prop_assert!(img.psnr(&back) > 10.0);
    }

    /// Rebalancing invariants on random pipelines: assignments stay valid,
    /// tile budgets are respected, intervals never increase with more
    /// tiles, and OPT dominates One and Two.
    #[test]
    fn rebalance_invariants(
        runtimes in proptest::collection::vec(50u64..50_000, 2..12),
        max_tiles in 2usize..20,
    ) {
        let net = ProcessNetwork::new(
            runtimes
                .iter()
                .enumerate()
                .map(|(i, &rt)| ProcessSpec::new(format!("p{i}"), 20, 0, 0, 2, rt))
                .collect(),
        );
        let cost = CostModel::default();
        let one = rebalance_one(&net, max_tiles, &cost);
        let two = rebalance_two(&net, max_tiles, &cost);
        let opt = rebalance_opt(&net, max_tiles, &cost);
        for asgs in [&one, &two, &opt] {
            prop_assert_eq!(asgs.len(), max_tiles);
            let mut prev = f64::INFINITY;
            for (t, asg) in asgs.iter().enumerate() {
                prop_assert!(asg.validate(&net).is_ok());
                prop_assert!(asg.tiles() <= t + 1);
                let m = evaluate(&net, asg, &cost);
                prop_assert!(m.interval_ns <= prev + 1e-6);
                prop_assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-9);
                prev = m.interval_ns;
            }
        }
        for t in 0..max_tiles {
            let io = evaluate(&net, &opt[t], &cost).interval_ns;
            prop_assert!(io <= evaluate(&net, &one[t], &cost).interval_ns + 1e-6);
            prop_assert!(io <= evaluate(&net, &two[t], &cost).interval_ns + 1e-6);
        }
    }

    /// The tau model is monotone: throughput never increases with link
    /// cost, for every valid column count.
    #[test]
    fn tau_model_monotone_in_link_cost(
        l1 in 0.0f64..5000.0,
        l2 in 0.0f64..5000.0,
    ) {
        let model = remorph::explore::fft_dse::TauModel::paper_1024();
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        for cols in [1usize, 2, 5, 10] {
            prop_assert!(
                model.throughput(cols, lo).unwrap() >= model.throughput(cols, hi).unwrap() - 1e-9
            );
        }
    }

    /// Word arithmetic matches i64 arithmetic wherever no overflow occurs.
    #[test]
    fn word_is_i64_without_overflow(a in -(1i64<<40)..(1i64<<40), b in -(1i64<<40)..(1i64<<40)) {
        prop_assert_eq!(Word::wrap(a).add(Word::wrap(b)).value(), a + b);
        prop_assert_eq!(Word::wrap(a).sub(Word::wrap(b)).value(), a - b);
        prop_assert_eq!(Word::wrap(a).value(), a);
    }
}

mod extended {
    use super::*;
    use remorph::fabric::bitstream::{parse, serialize};
    use remorph::fabric::reconfig::{DataPatch, ReconfigPlan, TileReconfig};
    use remorph::fabric::{Direction, Tile};
    use remorph::kernels::jpeg::bitio::{BitReader, BitWriter};
    use remorph::kernels::jpeg::entropy_programs::{load_entropy_tables, run_entropy_block};
    use remorph::kernels::jpeg::huffman::{ac_luma_spec, dc_luma_spec, encode_block, EncTable};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// PE-executed entropy coding is bit-exact with the host encoder on
        /// arbitrary quantized blocks (sparse and dense mixes).
        #[test]
        fn entropy_programs_bit_exact(
            values in proptest::collection::vec((-255i32..=255, 1u8..12), 1..20),
            dc in -1000i32..1000,
        ) {
            // Scatter the (value, gap) pairs into a block.
            let mut scan = [0i32; 64];
            scan[0] = dc;
            let mut k = 1usize;
            for &(v, gap) in &values {
                k += gap as usize;
                if k >= 64 { break; }
                scan[k] = if v == 0 { 1 } else { v };
                k += 1;
            }
            let dc_t = EncTable::from_spec(&dc_luma_spec());
            let ac_t = EncTable::from_spec(&ac_luma_spec());
            let mut tile = Tile::new(0);
            load_entropy_tables(&mut tile, &dc_t, &ac_t);
            let got = run_entropy_block(&mut tile, &scan);

            let mut w = BitWriter::new();
            let mut pred = 0i32;
            encode_block(&mut w, &dc_t, &ac_t, &scan, &mut pred);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let want: Vec<bool> = (0..got.bits.len())
                .map(|_| r.bit().expect("enough host bits") == 1)
                .collect();
            prop_assert_eq!(got.bits, want);
        }

        /// Bitstream serialize/parse round-trips arbitrary plans.
        #[test]
        fn bitstream_roundtrip(
            tiles in proptest::collection::vec(
                (0usize..16, proptest::collection::vec(any::<i64>(), 0..8), 0usize..400),
                0..5,
            ),
            links in proptest::collection::vec((0usize..16, 0u8..5), 0..4),
        ) {
            let mut plan = ReconfigPlan::default();
            for (t, words, base) in &tiles {
                plan.add_tile(*t, TileReconfig {
                    program: None,
                    data_patches: vec![DataPatch::new(
                        *base,
                        words.iter().map(|&v| Word::wrap(v)).collect(),
                    )],
                });
            }
            let link_settings: Vec<(usize, Option<Direction>)> = links
                .iter()
                .map(|&(t, d)| {
                    (t, match d {
                        0 => Some(Direction::North),
                        1 => Some(Direction::East),
                        2 => Some(Direction::South),
                        3 => Some(Direction::West),
                        _ => None,
                    })
                })
                .collect();
            let bytes = serialize(&plan, &link_settings);
            let parsed = parse(&bytes).unwrap();
            prop_assert_eq!(parsed.links, link_settings);
            prop_assert_eq!(parsed.plan.bitstream_bytes(), plan.bitstream_bytes());
        }

        /// Color conversion round-trips within +-2 per channel for all RGB.
        #[test]
        fn ycbcr_roundtrip(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
            use remorph::kernels::jpeg::color::{rgb_to_ycbcr, ycbcr_to_rgb};
            let back = ycbcr_to_rgb(rgb_to_ycbcr([r, g, b]));
            prop_assert!((back[0] as i32 - r as i32).abs() <= 2);
            prop_assert!((back[1] as i32 - g as i32).abs() <= 2);
            prop_assert!((back[2] as i32 - b as i32).abs() <= 2);
        }

        /// Multi-hop routes always reach their destination in Manhattan
        /// distance hops with chained endpoints.
        #[test]
        fn routes_are_manhattan_chains(rows in 1usize..6, cols in 1usize..6, a in 0usize..36, b in 0usize..36) {
            use remorph::fabric::Mesh;
            use remorph::map::routing::plan_route;
            let mesh = Mesh::new(rows, cols);
            let (a, b) = (a % mesh.tiles(), b % mesh.tiles());
            let route = plan_route(&mesh, a, b).unwrap();
            prop_assert_eq!(route.len(), mesh.distance(a, b).unwrap());
            let mut cur = a;
            for h in &route.hops {
                prop_assert_eq!(h.from, cur);
                prop_assert_eq!(mesh.neighbour(h.from, h.dir), Some(h.to));
                cur = h.to;
            }
            prop_assert_eq!(cur, b);
        }
    }
}

mod robustness {
    use super::*;
    use remorph::kernels::jpeg::color::decode_color;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The grayscale decoder never panics on arbitrary bytes.
        #[test]
        fn gray_decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
            let _ = decode(&bytes);
        }

        /// Neither does the color decoder.
        #[test]
        fn color_decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
            let _ = decode_color(&bytes);
        }

        /// Truncating a valid stream inside its marker segments yields an
        /// error, never a panic or a silent success. (Cuts beyond the
        /// entropy data only lose the EOI and may legitimately decode, so
        /// the cut stays inside the ~340-byte header: SOI/APP0/DQT/DHT.)
        #[test]
        fn truncated_streams_fail_cleanly(cut in 2usize..280, quality in 20u8..95) {
            let img = GrayImage::rings(24, 24);
            let bytes = encode(&img, &EncoderConfig { quality });
            let cut = cut.min(bytes.len() - 1);
            prop_assert!(decode(&bytes[..cut]).is_err());
        }

        /// Flipping one byte in the header area is either rejected or
        /// decodes to *something* — never panics.
        #[test]
        fn bitflips_never_panic(pos in 2usize..200, val in any::<u8>(), quality in 20u8..95) {
            let img = GrayImage::gradient(16, 16);
            let mut bytes = encode(&img, &EncoderConfig { quality });
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] = val;
            let _ = decode(&bytes);
        }
    }
}
