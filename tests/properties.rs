//! Cross-crate property tests: randomized inputs exercising the
//! correctness invariants that tie the substrates together.
//!
//! The workspace carries no external property-testing crate; every test
//! draws its cases from the deterministic [`Rng`] so failures reproduce
//! from their seed.

use remorph::fabric::rng::Rng;
use remorph::fabric::{CostModel, Word};
use remorph::kernels::fft::fixed::{relative_error, Cfx};
use remorph::kernels::fft::partition::FftPlan;
use remorph::kernels::fft::pipeline::run_partitioned;
use remorph::kernels::fft::programs::single_tile_fft;
use remorph::kernels::fft::reference::{bit_reverse, fft, Cf64};
use remorph::kernels::jpeg::decoder::decode;
use remorph::kernels::jpeg::encoder::{encode, EncoderConfig};
use remorph::kernels::jpeg::image::GrayImage;
use remorph::map::rebalance::{rebalance_one, rebalance_opt, rebalance_two};
use remorph::map::{evaluate, ProcessNetwork, ProcessSpec};

fn random_signal(rng: &mut Rng, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.gen_f64() * 1.8 - 0.9, rng.gen_f64() * 1.8 - 0.9))
        .collect()
}

/// The partitioned tile dataflow computes the same transform as the
/// textbook FFT for every (N, M) decomposition.
#[test]
fn partitioned_fft_matches_reference() {
    let mut rng = Rng::seed_from_u64(0xFF7_0001);
    for case in 0..24 {
        let n = 256;
        let log_m = 1 + case % 7;
        let m = 1usize << log_m;
        let sig = random_signal(&mut rng, n);
        let plan = FftPlan::new(n, m).unwrap();
        let signal: Vec<Cf64> = sig.iter().map(|&(r, i)| Cf64::new(r, i)).collect();
        let mut oracle = signal.clone();
        fft(&mut oracle);
        let input: Vec<Cfx> = signal.iter().map(|&c| Cfx::from_c(c)).collect();
        let (got, _) = run_partitioned(plan, &input).unwrap();
        assert!(
            relative_error(&got, &oracle) < 1e-4,
            "case {case}: N={n} M={m}"
        );
    }
}

/// Executing the generated BF programs on the interpreter is bit-exact
/// with the functional model for random inputs.
#[test]
fn pe_fft_bit_exact() {
    let mut rng = Rng::seed_from_u64(0xFF7_0002);
    for case in 0..24 {
        let n = 64;
        let sig = random_signal(&mut rng, n);
        let input: Vec<Cfx> = sig.iter().map(|&(r, i)| Cfx::from_f64(r, i)).collect();
        let (dif, _) = single_tile_fft(&input);
        let mut got = vec![Cfx::default(); n];
        for (g, v) in dif.iter().enumerate() {
            got[bit_reverse(g, n.trailing_zeros())] = *v;
        }
        let plan = FftPlan::new(n, n).unwrap();
        let (want, _) = run_partitioned(plan, &input).unwrap();
        assert_eq!(got, want, "case {case}");
    }
}

/// Encode -> decode round trip always succeeds and keeps PSNR sane on
/// random noise images.
#[test]
fn jpeg_roundtrip_never_fails() {
    let mut rng = Rng::seed_from_u64(0xFF7_0003);
    for case in 0..24 {
        let seed = rng.next_u64() % 10_000;
        let w = 8 + rng.gen_range(32);
        let h = 8 + rng.gen_range(32);
        let quality = (30 + rng.gen_range(66)) as u8;
        let img = GrayImage::noise(w, h, seed);
        let bytes = encode(&img, &EncoderConfig { quality });
        let back = decode(&bytes).unwrap();
        assert_eq!((back.width, back.height), (w, h), "case {case}");
        // Even noise at q30 keeps more than 10 dB.
        assert!(img.psnr(&back) > 10.0, "case {case}: q={quality} {w}x{h}");
    }
}

/// Rebalancing invariants on random pipelines: assignments stay valid,
/// tile budgets are respected, intervals never increase with more
/// tiles, and OPT dominates One and Two.
#[test]
fn rebalance_invariants() {
    let mut rng = Rng::seed_from_u64(0xFF7_0004);
    for case in 0..24 {
        let np = 2 + rng.gen_range(10);
        let runtimes: Vec<u64> = (0..np).map(|_| 50 + rng.next_u64() % 49_950).collect();
        let max_tiles = 2 + rng.gen_range(18);
        let net = ProcessNetwork::new(
            runtimes
                .iter()
                .enumerate()
                .map(|(i, &rt)| ProcessSpec::new(format!("p{i}"), 20, 0, 0, 2, rt))
                .collect(),
        );
        let cost = CostModel::default();
        let one = rebalance_one(&net, max_tiles, &cost);
        let two = rebalance_two(&net, max_tiles, &cost);
        let opt = rebalance_opt(&net, max_tiles, &cost);
        for asgs in [&one, &two, &opt] {
            assert_eq!(asgs.len(), max_tiles, "case {case}");
            let mut prev = f64::INFINITY;
            for (t, asg) in asgs.iter().enumerate() {
                assert!(asg.validate(&net).is_ok(), "case {case}");
                assert!(asg.tiles() <= t + 1, "case {case}");
                let m = evaluate(&net, asg, &cost);
                assert!(m.interval_ns <= prev + 1e-6, "case {case}");
                assert!(
                    m.utilization > 0.0 && m.utilization <= 1.0 + 1e-9,
                    "case {case}"
                );
                prev = m.interval_ns;
            }
        }
        for t in 0..max_tiles {
            let io = evaluate(&net, &opt[t], &cost).interval_ns;
            assert!(
                io <= evaluate(&net, &one[t], &cost).interval_ns + 1e-6,
                "case {case}"
            );
            assert!(
                io <= evaluate(&net, &two[t], &cost).interval_ns + 1e-6,
                "case {case}"
            );
        }
    }
}

/// The tau model is monotone: throughput never increases with link
/// cost, for every valid column count.
#[test]
fn tau_model_monotone_in_link_cost() {
    let mut rng = Rng::seed_from_u64(0xFF7_0005);
    let model = remorph::explore::fft_dse::TauModel::paper_1024();
    for _ in 0..24 {
        let l1 = rng.gen_f64() * 5000.0;
        let l2 = rng.gen_f64() * 5000.0;
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        for cols in [1usize, 2, 5, 10] {
            assert!(
                model.throughput(cols, lo).unwrap() >= model.throughput(cols, hi).unwrap() - 1e-9
            );
        }
    }
}

/// Word arithmetic matches i64 arithmetic wherever no overflow occurs.
#[test]
fn word_is_i64_without_overflow() {
    let mut rng = Rng::seed_from_u64(0xFF7_0006);
    for _ in 0..1000 {
        let a = rng.gen_range_i64(-(1i64 << 40), 1i64 << 40);
        let b = rng.gen_range_i64(-(1i64 << 40), 1i64 << 40);
        assert_eq!(Word::wrap(a).add(Word::wrap(b)).value(), a + b);
        assert_eq!(Word::wrap(a).sub(Word::wrap(b)).value(), a - b);
        assert_eq!(Word::wrap(a).value(), a);
    }
}

mod extended {
    use super::*;
    use remorph::fabric::bitstream::{parse, serialize};
    use remorph::fabric::reconfig::{DataPatch, ReconfigPlan, TileReconfig};
    use remorph::fabric::{Direction, Tile};
    use remorph::kernels::jpeg::bitio::{BitReader, BitWriter};
    use remorph::kernels::jpeg::entropy_programs::{load_entropy_tables, run_entropy_block};
    use remorph::kernels::jpeg::huffman::{ac_luma_spec, dc_luma_spec, encode_block, EncTable};

    /// PE-executed entropy coding is bit-exact with the host encoder on
    /// arbitrary quantized blocks (sparse and dense mixes).
    #[test]
    fn entropy_programs_bit_exact() {
        let mut rng = Rng::seed_from_u64(0xFF7_0007);
        for case in 0..16 {
            let nv = 1 + rng.gen_range(19);
            let values: Vec<(i32, u8)> = (0..nv)
                .map(|_| {
                    (
                        rng.gen_range_i64(-255, 256) as i32,
                        (1 + rng.gen_range(11)) as u8,
                    )
                })
                .collect();
            let dc = rng.gen_range_i64(-1000, 1000) as i32;

            // Scatter the (value, gap) pairs into a block.
            let mut scan = [0i32; 64];
            scan[0] = dc;
            let mut k = 1usize;
            for &(v, gap) in &values {
                k += gap as usize;
                if k >= 64 {
                    break;
                }
                scan[k] = if v == 0 { 1 } else { v };
                k += 1;
            }
            let dc_t = EncTable::from_spec(&dc_luma_spec());
            let ac_t = EncTable::from_spec(&ac_luma_spec());
            let mut tile = Tile::new(0);
            load_entropy_tables(&mut tile, &dc_t, &ac_t);
            let got = run_entropy_block(&mut tile, &scan);

            let mut w = BitWriter::new();
            let mut pred = 0i32;
            encode_block(&mut w, &dc_t, &ac_t, &scan, &mut pred);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let want: Vec<bool> = (0..got.bits.len())
                .map(|_| r.bit().expect("enough host bits") == 1)
                .collect();
            assert_eq!(got.bits, want, "case {case}");
        }
    }

    /// Bitstream serialize/parse round-trips arbitrary plans.
    #[test]
    fn bitstream_roundtrip() {
        let mut rng = Rng::seed_from_u64(0xFF7_0008);
        for case in 0..16 {
            let mut plan = ReconfigPlan::default();
            let ntiles = rng.gen_range(5);
            for _ in 0..ntiles {
                let t = rng.gen_range(16);
                let base = rng.gen_range(400);
                let nw = rng.gen_range(8);
                let words: Vec<Word> = (0..nw)
                    .map(|_| Word::wrap(rng.next_u64() as i64 >> 16))
                    .collect();
                plan.add_tile(
                    t,
                    TileReconfig {
                        program: None,
                        data_patches: vec![DataPatch::new(base, words)],
                    },
                );
            }
            let nlinks = rng.gen_range(4);
            let link_settings: Vec<(usize, Option<Direction>)> = (0..nlinks)
                .map(|_| {
                    let t = rng.gen_range(16);
                    let d = match rng.gen_range(5) {
                        0 => Some(Direction::North),
                        1 => Some(Direction::East),
                        2 => Some(Direction::South),
                        3 => Some(Direction::West),
                        _ => None,
                    };
                    (t, d)
                })
                .collect();
            let bytes = serialize(&plan, &link_settings);
            let parsed = parse(&bytes).unwrap();
            assert_eq!(parsed.links, link_settings, "case {case}");
            assert_eq!(
                parsed.plan.bitstream_bytes(),
                plan.bitstream_bytes(),
                "case {case}"
            );
        }
    }

    /// Color conversion round-trips within +-2 per channel for all RGB.
    #[test]
    fn ycbcr_roundtrip() {
        use remorph::kernels::jpeg::color::{rgb_to_ycbcr, ycbcr_to_rgb};
        let mut rng = Rng::seed_from_u64(0xFF7_0009);
        for _ in 0..256 {
            let (r, g, b) = (
                rng.gen_range(256) as u8,
                rng.gen_range(256) as u8,
                rng.gen_range(256) as u8,
            );
            let back = ycbcr_to_rgb(rgb_to_ycbcr([r, g, b]));
            assert!((back[0] as i32 - r as i32).abs() <= 2);
            assert!((back[1] as i32 - g as i32).abs() <= 2);
            assert!((back[2] as i32 - b as i32).abs() <= 2);
        }
    }

    /// Multi-hop routes always reach their destination in Manhattan
    /// distance hops with chained endpoints.
    #[test]
    fn routes_are_manhattan_chains() {
        use remorph::fabric::Mesh;
        use remorph::map::routing::plan_route;
        let mut rng = Rng::seed_from_u64(0xFF7_000A);
        for case in 0..16 {
            let rows = 1 + rng.gen_range(5);
            let cols = 1 + rng.gen_range(5);
            let mesh = Mesh::new(rows, cols);
            let a = rng.gen_range(mesh.tiles());
            let b = rng.gen_range(mesh.tiles());
            let route = plan_route(&mesh, a, b).unwrap();
            assert_eq!(route.len(), mesh.distance(a, b).unwrap(), "case {case}");
            let mut cur = a;
            for h in &route.hops {
                assert_eq!(h.from, cur);
                assert_eq!(mesh.neighbour(h.from, h.dir), Some(h.to));
                cur = h.to;
            }
            assert_eq!(cur, b, "case {case}");
        }
    }
}

mod robustness {
    use super::*;
    use remorph::kernels::jpeg::color::decode_color;

    /// The grayscale decoder never panics on arbitrary bytes.
    #[test]
    fn gray_decoder_total_on_garbage() {
        let mut rng = Rng::seed_from_u64(0xFF7_000B);
        for _ in 0..64 {
            let n = rng.gen_range(600);
            let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(256) as u8).collect();
            let _ = decode(&bytes);
        }
    }

    /// Neither does the color decoder.
    #[test]
    fn color_decoder_total_on_garbage() {
        let mut rng = Rng::seed_from_u64(0xFF7_000C);
        for _ in 0..64 {
            let n = rng.gen_range(600);
            let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(256) as u8).collect();
            let _ = decode_color(&bytes);
        }
    }

    /// Truncating a valid stream inside its marker segments yields an
    /// error, never a panic or a silent success. (Cuts beyond the
    /// entropy data only lose the EOI and may legitimately decode, so
    /// the cut stays inside the ~340-byte header: SOI/APP0/DQT/DHT.)
    #[test]
    fn truncated_streams_fail_cleanly() {
        let mut rng = Rng::seed_from_u64(0xFF7_000D);
        for case in 0..64 {
            let quality = (20 + rng.gen_range(75)) as u8;
            let img = GrayImage::rings(24, 24);
            let bytes = encode(&img, &EncoderConfig { quality });
            let cut = (2 + rng.gen_range(278)).min(bytes.len() - 1);
            assert!(decode(&bytes[..cut]).is_err(), "case {case}: cut={cut}");
        }
    }

    /// Flipping one byte in the header area is either rejected or
    /// decodes to *something* — never panics.
    #[test]
    fn bitflips_never_panic() {
        let mut rng = Rng::seed_from_u64(0xFF7_000E);
        for _ in 0..64 {
            let quality = (20 + rng.gen_range(75)) as u8;
            let img = GrayImage::gradient(16, 16);
            let mut bytes = encode(&img, &EncoderConfig { quality });
            let pos = (2 + rng.gen_range(198)).min(bytes.len() - 1);
            bytes[pos] = rng.gen_range(256) as u8;
            let _ = decode(&bytes);
        }
    }
}
