//! Property tests tying the generator, the binary encoding and the static
//! verifier together: every well-shaped random program survives
//! encode -> decode -> verify with zero findings, and corrupted encodings
//! are rejected — structurally by the decoder, semantically by the
//! verifier.

use remorph::fabric::rng::Rng;
use remorph::isa::testgen::random_program;
use remorph::isa::{decode, decode_program, encode_program, DecodeError, Instr};
use remorph::verify::{errors, verify_program_with, Code, DmemInit, VerifyOptions};

/// Verification preconditions matching what the generator guarantees: the
/// host may have poked anything (data reads are fair game) but the
/// programs still must be structurally sound, terminating and
/// AR-disciplined.
fn warm() -> VerifyOptions {
    VerifyOptions {
        dmem_init: DmemInit::Everything,
        ars_preloaded: true,
        ..VerifyOptions::default()
    }
}

/// Generator soundness: 500 random programs round-trip through the binary
/// encoding unchanged and verify with zero error findings.
#[test]
fn random_programs_roundtrip_and_verify_clean() {
    let mut rng = Rng::seed_from_u64(0x5EED_0001);
    for case in 0..500 {
        let prog = random_program(&mut rng, 40);
        let image = encode_program(&prog);
        let back = decode_program(&image).expect("valid programs decode");
        assert_eq!(back, prog, "case {case}: encode/decode must round-trip");
        let diags = verify_program_with(&back, &warm());
        let errs: Vec<_> = errors(&diags).collect();
        assert!(
            errs.is_empty(),
            "case {case}: generator produced a program the verifier rejects:\n{prog:?}\n{errs:?}"
        );
    }
}

/// Bit-flip corruptions of the opcode field are caught by the decoder.
#[test]
fn corrupt_opcode_rejected() {
    let mut rng = Rng::seed_from_u64(0xC0DE_0001);
    for _ in 0..100 {
        let prog = random_program(&mut rng, 20);
        let mut image = encode_program(&prog);
        // Force the opcode field (bits 71:66) to an unassigned value.
        image[0] = (image[0] & !(0x3fu128 << 66)) | (63u128 << 66);
        assert_eq!(decode(image[0]), Err(DecodeError::BadOpcode(63)));
        assert!(decode_program(&image).is_err());
    }
}

/// Words wider than the 72-bit instruction memory are rejected outright.
#[test]
fn overwidth_word_rejected() {
    let image = encode_program(&[Instr::Halt]);
    let wide = image[0] | (1u128 << 72);
    assert_eq!(decode(wide), Err(DecodeError::OverWidth));
}

/// An ALU source operand whose mode bits are corrupted to the remote form
/// decodes to an illegal role and is rejected — corrupt words cannot
/// smuggle remote reads into the executor.
#[test]
fn corrupt_operand_mode_rejected() {
    use remorph::isa::ops::{d, imm};
    let prog = [Instr::Add {
        dst: d(0),
        a: d(1),
        b: imm(2),
    }];
    let mut w = encode_program(&prog)[0];
    // src1 occupies bits 48:38; its mode is the top two bits (48:47).
    w |= 0b11u128 << 47;
    match decode(w) {
        Err(DecodeError::BadOperand { .. }) => {}
        other => panic!("expected BadOperand, got {other:?}"),
    }
}

/// A corruption that survives decoding — a branch retargeted onto itself —
/// is still caught, by the verifier's termination pass.
#[test]
fn semantic_corruption_caught_by_verifier() {
    use remorph::isa::ops::d;
    let prog = vec![
        Instr::Ldi { dst: d(0), imm: 7 },
        Instr::Jmp { target: 2 },
        Instr::Halt,
    ];
    let mut image = encode_program(&prog);
    // Retarget the jmp at pc 1 onto itself: a tight infinite loop that is
    // still a perfectly well-formed instruction word.
    image[1] = (image[1] & !(0x1ffu128 << 3)) | (1u128 << 3);
    let back = decode_program(&image).expect("still structurally valid");
    assert_eq!(back[1], Instr::Jmp { target: 1 });
    let diags = verify_program_with(&back, &warm());
    assert!(
        errors(&diags).any(|d| d.code == Code::NoHaltPath),
        "infinite loop must be flagged: {diags:?}"
    );
}
