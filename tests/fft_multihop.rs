//! The scale frontier: a 64-point FFT on a 4x1 column of M=16 tiles.
//! Stage 0 pairs rows two apart — NOT mesh neighbours — so the vertical
//! exchange and the result write-back both travel as *multi-hop routed
//! copies* through the intermediate tile ("the data generated at non
//! neighbour tiles is brought to the tile's memory using explicit copy
//! instructions and changing connectivity", Sec. 2). Stage 1 partners are
//! adjacent and use direct remote-write butterflies; the rest is local.
//! The final spectrum is bit-exact with the functional partitioned model.

use remorph::fabric::{CostModel, Mesh};
use remorph::kernels::fft::fixed::{twiddle_fx, Cfx};
use remorph::kernels::fft::partition::FftPlan;
use remorph::kernels::fft::pipeline::run_partitioned;
use remorph::kernels::fft::programs::{
    bf_program, copy_program, cross_bf_local_program, cross_bf_program, init_copy_vars, tw_base,
};
use remorph::kernels::fft::reference::{bit_reverse, fft, Cf64};
use remorph::kernels::fft::twiddle::butterfly_twiddle;
use remorph::map::routing::plan_route;
use remorph::sim::{ArraySim, Epoch, EpochRunner, TileSetup};

const N: usize = 64;
const M: usize = 16;
const ROWS: usize = 4;

// Tile memory map (m = 16: x at 0..32, twiddles at 32..48, temps at 48+).
const RECV: u16 = 96; // received partner half (16 words)
const OUT_BOT: u16 = 128; // locally-kept cross results awaiting write-back
const RELAY: u16 = 160; // staging buffer on route intermediates
const CPVARS: u16 = 480;

fn load_rows(sim: &mut ArraySim, rows: &[Vec<Cfx>]) {
    for (r, row) in rows.iter().enumerate() {
        for (i, c) in row.iter().enumerate() {
            sim.tiles[r].dmem.poke(2 * i, c.re).unwrap();
            sim.tiles[r].dmem.poke(2 * i + 1, c.im).unwrap();
        }
    }
}

fn read_row(sim: &ArraySim, t: usize) -> Vec<Cfx> {
    (0..M)
        .map(|i| Cfx {
            re: sim.tiles[t].dmem.peek(2 * i).unwrap(),
            im: sim.tiles[t].dmem.peek(2 * i + 1).unwrap(),
        })
        .collect()
}

/// Stage-s twiddles for the butterflies `indices`, in visit order.
fn load_twiddles(sim: &mut ArraySim, t: usize, s: usize, tops: &[usize]) {
    let base = tw_base(M) as usize;
    for (j, &g) in tops.iter().enumerate() {
        let k = butterfly_twiddle(N, s, g).expect("top position");
        let w = twiddle_fx(N, k);
        sim.tiles[t].dmem.poke(base + 2 * j, w.re).unwrap();
        sim.tiles[t].dmem.poke(base + 2 * j + 1, w.im).unwrap();
    }
}

/// Ships `words` words from `src_addr` in tile `src` to `dst_addr` in tile
/// `dst`, hop by hop through RELAY buffers, each hop its own epoch.
fn route_block(
    runner: &mut EpochRunner,
    mesh: &Mesh,
    src: usize,
    dst: usize,
    src_addr: u16,
    dst_addr: u16,
    words: u16,
) {
    let route = plan_route(mesh, src, dst).unwrap();
    for (i, hop) in route.hops.iter().enumerate() {
        let from_addr = if i == 0 { src_addr } else { RELAY };
        let to_addr = if i + 1 == route.hops.len() {
            dst_addr
        } else {
            RELAY
        };
        init_copy_vars(
            &mut runner.sim.tiles[hop.from],
            CPVARS,
            from_addr,
            to_addr,
            0,
        );
        runner
            .run_epoch(&Epoch {
                name: format!("route {src}->{dst} hop {i}"),
                links: route.link_config(mesh, i),
                setups: vec![(
                    hop.from,
                    TileSetup {
                        program: Some(copy_program(words, false, CPVARS)),
                        data_patches: vec![],
                    },
                )],
                budget: 100_000,
            })
            .expect("hop runs");
    }
}

#[test]
fn sixty_four_point_fft_with_multihop_exchange() {
    let plan = FftPlan::new(N, M).unwrap();
    assert_eq!(plan.rows(), ROWS);
    assert_eq!(plan.cross_stages(), 2);
    // Stage 0 partners are two rows apart: genuinely non-adjacent.
    assert_eq!(plan.exchange_partner(0, 0), Some(2));
    assert_eq!(plan.exchange_partner(1, 0), Some(1));

    let signal: Vec<Cf64> = (0..N)
        .map(|i| Cf64::new((i as f64 * 0.21).sin(), (i as f64 * 0.55).cos() * 0.7))
        .collect();
    let input: Vec<Cfx> = signal.iter().map(|&c| Cfx::from_c(c)).collect();
    let rows: Vec<Vec<Cfx>> = input.chunks(M).map(|c| c.to_vec()).collect();

    let mesh = Mesh::new(ROWS, 1);
    let mut sim = ArraySim::new(mesh);
    load_rows(&mut sim, &rows);
    let cost = CostModel::with_link_cost(150.0);
    let mut runner = EpochRunner::new(sim, cost);
    let half_words = M as u16; // M/2 complex = M words

    // ---------------- Stage 0: span-2 pairs (0,2) and (1,3). -------------
    for (r, q) in [(0usize, 2usize), (1usize, 3usize)] {
        // Upper tile r computes tops i < M/2 (needs q's first half);
        // lower tile q computes i >= M/2 (needs r's second half).
        route_block(&mut runner, &mesh, q, r, 0, RECV, half_words);
        route_block(&mut runner, &mesh, r, q, half_words, RECV, half_words);
        let tops_r: Vec<usize> = (0..M / 2).map(|i| r * M + i).collect();
        let tops_q: Vec<usize> = (M / 2..M).map(|i| r * M + i).collect();
        load_twiddles(&mut runner.sim, r, 0, &tops_r);
        load_twiddles(&mut runner.sim, q, 0, &tops_q);
        // Compute with LOCAL outputs: tops stay in place on r; q's bottoms
        // stay in place on q; the other halves land in OUT_BOT and are
        // routed back afterwards.
        runner
            .run_epoch(&Epoch {
                name: format!("BF0 pair ({r},{q})"),
                links: mesh.disconnected(),
                setups: vec![
                    (
                        r,
                        TileSetup {
                            // a = own first half, b = received; top -> own x,
                            // bottom -> OUT_BOT (belongs to q's first half).
                            program: Some(cross_bf_local_program(M, M / 2, 0, RECV, 0, OUT_BOT)),
                            data_patches: vec![],
                        },
                    ),
                    (
                        q,
                        TileSetup {
                            // a = received (r's second half), b = own second
                            // half; top -> OUT_BOT (belongs to r), bottom in
                            // place.
                            program: Some(cross_bf_local_program(
                                M,
                                M / 2,
                                RECV,
                                half_words,
                                OUT_BOT,
                                half_words,
                            )),
                            data_patches: vec![],
                        },
                    ),
                ],
                budget: 100_000,
            })
            .expect("cross stage 0 runs");
        // Write-back: r's OUT_BOT -> q's first half; q's OUT_BOT -> r's
        // second half.
        route_block(&mut runner, &mesh, r, q, OUT_BOT, 0, half_words);
        route_block(&mut runner, &mesh, q, r, OUT_BOT, half_words, half_words);
    }

    // ---------------- Stage 1: span-1 pairs (0,1) and (2,3). -------------
    use remorph::fabric::Direction;
    for (r, q) in [(0usize, 1usize), (2usize, 3usize)] {
        init_copy_vars(&mut runner.sim.tiles[r], CPVARS, half_words, RECV, 0);
        init_copy_vars(&mut runner.sim.tiles[q], CPVARS, 0, RECV, 0);
        let links = mesh
            .disconnected()
            .with(r, Direction::South)
            .with(q, Direction::North);
        let vcp = copy_program(half_words, false, CPVARS);
        runner
            .run_epoch(&Epoch {
                name: format!("vcp pair ({r},{q})"),
                links: links.clone(),
                setups: vec![
                    (
                        r,
                        TileSetup {
                            program: Some(vcp.clone()),
                            data_patches: vec![],
                        },
                    ),
                    (
                        q,
                        TileSetup {
                            program: Some(vcp.clone()),
                            data_patches: vec![],
                        },
                    ),
                ],
                budget: 100_000,
            })
            .expect("vcp runs");
        let tops_r: Vec<usize> = (0..M / 2).map(|i| r * M + i).collect();
        let tops_q: Vec<usize> = (M / 2..M).map(|i| r * M + i).collect();
        load_twiddles(&mut runner.sim, r, 1, &tops_r);
        load_twiddles(&mut runner.sim, q, 1, &tops_q);
        runner
            .run_epoch(&Epoch {
                name: format!("BF1 pair ({r},{q})"),
                links,
                setups: vec![
                    (
                        r,
                        TileSetup {
                            program: Some(cross_bf_program(M, M / 2, 0, RECV, 0, true)),
                            data_patches: vec![],
                        },
                    ),
                    (
                        q,
                        TileSetup {
                            program: Some(cross_bf_program(
                                M,
                                M / 2,
                                half_words,
                                RECV,
                                half_words,
                                false,
                            )),
                            data_patches: vec![],
                        },
                    ),
                ],
                budget: 100_000,
            })
            .expect("cross stage 1 runs");
    }

    // ---------------- Stages 2..5: tile-local. ----------------------------
    for s in 2..plan.stages() {
        let h = N >> (s + 1);
        for t in 0..ROWS {
            let tops: Vec<usize> = (t * M..(t + 1) * M).filter(|g| g % (2 * h) < h).collect();
            load_twiddles(&mut runner.sim, t, s, &tops);
        }
        let prog = bf_program(M, h);
        runner
            .run_epoch(&Epoch {
                name: format!("BF{s} local"),
                links: mesh.disconnected(),
                setups: (0..ROWS)
                    .map(|t| {
                        (
                            t,
                            TileSetup {
                                program: Some(prog.clone()),
                                data_patches: vec![],
                            },
                        )
                    })
                    .collect(),
                budget: 100_000,
            })
            .expect("local stage runs");
    }

    // ---------------- Gather and compare. ---------------------------------
    let mut flat = Vec::new();
    for t in 0..ROWS {
        flat.extend(read_row(&runner.sim, t));
    }
    let bits = N.trailing_zeros();
    let mut got = vec![Cfx::default(); N];
    for (g, v) in flat.iter().enumerate() {
        got[bit_reverse(g, bits)] = *v;
    }
    let (want, _) = run_partitioned(plan, &input).unwrap();
    assert_eq!(got, want, "multi-hop execution must be bit-exact");

    let mut oracle = signal.clone();
    fft(&mut oracle);
    let err = remorph::kernels::fft::fixed::relative_error(&got, &oracle);
    assert!(err < 1e-4, "relative error {err}");
}
