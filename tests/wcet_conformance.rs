//! WCET conformance: the static Eq. 1 bound from `cgra-verify` must
//! dominate what the cycle-driven simulator actually observes, epoch by
//! epoch and in total, on the paper's two evaluation kernels.
//!
//! Every kernel program is branch-deterministic, so the check is tight:
//! the static `[best, worst]` interval must *contain* the observed
//! value, the reconfiguration charge must match the simulator's to
//! floating-point noise, and race-free schedules must replay with
//! bit-identical per-epoch reports.

use remorph::explore::fft_column_schedule;
use remorph::explore::jpeg_block_schedule;
use remorph::fabric::{CostModel, Mesh};
use remorph::kernels::fft::fixed::Cfx;
use remorph::kernels::fft::partition::FftPlan;
use remorph::kernels::jpeg::quant::QuantTable;
use remorph::sim::{bound_epochs, ArraySim, Epoch, EpochRunner, RunReport};
use remorph::verify::has_errors;

/// Relative tolerance for ns comparisons: the static engine and the
/// simulator compute the same sums in a different order.
const TOL: f64 = 1e-6;

fn probe_input(n: usize) -> Vec<Cfx> {
    (0..n)
        .map(|i| Cfx::from_f64((i as f64 * 0.13).sin() * 0.5, (i as f64 * 0.71).cos() * 0.5))
        .collect()
}

fn simulate(mesh: Mesh, cost: &CostModel, epochs: &[Epoch]) -> RunReport {
    let mut runner = EpochRunner::new(ArraySim::new(mesh), *cost);
    runner.run_schedule(epochs).expect("schedule runs clean")
}

/// The shared conformance check: static bound vs. observed run.
fn check_conformance(label: &str, mesh: Mesh, cost: &CostModel, epochs: &[Epoch]) {
    let bound = bound_epochs(mesh, cost, epochs);
    assert!(
        !has_errors(&bound.diags),
        "{label}: static analysis must pass: {:?}",
        bound.diags
    );
    assert!(
        bound.is_bounded(),
        "{label}: every kernel epoch must bound statically"
    );

    let report = simulate(mesh, cost, epochs);
    assert_eq!(bound.epochs.len(), report.epochs.len());
    for (i, (b, o)) in bound.epochs.iter().zip(&report.epochs).enumerate() {
        assert_eq!(b.name, o.name, "{label}: epoch {i} order");
        let c = b.compute_ns(cost);
        assert!(
            c.contains(o.compute_ns, TOL),
            "{label}: epoch {i} '{}': observed compute {} ns outside static {:?}",
            o.name,
            o.compute_ns,
            c
        );
        assert!(
            (b.reconfig_ns - o.reconfig_ns).abs() <= TOL * (1.0 + o.reconfig_ns.abs()),
            "{label}: epoch {i} '{}': static reconfig {} ns != observed {} ns",
            o.name,
            b.reconfig_ns,
            o.reconfig_ns
        );
        assert!(
            b.copied_words.contains(o.words_copied),
            "{label}: epoch {i} '{}': observed {} copied words outside static {:?}",
            o.name,
            o.words_copied,
            b.copied_words
        );
    }

    // Eq. 1 totals: the static interval contains the observed runtime,
    // i.e. the worst case dominates and the best case never overshoots.
    let total = bound.total_ns();
    assert!(
        total.contains(report.total_ns(), TOL),
        "{label}: observed Eq. 1 runtime {} ns outside static {:?}",
        report.total_ns(),
        total
    );
    assert!(
        total
            .worst
            .expect("bounded schedules have a finite worst case")
            + TOL
            >= report.total_ns(),
        "{label}: static worst case must dominate the observed runtime"
    );

    // Race-free schedules replay deterministically: a fresh array run
    // over the same epochs produces bit-identical per-epoch accounting.
    let replay = simulate(mesh, cost, epochs);
    assert_eq!(
        report.epochs, replay.epochs,
        "{label}: replay must be deterministic"
    );
}

#[test]
fn fft64_static_bound_dominates_simulation() {
    let plan = FftPlan::new(64, 16).expect("valid plan");
    let (mesh, epochs) = fft_column_schedule(&plan, &probe_input(64));
    check_conformance("FFT-64", mesh, &CostModel::default(), &epochs);
}

#[test]
fn fft1024_static_bound_dominates_simulation() {
    let plan = FftPlan::paper_1024();
    let (mesh, epochs) = fft_column_schedule(&plan, &probe_input(1024));
    check_conformance("FFT-1024", mesh, &CostModel::with_link_cost(25.0), &epochs);
}

#[test]
fn jpeg_block_static_bound_dominates_simulation() {
    let block: [u8; 64] = std::array::from_fn(|i| (i * 3 % 256) as u8);
    let (mesh, epochs) = jpeg_block_schedule(&block, &QuantTable::luma(75));
    check_conformance("JPEG 1x3", mesh, &CostModel::default(), &epochs);
}
