//! Lint → fix → re-verify → replay roundtrips.
//!
//! Three layers of evidence that the `cgra-lint` reconfiguration-diff
//! minimizer is sound:
//!
//! 1. a seeded schedule with a fully redundant re-patch loses exactly
//!    those words, re-verifies clean and replays bit-exact with a
//!    strictly smaller Eq. 1 reconfiguration term,
//! 2. a seeded live-word clobber is denied by the pass *and* rejected by
//!    the `EpochRunner` strict gate before anything executes,
//! 3. the paper's two evaluation schedules (FFT-1024 and the streaming
//!    JPEG pipeline) survive the same roundtrip, and the PR 2 WCET
//!    engine still bounds the minimized schedules.

use remorph::explore::{
    fft_column_schedule, jpeg_probe_blocks, jpeg_stream_schedule, minimize_schedule,
};
use remorph::fabric::{CostModel, DataPatch, LinkConfig, Mesh, Word, DATA_WORDS};
use remorph::isa::ops::d;
use remorph::isa::{Instr, ProgramBuilder};
use remorph::kernels::fft::fixed::Cfx;
use remorph::kernels::fft::partition::FftPlan;
use remorph::kernels::jpeg::quant::QuantTable;
use remorph::lint::LintLevels;
use remorph::sim::{
    apply_lint_fixes, bound_epochs, lint_epochs, verify_epochs, ArraySim, Epoch, EpochRunner,
    TileSetup, VerifyMode,
};
use remorph::verify::{has_errors, Code};

const TOL: f64 = 1e-6;

/// Runs a schedule and returns `(Eq. 1 reconfig ns, compute ns, every
/// tile's final data-memory image)`.
fn simulate(mesh: Mesh, epochs: &[Epoch], cost: &CostModel) -> (f64, f64, Vec<Vec<i64>>) {
    let mut runner = EpochRunner::new(ArraySim::new(mesh), *cost);
    let report = runner.run_schedule(epochs).expect("schedule runs clean");
    let mems = (0..mesh.tiles())
        .map(|t| {
            (0..DATA_WORDS)
                .map(|a| runner.sim.tiles[t].dmem.peek(a).expect("in range").value())
                .collect()
        })
        .collect();
    (report.total_reconfig_ns(), report.total_compute_ns(), mems)
}

/// The full roundtrip on one schedule: lint, fix, re-verify, replay,
/// compare. Returns the number of removed words.
fn roundtrip(label: &str, mesh: Mesh, epochs: &[Epoch], cost: &CostModel) -> usize {
    assert!(
        !has_errors(&verify_epochs(mesh, epochs)),
        "{label}: baseline must verify clean"
    );
    let (pre_tau, pre_compute, pre_mem) = simulate(mesh, epochs, cost);

    let mut fixed = epochs.to_vec();
    let report = minimize_schedule(mesh, &mut fixed, cost);
    assert!(
        !report.removals.is_empty(),
        "{label}: the seeded redundancy must be found"
    );
    assert!(report.saved_ns() > 0.0);
    assert!(
        !has_errors(&verify_epochs(mesh, &fixed)),
        "{label}: fixed schedule must verify clean"
    );

    let (post_tau, post_compute, post_mem) = simulate(mesh, &fixed, cost);
    assert_eq!(pre_mem, post_mem, "{label}: replay must be bit-exact");
    assert!(
        (pre_compute - post_compute).abs() < TOL,
        "{label}: the fix must not change compute time"
    );
    assert!(
        post_tau < pre_tau,
        "{label}: reconfiguration time must strictly drop"
    );
    assert!(
        (pre_tau - post_tau - report.saved_ns()).abs() < TOL,
        "{label}: measured drop {} ns must match predicted {} ns",
        pre_tau - post_tau,
        report.saved_ns()
    );

    // A second lint of the fixed schedule claims nothing further.
    let again = lint_epochs(mesh, &fixed, &LintLevels::new(), cost);
    assert!(
        again.removals.is_empty(),
        "{label}: minimization must be idempotent"
    );
    report.removals.len()
}

/// Reads `d[base..base+n]` into scratch space and halts.
fn reader(base: u16, n: u16) -> Vec<Instr> {
    let mut p = ProgramBuilder::new();
    for i in 0..n {
        p.mov(d(100 + i), d(base + i));
    }
    p.halt();
    p.build().expect("reader is valid")
}

fn patch(base: usize, vals: &[i64]) -> DataPatch {
    DataPatch::new(base, vals.iter().map(|&v| Word::wrap(v)).collect())
}

fn one_tile_epoch(name: &str, links: &LinkConfig, setup: TileSetup) -> Epoch {
    Epoch {
        name: name.to_string(),
        links: links.clone(),
        setups: vec![(0, setup)],
        budget: 256,
    }
}

#[test]
fn seeded_redundant_repatch_is_removed_and_replays_bit_exact() {
    let mesh = Mesh::new(1, 1);
    let links = mesh.disconnected();
    let epochs = vec![
        one_tile_epoch(
            "load",
            &links,
            TileSetup {
                program: Some(reader(0, 4)),
                data_patches: vec![patch(0, &[11, 22, 33, 44])],
            },
        ),
        // Re-sends the same four words the memory still provably holds,
        // then reads them again: classic naive per-iteration table send.
        one_tile_epoch(
            "resend",
            &links,
            TileSetup {
                program: Some(reader(0, 4)),
                data_patches: vec![patch(0, &[11, 22, 33, 44])],
            },
        ),
    ];

    let cost = CostModel::default();
    let report = lint_epochs(mesh, &epochs, &LintLevels::new(), &cost);
    assert_eq!(report.count(Code::RedundantPatch), 1, "{:#?}", report.diags);
    assert!(!report.denied());
    assert_eq!(report.removals.len(), 4);

    let removed = roundtrip("seeded-redundant", mesh, &epochs, &cost);
    assert_eq!(removed, 4);

    // The fixed second epoch carries no data patch at all any more.
    let mut fixed = epochs.clone();
    apply_lint_fixes(&mut fixed, &report);
    assert!(fixed[1].setups[0].1.data_patches.is_empty());
    assert_eq!(
        fixed[0].setups[0].1.data_patches,
        epochs[0].setups[0].1.data_patches
    );
}

#[test]
fn seeded_live_word_clobber_is_denied_and_gated() {
    let mesh = Mesh::new(1, 1);
    let links = mesh.disconnected();
    let mut p = ProgramBuilder::new();
    p.ldi(d(5), 7);
    p.halt();
    let writer = p.build().expect("writer is valid");
    let epochs = vec![
        one_tile_epoch(
            "compute",
            &links,
            TileSetup {
                program: Some(writer),
                data_patches: vec![],
            },
        ),
        // The switch patches over the freshly computed d[5] before any
        // program consumed it: a live-word clobber, deny by default.
        one_tile_epoch(
            "switch",
            &links,
            TileSetup {
                program: Some(vec![Instr::Halt]),
                data_patches: vec![patch(5, &[9])],
            },
        ),
    ];

    let cost = CostModel::default();
    let report = lint_epochs(mesh, &epochs, &LintLevels::new(), &cost);
    assert!(report.denied(), "{:#?}", report.diags);
    assert_eq!(report.count(Code::ClobberByPatch), 1);
    let diag = report
        .diags
        .iter()
        .find(|d| d.code == Code::ClobberByPatch)
        .expect("clobber diagnostic present");
    assert!(diag.message.contains("epoch 0"), "{}", diag.message);
    assert!(report.removals.is_empty(), "a clobber is never auto-fixed");

    // The strict EpochRunner gate refuses to execute it (forced on, so
    // the check also holds under the release test profile).
    let mut sim = ArraySim::new(mesh);
    sim.verify = VerifyMode::Strict;
    let mut runner = EpochRunner::new(sim, cost);
    assert!(
        runner.run_schedule(&epochs).is_err(),
        "strict mode must reject a schedule with deny-level lint findings"
    );
}

fn probe_input(n: usize) -> Vec<Cfx> {
    (0..n)
        .map(|i| Cfx::from_f64((i as f64 * 0.13).sin() * 0.5, (i as f64 * 0.71).cos() * 0.5))
        .collect()
}

/// WCET containment on a minimized schedule: the PR 2 static bound must
/// still be error-free, finite, and contain the observed Eq. 1 runtime.
fn assert_wcet_contains(label: &str, mesh: Mesh, epochs: &[Epoch], cost: &CostModel) {
    let bound = bound_epochs(mesh, cost, epochs);
    assert!(!has_errors(&bound.diags), "{label}: {:?}", bound.diags);
    assert!(bound.is_bounded(), "{label}: minimized schedule must bound");
    let mut runner = EpochRunner::new(ArraySim::new(mesh), *cost);
    let report = runner.run_schedule(epochs).expect("schedule runs clean");
    assert!(
        bound.total_ns().contains(report.total_ns(), TOL),
        "{label}: observed {} ns outside static {:?}",
        report.total_ns(),
        bound.total_ns()
    );
}

#[test]
fn fft1024_fix_roundtrip_and_wcet_containment() {
    let plan = FftPlan::new(1024, 128).expect("1024-point plan");
    let (mesh, epochs) = fft_column_schedule(&plan, &probe_input(1024));
    let cost = CostModel::default();
    let removed = roundtrip("FFT-1024", mesh, &epochs, &cost);
    assert!(removed > 0);

    let mut fixed = epochs.clone();
    minimize_schedule(mesh, &mut fixed, &cost);
    assert_wcet_contains("FFT-1024", mesh, &fixed, &cost);
}

#[test]
fn jpeg_stream_fix_roundtrip_and_wcet_containment() {
    let (mesh, epochs) = jpeg_stream_schedule(&jpeg_probe_blocks(), &QuantTable::luma(75));
    let cost = CostModel::default();
    let removed = roundtrip("JPEG stream", mesh, &epochs, &cost);
    // The naive block-0 table re-send after the warm-up epoch is fully
    // provable: both constant tables plus the scale words.
    assert!(
        removed >= 64,
        "expected the COS table at minimum, got {removed}"
    );

    let mut fixed = epochs.clone();
    minimize_schedule(mesh, &mut fixed, &cost);
    assert_wcet_contains("JPEG stream", mesh, &fixed, &cost);
}
