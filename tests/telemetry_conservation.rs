//! Counter-conservation gate: runs every example schedule with a
//! telemetry recorder attached and checks that the event stream is
//! internally consistent (the invariants `conservation_violations`
//! enforces) and that the folded [`Counters`] registry agrees with the
//! simulator's own per-tile statistics — words sent == words received,
//! busy/stall cycles match, every epoch observed.

use remorph::explore::{build_example_schedule, EXAMPLE_SCHEDULES};
use remorph::fabric::CostModel;
use remorph::sim::{ArraySim, EpochRunner, Recorder};
use remorph::telemetry::{conservation_violations, Counters, Event};

/// Runs `name` with a recorder attached, returning the runner (for its
/// simulator stats) and the recorded event stream.
fn run_recorded(name: &str) -> (EpochRunner, Vec<Event>) {
    let (mesh, epochs) = build_example_schedule(name).expect("known example schedule");
    let mut sim = ArraySim::new(mesh);
    let recorder = Recorder::new();
    sim.attach_sink(Box::new(recorder.clone()));
    let mut runner = EpochRunner::new(sim, CostModel::default());
    runner.run_schedule(&epochs).expect("schedule runs");
    runner.sim.detach_sink();
    (runner, recorder.events())
}

#[test]
fn every_example_schedule_conserves() {
    for name in EXAMPLE_SCHEDULES {
        let (_, events) = run_recorded(name);
        let violations = conservation_violations(&events);
        assert!(
            violations.is_empty(),
            "{name}: conservation violations:\n{}",
            violations.join("\n")
        );
    }
}

#[test]
fn counters_match_simulator_statistics() {
    for name in EXAMPLE_SCHEDULES {
        let (runner, events) = run_recorded(name);
        let c = Counters::from_events(&events);
        assert_eq!(
            c.tiles.len(),
            runner.sim.stats.len(),
            "{name}: every tile has a counter row"
        );
        for (t, stats) in runner.sim.stats.iter().enumerate() {
            let tc = &c.tiles[t];
            assert_eq!(tc.busy, stats.busy_cycles, "{name} tile {t}: busy cycles");
            assert_eq!(
                tc.stalled, stats.reconfig_cycles,
                "{name} tile {t}: reconfiguration stall cycles"
            );
            assert_eq!(
                tc.words_sent, stats.words_sent,
                "{name} tile {t}: words sent"
            );
            assert_eq!(
                tc.words_received, stats.words_received,
                "{name} tile {t}: words received"
            );
        }
        assert_eq!(
            c.total_words_sent(),
            c.total_words_received(),
            "{name}: every word sent over a link must land"
        );
        assert_eq!(
            c.epoch_cycles, runner.sim.now,
            "{name}: epoch spans cover the whole run"
        );
    }
}

#[test]
fn counters_count_every_epoch() {
    for name in EXAMPLE_SCHEDULES {
        let (_, events) = run_recorded(name);
        let c = Counters::from_events(&events);
        let begins = events
            .iter()
            .filter(|e| matches!(e, Event::EpochBegin { .. }))
            .count() as u64;
        assert_eq!(c.epochs, begins, "{name}: every begun epoch completed");
        assert!(c.epochs > 0, "{name}: schedule is non-trivial");
    }
}

#[test]
fn link_matrix_agrees_with_tile_totals() {
    for name in EXAMPLE_SCHEDULES {
        let (_, events) = run_recorded(name);
        let c = Counters::from_events(&events);
        let link_total: u64 = c.links.values().sum();
        assert_eq!(
            link_total,
            c.total_words_sent(),
            "{name}: per-link matrix sums to the global traffic total"
        );
        for ((from, to), words) in &c.links {
            assert_ne!(from, to, "{name}: no tile sends to itself");
            assert!(*words > 0, "{name}: link rows are only created by traffic");
        }
    }
}
