//! Integration: a *concurrently executing* two-stage pipeline on the
//! array — producer and consumer tiles run simultaneously, synchronized
//! through flag words written over the links (double-buffered), exactly
//! how a streaming application uses the fabric. The measured steady-state
//! interval must match the pipeline model's `max(stage times)` — not the
//! serial `sum` — demonstrating that the fabric really overlaps the
//! stages.

use remorph::fabric::{Direction, Mesh, Word};
use remorph::isa::ops::{at_off, d, imm, rem_off};
use remorph::isa::{encode_program, ProgramBuilder};
use remorph::sim::ArraySim;

const UNITS: i32 = 40;
const WORDS_PER_UNIT: u16 = 8;
// Consumer-side addresses.
const DATA: u16 = 100; // two slots of 8 words: 100..108, 108..116
const FLAG: u16 = 200; // producer writes the unit id here
                       // Producer-side address written by the consumer.
const ACK: u16 = 201;

/// Producer: per unit, burn `work` cycles, wait for slot credit, ship the
/// unit into the consumer's slot, post the flag.
fn producer(work: i32) -> Vec<u128> {
    let (unit, t, ctr) = (d(300), d(301), d(302));
    let mut p = ProgramBuilder::new();
    p.ldi(unit, 0);
    let next_unit = p.here_label();
    let finished = p.label();
    p.add(unit, unit, imm(1));
    p.sub(t, unit, imm(UNITS as i16));
    let go = p.label();
    p.bneg(t, go);
    p.bnz(t, finished); // unit > UNITS (never happens) — safety
    p.bind(go);
    // Compute phase.
    p.ldi(ctr, work);
    let spin = p.here_label();
    p.djnz(ctr, spin);
    // Flow control: wait until ACK >= unit - 2 (slot free).
    let wait = p.here_label();
    p.sub(t, d(ACK), unit);
    p.add(t, t, imm(2));
    p.bneg(t, wait);
    // Ship 8 words into slot (unit & 1).
    p.and(t, unit, imm(1));
    p.shl(t, t, imm(3));
    p.ldi(d(303), DATA as i32);
    p.add(t, t, d(303));
    p.ldar_mem(1, t); // a1 = consumer slot base
    for k in 0..WORDS_PER_UNIT as u8 {
        // payload: unit * 10 + k
        p.mul(d(304), unit, imm(10), 0);
        p.add(d(304), d(304), imm(k as i16));
        p.mov(rem_off(1, k), d(304));
    }
    // Post the flag.
    p.ldar(2, FLAG);
    p.mov(rem_off(2, 0), unit);
    // Loop until all units shipped.
    p.sub(t, unit, imm(UNITS as i16));
    p.bneg(t, next_unit);
    p.bind(finished);
    p.halt();
    encode_program(&p.build().expect("producer assembles"))
}

/// Consumer: per unit, wait for the flag, checksum the slot while burning
/// `work` cycles, post the ack.
fn consumer(work: i32) -> Vec<u128> {
    let (unit, t, ctr, sum) = (d(300), d(301), d(302), d(310));
    let mut p = ProgramBuilder::new();
    p.ldi(unit, 0);
    p.ldi(sum, 0);
    let next_unit = p.here_label();
    let finished = p.label();
    p.add(unit, unit, imm(1));
    // Wait for FLAG >= unit.
    let wait = p.here_label();
    p.sub(t, d(FLAG), unit);
    p.bneg(t, wait);
    // Read the slot: checksum.
    p.and(t, unit, imm(1));
    p.shl(t, t, imm(3));
    p.ldi(d(303), DATA as i32);
    p.add(t, t, d(303));
    p.ldar_mem(0, t);
    for k in 0..WORDS_PER_UNIT as u8 {
        p.add(sum, sum, at_off(0, k));
    }
    // Process phase.
    p.ldi(ctr, work);
    let spin = p.here_label();
    p.djnz(ctr, spin);
    // Ack.
    p.ldar(2, ACK);
    p.mov(rem_off(2, 0), unit);
    p.sub(t, unit, imm(UNITS as i16));
    p.bneg(t, next_unit);
    p.bind(finished);
    p.halt();
    encode_program(&p.build().expect("consumer assembles"))
}

fn run_stream(prod_work: i32, cons_work: i32) -> (u64, i64) {
    let mesh = Mesh::new(1, 2);
    let mut sim = ArraySim::new(mesh);
    // Producer -> East, consumer -> West: both outgoing links live at once.
    sim.set_links(
        mesh.disconnected()
            .with(0, Direction::East)
            .with(1, Direction::West),
    )
    .unwrap();
    // Prime the credit so the first two units flow immediately.
    sim.tiles[0].dmem.poke(ACK as usize, Word::ZERO).unwrap();
    sim.load_program(0, &producer(prod_work)).unwrap();
    sim.load_program(1, &consumer(cons_work)).unwrap();
    let cycles = sim.run_until_quiesced(10_000_000).unwrap();
    let sum = sim.tiles[1].dmem.peek(310).unwrap().value();
    (cycles, sum)
}

fn expected_checksum() -> i64 {
    (1..=UNITS as i64)
        .map(|u| (0..WORDS_PER_UNIT as i64).map(|k| u * 10 + k).sum::<i64>())
        .sum()
}

#[test]
fn all_units_arrive_intact() {
    let (_, sum) = run_stream(200, 200);
    assert_eq!(sum, expected_checksum());
}

#[test]
fn stages_overlap_interval_is_max_not_sum() {
    // Balanced stages: if the fabric pipelines, total ~ UNITS * stage;
    // if it serialized, total ~ UNITS * 2 * stage.
    let work = 600i32;
    let (cycles, sum) = run_stream(work, work);
    assert_eq!(sum, expected_checksum());
    let per_unit = cycles as f64 / UNITS as f64;
    let stage = work as f64; // dominant cost per stage
    assert!(
        per_unit < 1.45 * stage,
        "no overlap: {per_unit:.0} cycles/unit vs stage {stage}"
    );
    assert!(per_unit > 0.95 * stage, "impossibly fast: {per_unit:.0}");
}

#[test]
fn bottleneck_stage_sets_the_interval() {
    // Slow consumer: the producer must throttle to the consumer's pace.
    let (slow_cons, sum1) = run_stream(100, 900);
    assert_eq!(sum1, expected_checksum());
    // Slow producer: same bottleneck magnitude on the other side.
    let (slow_prod, sum2) = run_stream(900, 100);
    assert_eq!(sum2, expected_checksum());
    let per1 = slow_cons as f64 / UNITS as f64;
    let per2 = slow_prod as f64 / UNITS as f64;
    // Both are bottlenecked near 900+overhead cycles per unit.
    assert!((per1 / per2 - 1.0).abs() < 0.25, "{per1} vs {per2}");
    assert!(per1 > 900.0 && per1 < 1500.0, "{per1}");
}

#[test]
fn matches_pipeline_model_prediction() {
    use remorph::fabric::CostModel;
    use remorph::map::{evaluate, Assignment, ProcessNetwork, ProcessSpec, TileLoad};

    // Model the same two stages as a process network; the analytic
    // interval must predict the measured steady state within overheads.
    let work = 800u64;
    let overhead = 60; // handshake + copy instructions per unit (approx)
    let net = ProcessNetwork::new(vec![
        ProcessSpec::new("produce", 40, 0, 0, 0, work + overhead),
        ProcessSpec::new("consume", 40, 0, 0, 0, work + overhead),
    ]);
    let asg = Assignment {
        loads: vec![TileLoad::run(0, 0), TileLoad::run(1, 1)],
    };
    let cost = CostModel::default();
    let predicted_interval = evaluate(&net, &asg, &cost).interval_ns / cost.cycle_ns();

    let (cycles, _) = run_stream(work as i32, work as i32);
    let measured = cycles as f64 / UNITS as f64;
    let ratio = measured / predicted_interval;
    assert!(
        (0.8..1.25).contains(&ratio),
        "measured {measured:.0} vs predicted {predicted_interval:.0} (ratio {ratio:.2})"
    );
}
