//! Determinism gate for the parallel cached DSE engine: the ranked
//! frontier `cgra-explore` reports must be **byte-identical** across
//! worker counts, across cold and warm caches, against the naive
//! serial reference path, and after a poisoned (stale) cache entry is
//! detected and repaired. A sweep whose answer depends on thread
//! scheduling or cache state is not an optimization — it is a
//! different sweep.

use remorph::explore::{run_sweep, run_sweep_naive, EngineConfig, SimCache, SweepSpec, Workload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("remorph-dse-{tag}-{}-{n}", std::process::id()))
}

fn small_spec() -> SweepSpec {
    SweepSpec {
        workload: Workload::Fft64,
        link_costs_ns: vec![0.0, 400.0],
    }
}

fn cfg(jobs: usize) -> EngineConfig {
    EngineConfig {
        jobs,
        frontier: 3,
        prune: true,
    }
}

#[test]
fn frontier_is_identical_across_jobs() {
    let spec = small_spec();
    let mut renders = Vec::new();
    for jobs in [1, 2, 4] {
        let cache = SimCache::in_memory();
        let out = run_sweep(&spec, &cfg(jobs), &cache).expect("sweep runs");
        assert!(
            out.conservation_violations().is_empty(),
            "jobs={jobs}: {:?}",
            out.conservation_violations()
        );
        renders.push((jobs, out.render_frontier()));
    }
    let (_, reference) = &renders[0];
    for (jobs, r) in &renders[1..] {
        assert_eq!(r, reference, "--jobs {jobs} changed the frontier");
    }
}

#[test]
fn warm_cache_matches_cold_byte_for_byte() {
    let dir = tmp_dir("warm");
    let spec = small_spec();

    let cold_cache = SimCache::at_dir(&dir).expect("cache dir");
    let cold = run_sweep(&spec, &cfg(2), &cold_cache).expect("cold sweep");
    assert_eq!(cold.stats.total.cache_hits, 0, "cold cache cannot hit");
    assert_eq!(cold.stats.total.simulated, 3);

    // A fresh SimCache instance over the same directory: the memory
    // tier is empty, so every hit below is served from disk.
    let warm_cache = SimCache::at_dir(&dir).expect("cache dir");
    let warm = run_sweep(&spec, &cfg(4), &warm_cache).expect("warm sweep");
    assert_eq!(warm.stats.total.simulated, 0, "warm frontier re-simulated");
    assert_eq!(warm.stats.total.cache_hits, 3);
    assert!(warm.stats.hit_rate() > 0.99);
    assert!(warm.conservation_violations().is_empty());

    assert_eq!(
        cold.render_frontier(),
        warm.render_frontier(),
        "disk round-trip changed the frontier"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_matches_naive_serial_reference() {
    let spec = small_spec();
    let cache = SimCache::in_memory();
    let engine = run_sweep(&spec, &cfg(4), &cache).expect("engine sweep");
    let naive = run_sweep_naive(&spec, 3).expect("naive sweep");
    assert_eq!(
        engine.render_frontier(),
        naive.render_frontier(),
        "the engine's pruned, cached, sharded path must reproduce the \
         simulate-everything serial reference exactly"
    );
    // The engine did strictly less simulation to get there.
    assert!(engine.stats.total.simulated < naive.stats.total.simulated);
    assert!(naive.conservation_violations().is_empty());
}

#[test]
fn poisoned_cache_entry_is_detected_and_resimulated() {
    let dir = tmp_dir("poison");
    let spec = small_spec();

    let cache = SimCache::at_dir(&dir).expect("cache dir");
    let cold = run_sweep(&spec, &cfg(1), &cache).expect("cold sweep");
    assert_eq!(cold.stats.total.poisoned, 0);

    // Corrupt every persisted entry in place: same file names (so the
    // lookups find them), garbage content (so the recorded-hash check
    // rejects them).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("cache dir readable") {
        let path = entry.expect("dir entry").path();
        std::fs::write(&path, "{\"schedule_hash\": \"feedfacefeedface\"}").expect("writable");
        corrupted += 1;
    }
    assert_eq!(corrupted, 3, "cold sweep persisted its frontier");

    // Fresh instance over the tampered directory: every lookup must
    // come back Poisoned, re-simulate, and still report the same
    // frontier.
    let tampered = SimCache::at_dir(&dir).expect("cache dir");
    let repaired = run_sweep(&spec, &cfg(2), &tampered).expect("repair sweep");
    assert_eq!(repaired.stats.total.poisoned, 3, "tampering went unnoticed");
    assert_eq!(repaired.stats.total.cache_hits, 0);
    assert_eq!(repaired.stats.total.simulated, 3);
    assert!(repaired.conservation_violations().is_empty());
    assert_eq!(
        cold.render_frontier(),
        repaired.render_frontier(),
        "re-simulation after poisoning changed the frontier"
    );

    // The repair also healed the cache: a third pass hits cleanly.
    let healed = SimCache::at_dir(&dir).expect("cache dir");
    let warm = run_sweep(&spec, &cfg(1), &healed).expect("healed sweep");
    assert_eq!(warm.stats.total.poisoned, 0);
    assert_eq!(warm.stats.total.cache_hits, 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_prune_simulates_everything_and_agrees_with_pruned_frontier() {
    let spec = small_spec();
    let cache = SimCache::in_memory();
    let pruned = run_sweep(&spec, &cfg(2), &cache).expect("pruned sweep");
    let full = run_sweep(
        &spec,
        &EngineConfig {
            jobs: 2,
            frontier: 3,
            prune: false,
        },
        &SimCache::in_memory(),
    )
    .expect("exhaustive sweep");
    assert_eq!(full.stats.total.pruned, 0);
    assert_eq!(
        full.stats.total.simulated, 10,
        "10 candidates, all simulated"
    );
    assert!(full.conservation_violations().is_empty());
    assert_eq!(
        pruned.render_frontier(),
        full.render_frontier(),
        "pruning changed the reported frontier"
    );
}
