//! Integration: multi-hop copies (Eq. 1 term C). A block produced in one
//! corner of a 3x3 array is consumed in the opposite corner; the route
//! planner emits per-hop epochs (link + copy program) that the simulator
//! executes, and the accounted cost matches the planner's prediction.

use remorph::fabric::{CostModel, Mesh, Word};
use remorph::kernels::fft::programs::{copy_program, init_copy_vars};
use remorph::map::routing::{plan_route, Route};
use remorph::sim::{ArraySim, Epoch, EpochRunner, TileSetup};

const BLOCK_AT: u16 = 0;
const WORDS: u16 = 16;
const CPVARS: u16 = 480;

/// Converts a planned route into an epoch schedule: at each hop the
/// current holder re-copies the block one tile further.
fn route_epochs(mesh: &Mesh, route: &Route) -> Vec<Epoch> {
    route
        .hops
        .iter()
        .enumerate()
        .map(|(i, hop)| Epoch {
            name: format!("hop {i}: {} -> {}", hop.from, hop.to),
            links: route.link_config(mesh, i),
            setups: vec![(
                hop.from,
                TileSetup {
                    program: Some(copy_program(WORDS, false, CPVARS)),
                    data_patches: vec![],
                },
            )],
            budget: 100_000,
        })
        .collect()
}

#[test]
fn corner_to_corner_transfer() {
    let mesh = Mesh::new(3, 3);
    let src = mesh.id(0, 0).unwrap();
    let dst = mesh.id(2, 2).unwrap();
    let route = plan_route(&mesh, src, dst).unwrap();
    assert_eq!(route.len(), 4);

    let mut sim = ArraySim::new(mesh);
    for i in 0..WORDS as usize {
        sim.tiles[src]
            .dmem
            .poke(BLOCK_AT as usize + i, Word::wrap(7000 + i as i64))
            .unwrap();
    }
    // Every hop copies from BLOCK_AT to BLOCK_AT in the next tile.
    for t in 0..mesh.tiles() {
        init_copy_vars(&mut sim.tiles[t], CPVARS, BLOCK_AT, BLOCK_AT, 0);
    }
    let cost = CostModel::with_link_cost(200.0);
    let mut runner = EpochRunner::new(sim, cost);
    let report = runner
        .run_schedule(&route_epochs(&mesh, &route))
        .expect("route executes");

    // Data arrived intact in the opposite corner.
    for i in 0..WORDS as usize {
        assert_eq!(
            runner.sim.tiles[dst]
                .dmem
                .peek(BLOCK_AT as usize + i)
                .unwrap()
                .value(),
            7000 + i as i64
        );
    }
    // Each hop moved exactly the block.
    let total_words: u64 = runner.sim.stats.iter().map(|s| s.words_sent).sum();
    assert_eq!(total_words, route.len() as u64 * WORDS as u64);

    // The planner's cost prediction matches the executed schedule: per
    // hop, one link change (the simulator's accounting also charges
    // clearing the previous hop's link from the second hop on) plus the
    // copy program's measured runtime.
    let copy_ns: f64 = report.epochs[0].compute_ns;
    let predicted = route.cost_ns(&runner.cost, copy_ns);
    let executed_compute: f64 = report.epochs.iter().map(|e| e.compute_ns).sum();
    // Copy time matches exactly; link accounting differs only by the
    // clear-previous-link charges (hops-1 extra links).
    assert!((executed_compute - route.len() as f64 * copy_ns).abs() < 1e-6);
    let executed_links: usize = report.epochs.iter().map(|e| e.links_changed).sum();
    assert_eq!(executed_links, route.len() + (route.len() - 1));
    assert!(predicted <= executed_compute + runner.cost.links_reconfig_ns(executed_links));
}

#[test]
fn intermediate_tiles_keep_computing() {
    // A tile not on the route computes through all the hops.
    let mesh = Mesh::new(3, 3);
    let route = plan_route(&mesh, 0, 8).unwrap();
    let mut sim = ArraySim::new(mesh);
    for t in 0..9 {
        init_copy_vars(&mut sim.tiles[t], CPVARS, BLOCK_AT, BLOCK_AT, 0);
    }
    // Tile 3 (off the row-first route 0->1->2->5->8) runs a counter.
    let spin = remorph::isa::assemble(
        "
            ldi d[0], 2000
    l:      djnz d[0], l
            halt
    ",
    )
    .unwrap();
    sim.load_program(3, &remorph::isa::encode_program(&spin))
        .unwrap();
    let mut runner = EpochRunner::new(sim, CostModel::default());
    runner
        .run_schedule(&route_epochs(&mesh, &route))
        .expect("route executes");
    assert_eq!(runner.sim.stats[3].reconfig_cycles, 0);
    assert!(runner.sim.stats[3].busy_cycles >= 2000);
}
