//! Hoisting soundness: a schedule replayed under a `lint::overlap`
//! hoisting plan must be **bit-exact** with the original run — same
//! final data-memory and instruction-memory images, same per-epoch
//! compute and traffic — with only the Eq. 1 reconfiguration term
//! reduced; and a plan with fabricated certificates must be rejected
//! (L011) by the independent re-verifier before anything executes.
//!
//! The fft-1024 case carries the headline acceptance criterion: the
//! proof-gated hoisting pass must at least halve its reconfiguration
//! time (ISSUE 6), with the hoisted WCET bound still containing the
//! observed runtime.

use remorph::explore::{build_example_schedule, hoist_schedule, minimize_schedule};
use remorph::fabric::CostModel;
use remorph::lint::{hoisted_bound, verify_hoists};
use remorph::sim::{bound_epochs, epoch_spec, ArraySim, EpochRunner};
use remorph::verify::{Code, EpochSpec};

const TOL: f64 = 1e-6;

/// Runs `name` twice — plain and hoisted — and checks the replay is
/// bit-exact. Returns (baseline reconfig ns, hoisted reconfig ns,
/// applied hoists).
fn replay_bit_exact(name: &str) -> (f64, f64, usize) {
    let cost = CostModel::default();
    let (mesh, mut epochs) = build_example_schedule(name).expect("known example");
    minimize_schedule(mesh, &mut epochs, &cost);

    let mut base = EpochRunner::new(ArraySim::new(mesh), cost);
    let base_report = base.run_schedule(&epochs).expect("baseline runs");

    let plan = hoist_schedule(mesh, &epochs, &cost);
    let specs: Vec<EpochSpec> = epochs.iter().map(epoch_spec).collect();
    let refused = verify_hoists(mesh, &specs, &plan, &cost);
    assert!(
        refused.is_empty(),
        "{name}: planner certificates must re-verify: {refused:?}"
    );

    let mut hoisted = EpochRunner::new(ArraySim::new(mesh), cost);
    let hoist_report = hoisted
        .run_hoisted_schedule(&epochs, &plan)
        .expect("hoisted replay runs");

    // Bit-exact: every tile ends with the same memory images.
    for t in 0..mesh.tiles() {
        assert_eq!(
            base.sim.tiles[t].dmem.snapshot(),
            hoisted.sim.tiles[t].dmem.snapshot(),
            "{name}: tile {t} data memory diverged under hoisting"
        );
        assert_eq!(
            base.sim.tiles[t].imem.image(),
            hoisted.sim.tiles[t].imem.image(),
            "{name}: tile {t} instruction memory diverged under hoisting"
        );
    }
    // Same computation and traffic, epoch by epoch; reconfiguration
    // never grows and is exactly the foreground the plan predicts.
    assert_eq!(base_report.epochs.len(), hoist_report.epochs.len());
    for (b, h) in base_report.epochs.iter().zip(&hoist_report.epochs) {
        assert_eq!(b.name, h.name);
        assert!(
            (b.compute_ns - h.compute_ns).abs() < TOL,
            "{name}: epoch '{}' compute {} vs hoisted {}",
            b.name,
            b.compute_ns,
            h.compute_ns
        );
        assert_eq!(b.words_copied, h.words_copied, "{name}: '{}'", b.name);
        assert!(
            h.reconfig_ns <= b.reconfig_ns + 1e-9,
            "{name}: '{}'",
            b.name
        );
    }
    let (rb, rh) = (
        base_report.total_reconfig_ns(),
        hoist_report.total_reconfig_ns(),
    );
    assert!(
        (rb - plan.reconfig_before_ns).abs() < TOL && (rh - plan.reconfig_after_ns).abs() < TOL,
        "{name}: plan prices {} -> {} ns, simulator measured {rb} -> {rh} ns",
        plan.reconfig_before_ns,
        plan.reconfig_after_ns
    );
    // The hoisted WCET bound still contains the hoisted observation.
    let hb = hoisted_bound(&bound_epochs(mesh, &cost, &epochs), &plan, &cost);
    if hb.is_bounded() {
        assert!(
            hb.total_ns().contains(hoist_report.total_ns(), TOL),
            "{name}: hoisted run {} ns outside hoisted bound {:?}",
            hoist_report.total_ns(),
            hb.total_ns()
        );
    }
    (rb, rh, plan.hoists.len())
}

#[test]
fn fft_64_replay_is_bit_exact_and_cheaper() {
    let (rb, rh, hoists) = replay_bit_exact("fft-64");
    assert!(hoists > 0, "fft-64 has idle windows to exploit");
    assert!(rh < rb);
}

#[test]
fn jpeg_replay_is_bit_exact() {
    // The block-pipelined JPEG schedule keeps every tile busy almost
    // every epoch; whatever the planner proves is gravy, but the replay
    // must stay bit-exact regardless.
    let (rb, rh, _) = replay_bit_exact("jpeg");
    assert!(rh <= rb);
}

#[test]
fn fft_1024_hoisting_halves_reconfiguration() {
    let (rb, rh, hoists) = replay_bit_exact("fft-1024");
    assert!(hoists > 0);
    assert!(
        rh * 2.0 <= rb,
        "fft-1024 reconfiguration must drop >= 2x: {rb} -> {rh} ns ({:.2}x)",
        rb / rh
    );
}

#[test]
fn fabricated_certificates_are_rejected() {
    let cost = CostModel::default();
    let (mesh, mut epochs) = build_example_schedule("fft-64").expect("known example");
    minimize_schedule(mesh, &mut epochs, &cost);
    let good = hoist_schedule(mesh, &epochs, &cost);
    assert!(!good.hoists.is_empty());
    let specs: Vec<EpochSpec> = epochs.iter().map(epoch_spec).collect();

    // Fabricate an idle window: pretend the payload needs no streaming
    // cycles at all (seeded from the honest plan, claims dropped).
    let mut lying = good.clone();
    lying.hoists[0].claims.clear();
    lying.hoists[0].cert.claims.clear();
    let diags = verify_hoists(mesh, &specs, &lying, &cost);
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::HoistRefused && d.is_error()),
        "fabricated window must be refused: {diags:?}"
    );

    // The strict runner gate refuses to execute the lying plan...
    let mut runner = EpochRunner::new(ArraySim::new(mesh), cost);
    let err = runner.run_hoisted_schedule(&epochs, &lying);
    assert!(err.is_err(), "strict gate must reject fabricated proofs");
    // ...and the honest plan passes the same gate.
    let mut runner = EpochRunner::new(ArraySim::new(mesh), cost);
    assert!(runner.run_hoisted_schedule(&epochs, &good).is_ok());
}
