//! Keeps the README's diagnostic-code table honest: every code in the
//! `cgra-verify` registry appears exactly once with its exact name and
//! description, no stale rows linger, and ids stay unique and stable.

use remorph::verify::Code;
use std::collections::BTreeMap;

/// Parses `| `V001` | `invalid-instr` | meaning |` rows out of README.md.
fn readme_table() -> BTreeMap<String, (String, String)> {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md is readable");
    let mut rows = BTreeMap::new();
    for line in readme.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // `| a | b | c |` splits into ["", a, b, c, ""].
        if cells.len() != 5 {
            continue;
        }
        let strip = |s: &str| s.trim_matches('`').to_string();
        let id = strip(cells[1]);
        if id.len() == 4
            && (id.starts_with('V') || id.starts_with('L'))
            && id[1..].chars().all(|c| c.is_ascii_digit())
        {
            let prev = rows.insert(id.clone(), (strip(cells[2]), strip(cells[3])));
            assert!(prev.is_none(), "duplicate README row for {id}");
        }
    }
    rows
}

#[test]
fn readme_table_matches_registry() {
    let rows = readme_table();
    assert_eq!(
        rows.len(),
        Code::ALL.len(),
        "README table must list every registered code exactly once"
    );
    for code in Code::ALL {
        let (name, meaning) = rows
            .get(code.id())
            .unwrap_or_else(|| panic!("README table is missing {}", code.id()));
        assert_eq!(name, code.name(), "{}: README name drifted", code.id());
        assert_eq!(
            meaning,
            code.describe(),
            "{}: README meaning drifted",
            code.id()
        );
    }
}

#[test]
fn registry_ids_are_unique_and_well_formed() {
    let mut seen = std::collections::BTreeSet::new();
    for code in Code::ALL {
        let id = code.id();
        assert!(seen.insert(id), "duplicate diagnostic id {id}");
        assert!(
            id.len() == 4
                && (id.starts_with('V') || id.starts_with('L'))
                && id[1..].chars().all(|c| c.is_ascii_digit()),
            "id {id} must be V or L followed by three digits"
        );
        assert!(!code.name().is_empty() && !code.describe().is_empty());
    }
}

#[test]
fn lint_namespace_is_complete_and_leveled() {
    // Every L-code is a lint (has a slot in the level table) and every
    // lint is an L-code: the two registries cannot drift apart.
    let l_codes: Vec<Code> = Code::ALL
        .iter()
        .copied()
        .filter(|c| c.id().starts_with('L'))
        .collect();
    assert_eq!(l_codes, remorph::lint::LINT_CODES.to_vec());
    // V-codes carry no lint level (they gate via the verifier).
    for code in Code::ALL {
        let is_lint = remorph::lint::LINT_CODES.contains(&code);
        assert_eq!(
            code.id().starts_with('L'),
            is_lint,
            "{} namespace",
            code.id()
        );
    }
}
