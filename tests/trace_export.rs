//! Trace-export gate: the Chrome trace-event documents `cgra-trace`
//! emits must validate for every example schedule, reconfiguration
//! stalls must be confined to the tiles each `Reconfig` event names, and
//! a tile whose region is untouched must be able to compute straight
//! through another tile's reconfiguration stall — the overlap the paper
//! builds its Eq. 1 argument on — visibly, as overlapping segments in
//! the exported stream.

use remorph::explore::{build_example_schedule, EXAMPLE_SCHEDULES};
use remorph::fabric::{CostModel, Direction, Mesh, Word};
use remorph::isa::{assemble, encode_program};
use remorph::sim::{ArraySim, Epoch, EpochRunner, Recorder, TileSetup};
use remorph::telemetry::{chrome_trace, validate_chrome, Event, SegState};

fn run_recorded(name: &str, cost: &CostModel) -> Vec<Event> {
    let (mesh, epochs) = build_example_schedule(name).expect("known example schedule");
    let mut sim = ArraySim::new(mesh);
    let recorder = Recorder::new();
    sim.attach_sink(Box::new(recorder.clone()));
    let mut runner = EpochRunner::new(sim, *cost);
    runner.run_schedule(&epochs).expect("schedule runs");
    runner.sim.detach_sink();
    recorder.events()
}

#[test]
fn chrome_export_validates_for_every_example_schedule() {
    let cost = CostModel::default();
    for name in EXAMPLE_SCHEDULES {
        let events = run_recorded(name, &cost);
        let doc = chrome_trace(&events, &cost);
        let summary = validate_chrome(&doc)
            .unwrap_or_else(|e| panic!("{name}: emitted Chrome trace fails validation: {e}"));
        assert!(summary.slices > 0, "{name}: trace has activity slices");
        assert!(summary.spans > 0, "{name}: trace has epoch spans");
    }
}

/// Every stall segment must lie inside the stall window of a `Reconfig`
/// event that names its tile: nothing stalls except the tiles whose
/// regions the ICAP is actually rewriting.
#[test]
fn fft1024_stalls_are_confined_to_rewritten_tiles() {
    let cost = CostModel::default();
    let events = run_recorded("fft-1024", &cost);
    let reconfigs: Vec<(u64, u64, &Vec<usize>)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Reconfig {
                at,
                stall_cycles,
                stalled_tiles,
                ..
            } => Some((*at, at + stall_cycles, stalled_tiles)),
            _ => None,
        })
        .collect();
    assert!(
        !reconfigs.is_empty(),
        "fft-1024 reconfigures between epochs"
    );
    let mut stall_segments = 0;
    for e in &events {
        if let Event::Segment {
            tile,
            state: SegState::Stall,
            start,
            end,
        } = e
        {
            stall_segments += 1;
            let covered = reconfigs
                .iter()
                .any(|(s, t, tiles)| s <= start && end <= t && tiles.contains(tile));
            assert!(
                covered,
                "tile {tile} stalls [{start}, {end}) outside every reconfiguration window \
                 that names it"
            );
        }
    }
    assert!(
        stall_segments > 0,
        "reconfigurations produce stall segments"
    );
}

/// The paper's overlap, observed in the event stream: a tile pre-loaded
/// with a long-running kernel (outside the epoch schedule) keeps
/// computing while another tile's region is rewritten — its busy
/// segment overlaps the rewritten tile's stall segment in time.
#[test]
fn untouched_tile_computes_through_a_reconfiguration_stall() {
    let mesh = Mesh::new(2, 2);
    let mut sim = ArraySim::new(mesh);
    for i in 0..16 {
        sim.tiles[0]
            .dmem
            .poke(i, Word::wrap(100 + i as i64))
            .expect("address in range");
    }
    let cruncher = assemble(
        "
            ldi  d[0], 4000
    spin:   add  d[1], d[1], #1
            djnz d[0], spin
            halt
    ",
    )
    .expect("cruncher assembles");
    sim.load_program(2, &encode_program(&cruncher))
        .expect("tile 2 loads");

    let copy_east = assemble(
        "
            ldar a0, 0
            ldar a1, 64
            ldi  d[500], 16
    l:      mov  r@a1, @a0
            adar a0, 1
            adar a1, 1
            djnz d[500], l
            halt
    ",
    )
    .expect("copy kernel assembles");

    let recorder = Recorder::new();
    sim.attach_sink(Box::new(recorder.clone()));
    let mut runner = EpochRunner::new(sim, CostModel::default());
    let epochs = vec![Epoch {
        name: "rewrite tile 0 while tile 2 crunches".into(),
        links: mesh.disconnected().with(0, Direction::East),
        setups: vec![(
            0,
            TileSetup {
                program: Some(copy_east),
                data_patches: vec![],
            },
        )],
        budget: 100_000,
    }];
    runner.run_schedule(&epochs).expect("schedule runs");
    runner.sim.detach_sink();

    // Tile 2 never stalled; tile 0 did.
    assert_eq!(runner.sim.stats[2].reconfig_cycles, 0);
    assert!(runner.sim.stats[0].reconfig_cycles > 0);

    let events = recorder.events();
    let stall = events
        .iter()
        .find_map(|e| match e {
            Event::Segment {
                tile: 0,
                state: SegState::Stall,
                start,
                end,
            } => Some((*start, *end)),
            _ => None,
        })
        .expect("tile 0 has a reconfiguration stall segment");
    let overlapping_busy = events.iter().any(|e| {
        matches!(e, Event::Segment {
            tile: 2,
            state: SegState::Busy,
            start,
            end,
        } if *start < stall.1 && stall.0 < *end)
    });
    assert!(
        overlapping_busy,
        "tile 2 must have a busy segment overlapping tile 0's stall [{}, {})",
        stall.0, stall.1
    );
    // Tile 2 never emits a stall segment at all.
    assert!(!events.iter().any(|e| matches!(
        e,
        Event::Segment {
            tile: 2,
            state: SegState::Stall,
            ..
        }
    )));

    // And the exported trace of the overlap validates.
    let cost = CostModel::default();
    let doc = chrome_trace(&events, &cost);
    validate_chrome(&doc).expect("overlap trace validates");
}
