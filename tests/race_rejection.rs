//! Acceptance test for the cross-tile race detector: a seeded racy
//! schedule — two tiles remote-writing the same dmem word of the tile
//! between them in one epoch — must be rejected *before* a cycle runs,
//! with a V100 diagnostic naming both writer tiles and the address.

use remorph::fabric::{Direction, Mesh};
use remorph::isa::assemble;
use remorph::sim::{verify_epochs, ArraySim, Epoch, EpochRunner, SimError, TileSetup, VerifyMode};
use remorph::verify::{has_errors, Code};

/// A 1x3 row where the two outer tiles both write word 50 of the middle
/// tile. Each writer's address register is a compile-time constant, so
/// the analysis sees the exact overlapping word.
fn racy_schedule() -> (Mesh, Vec<Epoch>) {
    let mesh = Mesh::new(1, 3);
    let writer = assemble(
        "
            ldar a0, 50
            ldi  d[0], 7
            mov  r@a0, d[0]
            halt
        ",
    )
    .expect("writer assembles");
    let idle = assemble("halt").expect("idle assembles");
    let links = mesh
        .disconnected()
        .with(0, Direction::East)
        .with(2, Direction::West);
    let epoch = Epoch {
        name: "seeded race".into(),
        links,
        setups: vec![
            (
                0,
                TileSetup {
                    program: Some(writer.clone()),
                    data_patches: vec![],
                },
            ),
            (
                1,
                TileSetup {
                    program: Some(idle),
                    data_patches: vec![],
                },
            ),
            (
                2,
                TileSetup {
                    program: Some(writer),
                    data_patches: vec![],
                },
            ),
        ],
        budget: 1_000,
    };
    (mesh, vec![epoch])
}

fn assert_names_race(diags: &[remorph::verify::Diagnostic]) {
    let race = diags
        .iter()
        .find(|d| d.code == Code::RaceWriteWrite)
        .expect("a V100 write/write race diagnostic");
    assert!(race.is_error(), "the race must be error severity: {race}");
    assert_eq!(race.code.id(), "V100");
    let msg = race.to_string();
    assert!(msg.contains("tiles 0"), "names writer tile 0: {msg}");
    assert!(msg.contains(" 2 "), "names writer tile 2: {msg}");
    assert!(msg.contains("d[50]"), "names the contested word: {msg}");
    assert!(msg.contains("tile 1"), "names the victim tile: {msg}");
}

#[test]
fn static_pass_flags_seeded_race() {
    let (mesh, epochs) = racy_schedule();
    let diags = verify_epochs(mesh, &epochs);
    assert!(has_errors(&diags), "the schedule must not verify clean");
    assert_names_race(&diags);
}

#[test]
fn runner_rejects_seeded_race_before_executing() {
    let (mesh, epochs) = racy_schedule();
    let mut sim = ArraySim::new(mesh);
    // Strict even in release builds: this test is about the gate itself.
    sim.verify = VerifyMode::Strict;
    let mut runner = EpochRunner::new(sim, remorph::fabric::CostModel::default());
    match runner.run_schedule(&epochs) {
        Err(SimError::Verify(diags)) => assert_names_race(&diags),
        other => panic!("expected SimError::Verify, got {other:?}"),
    }
}

#[test]
fn removing_one_writer_makes_the_schedule_clean() {
    // Same shape with a single writer: no race, runs to completion and
    // lands the value, proving the detector keys on the *pair*.
    let mesh = Mesh::new(1, 3);
    let writer = assemble(
        "
            ldar a0, 50
            ldi  d[0], 7
            mov  r@a0, d[0]
            halt
        ",
    )
    .expect("writer assembles");
    let idle = assemble("halt").expect("idle assembles");
    let epoch = Epoch {
        name: "single writer".into(),
        links: mesh.disconnected().with(0, Direction::East),
        setups: vec![
            (
                0,
                TileSetup {
                    program: Some(writer),
                    data_patches: vec![],
                },
            ),
            (
                1,
                TileSetup {
                    program: Some(idle),
                    data_patches: vec![],
                },
            ),
        ],
        budget: 1_000,
    };
    let diags = verify_epochs(mesh, std::slice::from_ref(&epoch));
    assert!(!has_errors(&diags), "single writer is race-free: {diags:?}");

    let mut sim = ArraySim::new(mesh);
    sim.verify = VerifyMode::Strict;
    let mut runner = EpochRunner::new(sim, remorph::fabric::CostModel::default());
    runner.run_epoch(&epoch).expect("clean schedule runs");
    assert_eq!(runner.sim.tiles[1].dmem.peek(50).unwrap().value(), 7);
}
