//! Tile-local memories.
//!
//! Each reMORPH tile has:
//!
//! * a **data memory** built from two `512 x 48` dual-port block RAMs giving
//!   *two parallel reads and one write* per cycle (`DATA_WORDS` words), and
//! * an **instruction register/memory** built from one `512 x 72` dual-port
//!   BRAM (`INSTR_SLOTS` slots of `INSTR_BITS`-bit words).
//!
//! [`DataMemory`] optionally enforces the port discipline per cycle so the
//! interpreter cannot silently model an un-implementable access pattern.

use crate::error::FabricError;
use crate::word::Word;

/// Words in a tile data memory (paper: 512 x 48 dual-port BRAM pair).
pub const DATA_WORDS: usize = 512;

/// Slots in a tile instruction memory (paper: 512 x 72 BRAM).
pub const INSTR_SLOTS: usize = 512;

/// Width of one instruction word in bits.
pub const INSTR_BITS: u32 = 72;

/// Bytes of one instruction word as stored in a partial bitstream (72 bits
/// rounded up to whole bytes).
pub const INSTR_BYTES: usize = 9;

/// Bytes of one data word as stored in a partial bitstream (48 bits = 6 B).
pub const DATA_WORD_BYTES: usize = 6;

/// Per-cycle port budget of the data memory: two reads, one write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortUsage {
    /// Reads issued in the current cycle.
    pub reads: u8,
    /// Writes issued in the current cycle.
    pub writes: u8,
}

/// Maximum reads per cycle supported by the BRAM pair.
pub const MAX_READS_PER_CYCLE: u8 = 2;

/// Maximum writes per cycle supported by the BRAM pair.
pub const MAX_WRITES_PER_CYCLE: u8 = 1;

/// A tile data memory with optional port-discipline checking.
#[derive(Debug, Clone)]
pub struct DataMemory {
    words: Vec<Word>,
    usage: PortUsage,
    /// When true, exceeding the 2R/1W port budget in a cycle is an error.
    pub enforce_ports: bool,
}

impl Default for DataMemory {
    fn default() -> Self {
        DataMemory::new()
    }
}

impl DataMemory {
    /// Creates a zero-filled data memory with port checking disabled.
    pub fn new() -> DataMemory {
        DataMemory {
            words: vec![Word::ZERO; DATA_WORDS],
            usage: PortUsage::default(),
            enforce_ports: false,
        }
    }

    /// Creates a zero-filled data memory that enforces the 2R/1W budget.
    pub fn with_port_checking() -> DataMemory {
        DataMemory {
            enforce_ports: true,
            ..DataMemory::new()
        }
    }

    /// Number of addressable words.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Always false: the memory has a fixed non-zero size.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reads a word, consuming one read port if checking is enabled.
    pub fn read(&mut self, addr: usize) -> Result<Word, FabricError> {
        if addr >= DATA_WORDS {
            return Err(FabricError::DataAddressOutOfRange { addr });
        }
        if self.enforce_ports {
            if self.usage.reads >= MAX_READS_PER_CYCLE {
                return Err(FabricError::PortBudgetExceeded {
                    kind: "read",
                    limit: MAX_READS_PER_CYCLE,
                });
            }
            self.usage.reads += 1;
        }
        Ok(self.words[addr])
    }

    /// Writes a word, consuming the write port if checking is enabled.
    pub fn write(&mut self, addr: usize, value: Word) -> Result<(), FabricError> {
        if addr >= DATA_WORDS {
            return Err(FabricError::DataAddressOutOfRange { addr });
        }
        if self.enforce_ports {
            if self.usage.writes >= MAX_WRITES_PER_CYCLE {
                return Err(FabricError::PortBudgetExceeded {
                    kind: "write",
                    limit: MAX_WRITES_PER_CYCLE,
                });
            }
            self.usage.writes += 1;
        }
        self.words[addr] = value;
        Ok(())
    }

    /// Peeks a word without consuming a port (for tooling/tests, not the
    /// modeled datapath).
    pub fn peek(&self, addr: usize) -> Result<Word, FabricError> {
        self.words
            .get(addr)
            .copied()
            .ok_or(FabricError::DataAddressOutOfRange { addr })
    }

    /// Pokes a word without consuming a port (preprocessing/reconfiguration
    /// path, not the modeled datapath).
    pub fn poke(&mut self, addr: usize, value: Word) -> Result<(), FabricError> {
        if addr >= DATA_WORDS {
            return Err(FabricError::DataAddressOutOfRange { addr });
        }
        self.words[addr] = value;
        Ok(())
    }

    /// Bulk-loads `values` starting at `base` (reconfiguration path).
    pub fn load(&mut self, base: usize, values: &[Word]) -> Result<(), FabricError> {
        let end = base + values.len();
        if end > DATA_WORDS {
            return Err(FabricError::DataAddressOutOfRange { addr: end - 1 });
        }
        self.words[base..end].copy_from_slice(values);
        Ok(())
    }

    /// Returns a snapshot of the memory contents.
    pub fn snapshot(&self) -> Vec<Word> {
        self.words.clone()
    }

    /// Resets the per-cycle port usage; the simulator calls this each cycle.
    #[inline]
    pub fn end_cycle(&mut self) {
        self.usage = PortUsage::default();
    }

    /// Current per-cycle port usage.
    #[inline]
    pub fn port_usage(&self) -> PortUsage {
        self.usage
    }

    /// Zeroes the whole memory.
    pub fn clear(&mut self) {
        self.words.fill(Word::ZERO);
    }
}

/// An opaque encoded instruction word (the ISA crate defines the encoding).
pub type RawInstr = u128;

/// A tile instruction memory holding up to [`INSTR_SLOTS`] encoded words.
#[derive(Debug, Clone, Default)]
pub struct InstrMemory {
    slots: Vec<RawInstr>,
}

impl InstrMemory {
    /// Creates an empty instruction memory.
    pub fn new() -> InstrMemory {
        InstrMemory { slots: Vec::new() }
    }

    /// Loads an entire program image, replacing the previous contents.
    pub fn load(&mut self, image: &[RawInstr]) -> Result<(), FabricError> {
        if image.len() > INSTR_SLOTS {
            return Err(FabricError::ProgramTooLarge {
                len: image.len(),
                cap: INSTR_SLOTS,
            });
        }
        self.slots.clear();
        self.slots.extend_from_slice(image);
        Ok(())
    }

    /// Fetches the instruction at `pc`.
    pub fn fetch(&self, pc: usize) -> Result<RawInstr, FabricError> {
        self.slots
            .get(pc)
            .copied()
            .ok_or(FabricError::PcOutOfRange {
                pc,
                len: self.slots.len(),
            })
    }

    /// Number of loaded instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no program is loaded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The loaded program image.
    pub fn image(&self) -> &[RawInstr] {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = DataMemory::new();
        m.write(7, Word::wrap(42)).unwrap();
        assert_eq!(m.read(7).unwrap().value(), 42);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = DataMemory::new();
        assert!(m.read(DATA_WORDS).is_err());
        assert!(m.write(DATA_WORDS, Word::ZERO).is_err());
        assert!(m.peek(99999).is_err());
    }

    #[test]
    fn port_budget_enforced() {
        let mut m = DataMemory::with_port_checking();
        m.read(0).unwrap();
        m.read(1).unwrap();
        assert!(matches!(
            m.read(2),
            Err(FabricError::PortBudgetExceeded { kind: "read", .. })
        ));
        m.write(0, Word::ONE).unwrap();
        assert!(m.write(1, Word::ONE).is_err());
        m.end_cycle();
        assert!(m.read(2).is_ok());
        assert!(m.write(1, Word::ONE).is_ok());
    }

    #[test]
    fn port_budget_not_enforced_by_default() {
        let mut m = DataMemory::new();
        for i in 0..10 {
            m.read(i).unwrap();
        }
    }

    #[test]
    fn bulk_load() {
        let mut m = DataMemory::new();
        let vals: Vec<Word> = (0..4).map(Word::wrap).collect();
        m.load(100, &vals).unwrap();
        assert_eq!(m.peek(103).unwrap().value(), 3);
        assert!(m.load(DATA_WORDS - 1, &vals).is_err());
    }

    #[test]
    fn instr_memory_capacity() {
        let mut im = InstrMemory::new();
        im.load(&vec![0u128; INSTR_SLOTS]).unwrap();
        assert_eq!(im.len(), INSTR_SLOTS);
        assert!(im.load(&vec![0u128; INSTR_SLOTS + 1]).is_err());
    }

    #[test]
    fn fetch_bounds() {
        let mut im = InstrMemory::new();
        im.load(&[1, 2, 3]).unwrap();
        assert_eq!(im.fetch(2).unwrap(), 3);
        assert!(im.fetch(3).is_err());
    }
}
