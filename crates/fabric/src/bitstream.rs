//! Partial bitstream serialization.
//!
//! The prototype stores partial bitstreams on CompactFlash and streams
//! them through the ICAP at runtime. This module defines the on-"flash"
//! format for our fabric: a framed byte stream carrying instruction-memory
//! images, data-memory patches and link settings, convertible to/from a
//! [`ReconfigPlan`] and applied to tiles. The payload byte counts are
//! exactly what [`crate::cost::CostModel`] charges the ICAP for.
//!
//! ```text
//! header:  "CGRB" | version u8 | frame_count u16le
//! frame:   kind u8 | tile u16le | base u16le | len u16le | payload
//!   kind 0: instructions — len x 9-byte big-endian 72-bit words
//!   kind 1: data         — len x 6-byte big-endian 48-bit words
//!   kind 2: link         — one byte: 0=N 1=E 2=S 3=W 4=disconnect
//! ```

use crate::link::{Direction, LinkConfig, TileId};
use crate::mem::{DATA_WORD_BYTES, INSTR_BYTES};
use crate::reconfig::{DataPatch, ReconfigPlan, TileReconfig};
use crate::tile::Tile;
use crate::word::Word;
use crate::FabricError;

/// Format magic.
pub const MAGIC: &[u8; 4] = b"CGRB";

/// Format version emitted by [`serialize`].
pub const VERSION: u8 = 1;

/// Bitstream parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// Stream ended inside a frame.
    Truncated,
    /// Unknown frame kind.
    BadFrameKind(u8),
    /// Invalid link direction code.
    BadDirection(u8),
    /// A frame would overflow a tile memory.
    OutOfRange {
        /// Offending tile.
        tile: TileId,
        /// Frame base.
        base: usize,
        /// Frame length.
        len: usize,
    },
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::BadMagic => write!(f, "not a CGRB bitstream"),
            BitstreamError::BadVersion(v) => write!(f, "unsupported bitstream version {v}"),
            BitstreamError::Truncated => write!(f, "truncated bitstream"),
            BitstreamError::BadFrameKind(k) => write!(f, "unknown frame kind {k}"),
            BitstreamError::BadDirection(d) => write!(f, "invalid link direction code {d}"),
            BitstreamError::OutOfRange { tile, base, len } => {
                write!(f, "frame [{base}..{}) overflows tile {tile}", base + len)
            }
        }
    }
}

impl std::error::Error for BitstreamError {}

fn dir_code(d: Option<Direction>) -> u8 {
    match d {
        Some(Direction::North) => 0,
        Some(Direction::East) => 1,
        Some(Direction::South) => 2,
        Some(Direction::West) => 3,
        None => 4,
    }
}

fn code_dir(c: u8) -> Result<Option<Direction>, BitstreamError> {
    Ok(match c {
        0 => Some(Direction::North),
        1 => Some(Direction::East),
        2 => Some(Direction::South),
        3 => Some(Direction::West),
        4 => None,
        other => return Err(BitstreamError::BadDirection(other)),
    })
}

/// Serializes a reconfiguration plan (memory rewrites) plus the target
/// link settings of the tiles whose links change.
pub fn serialize(plan: &ReconfigPlan, links: &[(TileId, Option<Direction>)]) -> Vec<u8> {
    let mut frames = 0u16;
    let mut body = Vec::new();
    for (tile, rc) in &plan.tiles {
        if let Some(prog) = &rc.program {
            frames += 1;
            body.push(0u8);
            body.extend_from_slice(&(*tile as u16).to_le_bytes());
            body.extend_from_slice(&0u16.to_le_bytes());
            body.extend_from_slice(&(prog.len() as u16).to_le_bytes());
            for w in prog {
                // 72 bits = 9 bytes, big-endian.
                let bytes = w.to_be_bytes();
                body.extend_from_slice(&bytes[16 - INSTR_BYTES..]);
            }
        }
        for patch in &rc.data_patches {
            if patch.is_empty() {
                continue;
            }
            frames += 1;
            body.push(1u8);
            body.extend_from_slice(&(*tile as u16).to_le_bytes());
            body.extend_from_slice(&(patch.base as u16).to_le_bytes());
            body.extend_from_slice(&(patch.words.len() as u16).to_le_bytes());
            for w in &patch.words {
                let bytes = w.bits().to_be_bytes();
                body.extend_from_slice(&bytes[8 - DATA_WORD_BYTES..]);
            }
        }
    }
    for (tile, dir) in links {
        frames += 1;
        body.push(2u8);
        body.extend_from_slice(&(*tile as u16).to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes());
        body.push(dir_code(*dir));
    }
    let mut out = Vec::with_capacity(7 + body.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&frames.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// A parsed bitstream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedBitstream {
    /// Memory rewrites per tile.
    pub plan: ReconfigPlan,
    /// Link settings carried by the stream.
    pub links: Vec<(TileId, Option<Direction>)>,
}

/// Parses a bitstream produced by [`serialize`].
pub fn parse(data: &[u8]) -> Result<ParsedBitstream, BitstreamError> {
    if data.len() < 7 {
        return Err(BitstreamError::Truncated);
    }
    if &data[0..4] != MAGIC {
        return Err(BitstreamError::BadMagic);
    }
    if data[4] != VERSION {
        return Err(BitstreamError::BadVersion(data[4]));
    }
    let frames = u16::from_le_bytes([data[5], data[6]]);
    let mut pos = 7usize;
    let mut out = ParsedBitstream::default();
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], BitstreamError> {
        let s = data.get(*pos..*pos + n).ok_or(BitstreamError::Truncated)?;
        *pos += n;
        Ok(s)
    };
    for _ in 0..frames {
        let head = take(&mut pos, 7)?;
        let kind = head[0];
        let tile = u16::from_le_bytes([head[1], head[2]]) as TileId;
        let base = u16::from_le_bytes([head[3], head[4]]) as usize;
        let len = u16::from_le_bytes([head[5], head[6]]) as usize;
        match kind {
            0 => {
                if len > crate::INSTR_SLOTS {
                    return Err(BitstreamError::OutOfRange { tile, base, len });
                }
                let payload = take(&mut pos, len * INSTR_BYTES)?;
                let prog: Vec<u128> = payload
                    .chunks(INSTR_BYTES)
                    .map(|c| {
                        let mut b = [0u8; 16];
                        b[16 - INSTR_BYTES..].copy_from_slice(c);
                        u128::from_be_bytes(b)
                    })
                    .collect();
                out.plan.add_tile(
                    tile,
                    TileReconfig {
                        program: Some(prog),
                        data_patches: vec![],
                    },
                );
            }
            1 => {
                if base + len > crate::DATA_WORDS {
                    return Err(BitstreamError::OutOfRange { tile, base, len });
                }
                let payload = take(&mut pos, len * DATA_WORD_BYTES)?;
                let words: Vec<Word> = payload
                    .chunks(DATA_WORD_BYTES)
                    .map(|c| {
                        let mut b = [0u8; 8];
                        b[8 - DATA_WORD_BYTES..].copy_from_slice(c);
                        Word::from_bits(u64::from_be_bytes(b))
                    })
                    .collect();
                out.plan.add_tile(
                    tile,
                    TileReconfig {
                        program: None,
                        data_patches: vec![DataPatch::new(base, words)],
                    },
                );
            }
            2 => {
                let payload = take(&mut pos, 1)?;
                out.links.push((tile, code_dir(payload[0])?));
            }
            other => return Err(BitstreamError::BadFrameKind(other)),
        }
    }
    Ok(out)
}

/// Applies a parsed bitstream's memory rewrites to tiles and its link
/// settings to a link configuration — the ICAP's write-back stage.
pub fn apply(
    parsed: &ParsedBitstream,
    tiles: &mut [Tile],
    links: &mut LinkConfig,
) -> Result<(), FabricError> {
    for (t, rc) in &parsed.plan.tiles {
        let tile = tiles
            .get_mut(*t)
            .ok_or(FabricError::UnknownTile { tile: *t })?;
        if let Some(prog) = &rc.program {
            tile.load_program(prog)?;
        }
        for patch in &rc.data_patches {
            tile.load_data(patch.base, &patch.words)?;
        }
    }
    for (t, dir) in &parsed.links {
        links.set(*t, *dir);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> (ReconfigPlan, Vec<(TileId, Option<Direction>)>) {
        let mut plan = ReconfigPlan::default();
        plan.add_tile(
            2,
            TileReconfig {
                program: Some(vec![0xDEAD_BEEF_u128, (1u128 << 71) | 7]),
                data_patches: vec![DataPatch::new(
                    100,
                    vec![Word::wrap(-5), Word::wrap(1 << 40)],
                )],
            },
        );
        plan.add_tile(
            0,
            TileReconfig {
                program: None,
                data_patches: vec![DataPatch::new(0, vec![Word::wrap(42)])],
            },
        );
        let links = vec![
            (0, Some(Direction::East)),
            (2, Some(Direction::North)),
            (3, None),
        ];
        (plan, links)
    }

    #[test]
    fn roundtrip() {
        let (plan, links) = sample_plan();
        let bytes = serialize(&plan, &links);
        let parsed = parse(&bytes).unwrap();
        assert_eq!(parsed.links, links);
        assert_eq!(parsed.plan.bitstream_bytes(), plan.bitstream_bytes());
        // Program and patches survive byte-exact.
        let (_, rc) = parsed.plan.tiles.iter().find(|(t, _)| *t == 2).unwrap();
        assert_eq!(
            rc.program.as_deref(),
            Some(&[0xDEAD_BEEF_u128, (1u128 << 71) | 7][..])
        );
        assert_eq!(rc.data_patches[0].base, 100);
        assert_eq!(rc.data_patches[0].words[0], Word::wrap(-5));
        assert_eq!(rc.data_patches[0].words[1], Word::wrap(1 << 40));
    }

    #[test]
    fn payload_bytes_match_cost_accounting() {
        let (plan, links) = sample_plan();
        let bytes = serialize(&plan, &links);
        // header 7 + 3 frame headers (memory) * 7 + 3 link frames * 8.
        let overhead = 7 + 2 * 7 + 7 + 3 * 8;
        assert_eq!(bytes.len(), plan.bitstream_bytes() + overhead);
    }

    #[test]
    fn applies_to_tiles() {
        let (plan, links) = sample_plan();
        let parsed = parse(&serialize(&plan, &links)).unwrap();
        let mut tiles: Vec<Tile> = (0..4).map(Tile::new).collect();
        let mut cfg = LinkConfig::disconnected(4);
        cfg.set(3, Some(Direction::West)); // will be cleared by the stream
        apply(&parsed, &mut tiles, &mut cfg).unwrap();
        assert_eq!(tiles[2].imem.fetch(0).unwrap(), 0xDEAD_BEEF);
        assert_eq!(tiles[2].dmem.peek(101).unwrap(), Word::wrap(1 << 40));
        assert_eq!(tiles[0].dmem.peek(0).unwrap().value(), 42);
        assert_eq!(cfg.get(0), Some(Direction::East));
        assert_eq!(cfg.get(3), None);
    }

    #[test]
    fn rejects_corruption() {
        let (plan, links) = sample_plan();
        let mut bytes = serialize(&plan, &links);
        assert_eq!(parse(b"nope"), Err(BitstreamError::Truncated));
        assert_eq!(parse(b"XXXX\x01\x00\x00"), Err(BitstreamError::BadMagic));
        let mut v = bytes.clone();
        v[4] = 9;
        assert_eq!(parse(&v), Err(BitstreamError::BadVersion(9)));
        bytes.truncate(bytes.len() - 3);
        assert_eq!(parse(&bytes), Err(BitstreamError::Truncated));
    }

    #[test]
    fn rejects_bad_direction_and_kind() {
        let (plan, links) = sample_plan();
        let bytes = serialize(&plan, &links);
        // Find the last link frame's direction byte and corrupt it.
        let mut v = bytes.clone();
        let n = v.len();
        v[n - 1] = 9;
        assert_eq!(parse(&v), Err(BitstreamError::BadDirection(9)));
        // Corrupt a frame kind.
        let mut v = bytes;
        v[7] = 77;
        assert_eq!(parse(&v), Err(BitstreamError::BadFrameKind(77)));
    }

    #[test]
    fn word_48bit_patterns_survive() {
        // Negative and high-bit patterns encode through the 6-byte form.
        let mut plan = ReconfigPlan::default();
        let words: Vec<Word> = [-1i64, i64::MIN >> 16, 0x7FFF_FFFF_FFFF]
            .iter()
            .map(|&v| Word::wrap(v))
            .collect();
        plan.add_tile(
            1,
            TileReconfig {
                program: None,
                data_patches: vec![DataPatch::new(7, words.clone())],
            },
        );
        let parsed = parse(&serialize(&plan, &[])).unwrap();
        assert_eq!(parsed.plan.tiles[0].1.data_patches[0].words, words);
    }
}
