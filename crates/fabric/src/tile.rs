//! A coarse-grain reconfigurable module (CGRM): one tile of the array.

use crate::link::TileId;
use crate::mem::{DataMemory, InstrMemory, RawInstr};
use crate::word::Word;

/// One tile: a 48-bit PE with its private data and instruction memories.
///
/// Execution state (program counter, accumulator, address registers) lives
/// in the ISA crate's interpreter; the `Tile` is the *hardware* the
/// interpreter runs against, and is also what the reconfiguration engine
/// rewrites between epochs.
#[derive(Debug, Clone)]
pub struct Tile {
    /// This tile's linear id in the mesh.
    pub id: TileId,
    /// 512 x 48 data memory.
    pub dmem: DataMemory,
    /// 512 x 72 instruction memory.
    pub imem: InstrMemory,
}

impl Tile {
    /// Creates a tile with empty memories.
    pub fn new(id: TileId) -> Tile {
        Tile {
            id,
            dmem: DataMemory::new(),
            imem: InstrMemory::new(),
        }
    }

    /// Creates a tile whose data memory enforces the 2R/1W port budget.
    pub fn with_port_checking(id: TileId) -> Tile {
        Tile {
            id,
            dmem: DataMemory::with_port_checking(),
            imem: InstrMemory::new(),
        }
    }

    /// Loads a program image (reconfiguration path).
    pub fn load_program(&mut self, image: &[RawInstr]) -> Result<(), crate::FabricError> {
        self.imem.load(image)
    }

    /// Loads data words at `base` (preprocessing / reconfiguration path).
    pub fn load_data(&mut self, base: usize, words: &[Word]) -> Result<(), crate::FabricError> {
        self.dmem.load(base, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_roundtrip() {
        let mut t = Tile::new(3);
        t.load_program(&[1, 2, 3]).unwrap();
        t.load_data(10, &[Word::wrap(7)]).unwrap();
        assert_eq!(t.id, 3);
        assert_eq!(t.imem.fetch(1).unwrap(), 2);
        assert_eq!(t.dmem.peek(10).unwrap().value(), 7);
    }
}
