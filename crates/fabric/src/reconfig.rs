//! The partial-reconfiguration engine (ICAP model).
//!
//! Between two epochs the runtime management system streams a partial
//! bitstream through the ICAP. The bitstream touches:
//!
//! * the instruction memories of tiles whose program changes,
//! * selected data-memory words (new twiddle factors, copy-process
//!   source/destination variables, ...),
//! * the programmable interconnect of tiles whose link changes.
//!
//! Because the reconfiguration is **partial**, only the touched tiles stall;
//! every untouched tile keeps computing, which is how the paper hides most
//! of the context-switch cost ([`ReconfigPlan::overlappable_tiles`]).

use crate::cost::CostModel;
use crate::link::{LinkConfig, TileId};
use crate::mem::{DATA_WORD_BYTES, INSTR_BYTES};
use crate::word::Word;

/// A data-memory patch: `words` written starting at `base`.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPatch {
    /// First word address rewritten.
    pub base: usize,
    /// Replacement words.
    pub words: Vec<Word>,
}

impl DataPatch {
    /// Builds a patch.
    pub fn new(base: usize, words: Vec<Word>) -> DataPatch {
        DataPatch { base, words }
    }

    /// Number of rewritten words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the patch rewrites nothing.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Everything the ICAP must rewrite in one tile for an epoch switch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TileReconfig {
    /// New program image, if the instructions change (`None` = keep).
    pub program: Option<Vec<u128>>,
    /// Data-memory patches applied during the switch.
    pub data_patches: Vec<DataPatch>,
}

impl TileReconfig {
    /// True when this tile is untouched by the switch.
    pub fn is_noop(&self) -> bool {
        self.program.is_none() && self.data_patches.iter().all(DataPatch::is_empty)
    }

    /// Data-memory words this tile's patches rewrite.
    pub fn data_words(&self) -> usize {
        self.data_patches.iter().map(DataPatch::len).sum()
    }

    /// Instruction words this tile's program reload streams.
    pub fn instr_words(&self) -> usize {
        self.program.as_ref().map_or(0, Vec::len)
    }

    /// Bitstream bytes this tile contributes.
    pub fn bytes(&self) -> usize {
        let prog = self.program.as_ref().map_or(0, |p| p.len() * INSTR_BYTES);
        let data: usize = self
            .data_patches
            .iter()
            .map(|p| p.len() * DATA_WORD_BYTES)
            .sum();
        prog + data
    }
}

/// A full epoch-switch plan: per-tile rewrites plus the link delta.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconfigPlan {
    /// Per-tile rewrites, indexed by [`TileId`]; missing ids are no-ops.
    pub tiles: Vec<(TileId, TileReconfig)>,
    /// Links re-routed by the switch (count of 48-wire links).
    pub changed_links: usize,
}

impl ReconfigPlan {
    /// Builds the plan implied by switching link configurations, with no
    /// memory rewrites.
    pub fn from_link_change(from: &LinkConfig, to: &LinkConfig) -> ReconfigPlan {
        ReconfigPlan {
            tiles: Vec::new(),
            changed_links: from.delta(to),
        }
    }

    /// Adds (or merges) a tile rewrite.
    pub fn add_tile(&mut self, tile: TileId, rc: TileReconfig) {
        if let Some((_, existing)) = self.tiles.iter_mut().find(|(t, _)| *t == tile) {
            if rc.program.is_some() {
                existing.program = rc.program;
            }
            existing.data_patches.extend(rc.data_patches);
        } else {
            self.tiles.push((tile, rc));
        }
    }

    /// Total bitstream bytes streamed through the ICAP.
    pub fn bitstream_bytes(&self) -> usize {
        self.tiles.iter().map(|(_, rc)| rc.bytes()).sum()
    }

    /// The per-kind decomposition of this switch: data words, instruction
    /// words and links, for exact Eq. 1 savings reporting.
    pub fn breakdown(&self) -> crate::cost::TransitionBreakdown {
        crate::cost::TransitionBreakdown {
            data_words: self.tiles.iter().map(|(_, rc)| rc.data_words()).sum(),
            instr_words: self.tiles.iter().map(|(_, rc)| rc.instr_words()).sum(),
            links: self.changed_links,
        }
    }

    /// Time the ICAP needs for the memory rewrites, ns.
    pub fn memory_reconfig_ns(&self, cost: &CostModel) -> f64 {
        cost.icap_ns(self.bitstream_bytes())
    }

    /// Time to re-route the changed links, ns (`tau_ij = l_ij * L`).
    pub fn link_reconfig_ns(&self, cost: &CostModel) -> f64 {
        cost.links_reconfig_ns(self.changed_links)
    }

    /// Total switch time, ns.
    pub fn total_ns(&self, cost: &CostModel) -> f64 {
        self.memory_reconfig_ns(cost) + self.link_reconfig_ns(cost)
    }

    /// Tiles that stall during the switch (they are being rewritten).
    pub fn stalled_tiles(&self) -> Vec<TileId> {
        self.tiles
            .iter()
            .filter(|(_, rc)| !rc.is_noop())
            .map(|(t, _)| *t)
            .collect()
    }

    /// Of `all_tiles` tiles, those free to keep computing during the switch
    /// — the partial-reconfiguration overlap the paper exploits.
    pub fn overlappable_tiles(&self, all_tiles: usize) -> Vec<TileId> {
        let stalled = self.stalled_tiles();
        (0..all_tiles).filter(|t| !stalled.contains(t)).collect()
    }
}

/// Why a shadow-plane operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShadowError {
    /// The tile's shadow plane already holds `depth` pending payloads.
    QueueFull {
        /// The overflowing tile.
        tile: TileId,
        /// Its slot budget.
        depth: usize,
    },
    /// The tile already holds a pending payload tagged for this target.
    DuplicateTarget {
        /// The tile.
        tile: TileId,
        /// The contested commit tag.
        target: usize,
    },
    /// The tile id is outside the fabric.
    UnknownTile(TileId),
}

impl std::fmt::Display for ShadowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShadowError::QueueFull { tile, depth } => {
                write!(f, "tile {tile}: shadow plane full ({depth} slots)")
            }
            ShadowError::DuplicateTarget { tile, target } => {
                write!(
                    f,
                    "tile {tile}: a payload is already staged for epoch {target}"
                )
            }
            ShadowError::UnknownTile(t) => write!(f, "tile {t} is outside the fabric"),
        }
    }
}

impl std::error::Error for ShadowError {}

/// The double-buffered configuration plane: per-tile slots holding
/// reconfiguration payloads that were prefetched through the background
/// port during earlier idle windows and wait for their commit epoch.
///
/// Slots are *tagged* with their target epoch, not queued FIFO: the
/// hoisting planner packs late targets into early windows first, so a
/// payload staged earlier may legally commit *later* than one staged
/// after it. [`ShadowConfig::commit`] selects by tag; a commit is a
/// plane swap and costs no ICAP time — the streaming was already paid
/// for inside the donor epochs' idle windows.
#[derive(Debug, Clone)]
pub struct ShadowConfig {
    depth: usize,
    slots: Vec<Vec<(usize, TileReconfig)>>,
}

impl ShadowConfig {
    /// An empty shadow plane for `tiles` tiles with `depth` slots each
    /// (a depth of 0 is clamped to 1).
    pub fn new(tiles: usize, depth: usize) -> ShadowConfig {
        ShadowConfig {
            depth: depth.max(1),
            slots: vec![Vec::new(); tiles],
        }
    }

    /// Slots per tile.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pending payloads currently staged for `tile`.
    pub fn pending(&self, tile: TileId) -> usize {
        self.slots.get(tile).map_or(0, Vec::len)
    }

    /// Pending payloads across the whole fabric.
    pub fn pending_total(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Stages a prefetched payload for `tile`, tagged to commit at the
    /// switch into `target`.
    pub fn stage(
        &mut self,
        tile: TileId,
        target: usize,
        rc: TileReconfig,
    ) -> Result<(), ShadowError> {
        let depth = self.depth;
        let slots = self
            .slots
            .get_mut(tile)
            .ok_or(ShadowError::UnknownTile(tile))?;
        if slots.iter().any(|(t, _)| *t == target) {
            return Err(ShadowError::DuplicateTarget { tile, target });
        }
        if slots.len() >= depth {
            return Err(ShadowError::QueueFull { tile, depth });
        }
        slots.push((target, rc));
        Ok(())
    }

    /// Commits (removes and returns) the payload staged for `tile` at
    /// `target`, or `None` when nothing was staged under that tag.
    pub fn commit(&mut self, tile: TileId, target: usize) -> Option<TileReconfig> {
        let slots = self.slots.get_mut(tile)?;
        let i = slots.iter().position(|(t, _)| *t == target)?;
        Some(slots.remove(i).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Direction;

    fn patch(n: usize) -> DataPatch {
        DataPatch::new(0, vec![Word::ZERO; n])
    }

    #[test]
    fn bytes_accounting() {
        let rc = TileReconfig {
            program: Some(vec![0u128; 10]),
            data_patches: vec![patch(4), patch(2)],
        };
        assert_eq!(rc.bytes(), 10 * 9 + 6 * 6);
        assert!(!rc.is_noop());
        assert!(TileReconfig::default().is_noop());
    }

    #[test]
    fn plan_times_match_cost_model() {
        let cost = CostModel::with_link_cost(100.0);
        let mut plan = ReconfigPlan::default();
        plan.add_tile(
            0,
            TileReconfig {
                program: None,
                data_patches: vec![patch(1)],
            },
        );
        plan.changed_links = 3;
        // one data word = 33.33ns; 3 links at 100ns = 300ns.
        assert!((plan.memory_reconfig_ns(&cost) - cost.data_word_reload_ns()).abs() < 1e-9);
        assert!((plan.link_reconfig_ns(&cost) - 300.0).abs() < 1e-9);
        assert!((plan.total_ns(&cost) - (300.0 + cost.data_word_reload_ns())).abs() < 1e-9);
    }

    #[test]
    fn overlap_excludes_only_touched_tiles() {
        let mut plan = ReconfigPlan::default();
        plan.add_tile(
            1,
            TileReconfig {
                program: Some(vec![0]),
                data_patches: vec![],
            },
        );
        plan.add_tile(3, TileReconfig::default()); // no-op entry
        assert_eq!(plan.stalled_tiles(), vec![1]);
        assert_eq!(plan.overlappable_tiles(4), vec![0, 2, 3]);
    }

    #[test]
    fn merge_tile_rewrites() {
        let mut plan = ReconfigPlan::default();
        plan.add_tile(
            2,
            TileReconfig {
                program: None,
                data_patches: vec![patch(1)],
            },
        );
        plan.add_tile(
            2,
            TileReconfig {
                program: Some(vec![7]),
                data_patches: vec![patch(2)],
            },
        );
        assert_eq!(plan.tiles.len(), 1);
        let (_, rc) = &plan.tiles[0];
        assert_eq!(rc.program.as_deref(), Some(&[7u128][..]));
        assert_eq!(rc.data_patches.len(), 2);
    }

    #[test]
    fn shadow_slots_commit_by_tag_not_order() {
        let mut shadow = ShadowConfig::new(2, 2);
        let early = TileReconfig {
            program: Some(vec![1]),
            data_patches: vec![],
        };
        let late = TileReconfig {
            program: Some(vec![2]),
            data_patches: vec![],
        };
        // Staged out of commit order: target 9 first, then target 4.
        shadow.stage(1, 9, late.clone()).unwrap();
        shadow.stage(1, 4, early.clone()).unwrap();
        assert_eq!(shadow.pending(1), 2);
        assert_eq!(shadow.commit(1, 4), Some(early));
        assert_eq!(shadow.commit(1, 4), None);
        assert_eq!(shadow.commit(1, 9), Some(late));
        assert_eq!(shadow.pending_total(), 0);
    }

    #[test]
    fn shadow_rejects_overflow_and_duplicates() {
        let mut shadow = ShadowConfig::new(1, 1);
        shadow.stage(0, 3, TileReconfig::default()).unwrap();
        assert_eq!(
            shadow.stage(0, 3, TileReconfig::default()),
            Err(ShadowError::DuplicateTarget { tile: 0, target: 3 })
        );
        assert_eq!(
            shadow.stage(0, 5, TileReconfig::default()),
            Err(ShadowError::QueueFull { tile: 0, depth: 1 })
        );
        assert_eq!(
            shadow.stage(7, 1, TileReconfig::default()),
            Err(ShadowError::UnknownTile(7))
        );
    }

    #[test]
    fn from_link_change_counts_delta() {
        let a = LinkConfig::disconnected(4).with(0, Direction::East);
        let b = LinkConfig::disconnected(4).with(1, Direction::West);
        let plan = ReconfigPlan::from_link_change(&a, &b);
        assert_eq!(plan.changed_links, 2);
    }
}
