//! Error type shared by the fabric model.

/// Errors raised by the fabric model (memories, links, reconfiguration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A data-memory access addressed past the 512-word window.
    DataAddressOutOfRange {
        /// Offending address.
        addr: usize,
    },
    /// A program image exceeded the 512-slot instruction memory.
    ProgramTooLarge {
        /// Image length.
        len: usize,
        /// Slot capacity.
        cap: usize,
    },
    /// Instruction fetch past the loaded program.
    PcOutOfRange {
        /// Offending program counter.
        pc: usize,
        /// Loaded program length.
        len: usize,
    },
    /// The 2R/1W per-cycle port budget of a data BRAM pair was exceeded.
    PortBudgetExceeded {
        /// "read" or "write".
        kind: &'static str,
        /// The per-cycle budget that was exceeded.
        limit: u8,
    },
    /// A tile coordinate outside the mesh was referenced.
    TileOutOfRange {
        /// Row requested.
        row: usize,
        /// Column requested.
        col: usize,
        /// Mesh rows.
        rows: usize,
        /// Mesh cols.
        cols: usize,
    },
    /// A link was requested between tiles that are not mesh neighbours.
    NotNeighbours {
        /// Source tile index.
        from: usize,
        /// Destination tile index.
        to: usize,
    },
    /// A tile attempted a neighbour write with no active outgoing link.
    NoActiveLink {
        /// Tile that attempted the write.
        tile: usize,
    },
    /// A configuration referenced a tile id not present in the mesh.
    UnknownTile {
        /// Offending tile id.
        tile: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::DataAddressOutOfRange { addr } => {
                write!(f, "data memory address {addr} out of range (512 words)")
            }
            FabricError::ProgramTooLarge { len, cap } => {
                write!(f, "program of {len} instructions exceeds {cap}-slot memory")
            }
            FabricError::PcOutOfRange { pc, len } => {
                write!(f, "pc {pc} out of range for program of length {len}")
            }
            FabricError::PortBudgetExceeded { kind, limit } => {
                write!(f, "exceeded {limit} {kind} port(s) in one cycle")
            }
            FabricError::TileOutOfRange {
                row,
                col,
                rows,
                cols,
            } => write!(f, "tile ({row},{col}) outside {rows}x{cols} mesh"),
            FabricError::NotNeighbours { from, to } => {
                write!(f, "tiles {from} and {to} are not mesh neighbours")
            }
            FabricError::NoActiveLink { tile } => {
                write!(f, "tile {tile} has no active outgoing link")
            }
            FabricError::UnknownTile { tile } => write!(f, "unknown tile id {tile}"),
        }
    }
}

impl std::error::Error for FabricError {}
