//! The calibrated cost model of the prototype (Section 2 / 3.1 of the paper).
//!
//! All times are nanoseconds (`f64`). The defaults reproduce the paper's
//! constants:
//!
//! * 400 MHz tile clock => **2.5 ns** per instruction,
//! * ICAP reconfiguration at **180 MB/s** => a 48-bit (6-byte) data word
//!   reloads in **33.33 ns**, a 72-bit (9-byte) instruction word in 50 ns,
//! * a per-link reconfiguration cost `L` (the swept design parameter of
//!   Figures 10-12).

use crate::mem::{DATA_WORD_BYTES, INSTR_BYTES};

/// Cost model of the fabric; every figure/table bench reads its constants
/// from here so a single struct parameterizes the whole design space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Tile clock frequency in MHz (paper: 400).
    pub clock_mhz: f64,
    /// ICAP partial-reconfiguration bandwidth in MB/s (paper: 180).
    pub icap_mb_per_s: f64,
    /// Cost of re-routing one 48-wire link, ns (paper's swept `L`).
    pub link_reconfig_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_mhz: 400.0,
            icap_mb_per_s: 180.0,
            link_reconfig_ns: 0.0,
        }
    }
}

impl CostModel {
    /// The paper's prototype constants with a given link cost `L` (ns).
    pub fn with_link_cost(link_reconfig_ns: f64) -> CostModel {
        CostModel {
            link_reconfig_ns,
            ..CostModel::default()
        }
    }

    /// Nanoseconds per clock cycle (2.5 ns at 400 MHz).
    #[inline]
    pub fn cycle_ns(&self) -> f64 {
        1e3 / self.clock_mhz
    }

    /// Nanoseconds to stream `bytes` through the ICAP.
    #[inline]
    pub fn icap_ns(&self, bytes: usize) -> f64 {
        bytes as f64 / (self.icap_mb_per_s * 1e6) * 1e9
    }

    /// Nanoseconds to reload one 48-bit data word (33.33 ns at 180 MB/s).
    #[inline]
    pub fn data_word_reload_ns(&self) -> f64 {
        self.icap_ns(DATA_WORD_BYTES)
    }

    /// Nanoseconds to reload `n` data words.
    #[inline]
    pub fn data_reload_ns(&self, n: usize) -> f64 {
        self.data_word_reload_ns() * n as f64
    }

    /// Nanoseconds to reload one 72-bit instruction word (50 ns at 180 MB/s).
    #[inline]
    pub fn instr_word_reload_ns(&self) -> f64 {
        self.icap_ns(INSTR_BYTES)
    }

    /// Nanoseconds to reload a program of `n` instructions.
    #[inline]
    pub fn instr_reload_ns(&self, n: usize) -> f64 {
        self.instr_word_reload_ns() * n as f64
    }

    /// Nanoseconds to execute `cycles` instructions.
    #[inline]
    pub fn exec_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_ns()
    }

    /// Nanoseconds to re-route `links` links (the paper's `tau_ij ~ l_ij`).
    #[inline]
    pub fn links_reconfig_ns(&self, links: usize) -> f64 {
        self.link_reconfig_ns * links as f64
    }

    /// Prices a [`TransitionBreakdown`]'s three components and total.
    pub fn transition_ns(&self, b: &TransitionBreakdown) -> (f64, f64, f64, f64) {
        let data = self.data_reload_ns(b.data_words);
        let instr = self.instr_reload_ns(b.instr_words);
        let links = self.links_reconfig_ns(b.links);
        (data, instr, links, data + instr + links)
    }

    /// Whole cycles a tile stalls while `ns` of reconfiguration streams
    /// through the ICAP (the switch is rounded *up* to the clock — a
    /// tile cannot resume mid-cycle). The single definition shared by
    /// the simulator's epoch runner and the WCET timing engine, so the
    /// two can never disagree by a cycle.
    #[inline]
    pub fn stall_cycles(&self, ns: f64) -> u64 {
        (ns / self.cycle_ns()).ceil() as u64
    }
}

/// What one epoch switch streams through the ICAP, split by kind — the
/// exact per-transition decomposition of Eq. 1's `tau_ij` term (words
/// reloaded x per-word ns) rather than only the aggregate, so the
/// reconfiguration-diff minimizer can report exact savings.
///
/// Priced through [`CostModel::transition_ns`]; the total may differ from
/// [`crate::ReconfigPlan::total_ns`] by float rounding only (`< 1e-9`
/// relative), never by accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionBreakdown {
    /// 48-bit data-memory words rewritten (33.33 ns each at 180 MB/s).
    pub data_words: usize,
    /// 72-bit instruction words reloaded (50 ns each at 180 MB/s).
    pub instr_words: usize,
    /// 48-wire links re-routed (`L` ns each).
    pub links: usize,
}

impl TransitionBreakdown {
    /// Data-word reload time, ns.
    pub fn data_ns(&self, cost: &CostModel) -> f64 {
        cost.data_reload_ns(self.data_words)
    }

    /// Instruction-word reload time, ns.
    pub fn instr_ns(&self, cost: &CostModel) -> f64 {
        cost.instr_reload_ns(self.instr_words)
    }

    /// Link re-routing time, ns.
    pub fn link_ns(&self, cost: &CostModel) -> f64 {
        cost.links_reconfig_ns(self.links)
    }

    /// Total switch time, ns.
    pub fn total_ns(&self, cost: &CostModel) -> f64 {
        self.data_ns(cost) + self.instr_ns(cost) + self.link_ns(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = CostModel::default();
        assert!((m.cycle_ns() - 2.5).abs() < 1e-12);
        // 6 bytes at 180 MB/s = 33.33 ns
        assert!((m.data_word_reload_ns() - 33.333).abs() < 1e-2);
        // 9 bytes at 180 MB/s = 50 ns
        assert!((m.instr_word_reload_ns() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn reload_scales_linearly() {
        let m = CostModel::default();
        assert!((m.data_reload_ns(128) - 128.0 * m.data_word_reload_ns()).abs() < 1e-9);
        assert!((m.instr_reload_ns(101) - 101.0 * 50.0).abs() < 1e-6);
    }

    #[test]
    fn exec_time() {
        let m = CostModel::default();
        // Table 1: BF0 is 101 instructions; 1068.8 cycles of work => the
        // model converts cycles to ns at 2.5ns.
        assert!((m.exec_ns(1000) - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn stall_rounds_up_to_the_clock() {
        let m = CostModel::default(); // 2.5 ns/cycle
        assert_eq!(m.stall_cycles(0.0), 0);
        assert_eq!(m.stall_cycles(2.5), 1);
        assert_eq!(m.stall_cycles(2.6), 2);
        assert_eq!(m.stall_cycles(100.0), 40);
        // One instruction word (50 ns) = 20 cycles exactly.
        assert_eq!(m.stall_cycles(m.instr_word_reload_ns()), 20);
    }

    #[test]
    fn link_cost() {
        let m = CostModel::with_link_cost(700.0);
        assert!((m.links_reconfig_ns(8) - 5600.0).abs() < 1e-9);
        assert_eq!(CostModel::default().links_reconfig_ns(10), 0.0);
    }
}
