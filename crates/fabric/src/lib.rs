//! # cgra-fabric
//!
//! Model of the reMORPH-style partially reconfigurable CGRA fabric from
//! *"Design and Implementation of High Performance Architectures with
//! Partially Reconfigurable CGRAs"* (IPDPSW 2013):
//!
//! * [`word`] — the 48-bit PE machine word and the kernels' Q-format,
//! * [`mem`] — 512x48 data memories (2R/1W port discipline) and 512x72
//!   instruction memories,
//! * [`tile`] — one coarse-grain reconfigurable module,
//! * [`link`]/[`mesh`] — malleable near-neighbour interconnect on a
//!   rectangular mesh,
//! * [`reconfig`] — the ICAP partial-reconfiguration engine with
//!   compute/reconfigure overlap,
//! * [`bitstream`] — the framed on-flash partial-bitstream format
//!   (serialize/parse/apply),
//! * [`cost`] — the calibrated cost model (400 MHz, 180 MB/s ICAP,
//!   parametric per-link cost `L`),
//! * [`rng`]/[`par`] — in-tree PRNG and parallel fan-out helpers keeping
//!   the workspace dependency-free.

#![warn(missing_docs)]

pub mod bitstream;
pub mod cost;
pub mod error;
pub mod link;
pub mod mem;
pub mod mesh;
pub mod par;
pub mod reconfig;
pub mod rng;
pub mod tile;
pub mod word;

pub use cost::{CostModel, TransitionBreakdown};
pub use error::FabricError;
pub use link::{Direction, LinkConfig, TileId, LINK_WIRES};
pub use mem::{DataMemory, InstrMemory, RawInstr, DATA_WORDS, INSTR_SLOTS};
pub use mesh::Mesh;
pub use par::parallel_map;
pub use reconfig::{DataPatch, ReconfigPlan, ShadowConfig, ShadowError, TileReconfig};
pub use rng::Rng;
pub use tile::Tile;
pub use word::{Word, WORD_BITS};
