//! A small deterministic PRNG.
//!
//! The workspace builds offline with no external crates, so the stochastic
//! pieces (annealing placement, randomized property tests) draw from this
//! seedable SplitMix64/xoshiro256** generator instead of `rand`. Runs are
//! reproducible: the same seed always yields the same stream.

/// A seedable xoshiro256** PRNG (SplitMix64-initialized).
///
/// Not cryptographic — statistical quality only, which is all the
/// annealer and the test generators need.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range(0)");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.gen_range((hi - lo) as usize) as i64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(13);
            assert!(v < 13);
            let w = r.gen_range_i64(-5, 6);
            assert!((-5..6).contains(&w));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = Rng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
