//! The 48-bit machine word of the reMORPH processing element.
//!
//! The paper's PE operates on a 48-bit datapath (two `512 x 48` dual-port
//! data BRAMs). We model a word as a sign-extended 48-bit integer stored in
//! an `i64`. All arithmetic wraps modulo 2^48, mirroring what a DSP48-based
//! datapath does when the guard bits are dropped on write-back.

/// Number of payload bits in a PE word.
pub const WORD_BITS: u32 = 48;

/// Bit mask covering the 48 payload bits.
pub const WORD_MASK: u64 = (1u64 << WORD_BITS) - 1;

/// Smallest representable word value (-2^47).
pub const WORD_MIN: i64 = -(1i64 << (WORD_BITS - 1));

/// Largest representable word value (2^47 - 1).
pub const WORD_MAX: i64 = (1i64 << (WORD_BITS - 1)) - 1;

/// A 48-bit two's-complement machine word.
///
/// The inner `i64` is always kept sign-extended: every constructor and
/// arithmetic operation re-normalizes through [`Word::wrap`], so two `Word`s
/// compare equal iff their 48-bit patterns are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Word(i64);

impl Word {
    /// The zero word.
    pub const ZERO: Word = Word(0);
    /// The word with value one.
    pub const ONE: Word = Word(1);

    /// Builds a word from an `i64`, wrapping into 48 bits.
    #[inline]
    pub fn wrap(v: i64) -> Word {
        // Shift the 48-bit pattern to the top of the i64 and arithmetic-shift
        // back down: this both truncates to 48 bits and sign-extends.
        Word((v << (64 - WORD_BITS)) >> (64 - WORD_BITS))
    }

    /// Builds a word from a raw 48-bit pattern (upper 16 bits ignored).
    #[inline]
    pub fn from_bits(bits: u64) -> Word {
        Word::wrap((bits & WORD_MASK) as i64)
    }

    /// The sign-extended integer value of this word.
    #[inline]
    pub fn value(self) -> i64 {
        self.0
    }

    /// The raw 48-bit pattern of this word.
    #[inline]
    pub fn bits(self) -> u64 {
        (self.0 as u64) & WORD_MASK
    }

    /// Wrapping addition.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Word) -> Word {
        Word::wrap(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping subtraction.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Word) -> Word {
        Word::wrap(self.0.wrapping_sub(rhs.0))
    }

    /// Fixed-point multiplication: `(self * rhs) >> frac`, computed in 128-bit
    /// precision (the DSP48 cascade keeps the full product before the shifter
    /// selects the output window).
    #[inline]
    pub fn mul_frac(self, rhs: Word, frac: u32) -> Word {
        let prod = (self.0 as i128) * (rhs.0 as i128);
        Word::wrap((prod >> frac) as i64)
    }

    /// Bitwise AND over the 48-bit patterns.
    #[inline]
    pub fn and(self, rhs: Word) -> Word {
        Word::from_bits(self.bits() & rhs.bits())
    }

    /// Bitwise OR over the 48-bit patterns.
    #[inline]
    pub fn or(self, rhs: Word) -> Word {
        Word::from_bits(self.bits() | rhs.bits())
    }

    /// Bitwise XOR over the 48-bit patterns.
    #[inline]
    pub fn xor(self, rhs: Word) -> Word {
        Word::from_bits(self.bits() ^ rhs.bits())
    }

    /// Bitwise NOT over the 48-bit pattern.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Word {
        Word::from_bits(!self.bits())
    }

    /// Logical shift left by `n` (values >= 48 produce zero).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, n: u32) -> Word {
        if n >= WORD_BITS {
            Word::ZERO
        } else {
            Word::from_bits(self.bits() << n)
        }
    }

    /// Arithmetic shift right by `n` (saturates at the sign fill).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, n: u32) -> Word {
        let n = n.min(63);
        Word::wrap(self.0 >> n)
    }

    /// True iff the word is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True iff the word is negative (bit 47 set).
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl From<i64> for Word {
    fn from(v: i64) -> Word {
        Word::wrap(v)
    }
}

impl From<i32> for Word {
    fn from(v: i32) -> Word {
        Word::wrap(v as i64)
    }
}

impl From<Word> for i64 {
    fn from(w: Word) -> i64 {
        w.value()
    }
}

impl std::fmt::Debug for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Word({})", self.0)
    }
}

impl std::fmt::Display for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::ops::Add for Word {
    type Output = Word;
    fn add(self, rhs: Word) -> Word {
        Word::add(self, rhs)
    }
}

impl std::ops::Sub for Word {
    type Output = Word;
    fn sub(self, rhs: Word) -> Word {
        Word::sub(self, rhs)
    }
}

impl std::ops::Neg for Word {
    type Output = Word;
    fn neg(self) -> Word {
        Word::ZERO.sub(self)
    }
}

/// Fixed-point helpers in the Q-format used by the FFT and DCT kernels.
///
/// The kernels store fractional values with [`fixed::FRAC_BITS`] fractional bits,
/// leaving 23 integer bits of headroom — enough for the up-to-`N`-fold
/// magnitude growth of an unscaled 1024-point FFT.
pub mod fixed {
    use super::Word;

    /// Fractional bits of the kernel Q-format (Q24.24 within 48 bits).
    pub const FRAC_BITS: u32 = 24;

    /// Scale factor (2^24).
    pub const SCALE: f64 = (1u64 << FRAC_BITS) as f64;

    /// Converts an `f64` to the Q-format, rounding to nearest.
    #[inline]
    pub fn from_f64(v: f64) -> Word {
        Word::wrap((v * SCALE).round() as i64)
    }

    /// Converts a Q-format word back to `f64`.
    #[inline]
    pub fn to_f64(w: Word) -> f64 {
        w.value() as f64 / SCALE
    }

    /// Fixed-point multiply in the kernel Q-format.
    #[inline]
    pub fn mul(a: Word, b: Word) -> Word {
        a.mul_frac(b, FRAC_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_sign_extends() {
        assert_eq!(Word::wrap(WORD_MAX).value(), WORD_MAX);
        assert_eq!(Word::wrap(WORD_MAX + 1).value(), WORD_MIN);
        assert_eq!(Word::wrap(-1).value(), -1);
        assert_eq!(Word::wrap(-1).bits(), WORD_MASK);
    }

    #[test]
    fn from_bits_roundtrip() {
        for v in [0i64, 1, -1, 12345, -98765, WORD_MAX, WORD_MIN] {
            let w = Word::wrap(v);
            assert_eq!(Word::from_bits(w.bits()), w);
        }
    }

    #[test]
    fn add_wraps_at_48_bits() {
        let max = Word::wrap(WORD_MAX);
        assert_eq!(max.add(Word::ONE).value(), WORD_MIN);
        let min = Word::wrap(WORD_MIN);
        assert_eq!(min.sub(Word::ONE).value(), WORD_MAX);
    }

    #[test]
    fn mul_frac_matches_f64() {
        let a = fixed::from_f64(1.5);
        let b = fixed::from_f64(-2.25);
        let p = fixed::mul(a, b);
        assert!((fixed::to_f64(p) - (-3.375)).abs() < 1e-6);
    }

    #[test]
    fn mul_frac_uses_full_precision() {
        // 2^30 * 2^30 = 2^60 overflows i64*i64 windows if done naively in
        // 64-bit; with a 36-bit shift the result 2^24 must survive.
        let a = Word::wrap(1 << 30);
        let p = a.mul_frac(a, 36);
        assert_eq!(p.value(), 1 << 24);
    }

    #[test]
    fn shifts() {
        assert_eq!(Word::wrap(5).shl(2).value(), 20);
        assert_eq!(Word::wrap(-8).shr(2).value(), -2);
        assert_eq!(Word::wrap(123).shl(60), Word::ZERO);
        assert_eq!(Word::wrap(-1).shr(100).value(), -1);
        // shl drops bits past bit 47.
        assert_eq!(Word::wrap(1).shl(47).value(), WORD_MIN);
    }

    #[test]
    fn bitops_operate_on_patterns() {
        let a = Word::wrap(-1);
        assert_eq!(a.and(Word::wrap(0xff)).value(), 0xff);
        assert_eq!(Word::ZERO.not(), a);
        assert_eq!(a.xor(a), Word::ZERO);
        assert_eq!(Word::wrap(0b1010).or(Word::wrap(0b0101)).value(), 0b1111);
    }

    #[test]
    fn predicates() {
        assert!(Word::ZERO.is_zero());
        assert!(Word::wrap(-3).is_negative());
        assert!(!Word::wrap(3).is_negative());
    }

    #[test]
    fn fixed_point_roundtrip() {
        for v in [0.0, 1.0, -1.0, 0.5, std::f64::consts::PI, -123.456] {
            let w = fixed::from_f64(v);
            assert!((fixed::to_f64(w) - v).abs() < 1e-6, "{v}");
        }
    }
}
