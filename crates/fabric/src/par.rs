//! Minimal parallel fan-out on `std::thread::scope`.
//!
//! The workspace avoids external crates, so the embarrassingly-parallel
//! spots (annealing restarts, DSE sweeps) use this helper instead of
//! `rayon`. Results come back in input order regardless of which thread
//! finished first.

/// Applies `f` to every item, fanning out across up to
/// `available_parallelism` threads, and returns the results in input
/// order.
///
/// `f` must be `Sync` because multiple worker threads call it
/// concurrently. Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Feed a shared work queue of (index, item); collect (index, result).
    let queue = std::sync::Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>());
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results = std::sync::Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        results.lock().expect("results poisoned").push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    for (i, r) in results.into_inner().expect("results poisoned") {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |i| i), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn actually_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let out = parallel_map((0..57).collect(), |i: usize| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 57);
        assert_eq!(out.len(), 57);
    }
}
