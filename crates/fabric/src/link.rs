//! Malleable near-neighbour links.
//!
//! The interconnect is *semi-systolic*: at any instant each tile drives at
//! most **one** outgoing 48-wire link toward one of its four mesh neighbours
//! ("each tile is connected to its neighbour in one of the four principal
//! directions at any instant in time"). A tile writes into the data memory
//! of the neighbour its link currently points at; reads are always local.
//!
//! A [`LinkConfig`] captures the whole array's connectivity for one epoch.
//! Reconfiguring from one epoch to the next costs time proportional to the
//! number of **changed** links ([`LinkConfig::delta`], the paper's `l_ij`).

/// Wires per link (one 48-bit word path).
pub const LINK_WIRES: u32 = 48;

/// The four principal mesh directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward row - 1.
    North,
    /// Toward col + 1.
    East,
    /// Toward row + 1.
    South,
    /// Toward col - 1.
    West,
}

impl Direction {
    /// All four directions, in N/E/S/W order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// (row, col) step for this direction.
    pub fn delta(self) -> (isize, isize) {
        match self {
            Direction::North => (-1, 0),
            Direction::East => (0, 1),
            Direction::South => (1, 0),
            Direction::West => (0, -1),
        }
    }

    /// Compact single-letter name.
    pub fn letter(self) -> char {
        match self {
            Direction::North => 'N',
            Direction::East => 'E',
            Direction::South => 'S',
            Direction::West => 'W',
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Identifier of a tile: its linear index in row-major mesh order.
pub type TileId = usize;

/// Connectivity of the whole array for one epoch: for each tile, the
/// direction of its single active outgoing link (or `None` when idle).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkConfig {
    out: Vec<Option<Direction>>,
}

impl LinkConfig {
    /// A configuration for `tiles` tiles with every link inactive.
    pub fn disconnected(tiles: usize) -> LinkConfig {
        LinkConfig {
            out: vec![None; tiles],
        }
    }

    /// Number of tiles covered by this configuration.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when the configuration covers zero tiles.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Sets tile `t`'s outgoing link direction.
    pub fn set(&mut self, t: TileId, dir: Option<Direction>) {
        if t >= self.out.len() {
            self.out.resize(t + 1, None);
        }
        self.out[t] = dir;
    }

    /// Builder-style [`LinkConfig::set`].
    pub fn with(mut self, t: TileId, dir: Direction) -> LinkConfig {
        self.set(t, Some(dir));
        self
    }

    /// Tile `t`'s outgoing link direction.
    pub fn get(&self, t: TileId) -> Option<Direction> {
        self.out.get(t).copied().flatten()
    }

    /// Number of active links.
    pub fn active_links(&self) -> usize {
        self.out.iter().filter(|d| d.is_some()).count()
    }

    /// The paper's `l_ij`: how many tile link settings differ between the
    /// two configurations (each change re-routes one 48-wire link).
    pub fn delta(&self, other: &LinkConfig) -> usize {
        let n = self.out.len().max(other.out.len());
        (0..n).filter(|&t| self.get(t) != other.get(t)).count()
    }

    /// Tiles whose link setting differs from `other` (the tiles whose
    /// interconnect region must be partially reconfigured).
    pub fn changed_tiles(&self, other: &LinkConfig) -> Vec<TileId> {
        let n = self.out.len().max(other.out.len());
        (0..n).filter(|&t| self.get(t) != other.get(t)).collect()
    }

    /// Iterates `(tile, direction)` over active links.
    pub fn iter_active(&self) -> impl Iterator<Item = (TileId, Direction)> + '_ {
        self.out
            .iter()
            .enumerate()
            .filter_map(|(t, d)| d.map(|d| (t, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dr, dc) = d.delta();
            let (or, oc) = d.opposite().delta();
            assert_eq!((dr + or, dc + oc), (0, 0));
        }
    }

    #[test]
    fn delta_counts_changes() {
        let a = LinkConfig::disconnected(4)
            .with(0, Direction::East)
            .with(1, Direction::South);
        let b = LinkConfig::disconnected(4)
            .with(0, Direction::East)
            .with(2, Direction::North);
        // tile 0 unchanged, tile 1 cleared, tile 2 set => 2 changes.
        assert_eq!(a.delta(&b), 2);
        assert_eq!(b.delta(&a), 2);
        assert_eq!(a.delta(&a), 0);
        assert_eq!(b.changed_tiles(&a), vec![1, 2]);
    }

    #[test]
    fn delta_handles_length_mismatch() {
        let a = LinkConfig::disconnected(2).with(1, Direction::East);
        let b = LinkConfig::disconnected(5).with(4, Direction::West);
        assert_eq!(a.delta(&b), 2);
    }

    #[test]
    fn active_links_counted() {
        let mut c = LinkConfig::disconnected(8);
        assert_eq!(c.active_links(), 0);
        c.set(3, Some(Direction::West));
        c.set(5, Some(Direction::North));
        assert_eq!(c.active_links(), 2);
        assert_eq!(c.iter_active().count(), 2);
        c.set(3, None);
        assert_eq!(c.active_links(), 1);
    }
}
