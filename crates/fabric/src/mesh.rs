//! The rectangular mesh of tiles.

use crate::error::FabricError;
use crate::link::{Direction, LinkConfig, TileId};

/// A rows x cols mesh topology (coordinates only; tile state lives in
/// [`crate::tile::Tile`] / the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    rows: usize,
    cols: usize,
}

impl Mesh {
    /// Creates a mesh of `rows x cols` tiles.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Mesh {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be non-zero");
        Mesh { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Linear id of the tile at `(row, col)`.
    pub fn id(&self, row: usize, col: usize) -> Result<TileId, FabricError> {
        if row >= self.rows || col >= self.cols {
            return Err(FabricError::TileOutOfRange {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(row * self.cols + col)
    }

    /// `(row, col)` of tile `t`.
    pub fn coords(&self, t: TileId) -> Result<(usize, usize), FabricError> {
        if t >= self.tiles() {
            return Err(FabricError::UnknownTile { tile: t });
        }
        Ok((t / self.cols, t % self.cols))
    }

    /// The neighbour of `t` in direction `dir`, if it exists.
    pub fn neighbour(&self, t: TileId, dir: Direction) -> Option<TileId> {
        let (r, c) = self.coords(t).ok()?;
        let (dr, dc) = dir.delta();
        let nr = r.checked_add_signed(dr)?;
        let nc = c.checked_add_signed(dc)?;
        if nr >= self.rows || nc >= self.cols {
            None
        } else {
            Some(nr * self.cols + nc)
        }
    }

    /// All in-mesh neighbours of `t` with their directions.
    pub fn neighbours(&self, t: TileId) -> Vec<(Direction, TileId)> {
        Direction::ALL
            .iter()
            .filter_map(|&d| self.neighbour(t, d).map(|n| (d, n)))
            .collect()
    }

    /// Manhattan distance between two tiles (hops a `cp` chain must cover).
    pub fn distance(&self, a: TileId, b: TileId) -> Result<usize, FabricError> {
        let (ar, ac) = self.coords(a)?;
        let (br, bc) = self.coords(b)?;
        Ok(ar.abs_diff(br) + ac.abs_diff(bc))
    }

    /// Checks that every active link in `cfg` stays inside the mesh and that
    /// `cfg` covers no tile beyond the mesh.
    pub fn validate_links(&self, cfg: &LinkConfig) -> Result<(), FabricError> {
        if cfg.len() > self.tiles() {
            return Err(FabricError::UnknownTile {
                tile: cfg.len() - 1,
            });
        }
        for (t, dir) in cfg.iter_active() {
            if self.neighbour(t, dir).is_none() {
                let to = t; // off-mesh: report the source tile on both ends
                return Err(FabricError::NotNeighbours { from: t, to });
            }
        }
        Ok(())
    }

    /// A fully disconnected link configuration sized for this mesh.
    pub fn disconnected(&self) -> LinkConfig {
        LinkConfig::disconnected(self.tiles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coords_roundtrip() {
        let m = Mesh::new(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                let id = m.id(r, c).unwrap();
                assert_eq!(m.coords(id).unwrap(), (r, c));
            }
        }
        assert!(m.id(3, 0).is_err());
        assert!(m.coords(12).is_err());
    }

    #[test]
    fn neighbours_at_edges() {
        let m = Mesh::new(2, 2);
        // tile 0 = (0,0): no North, no West.
        assert_eq!(m.neighbour(0, Direction::North), None);
        assert_eq!(m.neighbour(0, Direction::West), None);
        assert_eq!(m.neighbour(0, Direction::East), Some(1));
        assert_eq!(m.neighbour(0, Direction::South), Some(2));
        assert_eq!(m.neighbours(3).len(), 2);
        assert_eq!(m.neighbours(0).len(), 2);
    }

    #[test]
    fn neighbour_relation_is_symmetric() {
        let m = Mesh::new(4, 5);
        for t in 0..m.tiles() {
            for (d, n) in m.neighbours(t) {
                assert_eq!(m.neighbour(n, d.opposite()), Some(t));
            }
        }
    }

    #[test]
    fn distance_is_manhattan() {
        let m = Mesh::new(4, 4);
        let a = m.id(0, 0).unwrap();
        let b = m.id(3, 2).unwrap();
        assert_eq!(m.distance(a, b).unwrap(), 5);
        assert_eq!(m.distance(a, a).unwrap(), 0);
    }

    #[test]
    fn validate_rejects_off_mesh_links() {
        let m = Mesh::new(2, 2);
        let ok = m.disconnected().with(0, Direction::East);
        assert!(m.validate_links(&ok).is_ok());
        let bad = m.disconnected().with(0, Direction::North);
        assert!(m.validate_links(&bad).is_err());
        let oversized = LinkConfig::disconnected(9);
        assert!(m.validate_links(&oversized).is_err());
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        Mesh::new(0, 3);
    }
}
