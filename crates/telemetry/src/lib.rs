//! # cgra-telemetry
//!
//! Structured observability for the remorph stack: one event
//! vocabulary spoken by every producer (the cycle engine, the epoch
//! runner, the WCET annotator) and folded by every consumer (counters,
//! the Gantt trace, the Chrome-trace and metrics exporters).
//!
//! The paper's Eq. 1 splits runtime into computation, reconfiguration
//! and copy time; this crate makes each term *observable* on real runs:
//!
//! * [`Event`] — epoch brackets, per-tile busy/stall segments, link
//!   transfers with word counts, reconfiguration transitions carrying
//!   the exact [`cgra_fabric::cost::TransitionBreakdown`], and static
//!   WCET bounds riding along the stream.
//! * [`EventSink`] / [`Recorder`] — the consumer interface and the
//!   standard in-memory sink. **Zero cost when disabled**: with no sink
//!   installed the simulator pays one branch per cycle (held to < 2%
//!   overhead by the WCET-conformance gate).
//! * [`Counters`] — the metrics registry folded from the stream, with
//!   [`conservation_violations`] checking the invariants that keep
//!   producers honest (words sent == words received, activity fits
//!   epoch spans, fine segments agree with summaries).
//! * [`SweepCounters`] / [`SweepStats`] — per-worker counters threaded
//!   through the `cgra-explore` parallel sweep pool (candidates
//!   evaluated / pruned-by-WCET / cache hits), merged and
//!   conservation-checked by [`sweep_conservation_violations`] so the
//!   DSE engine cannot silently drop a design point.
//! * [`chrome_trace`] / [`metrics_json`] — exporters: a Chrome
//!   trace-event document loadable in Perfetto (compute and reconfig
//!   stalls as separately-colored slices per tile, WCET bounds as
//!   counter tracks) and a flat JSON metrics dump. [`validate_chrome`]
//!   and [`json::parse`] close the loop in CI.
//!
//! The dependency-free [`json`] module validates everything the crate
//! (and the `cgra-explore` sweep reports) emit:
//!
//! ```
//! use cgra_telemetry::json;
//!
//! let doc = r#"{"sweep": "fft-64", "hit_rate": 0.75, "rows": [1, 2, 3]}"#;
//! let v = json::parse(doc).expect("well-formed");
//! assert_eq!(v.get("sweep").and_then(|s| s.as_str()), Some("fft-64"));
//! assert_eq!(v.get("hit_rate").and_then(|h| h.as_f64()), Some(0.75));
//! assert_eq!(v.get("rows").and_then(|r| r.as_arr()).map(|r| r.len()), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod counters;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sweep;

pub use chrome::{chrome_trace, validate_chrome, ChromeSummary};
pub use counters::{conservation_violations, Counters, TileCounters};
pub use event::{Coalescer, Event, EventSink, NullSink, Recorder, SegState};
pub use metrics::metrics_json;
pub use sweep::{sweep_conservation_violations, SweepCounters, SweepStats};
