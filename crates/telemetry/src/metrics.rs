//! Flat JSON metrics export: the [`Counters`] registry plus WCET
//! totals and the conservation verdict, as one machine-readable
//! document (the `cgra-trace --format json` output and the shape the
//! runtime-trajectory benchmark records).

use crate::counters::{conservation_violations, Counters};
use crate::event::Event;
use crate::json::esc;
use cgra_fabric::CostModel;

/// Renders the event stream as a flat JSON metrics document.
///
/// `label` names the run (schedule name, benchmark id); it is embedded
/// verbatim (escaped) so downstream tooling can aggregate documents.
pub fn metrics_json(label: &str, events: &[Event], cost: &CostModel) -> String {
    let c = Counters::from_events(events);
    let violations = conservation_violations(events);

    let mut wcet_best = 0.0f64;
    let mut wcet_worst: Option<f64> = Some(0.0);
    let mut have_wcet = false;
    for ev in events {
        if let Event::WcetBound {
            best_ns, worst_ns, ..
        } = ev
        {
            have_wcet = true;
            wcet_best += best_ns;
            wcet_worst = match (wcet_worst, worst_ns) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schedule\": \"{}\",\n", esc(label)));
    out.push_str(&format!("  \"epochs\": {},\n", c.epochs));
    out.push_str(&format!("  \"cycles\": {},\n", c.epoch_cycles));
    out.push_str(&format!(
        "  \"runtime_ns\": {:.4},\n",
        cost.exec_ns(c.epoch_cycles)
    ));
    out.push_str(&format!("  \"utilization\": {:.6},\n", c.utilization()));
    out.push_str(&format!(
        "  \"reconfig\": {{\"data_words\": {}, \"instr_words\": {}, \"links\": {}, \
         \"ns\": {:.4}, \"stall_tile_cycles\": {}, \"overhead\": {:.6}}},\n",
        c.reconfig.data_words,
        c.reconfig.instr_words,
        c.reconfig.links,
        c.reconfig_ns,
        c.reconfig_stall_cycles,
        c.reconfig_overhead(cost)
    ));
    out.push_str(&format!(
        "  \"words\": {{\"sent\": {}, \"received\": {}}},\n",
        c.total_words_sent(),
        c.total_words_received()
    ));
    if have_wcet {
        let worst = wcet_worst.map_or("null".to_string(), |w| format!("{w:.4}"));
        out.push_str(&format!(
            "  \"wcet_ns\": {{\"best\": {wcet_best:.4}, \"worst\": {worst}}},\n"
        ));
    } else {
        out.push_str("  \"wcet_ns\": null,\n");
    }

    out.push_str("  \"tiles\": [\n");
    let tile_lines: Vec<String> = c
        .tiles
        .iter()
        .enumerate()
        .map(|(i, t)| {
            format!(
                "    {{\"tile\": {i}, \"busy\": {}, \"stalled\": {}, \"idle\": {}, \
                 \"words_sent\": {}, \"words_received\": {}}}",
                t.busy, t.stalled, t.idle, t.words_sent, t.words_received
            )
        })
        .collect();
    out.push_str(&tile_lines.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str("  \"links\": [\n");
    let link_lines: Vec<String> = c
        .links
        .iter()
        .map(|((f, t), w)| format!("    {{\"from\": {f}, \"to\": {t}, \"words\": {w}}}"))
        .collect();
    out.push_str(&link_lines.join(",\n"));
    out.push_str("\n  ],\n");

    out.push_str(&format!(
        "  \"conservation\": {{\"ok\": {}, \"violations\": [{}]}}\n",
        violations.is_empty(),
        violations
            .iter()
            .map(|v| format!("\"{}\"", esc(v)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use cgra_fabric::cost::TransitionBreakdown;

    fn sample() -> Vec<Event> {
        vec![
            Event::EpochBegin {
                epoch: 0,
                name: "a".into(),
                at: 0,
            },
            Event::Reconfig {
                epoch: 0,
                at: 0,
                breakdown: TransitionBreakdown {
                    data_words: 4,
                    instr_words: 2,
                    links: 1,
                },
                reconfig_ns: 250.0,
                stall_cycles: 100,
                stalled_tiles: vec![0],
            },
            Event::TileEpoch {
                epoch: 0,
                tile: 0,
                busy: 50,
                stalled: 100,
                words_sent: 8,
                words_received: 0,
            },
            Event::TileEpoch {
                epoch: 0,
                tile: 1,
                busy: 120,
                stalled: 0,
                words_sent: 0,
                words_received: 8,
            },
            Event::EpochEnd {
                epoch: 0,
                name: "a".into(),
                at: 200,
            },
            Event::WcetBound {
                epoch: 0,
                name: "a".into(),
                best_ns: 500.0,
                worst_ns: Some(750.0),
            },
        ]
    }

    #[test]
    fn metrics_parse_back() {
        let cost = CostModel::default();
        let doc = metrics_json("fft-64", &sample(), &cost);
        let v = json::parse(&doc).expect("metrics JSON parses");
        assert_eq!(v.get("schedule").and_then(Json::as_str), Some("fft-64"));
        assert_eq!(v.get("epochs").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("cycles").and_then(Json::as_f64), Some(200.0));
        let words = v.get("words").expect("words");
        assert_eq!(words.get("sent").and_then(Json::as_f64), Some(8.0));
        assert_eq!(words.get("received").and_then(Json::as_f64), Some(8.0));
        let wcet = v.get("wcet_ns").expect("wcet");
        assert_eq!(wcet.get("best").and_then(Json::as_f64), Some(500.0));
        assert_eq!(wcet.get("worst").and_then(Json::as_f64), Some(750.0));
        let cons = v.get("conservation").expect("conservation");
        assert_eq!(cons.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("tiles").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn empty_stream_is_valid_json() {
        let doc = metrics_json("empty", &[], &CostModel::default());
        let v = json::parse(&doc).expect("parses");
        assert_eq!(v.get("epochs").and_then(Json::as_f64), Some(0.0));
        assert_eq!(v.get("utilization").and_then(Json::as_f64), Some(0.0));
        assert_eq!(v.get("wcet_ns"), Some(&Json::Null));
    }
}
