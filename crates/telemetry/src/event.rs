//! The structured event stream: what happened on the fabric, when.
//!
//! Every producer (the cycle engine, the epoch runner, the WCET
//! annotator) speaks the same [`Event`] vocabulary; every consumer (the
//! [`crate::Counters`] registry, the Gantt trace, the Chrome-trace and
//! metrics exporters) folds over the same stream. Timestamps are global
//! simulator **cycles**; exporters convert to nanoseconds with the
//! fabric [`cgra_fabric::CostModel`] so one stream serves every time
//! domain.
//!
//! Two granularities coexist, by design:
//!
//! * **Summary events** ([`Event::EpochBegin`], [`Event::TileEpoch`],
//!   [`Event::Reconfig`], [`Event::EpochEnd`]) are emitted by the epoch
//!   runner unconditionally — a handful per epoch, cheap enough to be
//!   always on. The simulator's `Trace`/Gantt view is rebuilt from
//!   exactly these.
//! * **Fine events** ([`Event::Segment`], [`Event::LinkTransfer`]) are
//!   emitted by the cycle engine *only when a sink is attached* — the
//!   zero-cost-when-disabled discipline: with no sink installed the
//!   engine pays one branch per cycle and nothing else.

use cgra_fabric::cost::TransitionBreakdown;
use cgra_fabric::TileId;
use std::cell::RefCell;
use std::rc::Rc;

/// What a tile was doing during a [`Event::Segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegState {
    /// Executing instructions.
    Busy,
    /// Stalled for partial reconfiguration (its region is being
    /// rewritten through the ICAP).
    Stall,
}

impl SegState {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            SegState::Busy => "compute",
            SegState::Stall => "reconfig",
        }
    }
}

/// One structured telemetry event. All `at`/`start`/`end` fields are
/// global simulator cycles.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An epoch started (before its reconfiguration is applied).
    EpochBegin {
        /// Zero-based epoch index in execution order.
        epoch: usize,
        /// Epoch name.
        name: String,
        /// Cycle the epoch started at.
        at: u64,
    },
    /// The reconfiguration transition into an epoch: the exact Eq. 1
    /// `tau_ij` decomposition plus the stall it imposes.
    Reconfig {
        /// Epoch being switched into.
        epoch: usize,
        /// Cycle the switch started at.
        at: u64,
        /// Per-kind ICAP decomposition (data words, instruction words,
        /// links) from `cgra_fabric::cost`.
        breakdown: TransitionBreakdown,
        /// Switch time in ns under the run's cost model.
        reconfig_ns: f64,
        /// Cycles the rewritten tiles stall.
        stall_cycles: u64,
        /// Tiles whose memories are rewritten (they stall; everyone
        /// else may keep computing — the paper's overlap).
        stalled_tiles: Vec<TileId>,
    },
    /// A maximal run of cycles one tile spent in one state
    /// (engine-emitted, coalesced; idle gaps are implicit).
    Segment {
        /// The tile.
        tile: TileId,
        /// What it was doing.
        state: SegState,
        /// First cycle of the run (inclusive).
        start: u64,
        /// One past the last cycle of the run (exclusive).
        end: u64,
    },
    /// Words moved over an inter-tile link (engine-emitted as the write
    /// lands in the neighbour's data memory).
    LinkTransfer {
        /// Sending tile.
        from: TileId,
        /// Receiving tile.
        to: TileId,
        /// Cycle the words landed.
        at: u64,
        /// Words moved.
        words: u64,
    },
    /// Per-tile activity summary for one epoch (runner-emitted).
    TileEpoch {
        /// The epoch.
        epoch: usize,
        /// The tile.
        tile: TileId,
        /// Cycles spent executing during the epoch.
        busy: u64,
        /// Cycles stalled for reconfiguration during the epoch.
        stalled: u64,
        /// Remote words the tile sent during the epoch.
        words_sent: u64,
        /// Remote words that landed in the tile during the epoch.
        words_received: u64,
    },
    /// An epoch ran to quiescence.
    EpochEnd {
        /// The epoch.
        epoch: usize,
        /// Epoch name (repeated so B/E pairs are self-contained).
        name: String,
        /// Cycle the epoch ended at.
        at: u64,
    },
    /// A hoisted reconfiguration payload finished streaming through the
    /// background port into a tile's shadow configuration plane
    /// (runner-emitted at the end of the payload's last donor epoch).
    ShadowPrefetch {
        /// Donor epoch whose idle windows absorbed the tail of the
        /// streaming.
        epoch: usize,
        /// Cycle the payload was fully staged.
        at: u64,
        /// The tile whose shadow plane holds the payload.
        tile: TileId,
        /// Epoch the payload will commit into.
        target: usize,
        /// Payload ICAP time hidden inside idle windows, ns.
        payload_ns: f64,
        /// Payloads now pending in the tile's shadow plane.
        pending: usize,
    },
    /// A staged shadow payload committed at its target epoch's switch —
    /// a configuration-plane swap, zero foreground ICAP time.
    ShadowCommit {
        /// Epoch being switched into.
        epoch: usize,
        /// Cycle of the commit (the switch start).
        at: u64,
        /// The tile whose planes swapped.
        tile: TileId,
        /// Foreground ICAP time the commit avoided, ns.
        payload_ns: f64,
    },
    /// Static WCET annotation for one epoch, from the `cgra-verify`
    /// timing engine (attached after the fact by drivers; the bounds
    /// travel with the stream so exporters can draw them next to the
    /// observed timeline).
    WcetBound {
        /// The epoch.
        epoch: usize,
        /// Epoch name.
        name: String,
        /// Sound lower bound on the epoch's total time, ns.
        best_ns: f64,
        /// Sound upper bound, ns; `None` when statically unbounded.
        worst_ns: Option<f64>,
    },
}

/// A consumer of the event stream.
///
/// The simulator holds at most one `Box<dyn EventSink>`; when none is
/// attached, producers skip all fine-grained bookkeeping (one
/// `Option` check per cycle — the "zero cost when disabled" contract,
/// held to < 2% by the WCET-conformance timing gate).
pub trait EventSink: std::fmt::Debug {
    /// Receives one event. Must not panic; sinks that can fail should
    /// buffer the error and surface it out of band.
    fn record(&mut self, ev: &Event);
}

/// A sink that drops everything (useful to measure sink overhead).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _ev: &Event) {}
}

/// A sink that appends every event to a shared in-memory buffer.
///
/// `Recorder` is a cheap handle (`Rc` internally): clone one into the
/// simulator as the installed sink and keep the other to read the
/// stream back after the run.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    buf: Rc<RefCell<Vec<Event>>>,
}

impl Recorder {
    /// A recorder with an empty buffer.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Snapshot of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.buf.borrow().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Appends events produced out of band (e.g. [`Event::WcetBound`]
    /// annotations computed after the run).
    pub fn append(&self, events: impl IntoIterator<Item = Event>) {
        self.buf.borrow_mut().extend(events);
    }
}

impl EventSink for Recorder {
    fn record(&mut self, ev: &Event) {
        self.buf.borrow_mut().push(ev.clone());
    }
}

/// Per-tile run-length coalescer: turns a per-cycle state feed into
/// maximal [`Event::Segment`]s. The cycle engine owns one of these
/// while a sink is attached.
#[derive(Debug, Clone, Default)]
pub struct Coalescer {
    open: Vec<Option<(SegState, u64)>>,
}

impl Coalescer {
    /// A coalescer for `tiles` tiles with no open runs.
    pub fn new(tiles: usize) -> Coalescer {
        Coalescer {
            open: vec![None; tiles],
        }
    }

    /// Feeds tile `t`'s state for cycle `at` (`None` = idle). Emits a
    /// [`Event::Segment`] into `sink` whenever a run ends.
    pub fn observe(
        &mut self,
        t: TileId,
        state: Option<SegState>,
        at: u64,
        sink: &mut dyn EventSink,
    ) {
        if t >= self.open.len() {
            self.open.resize(t + 1, None);
        }
        match (self.open[t], state) {
            (Some((open, _)), Some(s)) if open == s => {}
            (prev, next) => {
                if let Some((open, start)) = prev {
                    sink.record(&Event::Segment {
                        tile: t,
                        state: open,
                        start,
                        end: at,
                    });
                }
                self.open[t] = next.map(|s| (s, at));
            }
        }
    }

    /// Closes every open run at cycle `at` (epoch end / end of run).
    pub fn flush(&mut self, at: u64, sink: &mut dyn EventSink) {
        for t in 0..self.open.len() {
            if let Some((state, start)) = self.open[t].take() {
                sink.record(&Event::Segment {
                    tile: t,
                    state,
                    start,
                    end: at.max(start),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_collects_in_order() {
        let rec = Recorder::new();
        let mut sink = rec.clone();
        assert!(rec.is_empty());
        sink.record(&Event::EpochBegin {
            epoch: 0,
            name: "a".into(),
            at: 0,
        });
        sink.record(&Event::EpochEnd {
            epoch: 0,
            name: "a".into(),
            at: 10,
        });
        assert_eq!(rec.len(), 2);
        let evs = rec.events();
        assert!(matches!(evs[0], Event::EpochBegin { at: 0, .. }));
        assert!(matches!(evs[1], Event::EpochEnd { at: 10, .. }));
    }

    #[test]
    fn coalescer_merges_runs_and_flushes() {
        let rec = Recorder::new();
        let mut sink = rec.clone();
        let mut co = Coalescer::new(1);
        // 3 cycles stall, 2 cycles busy, 1 idle, 1 busy, then flush.
        for c in 0..3 {
            co.observe(0, Some(SegState::Stall), c, &mut sink);
        }
        for c in 3..5 {
            co.observe(0, Some(SegState::Busy), c, &mut sink);
        }
        co.observe(0, None, 5, &mut sink);
        co.observe(0, Some(SegState::Busy), 6, &mut sink);
        co.flush(7, &mut sink);
        let evs = rec.events();
        assert_eq!(
            evs,
            vec![
                Event::Segment {
                    tile: 0,
                    state: SegState::Stall,
                    start: 0,
                    end: 3
                },
                Event::Segment {
                    tile: 0,
                    state: SegState::Busy,
                    start: 3,
                    end: 5
                },
                Event::Segment {
                    tile: 0,
                    state: SegState::Busy,
                    start: 6,
                    end: 7
                },
            ]
        );
    }

    #[test]
    fn coalescer_grows_on_demand() {
        let rec = Recorder::new();
        let mut sink = rec.clone();
        let mut co = Coalescer::new(0);
        co.observe(4, Some(SegState::Busy), 0, &mut sink);
        co.flush(2, &mut sink);
        assert_eq!(
            rec.events(),
            vec![Event::Segment {
                tile: 4,
                state: SegState::Busy,
                start: 0,
                end: 2
            }]
        );
    }
}
