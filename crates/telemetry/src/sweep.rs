//! Per-worker counters for the parallel DSE sweep engine.
//!
//! The `cgra-explore` worker pool shards candidate schedules across
//! threads; each worker carries one [`SweepCounters`] block and bumps
//! it as candidates flow through the prepare / price / evaluate
//! pipeline. After the pool drains, the per-worker blocks are merged
//! into a [`SweepStats`] and checked by
//! [`sweep_conservation_violations`] — the same keep-the-producers-
//! honest discipline [`crate::conservation_violations`] applies to the
//! simulator's event stream: every candidate that enters the sweep
//! must leave it exactly once (pruned, served from cache, or
//! simulated), and every cache miss must correspond to exactly one
//! simulation.
//!
//! ```
//! use cgra_telemetry::sweep::{sweep_conservation_violations, SweepCounters, SweepStats};
//!
//! let mut a = SweepCounters::default();
//! a.priced = 3;
//! a.candidates = 3;
//! a.pruned = 2;
//! a.simulated = 1;
//! a.cache_misses = 1;
//! let mut b = SweepCounters::default();
//! b.priced = 1;
//! b.candidates = 1;
//! b.cache_hits = 1;
//! let stats = SweepStats::merge(vec![a, b]);
//! assert_eq!(stats.total.candidates, 4);
//! assert!(sweep_conservation_violations(&stats).is_empty());
//! ```

/// One worker's view of a sweep: how many candidates it touched and
/// what happened to each. All counts are monotone; workers only add.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCounters {
    /// Distinct schedules built, lint-minimized and WCET-bounded
    /// (phase A work units — one per schedule *shape*, shared by every
    /// candidate that reuses it).
    pub prepared: u64,
    /// Candidates statically priced by repricing a prepared bound
    /// under the candidate's cost model (phase B work units).
    pub priced: u64,
    /// Candidates that entered the evaluation phase (phase C work
    /// units; every priced candidate enters exactly once).
    pub candidates: u64,
    /// Candidates discarded on their static WCET price alone — never
    /// simulated.
    pub pruned: u64,
    /// Frontier candidates served from the memoized simulation cache.
    pub cache_hits: u64,
    /// Frontier candidates the cache could not serve (each one is
    /// simulated and the result inserted).
    pub cache_misses: u64,
    /// Candidates actually simulated cycle-by-cycle.
    pub simulated: u64,
    /// Stale cache entries rejected by content-hash mismatch (each one
    /// also counts as a miss and forces a re-simulation).
    pub poisoned: u64,
}

impl SweepCounters {
    /// Adds another block into this one, field by field.
    pub fn absorb(&mut self, other: &SweepCounters) {
        self.prepared += other.prepared;
        self.priced += other.priced;
        self.candidates += other.candidates;
        self.pruned += other.pruned;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.simulated += other.simulated;
        self.poisoned += other.poisoned;
    }
}

/// Merged counters for a whole sweep: the per-worker blocks (in worker
/// order) and their fold. Per-worker *distribution* depends on thread
/// scheduling; the totals never do.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Fold of every worker block.
    pub total: SweepCounters,
    /// The individual worker blocks, in worker-index order.
    pub workers: Vec<SweepCounters>,
}

impl SweepStats {
    /// Merges per-worker blocks into totals.
    pub fn merge(workers: Vec<SweepCounters>) -> SweepStats {
        let mut total = SweepCounters::default();
        for w in &workers {
            total.absorb(w);
        }
        SweepStats { total, workers }
    }

    /// Folds another phase's worker blocks into this one,
    /// position-by-position (worker `i` of the new phase is credited
    /// to worker `i` of the merged view).
    pub fn absorb_phase(&mut self, workers: &[SweepCounters]) {
        if self.workers.len() < workers.len() {
            self.workers.resize(workers.len(), SweepCounters::default());
        }
        for (slot, w) in self.workers.iter_mut().zip(workers) {
            slot.absorb(w);
        }
        for w in workers {
            self.total.absorb(w);
        }
    }

    /// Cache hit rate over the frontier lookups (0..=1); 0 when the
    /// frontier was empty.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.total.cache_hits + self.total.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.total.cache_hits as f64 / lookups as f64
        }
    }
}

/// Checks the sweep's conservation invariants. Returns one
/// human-readable line per violation; an empty vector means the
/// pipeline accounted for every candidate exactly once.
pub fn sweep_conservation_violations(stats: &SweepStats) -> Vec<String> {
    let mut out = Vec::new();
    let t = &stats.total;

    let mut fold = SweepCounters::default();
    for w in &stats.workers {
        fold.absorb(w);
    }
    if fold != *t {
        out.push(format!(
            "worker blocks do not fold to the total: {fold:?} != {t:?}"
        ));
    }
    if t.candidates != t.pruned + t.cache_hits + t.simulated {
        out.push(format!(
            "candidate leak: {} entered but {} pruned + {} cache hits + {} simulated",
            t.candidates, t.pruned, t.cache_hits, t.simulated
        ));
    }
    if t.cache_misses != t.simulated {
        out.push(format!(
            "every cache miss must simulate exactly once: {} misses vs {} simulated",
            t.cache_misses, t.simulated
        ));
    }
    if t.poisoned > t.cache_misses {
        out.push(format!(
            "poisoned entries ({}) exceed cache misses ({}): a rejected entry must re-simulate",
            t.poisoned, t.cache_misses
        ));
    }
    if t.candidates != t.priced {
        out.push(format!(
            "every priced candidate must be evaluated exactly once: {} priced vs {} evaluated",
            t.priced, t.candidates
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced() -> SweepCounters {
        SweepCounters {
            prepared: 2,
            priced: 6,
            candidates: 6,
            pruned: 3,
            cache_hits: 1,
            cache_misses: 2,
            simulated: 2,
            poisoned: 1,
        }
    }

    #[test]
    fn merge_folds_totals() {
        let stats = SweepStats::merge(vec![balanced(), balanced(), SweepCounters::default()]);
        assert_eq!(stats.workers.len(), 3);
        assert_eq!(stats.total.candidates, 12);
        assert_eq!(stats.total.simulated, 4);
        assert!(sweep_conservation_violations(&stats).is_empty());
    }

    #[test]
    fn absorb_phase_is_positional() {
        let mut stats = SweepStats::merge(vec![balanced()]);
        stats.absorb_phase(&[SweepCounters::default(), balanced()]);
        assert_eq!(stats.workers.len(), 2);
        assert_eq!(stats.workers[1], balanced());
        assert_eq!(stats.total.candidates, 12);
    }

    #[test]
    fn detects_candidate_leak() {
        let mut c = balanced();
        c.pruned -= 1; // one candidate vanished
        let stats = SweepStats::merge(vec![c]);
        let v = sweep_conservation_violations(&stats);
        assert!(v.iter().any(|m| m.contains("candidate leak")), "got {v:?}");
    }

    #[test]
    fn detects_miss_without_simulation() {
        let mut c = balanced();
        c.simulated -= 1;
        c.cache_hits += 1; // keep the candidate balance intact
        let stats = SweepStats::merge(vec![c]);
        let v = sweep_conservation_violations(&stats);
        assert!(
            v.iter().any(|m| m.contains("miss must simulate")),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_tampered_total() {
        let mut stats = SweepStats::merge(vec![balanced()]);
        stats.total.simulated += 1;
        let v = sweep_conservation_violations(&stats);
        assert!(v.iter().any(|m| m.contains("do not fold")), "got {v:?}");
    }

    #[test]
    fn hit_rate_counts_frontier_lookups_only() {
        let stats = SweepStats::merge(vec![balanced()]);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(SweepStats::default().hit_rate(), 0.0);
    }
}
