//! A minimal JSON reader used to *validate* exporter output.
//!
//! The workspace is dependency-free, so the exporters build their JSON
//! with format strings; this module closes the loop by parsing what
//! they emit (and what CI re-reads) with a small recursive-descent
//! parser. It accepts exactly RFC 8259 JSON — objects, arrays,
//! strings with escapes, numbers, booleans, null — and reports the
//! byte offset of the first error.

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            members.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {other:?}",
                        self.i
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {other:?}",
                        self.i
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            // Surrogates are left as replacement chars; the
                            // exporters never emit them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!(
                        "raw control byte {c:#x} in string at byte {}",
                        self.i
                    ))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = &self.b[self.i..];
                    let step = match std::str::from_utf8(&s[..s.len().min(4)]) {
                        Ok(t) => t.chars().next().map(char::len_utf8).unwrap_or(1),
                        Err(e) if e.valid_up_to() > 0 => {
                            let t = std::str::from_utf8(&s[..e.valid_up_to()]).unwrap_or("");
                            t.chars().next().map(char::len_utf8).unwrap_or(1)
                        }
                        Err(_) => return Err(format!("invalid UTF-8 at byte {}", self.i)),
                    };
                    match std::str::from_utf8(&s[..step]) {
                        Ok(t) => out.push_str(t),
                        Err(_) => return Err(format!("invalid UTF-8 at byte {}", self.i)),
                    }
                    self.i += step;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Escapes a string for embedding in emitted JSON.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let doc = r#"{"a": 1.5, "b": [true, false, null, "x\ny"], "c": {"d": -2e3}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.5));
        let b = v.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(b[3].as_str(), Some("x\ny"));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2000.0)
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1} junk",
            "[1 2]",
            "",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "he said \"hi\\there\"\n\tok\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", esc(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
