//! The metrics registry: counters folded from the event stream, plus
//! the conservation invariants that keep producers honest.

use crate::event::{Event, SegState};
use cgra_fabric::cost::TransitionBreakdown;
use cgra_fabric::{CostModel, TileId};
use std::collections::BTreeMap;

/// Per-tile cycle and traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileCounters {
    /// Cycles spent executing instructions.
    pub busy: u64,
    /// Cycles stalled for partial reconfiguration.
    pub stalled: u64,
    /// Cycles idle inside epochs (epoch span minus busy minus stalled).
    pub idle: u64,
    /// Remote words sent.
    pub words_sent: u64,
    /// Remote words received.
    pub words_received: u64,
}

/// Whole-run counters, folded from a telemetry event stream with
/// [`Counters::from_events`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    /// Per-tile counters, indexed by [`TileId`].
    pub tiles: Vec<TileCounters>,
    /// Words moved per directed link `(from, to)`.
    pub links: BTreeMap<(TileId, TileId), u64>,
    /// Accumulated reconfiguration traffic (Eq. 1 `tau` decomposition
    /// summed over every switch).
    pub reconfig: TransitionBreakdown,
    /// Total reconfiguration time, ns.
    pub reconfig_ns: f64,
    /// Total cycles rewritten tiles spent stalled (per-switch stall
    /// times number of stalled tiles).
    pub reconfig_stall_cycles: u64,
    /// Epochs that completed (saw their [`Event::EpochEnd`]).
    pub epochs: u64,
    /// Cycles covered by completed epochs (sum of epoch spans).
    pub epoch_cycles: u64,
}

impl Counters {
    /// Folds an event stream into counters. Only completed epochs
    /// (begin *and* end seen) contribute to cycle accounting; link
    /// traffic and reconfiguration totals accumulate regardless.
    pub fn from_events(events: &[Event]) -> Counters {
        // Pass 1: spans of completed epochs, keyed by epoch index.
        let mut begin: BTreeMap<usize, u64> = BTreeMap::new();
        let mut span: BTreeMap<usize, u64> = BTreeMap::new();
        for ev in events {
            match ev {
                Event::EpochBegin { epoch, at, .. } => {
                    begin.insert(*epoch, *at);
                }
                Event::EpochEnd { epoch, at, .. } => {
                    if let Some(b) = begin.get(epoch) {
                        span.insert(*epoch, at.saturating_sub(*b));
                    }
                }
                _ => {}
            }
        }
        // Pass 2: fold.
        let mut c = Counters::default();
        for ev in events {
            match ev {
                Event::TileEpoch {
                    epoch,
                    tile,
                    busy,
                    stalled,
                    words_sent,
                    words_received,
                } => {
                    let Some(&sp) = span.get(epoch) else { continue };
                    if c.tiles.len() <= *tile {
                        c.tiles.resize(*tile + 1, TileCounters::default());
                    }
                    let t = &mut c.tiles[*tile];
                    t.busy += busy;
                    t.stalled += stalled;
                    t.idle += sp.saturating_sub(busy + stalled);
                    t.words_sent += words_sent;
                    t.words_received += words_received;
                }
                Event::LinkTransfer {
                    from, to, words, ..
                } => {
                    *c.links.entry((*from, *to)).or_insert(0) += words;
                }
                Event::Reconfig {
                    breakdown,
                    reconfig_ns,
                    stall_cycles,
                    stalled_tiles,
                    ..
                } => {
                    c.reconfig.data_words += breakdown.data_words;
                    c.reconfig.instr_words += breakdown.instr_words;
                    c.reconfig.links += breakdown.links;
                    c.reconfig_ns += reconfig_ns;
                    c.reconfig_stall_cycles += stall_cycles * stalled_tiles.len() as u64;
                }
                Event::EpochEnd { epoch, .. } => {
                    if let Some(&sp) = span.get(epoch) {
                        c.epochs += 1;
                        c.epoch_cycles += sp;
                    }
                }
                _ => {}
            }
        }
        c
    }

    /// Total remote words sent, over all tiles.
    pub fn total_words_sent(&self) -> u64 {
        self.tiles.iter().map(|t| t.words_sent).sum()
    }

    /// Total remote words received, over all tiles.
    pub fn total_words_received(&self) -> u64 {
        self.tiles.iter().map(|t| t.words_received).sum()
    }

    /// Total busy cycles, over all tiles.
    pub fn total_busy(&self) -> u64 {
        self.tiles.iter().map(|t| t.busy).sum()
    }

    /// Mean tile utilization: busy tile-cycles over available
    /// tile-cycles (epoch span x tiles). 0 when nothing ran.
    pub fn utilization(&self) -> f64 {
        let avail = self.epoch_cycles.saturating_mul(self.tiles.len() as u64);
        if avail == 0 {
            return 0.0;
        }
        self.total_busy() as f64 / avail as f64
    }

    /// Reconfiguration share of the wall clock: `reconfig_ns` over the
    /// epoch span priced at `cost`. 0 when nothing ran.
    pub fn reconfig_overhead(&self, cost: &CostModel) -> f64 {
        let wall = cost.exec_ns(self.epoch_cycles);
        if wall <= 0.0 {
            return 0.0;
        }
        self.reconfig_ns / wall
    }
}

/// Checks the stream's conservation invariants and returns every
/// violation as a human-readable string (empty = all held):
///
/// * epochs are properly bracketed: `EpochBegin i` then `EpochEnd i`,
///   with non-decreasing, non-overlapping spans,
/// * per epoch, each tile's `busy + stalled` cycles fit in the epoch
///   span,
/// * fine [`Event::Segment`]s (when present) agree with the per-epoch
///   [`Event::TileEpoch`] summaries, state by state, and never overlap,
/// * words are conserved: every [`Event::LinkTransfer`] word shows up
///   in the sender's `words_sent` and the receiver's `words_received`,
///   and globally `sent == received`.
pub fn conservation_violations(events: &[Event]) -> Vec<String> {
    let mut bad = Vec::new();

    // --- epoch bracketing ------------------------------------------------
    let mut open: Option<(usize, u64)> = None;
    let mut last_end = 0u64;
    let mut spans: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    for ev in events {
        match ev {
            Event::EpochBegin { epoch, at, .. } => {
                if let Some((prev, _)) = open {
                    bad.push(format!("epoch {epoch} begins while epoch {prev} is open"));
                }
                if *at < last_end {
                    bad.push(format!(
                        "epoch {epoch} begins at cycle {at}, before the previous end {last_end}"
                    ));
                }
                open = Some((*epoch, *at));
            }
            Event::EpochEnd { epoch, at, .. } => match open.take() {
                Some((b_epoch, b_at)) if b_epoch == *epoch => {
                    if *at < b_at {
                        bad.push(format!(
                            "epoch {epoch} ends at {at} before it began at {b_at}"
                        ));
                    }
                    spans.insert(*epoch, (b_at, *at));
                    last_end = *at;
                }
                other => {
                    bad.push(format!("epoch {epoch} ends but open epoch is {other:?}"));
                }
            },
            _ => {}
        }
    }

    // --- per-epoch tile cycles fit the span ------------------------------
    for ev in events {
        if let Event::TileEpoch {
            epoch,
            tile,
            busy,
            stalled,
            ..
        } = ev
        {
            let Some((b, e)) = spans.get(epoch) else {
                bad.push(format!(
                    "tile {tile} reports activity for unclosed epoch {epoch}"
                ));
                continue;
            };
            let span = e - b;
            if busy + stalled > span {
                bad.push(format!(
                    "epoch {epoch} tile {tile}: busy {busy} + stalled {stalled} exceeds the \
                     {span}-cycle epoch span"
                ));
            }
        }
    }

    // --- fine segments agree with the summaries --------------------------
    let have_segments = events.iter().any(|e| matches!(e, Event::Segment { .. }));
    if have_segments {
        // Per (epoch, tile, state) cycle totals from segments.
        let mut fine: BTreeMap<(usize, TileId, bool), u64> = BTreeMap::new();
        let mut last_per_tile: BTreeMap<TileId, u64> = BTreeMap::new();
        for ev in events {
            let Event::Segment {
                tile,
                state,
                start,
                end,
            } = ev
            else {
                continue;
            };
            if end < start {
                bad.push(format!(
                    "tile {tile}: segment [{start}, {end}) runs backwards"
                ));
                continue;
            }
            if let Some(prev_end) = last_per_tile.get(tile) {
                if start < prev_end {
                    bad.push(format!(
                        "tile {tile}: segment starting at {start} overlaps the previous one \
                         ending at {prev_end}"
                    ));
                }
            }
            last_per_tile.insert(*tile, *end);
            // Attribute the run to the epoch containing it.
            let ep = spans
                .iter()
                .find(|(_, (b, e))| start >= b && end <= e)
                .map(|(i, _)| *i);
            if let Some(i) = ep {
                *fine
                    .entry((i, *tile, *state == SegState::Busy))
                    .or_insert(0) += end - start;
            }
        }
        for ev in events {
            let Event::TileEpoch {
                epoch,
                tile,
                busy,
                stalled,
                ..
            } = ev
            else {
                continue;
            };
            if !spans.contains_key(epoch) {
                continue;
            }
            let f_busy = fine.get(&(*epoch, *tile, true)).copied().unwrap_or(0);
            let f_stall = fine.get(&(*epoch, *tile, false)).copied().unwrap_or(0);
            if f_busy != *busy {
                bad.push(format!(
                    "epoch {epoch} tile {tile}: segments total {f_busy} busy cycles but the \
                     summary says {busy}"
                ));
            }
            if f_stall != *stalled {
                bad.push(format!(
                    "epoch {epoch} tile {tile}: segments total {f_stall} stall cycles but the \
                     summary says {stalled}"
                ));
            }
        }
    }

    // --- word conservation ------------------------------------------------
    let c = Counters::from_events(events);
    let sent = c.total_words_sent();
    let received = c.total_words_received();
    if sent != received {
        bad.push(format!(
            "words are not conserved: {sent} sent != {received} received"
        ));
    }
    let have_transfers = events
        .iter()
        .any(|e| matches!(e, Event::LinkTransfer { .. }));
    if have_transfers {
        let mut by_sender: BTreeMap<TileId, u64> = BTreeMap::new();
        let mut by_receiver: BTreeMap<TileId, u64> = BTreeMap::new();
        for ((f, t), w) in &c.links {
            *by_sender.entry(*f).or_insert(0) += w;
            *by_receiver.entry(*t).or_insert(0) += w;
        }
        for (t, tc) in c.tiles.iter().enumerate() {
            let link_out = by_sender.get(&t).copied().unwrap_or(0);
            let link_in = by_receiver.get(&t).copied().unwrap_or(0);
            if link_out != tc.words_sent {
                bad.push(format!(
                    "tile {t}: link transfers carry {link_out} words out but the tile counted \
                     {} sent",
                    tc.words_sent
                ));
            }
            if link_in != tc.words_received {
                bad.push(format!(
                    "tile {t}: link transfers carry {link_in} words in but the tile counted \
                     {} received",
                    tc.words_received
                ));
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::EpochBegin {
                epoch: 0,
                name: "a".into(),
                at: 0,
            },
            Event::Reconfig {
                epoch: 0,
                at: 0,
                breakdown: TransitionBreakdown {
                    data_words: 4,
                    instr_words: 2,
                    links: 1,
                },
                reconfig_ns: 250.0,
                stall_cycles: 100,
                stalled_tiles: vec![0],
            },
            Event::Segment {
                tile: 0,
                state: SegState::Stall,
                start: 0,
                end: 100,
            },
            Event::Segment {
                tile: 0,
                state: SegState::Busy,
                start: 100,
                end: 150,
            },
            Event::Segment {
                tile: 1,
                state: SegState::Busy,
                start: 0,
                end: 120,
            },
            Event::LinkTransfer {
                from: 0,
                to: 1,
                at: 120,
                words: 8,
            },
            Event::TileEpoch {
                epoch: 0,
                tile: 0,
                busy: 50,
                stalled: 100,
                words_sent: 8,
                words_received: 0,
            },
            Event::TileEpoch {
                epoch: 0,
                tile: 1,
                busy: 120,
                stalled: 0,
                words_sent: 0,
                words_received: 8,
            },
            Event::EpochEnd {
                epoch: 0,
                name: "a".into(),
                at: 200,
            },
        ]
    }

    #[test]
    fn counters_fold() {
        let c = Counters::from_events(&sample());
        assert_eq!(c.epochs, 1);
        assert_eq!(c.epoch_cycles, 200);
        assert_eq!(c.tiles.len(), 2);
        assert_eq!(c.tiles[0].busy, 50);
        assert_eq!(c.tiles[0].stalled, 100);
        assert_eq!(c.tiles[0].idle, 50);
        assert_eq!(c.tiles[1].idle, 80);
        assert_eq!(c.links.get(&(0, 1)), Some(&8));
        assert_eq!(c.total_words_sent(), 8);
        assert_eq!(c.total_words_received(), 8);
        assert_eq!(c.reconfig.data_words, 4);
        assert_eq!(c.reconfig_stall_cycles, 100);
        // 170 busy tile-cycles over 400 available.
        assert!((c.utilization() - 170.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn clean_stream_has_no_violations() {
        assert_eq!(conservation_violations(&sample()), Vec::<String>::new());
    }

    #[test]
    fn lost_word_detected() {
        let mut evs = sample();
        // The receiver claims one word fewer than the sender shipped.
        for ev in &mut evs {
            if let Event::TileEpoch {
                tile: 1,
                words_received,
                ..
            } = ev
            {
                *words_received = 7;
            }
        }
        let bad = conservation_violations(&evs);
        assert!(bad.iter().any(|m| m.contains("not conserved")), "{bad:?}");
    }

    #[test]
    fn over_span_activity_detected() {
        let mut evs = sample();
        for ev in &mut evs {
            if let Event::TileEpoch { tile: 1, busy, .. } = ev {
                *busy = 500; // > 200-cycle span
            }
        }
        let bad = conservation_violations(&evs);
        assert!(bad.iter().any(|m| m.contains("exceeds")), "{bad:?}");
    }

    #[test]
    fn segment_summary_mismatch_detected() {
        let mut evs = sample();
        for ev in &mut evs {
            if let Event::Segment {
                tile: 1,
                end: e @ 120,
                ..
            } = ev
            {
                *e = 110;
            }
        }
        let bad = conservation_violations(&evs);
        assert!(bad.iter().any(|m| m.contains("segments total")), "{bad:?}");
    }

    #[test]
    fn unbalanced_epochs_detected() {
        let evs = vec![Event::EpochEnd {
            epoch: 3,
            name: "x".into(),
            at: 10,
        }];
        let bad = conservation_violations(&evs);
        assert!(!bad.is_empty());
    }
}
