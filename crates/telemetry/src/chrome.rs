//! Chrome trace-event export: the event stream as a JSON document
//! loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! Layout: one thread ("track") per tile, plus an `epochs` track
//! bracketing every epoch with matched `B`/`E` pairs. Tile tracks carry
//! complete (`X`) slices — `compute` and `reconfig` with distinct
//! colors — so a partial reconfiguration reads as red slices confined
//! to the rewritten tiles while untouched tiles keep their green
//! compute slices running straight through. WCET bounds ride along as
//! counter (`C`) tracks next to the observed timeline. Timestamps are
//! microseconds (the format's unit), converted from cycles with the
//! run's [`CostModel`].

use crate::event::{Event, SegState};
use crate::json::{self, Json};
use cgra_fabric::CostModel;

/// Tid of the epoch-bracket track (tile tids are the tile ids, so the
/// epochs track sits after the largest tile).
fn epoch_tid(events: &[Event]) -> usize {
    let mut max_tile = 0usize;
    for ev in events {
        let t = match ev {
            Event::Segment { tile, .. } | Event::TileEpoch { tile, .. } => *tile,
            Event::LinkTransfer { from, to, .. } => (*from).max(*to),
            _ => 0,
        };
        max_tile = max_tile.max(t);
    }
    max_tile + 1
}

/// Renders the event stream as a Chrome trace-event JSON document.
pub fn chrome_trace(events: &[Event], cost: &CostModel) -> String {
    let us = |cycles: u64| cycles as f64 * cost.cycle_ns() / 1000.0;
    let ep_tid = epoch_tid(events);
    // (ts, order, line): sorted so timestamps are monotone in the output;
    // `order` keeps metadata first and closes E before the next B at ties.
    let mut out: Vec<(f64, u8, String)> = Vec::new();

    out.push((
        f64::MIN,
        0,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"remorph fabric\"}}"
            .into(),
    ));
    for t in 0..ep_tid {
        out.push((
            f64::MIN,
            1,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\
                 \"args\":{{\"name\":\"tile {t}\"}}}}"
            ),
        ));
    }
    out.push((
        f64::MIN,
        1,
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{ep_tid},\
             \"args\":{{\"name\":\"epochs\"}}}}"
        ),
    ));

    // Cumulative WCET bounds keyed by epoch index, attached at the
    // matching EpochEnd below.
    let mut wcet: Vec<(usize, f64, Option<f64>)> = Vec::new();
    for ev in events {
        if let Event::WcetBound {
            epoch,
            best_ns,
            worst_ns,
            ..
        } = ev
        {
            wcet.push((*epoch, *best_ns, *worst_ns));
        }
    }
    wcet.sort_by_key(|(e, _, _)| *e);
    let cum_wcet = |epoch: usize| -> Option<(f64, Option<f64>)> {
        if wcet.is_empty() {
            return None;
        }
        let mut best = 0.0;
        let mut worst = Some(0.0);
        let mut seen = false;
        for (e, b, w) in &wcet {
            if *e > epoch {
                break;
            }
            seen = true;
            best += b;
            worst = match (worst, w) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        seen.then_some((best, worst))
    };

    let mut words_cum = 0u64;
    for ev in events {
        match ev {
            Event::EpochBegin { epoch, name, at } => {
                out.push((
                    us(*at),
                    3,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":0,\"tid\":{ep_tid},\
                         \"ts\":{:.4},\"args\":{{\"epoch\":{epoch}}}}}",
                        json::esc(name),
                        us(*at)
                    ),
                ));
            }
            Event::Reconfig {
                epoch,
                at,
                breakdown,
                reconfig_ns,
                stall_cycles,
                stalled_tiles,
            } => {
                out.push((
                    us(*at),
                    4,
                    format!(
                        "{{\"name\":\"reconfig\",\"ph\":\"i\",\"s\":\"p\",\"pid\":0,\
                         \"tid\":{ep_tid},\"ts\":{:.4},\"args\":{{\"epoch\":{epoch},\
                         \"data_words\":{},\"instr_words\":{},\"links\":{},\
                         \"reconfig_ns\":{:.4},\"stall_cycles\":{},\"stalled_tiles\":{}}}}}",
                        us(*at),
                        breakdown.data_words,
                        breakdown.instr_words,
                        breakdown.links,
                        reconfig_ns,
                        stall_cycles,
                        stalled_tiles.len()
                    ),
                ));
            }
            Event::Segment {
                tile,
                state,
                start,
                end,
            } => {
                let cname = match state {
                    SegState::Busy => "good",
                    SegState::Stall => "terrible",
                };
                out.push((
                    us(*start),
                    5,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tile},\
                         \"ts\":{:.4},\"dur\":{:.4},\"cname\":\"{cname}\",\
                         \"args\":{{\"cycles\":{}}}}}",
                        state.name(),
                        us(*start),
                        us(*end) - us(*start),
                        end - start
                    ),
                ));
            }
            Event::LinkTransfer { words, .. } => {
                words_cum += words;
            }
            Event::EpochEnd { epoch, name, at } => {
                out.push((
                    us(*at),
                    2,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"E\",\"pid\":0,\"tid\":{ep_tid},\
                         \"ts\":{:.4},\"args\":{{\"epoch\":{epoch}}}}}",
                        json::esc(name),
                        us(*at)
                    ),
                ));
                out.push((
                    us(*at),
                    6,
                    format!(
                        "{{\"name\":\"link words\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\
                         \"ts\":{:.4},\"args\":{{\"words\":{words_cum}}}}}",
                        us(*at)
                    ),
                ));
                if let Some((best, worst)) = cum_wcet(*epoch) {
                    let worst_s = worst.map_or("null".to_string(), |w| format!("{w:.4}"));
                    out.push((
                        us(*at),
                        6,
                        format!(
                            "{{\"name\":\"wcet_bound_ns\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\
                             \"ts\":{:.4},\"args\":{{\"best\":{best:.4},\"worst\":{worst_s},\
                             \"observed\":{:.4}}}}}",
                            us(*at),
                            us(*at) * 1000.0
                        ),
                    ));
                }
            }
            Event::ShadowPrefetch {
                epoch,
                at,
                tile,
                target,
                payload_ns,
                pending,
            } => {
                out.push((
                    us(*at),
                    4,
                    format!(
                        "{{\"name\":\"shadow prefetch\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
                         \"tid\":{tile},\"ts\":{:.4},\"args\":{{\"epoch\":{epoch},\
                         \"target\":{target},\"payload_ns\":{payload_ns:.4},\
                         \"pending\":{pending}}}}}",
                        us(*at)
                    ),
                ));
            }
            Event::ShadowCommit {
                epoch,
                at,
                tile,
                payload_ns,
            } => {
                out.push((
                    us(*at),
                    4,
                    format!(
                        "{{\"name\":\"shadow commit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
                         \"tid\":{tile},\"ts\":{:.4},\"args\":{{\"epoch\":{epoch},\
                         \"payload_ns\":{payload_ns:.4}}}}}",
                        us(*at)
                    ),
                ));
            }
            Event::TileEpoch { .. } | Event::WcetBound { .. } => {}
        }
    }

    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let body: Vec<String> = out.into_iter().map(|(_, _, l)| format!("  {l}")).collect();
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
        body.join(",\n")
    )
}

/// Summary statistics [`validate_chrome`] gathers while checking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total trace events.
    pub events: usize,
    /// Complete (`X`) slices.
    pub slices: usize,
    /// Matched `B`/`E` pairs.
    pub spans: usize,
    /// Counter samples.
    pub counters: usize,
}

/// Validates a Chrome trace-event document: well-formed JSON, the
/// fields the format requires, monotone non-decreasing timestamps, and
/// strictly matched `B`/`E` pairs per `(pid, tid)` track.
pub fn validate_chrome(doc: &str) -> Result<ChromeSummary, String> {
    let root = json::parse(doc)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = ChromeSummary {
        events: events.len(),
        ..ChromeSummary::default()
    };
    let mut last_ts = f64::NEG_INFINITY;
    // Open B spans per (pid, tid), as a stack of names.
    let mut open: Vec<((i64, i64), Vec<String>)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| ev.get(k).ok_or(format!("event {i}: missing \"{k}\""));
        let ph = field("ph")?
            .as_str()
            .ok_or(format!("event {i}: ph not a string"))?;
        let name = field("name")?
            .as_str()
            .ok_or(format!("event {i}: name not a string"))?
            .to_string();
        let pid = field("pid")?
            .as_f64()
            .ok_or(format!("event {i}: pid not a number"))? as i64;
        let tid = field("tid")?
            .as_f64()
            .ok_or(format!("event {i}: tid not a number"))? as i64;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = field("ts")?
            .as_f64()
            .ok_or(format!("event {i}: ts not a number"))?;
        if !ts.is_finite() {
            return Err(format!("event {i}: non-finite ts"));
        }
        if ts < last_ts {
            return Err(format!(
                "event {i} ('{name}'): ts {ts} goes backwards (previous {last_ts})"
            ));
        }
        last_ts = ts;
        let track = (pid, tid);
        match ph {
            "X" => {
                let dur = field("dur")?
                    .as_f64()
                    .ok_or(format!("event {i}: dur not a number"))?;
                if !(dur.is_finite() && dur >= 0.0) {
                    return Err(format!("event {i} ('{name}'): bad dur {dur}"));
                }
                summary.slices += 1;
            }
            "B" => match open.iter_mut().find(|(t, _)| *t == track) {
                Some((_, stack)) => stack.push(name),
                None => open.push((track, vec![name])),
            },
            "E" => {
                let stack = open
                    .iter_mut()
                    .find(|(t, _)| *t == track)
                    .map(|(_, s)| s)
                    .ok_or(format!(
                        "event {i} ('{name}'): E with no open B on tid {tid}"
                    ))?;
                let opened = stack.pop().ok_or(format!(
                    "event {i} ('{name}'): E with no open B on tid {tid}"
                ))?;
                if opened != name {
                    return Err(format!(
                        "event {i}: E '{name}' closes B '{opened}' on tid {tid}"
                    ));
                }
                summary.spans += 1;
            }
            "C" => summary.counters += 1,
            "i" | "I" => {}
            other => return Err(format!("event {i} ('{name}'): unknown ph '{other}'")),
        }
    }
    for ((_, tid), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("unclosed B '{name}' on tid {tid}"));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_fabric::cost::TransitionBreakdown;

    fn sample() -> Vec<Event> {
        vec![
            Event::EpochBegin {
                epoch: 0,
                name: "e\"0".into(),
                at: 0,
            },
            Event::Reconfig {
                epoch: 0,
                at: 0,
                breakdown: TransitionBreakdown {
                    data_words: 2,
                    instr_words: 1,
                    links: 1,
                },
                reconfig_ns: 116.67,
                stall_cycles: 47,
                stalled_tiles: vec![0],
            },
            Event::Segment {
                tile: 0,
                state: SegState::Stall,
                start: 0,
                end: 47,
            },
            Event::Segment {
                tile: 1,
                state: SegState::Busy,
                start: 0,
                end: 80,
            },
            Event::Segment {
                tile: 0,
                state: SegState::Busy,
                start: 47,
                end: 90,
            },
            Event::TileEpoch {
                epoch: 0,
                tile: 0,
                busy: 43,
                stalled: 47,
                words_sent: 4,
                words_received: 0,
            },
            Event::EpochEnd {
                epoch: 0,
                name: "e\"0".into(),
                at: 90,
            },
            Event::WcetBound {
                epoch: 0,
                name: "e\"0".into(),
                best_ns: 225.0,
                worst_ns: Some(225.0),
            },
        ]
    }

    #[test]
    fn export_validates() {
        let doc = chrome_trace(&sample(), &CostModel::default());
        let s = validate_chrome(&doc).expect("emitted trace is valid");
        assert_eq!(s.spans, 1);
        assert_eq!(s.slices, 3);
        assert!(s.counters >= 1);
        // Distinct colors for compute vs reconfig stalls.
        assert!(doc.contains("\"cname\":\"good\""));
        assert!(doc.contains("\"cname\":\"terrible\""));
    }

    #[test]
    fn validator_rejects_unmatched_pairs() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":9,"ts":1.0}
        ]}"#;
        assert!(validate_chrome(doc).unwrap_err().contains("unclosed"));
    }

    #[test]
    fn validator_rejects_backwards_time() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":5.0,"dur":1.0},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":4.0,"dur":1.0}
        ]}"#;
        assert!(validate_chrome(doc).unwrap_err().contains("backwards"));
    }

    #[test]
    fn validator_rejects_mismatched_names() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":0,"ts":1.0},
            {"name":"z","ph":"E","pid":0,"tid":0,"ts":2.0}
        ]}"#;
        assert!(validate_chrome(doc).unwrap_err().contains("closes"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome("not json").is_err());
        assert!(validate_chrome("{}").is_err());
    }
}
