//! Binary encoding of instructions into 72-bit words.
//!
//! The tile instruction memory is a `512 x 72` BRAM; this module packs each
//! [`Instr`] into the low 72 bits of a `u128` ([`RawInstr`]) and back.
//!
//! Layout (bit 71 = msb):
//!
//! ```text
//! [71:66] opcode   [65:60] flags (frac / ar-index / ldar-form)
//! [59:49] dst      [48:38] src1      [37:27] src2      (11 bits each:
//!                                     2-bit mode + 9-bit payload)
//! [26:3]  imm24    [2:0]   reserved (0)
//! ```

use crate::instr::{Instr, Operand};
use cgra_fabric::RawInstr;

/// Errors from decoding a raw instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode field value.
    BadOpcode(u8),
    /// An operand had an invalid mode for its role.
    BadOperand {
        /// Role of the offending operand.
        role: &'static str,
        /// The raw 11-bit operand field.
        raw: u16,
    },
    /// Bits above bit 71 were set.
    OverWidth,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            DecodeError::BadOperand { role, raw } => {
                write!(f, "invalid {role} operand field {raw:#x}")
            }
            DecodeError::OverWidth => write!(f, "instruction word wider than 72 bits"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const NOP: u8 = 0;
    pub const HALT: u8 = 1;
    pub const ADD: u8 = 2;
    pub const SUB: u8 = 3;
    pub const MUL: u8 = 4;
    pub const MAC: u8 = 5;
    pub const CLRACC: u8 = 6;
    pub const MOVACC: u8 = 7;
    pub const AND: u8 = 8;
    pub const OR: u8 = 9;
    pub const XOR: u8 = 10;
    pub const NOT: u8 = 11;
    pub const SHL: u8 = 12;
    pub const SHR: u8 = 13;
    pub const MOV: u8 = 14;
    pub const LDI: u8 = 15;
    pub const JMP: u8 = 16;
    pub const BZ: u8 = 17;
    pub const BNZ: u8 = 18;
    pub const BNEG: u8 = 19;
    pub const BGEZ: u8 = 20;
    pub const DJNZ: u8 = 21;
    pub const LDAR: u8 = 22;
    pub const ADAR: u8 = 23;
    pub const MOVAR: u8 = 24;
}

const MODE_DIR: u16 = 0;
const MODE_IND: u16 = 1;
const MODE_IMM: u16 = 2;
const MODE_REM: u16 = 3;

fn enc_operand(o: Operand) -> u16 {
    match o {
        Operand::Dir(a) => (MODE_DIR << 9) | (a & 0x1ff),
        Operand::Ind { ar, disp } => {
            (MODE_IND << 9) | (((ar as u16) & 0x7) << 6) | ((disp as u16) & 0x3f)
        }
        Operand::Imm(v) => (MODE_IMM << 9) | ((v as u16) & 0x1ff),
        Operand::Rem { ar, disp } => {
            (MODE_REM << 9) | (((ar as u16) & 0x7) << 6) | ((disp as u16) & 0x3f)
        }
    }
}

fn dec_operand(raw: u16) -> Operand {
    let mode = (raw >> 9) & 0x3;
    let payload = raw & 0x1ff;
    match mode {
        MODE_DIR => Operand::Dir(payload),
        MODE_IND => Operand::Ind {
            ar: ((payload >> 6) & 0x7) as u8,
            disp: (payload & 0x3f) as u8,
        },
        MODE_IMM => {
            // sign-extend 9 bits
            let v = ((payload as i16) << 7) >> 7;
            Operand::Imm(v)
        }
        _ => Operand::Rem {
            ar: ((payload >> 6) & 0x7) as u8,
            disp: (payload & 0x3f) as u8,
        },
    }
}

struct Fields {
    opcode: u8,
    flags: u8,
    dst: u16,
    src1: u16,
    src2: u16,
    imm24: u32,
}

impl Fields {
    fn zero(opcode: u8) -> Fields {
        Fields {
            opcode,
            flags: 0,
            dst: 0,
            src1: 0,
            src2: 0,
            imm24: 0,
        }
    }

    fn pack(&self) -> RawInstr {
        ((self.opcode as u128 & 0x3f) << 66)
            | ((self.flags as u128 & 0x3f) << 60)
            | ((self.dst as u128 & 0x7ff) << 49)
            | ((self.src1 as u128 & 0x7ff) << 38)
            | ((self.src2 as u128 & 0x7ff) << 27)
            | ((self.imm24 as u128 & 0xff_ffff) << 3)
    }

    fn unpack(w: RawInstr) -> Fields {
        Fields {
            opcode: ((w >> 66) & 0x3f) as u8,
            flags: ((w >> 60) & 0x3f) as u8,
            dst: ((w >> 49) & 0x7ff) as u16,
            src1: ((w >> 38) & 0x7ff) as u16,
            src2: ((w >> 27) & 0x7ff) as u16,
            imm24: ((w >> 3) & 0xff_ffff) as u32,
        }
    }
}

fn imm24_signed(raw: u32) -> i32 {
    ((raw as i32) << 8) >> 8
}

/// Encodes an instruction into its 72-bit word.
pub fn encode(i: &Instr) -> RawInstr {
    use op::*;
    let mut f;
    match *i {
        Instr::Nop => f = Fields::zero(NOP),
        Instr::Halt => f = Fields::zero(HALT),
        Instr::Add { dst, a, b } => {
            f = Fields::zero(ADD);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
        }
        Instr::Sub { dst, a, b } => {
            f = Fields::zero(SUB);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
        }
        Instr::Mul { dst, a, b, frac } => {
            f = Fields::zero(MUL);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
            f.flags = frac;
        }
        Instr::Mac { a, b, frac } => {
            f = Fields::zero(MAC);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
            f.flags = frac;
        }
        Instr::ClrAcc => f = Fields::zero(CLRACC),
        Instr::MovAcc { dst } => {
            f = Fields::zero(MOVACC);
            f.dst = enc_operand(dst);
        }
        Instr::And { dst, a, b } => {
            f = Fields::zero(AND);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
        }
        Instr::Or { dst, a, b } => {
            f = Fields::zero(OR);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
        }
        Instr::Xor { dst, a, b } => {
            f = Fields::zero(XOR);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
        }
        Instr::Not { dst, a } => {
            f = Fields::zero(NOT);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
        }
        Instr::Shl { dst, a, b } => {
            f = Fields::zero(SHL);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
        }
        Instr::Shr { dst, a, b } => {
            f = Fields::zero(SHR);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
            f.src2 = enc_operand(b);
        }
        Instr::Mov { dst, a } => {
            f = Fields::zero(MOV);
            f.dst = enc_operand(dst);
            f.src1 = enc_operand(a);
        }
        Instr::Ldi { dst, imm } => {
            f = Fields::zero(LDI);
            f.dst = enc_operand(dst);
            f.imm24 = (imm as u32) & 0xff_ffff;
        }
        Instr::Jmp { target } => {
            f = Fields::zero(JMP);
            f.imm24 = target as u32;
        }
        Instr::Bz { a, target } => {
            f = Fields::zero(BZ);
            f.src1 = enc_operand(a);
            f.imm24 = target as u32;
        }
        Instr::Bnz { a, target } => {
            f = Fields::zero(BNZ);
            f.src1 = enc_operand(a);
            f.imm24 = target as u32;
        }
        Instr::Bneg { a, target } => {
            f = Fields::zero(BNEG);
            f.src1 = enc_operand(a);
            f.imm24 = target as u32;
        }
        Instr::Bgez { a, target } => {
            f = Fields::zero(BGEZ);
            f.src1 = enc_operand(a);
            f.imm24 = target as u32;
        }
        Instr::Djnz { dst, target } => {
            f = Fields::zero(DJNZ);
            f.dst = enc_operand(dst);
            f.imm24 = target as u32;
        }
        Instr::Ldar { k, src, imm } => {
            f = Fields::zero(LDAR);
            f.flags = k & 0x7;
            if let Some(s) = src {
                f.flags |= 0x8; // memory-source form
                f.src1 = enc_operand(s);
            }
            f.imm24 = imm as u32;
        }
        Instr::Adar { k, delta } => {
            f = Fields::zero(ADAR);
            f.flags = k & 0x7;
            f.imm24 = (delta as i32 as u32) & 0xff_ffff;
        }
        Instr::Movar { dst, k } => {
            f = Fields::zero(MOVAR);
            f.flags = k & 0x7;
            f.dst = enc_operand(dst);
        }
    }
    f.pack()
}

/// Decodes a 72-bit word back into an instruction.
pub fn decode(w: RawInstr) -> Result<Instr, DecodeError> {
    use op::*;
    if w >> 72 != 0 {
        return Err(DecodeError::OverWidth);
    }
    let f = Fields::unpack(w);
    let dst = || dec_operand(f.dst);
    let a = || dec_operand(f.src1);
    let b = || dec_operand(f.src2);
    let target = (f.imm24 & 0x1ff) as u16;
    let i = match f.opcode {
        NOP => Instr::Nop,
        HALT => Instr::Halt,
        ADD => Instr::Add {
            dst: dst(),
            a: a(),
            b: b(),
        },
        SUB => Instr::Sub {
            dst: dst(),
            a: a(),
            b: b(),
        },
        MUL => Instr::Mul {
            dst: dst(),
            a: a(),
            b: b(),
            frac: f.flags,
        },
        MAC => Instr::Mac {
            a: a(),
            b: b(),
            frac: f.flags,
        },
        CLRACC => Instr::ClrAcc,
        MOVACC => Instr::MovAcc { dst: dst() },
        AND => Instr::And {
            dst: dst(),
            a: a(),
            b: b(),
        },
        OR => Instr::Or {
            dst: dst(),
            a: a(),
            b: b(),
        },
        XOR => Instr::Xor {
            dst: dst(),
            a: a(),
            b: b(),
        },
        NOT => Instr::Not { dst: dst(), a: a() },
        SHL => Instr::Shl {
            dst: dst(),
            a: a(),
            b: b(),
        },
        SHR => Instr::Shr {
            dst: dst(),
            a: a(),
            b: b(),
        },
        MOV => Instr::Mov { dst: dst(), a: a() },
        LDI => Instr::Ldi {
            dst: dst(),
            imm: imm24_signed(f.imm24),
        },
        JMP => Instr::Jmp { target },
        BZ => Instr::Bz { a: a(), target },
        BNZ => Instr::Bnz { a: a(), target },
        BNEG => Instr::Bneg { a: a(), target },
        BGEZ => Instr::Bgez { a: a(), target },
        DJNZ => Instr::Djnz { dst: dst(), target },
        LDAR => Instr::Ldar {
            k: f.flags & 0x7,
            src: if f.flags & 0x8 != 0 { Some(a()) } else { None },
            imm: (f.imm24 & 0x1ff) as u16,
        },
        ADAR => Instr::Adar {
            k: f.flags & 0x7,
            delta: {
                let d = imm24_signed(f.imm24);
                d as i16
            },
        },
        MOVAR => Instr::Movar {
            dst: dst(),
            k: f.flags & 0x7,
        },
        other => return Err(DecodeError::BadOpcode(other)),
    };
    // Re-validate decoded operand roles so corrupt words cannot smuggle an
    // immediate destination or remote source into the executor.
    i.validate().map_err(|_| DecodeError::BadOperand {
        role: "decoded",
        raw: f.dst,
    })?;
    Ok(i)
}

/// Encodes a whole program.
pub fn encode_program(prog: &[Instr]) -> Vec<RawInstr> {
    prog.iter().map(encode).collect()
}

/// Decodes a whole program image.
pub fn decode_program(image: &[RawInstr]) -> Result<Vec<Instr>, DecodeError> {
    image.iter().map(|&w| decode(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Instr> {
        use Operand::*;
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Add {
                dst: Dir(511),
                a: Ind { ar: 7, disp: 63 },
                b: Imm(-256),
            },
            Instr::Sub {
                dst: Rem { ar: 1, disp: 2 },
                a: Dir(3),
                b: Dir(4),
            },
            Instr::Mul {
                dst: Dir(1),
                a: Dir(2),
                b: Dir(3),
                frac: 24,
            },
            Instr::Mac {
                a: Ind { ar: 0, disp: 1 },
                b: Ind { ar: 1, disp: 0 },
                frac: 63,
            },
            Instr::ClrAcc,
            Instr::MovAcc { dst: Dir(9) },
            Instr::And {
                dst: Dir(0),
                a: Imm(255),
                b: Dir(1),
            },
            Instr::Or {
                dst: Dir(0),
                a: Dir(1),
                b: Dir(2),
            },
            Instr::Xor {
                dst: Dir(0),
                a: Dir(1),
                b: Dir(2),
            },
            Instr::Not {
                dst: Dir(5),
                a: Dir(6),
            },
            Instr::Shl {
                dst: Dir(0),
                a: Dir(1),
                b: Imm(4),
            },
            Instr::Shr {
                dst: Dir(0),
                a: Dir(1),
                b: Imm(24),
            },
            Instr::Mov {
                dst: Rem { ar: 7, disp: 63 },
                a: Dir(0),
            },
            Instr::Ldi {
                dst: Dir(1),
                imm: -8_388_608,
            },
            Instr::Ldi {
                dst: Dir(1),
                imm: 8_388_607,
            },
            Instr::Jmp { target: 511 },
            Instr::Bz {
                a: Dir(1),
                target: 0,
            },
            Instr::Bnz {
                a: Imm(-1),
                target: 37,
            },
            Instr::Bneg {
                a: Dir(2),
                target: 99,
            },
            Instr::Bgez {
                a: Dir(2),
                target: 100,
            },
            Instr::Djnz {
                dst: Dir(15),
                target: 2,
            },
            Instr::Ldar {
                k: 3,
                src: None,
                imm: 400,
            },
            Instr::Ldar {
                k: 7,
                src: Some(Operand::Dir(31)),
                imm: 0,
            },
            Instr::Adar { k: 1, delta: -512 },
            Instr::Adar { k: 1, delta: 511 },
            Instr::Movar { dst: Dir(44), k: 5 },
        ]
    }

    #[test]
    fn roundtrip_all_samples() {
        for i in samples() {
            i.validate().unwrap();
            let w = encode(&i);
            assert_eq!(w >> 72, 0, "{i:?} wider than 72 bits");
            let back = decode(w).unwrap();
            assert_eq!(back, i);
        }
    }

    #[test]
    fn program_roundtrip() {
        let prog = samples();
        let image = encode_program(&prog);
        assert_eq!(decode_program(&image).unwrap(), prog);
    }

    #[test]
    fn bad_opcode_rejected() {
        let w: RawInstr = (63u128) << 66;
        assert!(matches!(decode(w), Err(DecodeError::BadOpcode(63))));
    }

    #[test]
    fn over_width_rejected() {
        assert!(matches!(decode(1u128 << 72), Err(DecodeError::OverWidth)));
    }

    #[test]
    fn corrupt_operand_roles_rejected() {
        // ADD with an immediate destination (mode 2 in dst field).
        let f = (op::ADD as u128) << 66 | (0b10_000000000u128) << 49;
        assert!(decode(f).is_err());
    }

    #[test]
    fn imm9_sign_extension() {
        let i = Instr::Bz {
            a: Operand::Imm(-200),
            target: 1,
        };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }
}
