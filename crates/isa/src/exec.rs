//! Cycle-counting PE interpreter.
//!
//! One [`step`] executes one instruction in one cycle, faithful to the
//! modeled hardware:
//!
//! * at most two data-memory reads and one write per cycle,
//! * address registers, the MAC accumulator, and the PC live in flops,
//! * a remote destination produces a [`StepEffect::RemoteWrite`] that the
//!   caller (the multi-tile simulator) routes across the tile's single
//!   active outgoing link.

use crate::encode::decode;
use crate::instr::{Instr, Operand, NUM_AR};
use cgra_fabric::{FabricError, Tile, Word, DATA_WORDS};

/// Architectural state of one PE (everything outside the BRAMs).
#[derive(Debug, Clone, Default)]
pub struct PeState {
    /// Program counter.
    pub pc: usize,
    /// MAC accumulator (wider than a word, like the DSP48 cascade).
    pub acc: i128,
    /// Address registers `a0..a7`.
    pub ar: [u16; NUM_AR],
    /// Set once `halt` retires.
    pub halted: bool,
    /// Cycles executed since reset.
    pub cycles: u64,
}

impl PeState {
    /// A freshly reset PE.
    pub fn new() -> PeState {
        PeState::default()
    }

    /// Resets pc/acc/halted/cycles but keeps address registers (the paper
    /// reuses AR contents across epochs via the copy-process optimization).
    pub fn soft_reset(&mut self) {
        self.pc = 0;
        self.acc = 0;
        self.halted = false;
    }
}

/// Side effect of one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEffect {
    /// Nothing beyond local state changes.
    None,
    /// The instruction wrote `value` to `addr` in the linked neighbour's
    /// data memory; the caller must deliver it.
    RemoteWrite {
        /// Address in the neighbour's data memory.
        addr: usize,
        /// Value written.
        value: Word,
    },
    /// The PE retired `halt` this cycle.
    Halted,
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Underlying memory/link error.
    Fabric(FabricError),
    /// Word failed to decode.
    Decode(String),
    /// An immediate was used as a destination or a remote as a source
    /// (unreachable for validated programs; kept for corrupt images).
    BadOperandRole,
    /// `run` hit its cycle budget before `halt`.
    CycleBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// Stepped a PE that already halted.
    AlreadyHalted,
}

impl From<FabricError> for ExecError {
    fn from(e: FabricError) -> Self {
        ExecError::Fabric(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Fabric(e) => write!(f, "fabric: {e}"),
            ExecError::Decode(e) => write!(f, "decode: {e}"),
            ExecError::BadOperandRole => write!(f, "bad operand role"),
            ExecError::CycleBudgetExhausted { budget } => {
                write!(f, "program did not halt within {budget} cycles")
            }
            ExecError::AlreadyHalted => write!(f, "PE already halted"),
        }
    }
}

impl std::error::Error for ExecError {}

fn ind_addr(st: &PeState, ar: u8, disp: u8) -> usize {
    ((st.ar[ar as usize] as usize) + disp as usize) % DATA_WORDS
}

fn read_operand(tile: &mut Tile, st: &PeState, o: Operand) -> Result<Word, ExecError> {
    match o {
        Operand::Dir(a) => Ok(tile.dmem.read(a as usize)?),
        Operand::Ind { ar, disp } => Ok(tile.dmem.read(ind_addr(st, ar, disp))?),
        Operand::Imm(v) => Ok(Word::wrap(v as i64)),
        Operand::Rem { .. } => Err(ExecError::BadOperandRole),
    }
}

/// Writes `v` to `dst`, returning the remote effect if the destination is
/// across the link.
fn write_operand(
    tile: &mut Tile,
    st: &PeState,
    dst: Operand,
    v: Word,
) -> Result<StepEffect, ExecError> {
    match dst {
        Operand::Dir(a) => {
            tile.dmem.write(a as usize, v)?;
            Ok(StepEffect::None)
        }
        Operand::Ind { ar, disp } => {
            tile.dmem.write(ind_addr(st, ar, disp), v)?;
            Ok(StepEffect::None)
        }
        Operand::Rem { ar, disp } => Ok(StepEffect::RemoteWrite {
            addr: ind_addr(st, ar, disp),
            value: v,
        }),
        Operand::Imm(_) => Err(ExecError::BadOperandRole),
    }
}

/// Executes one instruction on `tile`, advancing `st` by one cycle.
pub fn step(tile: &mut Tile, st: &mut PeState) -> Result<StepEffect, ExecError> {
    if st.halted {
        return Err(ExecError::AlreadyHalted);
    }
    let raw = tile.imem.fetch(st.pc)?;
    let instr = decode(raw).map_err(|e| ExecError::Decode(e.to_string()))?;
    st.cycles += 1;
    tile.dmem.end_cycle();
    let mut next_pc = st.pc + 1;
    let mut effect = StepEffect::None;

    macro_rules! binop {
        ($dst:expr, $a:expr, $b:expr, $f:expr) => {{
            let x = read_operand(tile, st, $a)?;
            let y = read_operand(tile, st, $b)?;
            effect = write_operand(tile, st, $dst, $f(x, y))?;
        }};
    }

    match instr {
        Instr::Nop => {}
        Instr::Halt => {
            st.halted = true;
            effect = StepEffect::Halted;
        }
        Instr::Add { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.add(y)),
        Instr::Sub { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.sub(y)),
        Instr::Mul { dst, a, b, frac } => {
            binop!(dst, a, b, |x: Word, y: Word| x.mul_frac(y, frac as u32))
        }
        Instr::Mac { a, b, frac } => {
            let x = read_operand(tile, st, a)?;
            let y = read_operand(tile, st, b)?;
            let prod = (x.value() as i128) * (y.value() as i128);
            st.acc = st.acc.wrapping_add(prod >> frac);
        }
        Instr::ClrAcc => st.acc = 0,
        Instr::MovAcc { dst } => {
            let v = Word::wrap(st.acc as i64);
            effect = write_operand(tile, st, dst, v)?;
        }
        Instr::And { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.and(y)),
        Instr::Or { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.or(y)),
        Instr::Xor { dst, a, b } => binop!(dst, a, b, |x: Word, y: Word| x.xor(y)),
        Instr::Not { dst, a } => {
            let x = read_operand(tile, st, a)?;
            effect = write_operand(tile, st, dst, x.not())?;
        }
        Instr::Shl { dst, a, b } => {
            binop!(dst, a, b, |x: Word, y: Word| x.shl((y.value() & 63) as u32))
        }
        Instr::Shr { dst, a, b } => {
            binop!(dst, a, b, |x: Word, y: Word| x.shr((y.value() & 63) as u32))
        }
        Instr::Mov { dst, a } => {
            let x = read_operand(tile, st, a)?;
            effect = write_operand(tile, st, dst, x)?;
        }
        Instr::Ldi { dst, imm } => {
            effect = write_operand(tile, st, dst, Word::wrap(imm as i64))?;
        }
        Instr::Jmp { target } => next_pc = target as usize,
        Instr::Bz { a, target } => {
            if read_operand(tile, st, a)?.is_zero() {
                next_pc = target as usize;
            }
        }
        Instr::Bnz { a, target } => {
            if !read_operand(tile, st, a)?.is_zero() {
                next_pc = target as usize;
            }
        }
        Instr::Bneg { a, target } => {
            if read_operand(tile, st, a)?.is_negative() {
                next_pc = target as usize;
            }
        }
        Instr::Bgez { a, target } => {
            if !read_operand(tile, st, a)?.is_negative() {
                next_pc = target as usize;
            }
        }
        Instr::Djnz { dst, target } => {
            let v = read_operand(tile, st, dst)?.sub(Word::ONE);
            write_operand(tile, st, dst, v)?;
            if !v.is_zero() {
                next_pc = target as usize;
            }
        }
        Instr::Ldar { k, src, imm } => {
            let addr = match src {
                Some(s) => {
                    (read_operand(tile, st, s)?
                        .value()
                        .rem_euclid(DATA_WORDS as i64)) as u16
                }
                None => imm,
            };
            st.ar[k as usize] = addr % DATA_WORDS as u16;
        }
        Instr::Adar { k, delta } => {
            let cur = st.ar[k as usize] as i32;
            st.ar[k as usize] = (cur + delta as i32).rem_euclid(DATA_WORDS as i32) as u16;
        }
        Instr::Movar { dst, k } => {
            let v = Word::wrap(st.ar[k as usize] as i64);
            effect = write_operand(tile, st, dst, v)?;
        }
    }
    st.pc = next_pc;
    Ok(effect)
}

/// Statistics from a completed [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Cycles executed (== instructions retired).
    pub cycles: u64,
    /// Remote writes emitted.
    pub remote_writes: u64,
}

/// Runs until `halt`, delivering remote writes to `sink(addr, value)`.
///
/// Errors with [`ExecError::CycleBudgetExhausted`] if the program does not
/// halt within `max_cycles`.
pub fn run_with_sink(
    tile: &mut Tile,
    st: &mut PeState,
    max_cycles: u64,
    mut sink: impl FnMut(usize, Word),
) -> Result<RunStats, ExecError> {
    let start = st.cycles;
    let mut remote_writes = 0;
    while !st.halted {
        if st.cycles - start >= max_cycles {
            return Err(ExecError::CycleBudgetExhausted { budget: max_cycles });
        }
        match step(tile, st)? {
            StepEffect::RemoteWrite { addr, value } => {
                remote_writes += 1;
                sink(addr, value);
            }
            StepEffect::None | StepEffect::Halted => {}
        }
    }
    Ok(RunStats {
        cycles: st.cycles - start,
        remote_writes,
    })
}

/// Runs a self-contained program (no remote writes allowed) until `halt`.
pub fn run(tile: &mut Tile, st: &mut PeState, max_cycles: u64) -> Result<RunStats, ExecError> {
    let mut leaked = false;
    let stats = run_with_sink(tile, st, max_cycles, |_, _| leaked = true)?;
    if leaked {
        return Err(ExecError::Fabric(FabricError::NoActiveLink {
            tile: tile.id,
        }));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_program;

    fn load(tile: &mut Tile, prog: &[Instr]) {
        tile.load_program(&encode_program(prog)).unwrap();
    }

    #[test]
    fn arithmetic_and_halt() {
        use Operand::*;
        let mut t = Tile::new(0);
        load(
            &mut t,
            &[
                Instr::Ldi {
                    dst: Dir(0),
                    imm: 20,
                },
                Instr::Ldi {
                    dst: Dir(1),
                    imm: 22,
                },
                Instr::Add {
                    dst: Dir(2),
                    a: Dir(0),
                    b: Dir(1),
                },
                Instr::Halt,
            ],
        );
        let mut st = PeState::new();
        let stats = run(&mut t, &mut st, 100).unwrap();
        assert_eq!(stats.cycles, 4);
        assert_eq!(t.dmem.peek(2).unwrap().value(), 42);
        assert!(st.halted);
    }

    #[test]
    fn djnz_loops_n_times() {
        use Operand::*;
        // d[0] = 5; loop: d[1] += 2; djnz d[0], loop; halt
        let mut t = Tile::new(0);
        load(
            &mut t,
            &[
                Instr::Ldi {
                    dst: Dir(0),
                    imm: 5,
                },
                Instr::Add {
                    dst: Dir(1),
                    a: Dir(1),
                    b: Imm(2),
                },
                Instr::Djnz {
                    dst: Dir(0),
                    target: 1,
                },
                Instr::Halt,
            ],
        );
        let mut st = PeState::new();
        let stats = run(&mut t, &mut st, 1000).unwrap();
        assert_eq!(t.dmem.peek(1).unwrap().value(), 10);
        // 1 ldi + 5*(add+djnz) + halt = 12 cycles
        assert_eq!(stats.cycles, 12);
    }

    #[test]
    fn indirect_addressing_with_adar() {
        use Operand::*;
        // Sum d[100..104] into d[0] via a0.
        let mut t = Tile::new(0);
        for (i, v) in [3i64, 5, 7, 11, 13].iter().enumerate() {
            t.dmem.poke(100 + i, Word::wrap(*v)).unwrap();
        }
        load(
            &mut t,
            &[
                Instr::Ldar {
                    k: 0,
                    src: None,
                    imm: 100,
                },
                Instr::Ldi {
                    dst: Dir(1),
                    imm: 5,
                },
                Instr::Add {
                    dst: Dir(0),
                    a: Dir(0),
                    b: Ind { ar: 0, disp: 0 },
                },
                Instr::Adar { k: 0, delta: 1 },
                Instr::Djnz {
                    dst: Dir(1),
                    target: 2,
                },
                Instr::Halt,
            ],
        );
        let mut st = PeState::new();
        run(&mut t, &mut st, 1000).unwrap();
        assert_eq!(t.dmem.peek(0).unwrap().value(), 39);
        assert_eq!(st.ar[0], 105);
    }

    #[test]
    fn mac_accumulates_dot_product() {
        use Operand::*;
        let mut t = Tile::new(0);
        // d[10..13] = [1,2,3], d[20..23] = [4,5,6]; acc = 1*4+2*5+3*6 = 32
        for (i, v) in [1i64, 2, 3].iter().enumerate() {
            t.dmem.poke(10 + i, Word::wrap(*v)).unwrap();
        }
        for (i, v) in [4i64, 5, 6].iter().enumerate() {
            t.dmem.poke(20 + i, Word::wrap(*v)).unwrap();
        }
        load(
            &mut t,
            &[
                Instr::ClrAcc,
                Instr::Ldar {
                    k: 0,
                    src: None,
                    imm: 10,
                },
                Instr::Ldar {
                    k: 1,
                    src: None,
                    imm: 20,
                },
                Instr::Ldi {
                    dst: Dir(0),
                    imm: 3,
                },
                Instr::Mac {
                    a: Ind { ar: 0, disp: 0 },
                    b: Ind { ar: 1, disp: 0 },
                    frac: 0,
                },
                Instr::Adar { k: 0, delta: 1 },
                Instr::Adar { k: 1, delta: 1 },
                Instr::Djnz {
                    dst: Dir(0),
                    target: 4,
                },
                Instr::MovAcc { dst: Dir(1) },
                Instr::Halt,
            ],
        );
        let mut st = PeState::new();
        run(&mut t, &mut st, 1000).unwrap();
        assert_eq!(t.dmem.peek(1).unwrap().value(), 32);
    }

    #[test]
    fn remote_write_reaches_sink() {
        use Operand::*;
        let mut t = Tile::new(0);
        load(
            &mut t,
            &[
                Instr::Ldi {
                    dst: Dir(0),
                    imm: 7,
                },
                Instr::Mov {
                    dst: Rem { ar: 0, disp: 33 },
                    a: Dir(0),
                },
                Instr::Halt,
            ],
        );
        let mut st = PeState::new();
        let mut seen = Vec::new();
        let stats = run_with_sink(&mut t, &mut st, 100, |a, v| seen.push((a, v.value()))).unwrap();
        assert_eq!(seen, vec![(33, 7)]);
        assert_eq!(stats.remote_writes, 1);
    }

    #[test]
    fn run_rejects_unrouted_remote_write() {
        use Operand::*;
        let mut t = Tile::new(4);
        load(
            &mut t,
            &[
                Instr::Mov {
                    dst: Rem { ar: 0, disp: 0 },
                    a: Imm(1),
                },
                Instr::Halt,
            ],
        );
        let mut st = PeState::new();
        assert!(matches!(
            run(&mut t, &mut st, 100),
            Err(ExecError::Fabric(FabricError::NoActiveLink { tile: 4 }))
        ));
    }

    #[test]
    fn budget_exhaustion() {
        let mut t = Tile::new(0);
        load(&mut t, &[Instr::Jmp { target: 0 }]);
        let mut st = PeState::new();
        assert!(matches!(
            run(&mut t, &mut st, 50),
            Err(ExecError::CycleBudgetExhausted { budget: 50 })
        ));
    }

    #[test]
    fn stepping_after_halt_errors() {
        let mut t = Tile::new(0);
        load(&mut t, &[Instr::Halt]);
        let mut st = PeState::new();
        assert_eq!(step(&mut t, &mut st).unwrap(), StepEffect::Halted);
        assert!(matches!(
            step(&mut t, &mut st),
            Err(ExecError::AlreadyHalted)
        ));
    }

    #[test]
    fn branches() {
        use Operand::*;
        // if d[0] >= 0 skip the poison write
        let mut t = Tile::new(0);
        load(
            &mut t,
            &[
                Instr::Ldi {
                    dst: Dir(0),
                    imm: -5,
                },
                Instr::Bneg {
                    a: Dir(0),
                    target: 3,
                },
                Instr::Ldi {
                    dst: Dir(1),
                    imm: 99,
                },
                Instr::Halt,
            ],
        );
        let mut st = PeState::new();
        run(&mut t, &mut st, 100).unwrap();
        assert_eq!(t.dmem.peek(1).unwrap().value(), 0);
    }

    #[test]
    fn fixed_point_mul() {
        use cgra_fabric::word::fixed;
        use Operand::*;
        let mut t = Tile::new(0);
        t.dmem.poke(0, fixed::from_f64(0.5)).unwrap();
        t.dmem.poke(1, fixed::from_f64(-1.25)).unwrap();
        load(
            &mut t,
            &[
                Instr::Mul {
                    dst: Dir(2),
                    a: Dir(0),
                    b: Dir(1),
                    frac: fixed::FRAC_BITS as u8,
                },
                Instr::Halt,
            ],
        );
        let mut st = PeState::new();
        run(&mut t, &mut st, 10).unwrap();
        assert!((fixed::to_f64(t.dmem.peek(2).unwrap()) + 0.625).abs() < 1e-6);
    }

    #[test]
    fn soft_reset_preserves_ars() {
        let mut st = PeState::new();
        st.ar[2] = 77;
        st.pc = 10;
        st.halted = true;
        st.soft_reset();
        assert_eq!(st.ar[2], 77);
        assert_eq!(st.pc, 0);
        assert!(!st.halted);
    }
}
