//! A small text assembler for the PE ISA.
//!
//! Syntax (one instruction per line, `;` starts a comment):
//!
//! ```text
//! init:   ldi    d[0], 42          ; direct destination, 24-bit immediate
//!         ldar   a0, 100           ; address register, immediate form
//!         ldar   a1, d[5]          ; address register, memory form
//! loop:   mac.24 @a0, @a1+1        ; indirect operands, frac suffix
//!         adar   a0, 1
//!         djnz   d[0], loop        ; label branch target
//!         movacc d[1]
//!         ldar   a3, 17
//!         mov    r@a3, d[1]        ; remote (neighbour) write
//!         halt
//! ```
//!
//! Directives:
//!
//! * `.equ NAME, value` — a named constant usable wherever an integer is
//!   (addresses, immediates, loop bounds),
//! * `.data base, v0, v1, ...` — words the loader writes into data memory
//!   before execution (collected into [`AsmUnit::data`]).
//!
//! The [`crate::disasm`] module emits exactly this syntax, so
//! `assemble(disassemble(p)) == p` for every valid program.

use crate::instr::{Instr, Operand};
use std::collections::HashMap;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

/// A parsed operand or branch-target token.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Op(Operand),
    Ar(u8),
    Int(i64),
    Ident(String),
}

fn parse_token(t: &str, line: usize) -> Result<Tok, AsmError> {
    let t = t.trim();
    if let Some(rest) = t.strip_prefix("d[") {
        let n = rest
            .strip_suffix(']')
            .ok_or_else(|| err(line, format!("missing ']' in '{t}'")))?;
        let a: u16 = n
            .parse()
            .map_err(|_| err(line, format!("bad address '{n}'")))?;
        return Ok(Tok::Op(Operand::Dir(a)));
    }
    if let Some(rest) = t.strip_prefix("r@a") {
        let (k, disp) = match rest.split_once('+') {
            Some((k, d)) => (
                k.parse::<u8>()
                    .map_err(|_| err(line, format!("bad ar in '{t}'")))?,
                d.parse::<u8>()
                    .map_err(|_| err(line, format!("bad displacement in '{t}'")))?,
            ),
            None => (
                rest.parse::<u8>()
                    .map_err(|_| err(line, format!("bad ar in '{t}'")))?,
                0,
            ),
        };
        return Ok(Tok::Op(Operand::Rem { ar: k, disp }));
    }
    if let Some(rest) = t.strip_prefix("@a") {
        let (k, disp) = match rest.split_once('+') {
            Some((k, d)) => (
                k.parse::<u8>()
                    .map_err(|_| err(line, format!("bad ar in '{t}'")))?,
                d.parse::<u8>()
                    .map_err(|_| err(line, format!("bad displacement in '{t}'")))?,
            ),
            None => (
                rest.parse::<u8>()
                    .map_err(|_| err(line, format!("bad ar in '{t}'")))?,
                0,
            ),
        };
        return Ok(Tok::Op(Operand::Ind { ar: k, disp }));
    }
    if let Some(rest) = t.strip_prefix('#') {
        let v: i16 = rest
            .parse()
            .map_err(|_| err(line, format!("bad immediate '{t}'")))?;
        return Ok(Tok::Op(Operand::Imm(v)));
    }
    if let Some(rest) = t.strip_prefix('a') {
        if let Ok(k) = rest.parse::<u8>() {
            return Ok(Tok::Ar(k));
        }
    }
    if let Ok(v) = t.parse::<i64>() {
        return Ok(Tok::Int(v));
    }
    if t.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !t.is_empty()
    {
        return Ok(Tok::Ident(t.to_string()));
    }
    Err(err(line, format!("cannot parse operand '{t}'")))
}

fn split_operands(s: &str) -> Vec<String> {
    s.split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect()
}

struct Line {
    line_no: usize,
    mnemonic: String,
    frac: u8,
    toks: Vec<Tok>,
}

/// An assembled translation unit: code plus initialized data segments.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmUnit {
    /// The program.
    pub program: Vec<Instr>,
    /// `(base, words)` data segments from `.data` directives.
    pub data: Vec<(usize, Vec<i64>)>,
}

/// Assembles source text into a validated program (directives allowed;
/// their data segments are discarded — use [`assemble_unit`] to keep them).
pub fn assemble(src: &str) -> Result<Vec<Instr>, AsmError> {
    assemble_unit(src).map(|u| u.program)
}

/// Assembles source text into code plus `.data` segments.
pub fn assemble_unit(src: &str) -> Result<AsmUnit, AsmError> {
    // Pass 0: extract directives (.equ constants, .data segments) and
    // apply constant substitution textually per token.
    let mut consts: HashMap<String, i64> = HashMap::new();
    let mut data: Vec<(usize, Vec<i64>)> = Vec::new();
    let mut code_src = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(p) = text.find(';') {
            text = &text[..p];
        }
        let trimmed = text.trim();
        if let Some(rest) = trimmed.strip_prefix(".equ") {
            let (name, value) = rest
                .split_once(',')
                .ok_or_else(|| err(line_no, ".equ NAME, value"))?;
            let name = name.trim().to_string();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(line_no, format!("bad .equ name '{name}'")));
            }
            let value = resolve_int(value.trim(), &consts, line_no)?;
            if consts.insert(name.clone(), value).is_some() {
                return Err(err(line_no, format!("duplicate .equ '{name}'")));
            }
            code_src.push('\n');
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix(".data") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() < 2 {
                return Err(err(line_no, ".data base, v0[, v1...]"));
            }
            let base = resolve_int(parts[0], &consts, line_no)?;
            if base < 0 {
                return Err(err(line_no, "negative .data base"));
            }
            let words = parts[1..]
                .iter()
                .map(|t| resolve_int(t, &consts, line_no))
                .collect::<Result<Vec<_>, _>>()?;
            data.push((base as usize, words));
            code_src.push('\n');
            continue;
        }
        // Substitute constants inside operand-looking positions.
        code_src.push_str(&substitute_consts(raw, &consts));
        code_src.push('\n');
    }
    let program = assemble_code(&code_src)?;
    Ok(AsmUnit { program, data })
}

fn resolve_int(t: &str, consts: &HashMap<String, i64>, line: usize) -> Result<i64, AsmError> {
    if let Ok(v) = t.parse::<i64>() {
        return Ok(v);
    }
    consts
        .get(t)
        .copied()
        .ok_or_else(|| err(line, format!("unknown constant '{t}'")))
}

/// Replaces known constant names appearing as whole words with their
/// values (labels keep priority because substitution only touches names
/// defined by `.equ`).
fn substitute_consts(line: &str, consts: &HashMap<String, i64>) -> String {
    if consts.is_empty() {
        return line.to_string();
    }
    let mut out = String::with_capacity(line.len());
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut String| {
        if let Some(v) = consts.get(word.as_str()) {
            out.push_str(&v.to_string());
        } else {
            out.push_str(word);
        }
        word.clear();
    };
    for ch in line.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            word.push(ch);
        } else {
            flush(&mut word, &mut out);
            out.push(ch);
        }
    }
    flush(&mut word, &mut out);
    out
}

fn assemble_code(src: &str) -> Result<Vec<Instr>, AsmError> {
    // Pass 1: strip comments, collect labels, tokenize.
    let mut labels: HashMap<String, u16> = HashMap::new();
    let mut lines: Vec<Line> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(p) = text.find(';') {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Leading labels ("name:"), possibly several.
        while let Some(p) = text.find(':') {
            let (lbl, rest) = text.split_at(p);
            let lbl = lbl.trim();
            if lbl.is_empty()
                || !lbl
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            if labels.insert(lbl.to_string(), lines.len() as u16).is_some() {
                return Err(err(line_no, format!("duplicate label '{lbl}'")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnem, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r),
            None => (text, ""),
        };
        let (mnem, frac) = match mnem.split_once('.') {
            Some((m, f)) => (
                m,
                f.parse::<u8>()
                    .map_err(|_| err(line_no, format!("bad frac suffix '.{f}'")))?,
            ),
            None => (mnem, 0u8),
        };
        let toks = split_operands(rest)
            .iter()
            .map(|t| parse_token(t, line_no))
            .collect::<Result<Vec<_>, _>>()?;
        lines.push(Line {
            line_no,
            mnemonic: mnem.to_ascii_lowercase(),
            frac,
            toks,
        });
    }

    // Pass 2: build instructions.
    let mut prog = Vec::with_capacity(lines.len());
    for l in &lines {
        let n = l.line_no;
        let want = |c: usize| -> Result<(), AsmError> {
            if l.toks.len() != c {
                Err(err(
                    n,
                    format!(
                        "{} expects {c} operand(s), got {}",
                        l.mnemonic,
                        l.toks.len()
                    ),
                ))
            } else {
                Ok(())
            }
        };
        let opnd = |i: usize| -> Result<Operand, AsmError> {
            match &l.toks[i] {
                Tok::Op(o) => Ok(*o),
                Tok::Int(v) if (-256..=255).contains(v) => Ok(Operand::Imm(*v as i16)),
                other => Err(err(n, format!("expected operand, got {other:?}"))),
            }
        };
        let target = |i: usize| -> Result<u16, AsmError> {
            match &l.toks[i] {
                Tok::Int(v) if (0..512).contains(v) => Ok(*v as u16),
                Tok::Ident(name) => labels
                    .get(name)
                    .copied()
                    .ok_or_else(|| err(n, format!("unknown label '{name}'"))),
                other => Err(err(n, format!("expected branch target, got {other:?}"))),
            }
        };
        let ar = |i: usize| -> Result<u8, AsmError> {
            match &l.toks[i] {
                Tok::Ar(k) => Ok(*k),
                other => Err(err(n, format!("expected address register, got {other:?}"))),
            }
        };
        let int = |i: usize| -> Result<i64, AsmError> {
            match &l.toks[i] {
                Tok::Int(v) => Ok(*v),
                Tok::Op(Operand::Imm(v)) => Ok(*v as i64),
                other => Err(err(n, format!("expected integer, got {other:?}"))),
            }
        };
        let i = match l.mnemonic.as_str() {
            "nop" => {
                want(0)?;
                Instr::Nop
            }
            "halt" => {
                want(0)?;
                Instr::Halt
            }
            "clracc" => {
                want(0)?;
                Instr::ClrAcc
            }
            "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" => {
                want(3)?;
                let (dst, a, b) = (opnd(0)?, opnd(1)?, opnd(2)?);
                match l.mnemonic.as_str() {
                    "add" => Instr::Add { dst, a, b },
                    "sub" => Instr::Sub { dst, a, b },
                    "and" => Instr::And { dst, a, b },
                    "or" => Instr::Or { dst, a, b },
                    "xor" => Instr::Xor { dst, a, b },
                    "shl" => Instr::Shl { dst, a, b },
                    _ => Instr::Shr { dst, a, b },
                }
            }
            "mul" => {
                want(3)?;
                Instr::Mul {
                    dst: opnd(0)?,
                    a: opnd(1)?,
                    b: opnd(2)?,
                    frac: l.frac,
                }
            }
            "mac" => {
                want(2)?;
                Instr::Mac {
                    a: opnd(0)?,
                    b: opnd(1)?,
                    frac: l.frac,
                }
            }
            "movacc" => {
                want(1)?;
                Instr::MovAcc { dst: opnd(0)? }
            }
            "not" => {
                want(2)?;
                Instr::Not {
                    dst: opnd(0)?,
                    a: opnd(1)?,
                }
            }
            "mov" => {
                want(2)?;
                Instr::Mov {
                    dst: opnd(0)?,
                    a: opnd(1)?,
                }
            }
            "ldi" => {
                want(2)?;
                let v = int(1)?;
                Instr::Ldi {
                    dst: opnd(0)?,
                    imm: i32::try_from(v).map_err(|_| err(n, "immediate out of range"))?,
                }
            }
            "jmp" => {
                want(1)?;
                Instr::Jmp { target: target(0)? }
            }
            "bz" | "bnz" | "bneg" | "bgez" => {
                want(2)?;
                let (a, t) = (opnd(0)?, target(1)?);
                match l.mnemonic.as_str() {
                    "bz" => Instr::Bz { a, target: t },
                    "bnz" => Instr::Bnz { a, target: t },
                    "bneg" => Instr::Bneg { a, target: t },
                    _ => Instr::Bgez { a, target: t },
                }
            }
            "djnz" => {
                want(2)?;
                Instr::Djnz {
                    dst: opnd(0)?,
                    target: target(1)?,
                }
            }
            "ldar" => {
                want(2)?;
                let k = ar(0)?;
                match &l.toks[1] {
                    Tok::Int(v) if (0..512).contains(v) => Instr::Ldar {
                        k,
                        src: None,
                        imm: *v as u16,
                    },
                    Tok::Op(o) if !matches!(o, Operand::Imm(_)) => Instr::Ldar {
                        k,
                        src: Some(*o),
                        imm: 0,
                    },
                    other => return Err(err(n, format!("bad ldar source {other:?}"))),
                }
            }
            "adar" => {
                want(2)?;
                Instr::Adar {
                    k: ar(0)?,
                    delta: i16::try_from(int(1)?).map_err(|_| err(n, "adar delta out of range"))?,
                }
            }
            "movar" => {
                want(2)?;
                Instr::Movar {
                    dst: opnd(0)?,
                    k: ar(1)?,
                }
            }
            other => return Err(err(n, format!("unknown mnemonic '{other}'"))),
        };
        i.validate().map_err(|e| err(n, e.to_string()))?;
        prog.push(i);
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run, PeState};
    use cgra_fabric::Tile;

    #[test]
    fn assemble_and_run() {
        let src = r#"
            ; sum 1..5 into d[1]
                    ldi   d[0], 5
            loop:   add   d[1], d[1], d[0]
                    djnz  d[0], loop
                    halt
        "#;
        let prog = assemble(src).unwrap();
        let mut t = Tile::new(0);
        t.load_program(&crate::encode::encode_program(&prog))
            .unwrap();
        let mut st = PeState::new();
        run(&mut t, &mut st, 100).unwrap();
        assert_eq!(t.dmem.peek(1).unwrap().value(), 15);
    }

    #[test]
    fn all_operand_forms() {
        let src = r#"
            ldar  a0, 100
            ldar  a1, d[5]
            adar  a0, -3
            movar d[2], a0
            mul.24 d[3], @a0, @a1+7
            mac.10 d[3], #-12
            movacc r@a3+4
            bz    #0, 0
        "#;
        let prog = assemble(src).unwrap();
        assert_eq!(prog.len(), 8);
        assert_eq!(
            prog[4],
            Instr::Mul {
                dst: Operand::Dir(3),
                a: Operand::Ind { ar: 0, disp: 0 },
                b: Operand::Ind { ar: 1, disp: 7 },
                frac: 24
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus d[0]\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.msg.contains("unknown label"));
        let e = assemble("add d[0], d[1]").unwrap_err();
        assert!(e.msg.contains("expects 3"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn validation_applies() {
        // immediate destination
        let e = assemble("add #1, d[0], d[1]").unwrap_err();
        assert!(e.msg.contains("destination"));
    }

    #[test]
    fn labels_on_own_line() {
        let prog = assemble("top:\n  jmp top\n").unwrap();
        assert_eq!(prog, vec![Instr::Jmp { target: 0 }]);
    }
}

#[cfg(test)]
mod directive_tests {
    use super::*;
    use crate::exec::{run, PeState};
    use cgra_fabric::{Tile, Word};

    #[test]
    fn equ_substitutes_everywhere() {
        let unit = assemble_unit(
            "
            .equ SRC, 100
            .equ COUNT, 8
            .equ STEP, 2
                ldar a0, SRC
                ldi  d[0], COUNT
        top:    add  d[1], d[1], @a0
                adar a0, STEP
                djnz d[0], top
                halt
            ",
        )
        .unwrap();
        assert_eq!(
            unit.program[0],
            Instr::Ldar {
                k: 0,
                src: None,
                imm: 100
            }
        );
        assert_eq!(
            unit.program[1],
            Instr::Ldi {
                dst: Operand::Dir(0),
                imm: 8
            }
        );
        assert_eq!(unit.program[3], Instr::Adar { k: 0, delta: 2 });
    }

    #[test]
    fn data_segments_collected_and_runnable() {
        let unit = assemble_unit(
            "
            .equ  BASE, 200
            .data BASE, 11, 22, 33
            .data 210, -7
                add d[0], d[200], d[202]
                add d[0], d[0], d[210]
                halt
            ",
        )
        .unwrap();
        assert_eq!(unit.data, vec![(200, vec![11, 22, 33]), (210, vec![-7])]);
        let mut tile = Tile::new(0);
        for (base, words) in &unit.data {
            for (i, &v) in words.iter().enumerate() {
                tile.dmem.poke(base + i, Word::wrap(v)).unwrap();
            }
        }
        tile.load_program(&crate::encode::encode_program(&unit.program))
            .unwrap();
        let mut st = PeState::new();
        run(&mut tile, &mut st, 100).unwrap();
        assert_eq!(tile.dmem.peek(0).unwrap().value(), 11 + 33 - 7);
    }

    #[test]
    fn directive_errors() {
        assert!(assemble_unit(".equ , 5").is_err());
        assert!(assemble_unit(".equ X").is_err());
        assert!(assemble_unit(".equ X, 1\n.equ X, 2").is_err());
        assert!(assemble_unit(".data 5").is_err());
        assert!(assemble_unit(".data -1, 7").is_err());
        assert!(assemble_unit(".data UNKNOWN, 7").is_err());
    }

    #[test]
    fn consts_do_not_clobber_labels_or_mnemonics() {
        // A label sharing no name with constants assembles normally, and
        // substitution never touches mnemonics.
        let unit = assemble_unit(
            "
            .equ N, 3
                ldi d[0], N
        N3:     djnz d[0], N3
                halt
            ",
        )
        .unwrap();
        assert_eq!(unit.program.len(), 3);
    }

    #[test]
    fn plain_assemble_still_works() {
        let prog = assemble(".equ A, 4\n ldi d[0], A\n halt").unwrap();
        assert_eq!(prog.len(), 2);
    }
}
