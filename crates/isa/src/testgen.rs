//! Deterministic random-instruction and random-program generators.
//!
//! The workspace carries no external property-testing crate, so the
//! randomized tests (encode/decode round trips, assembler round trips,
//! verifier fuzzing) draw structured inputs from these generators. All
//! of them are pure functions of the supplied [`Rng`], so every failure
//! reproduces from its seed.

use crate::instr::{Instr, Operand, NUM_AR};
use cgra_fabric::rng::Rng;

/// A uniformly random operand (any mode, fields in range).
pub fn random_operand(rng: &mut Rng) -> Operand {
    match rng.gen_range(4) {
        0 => Operand::Dir(rng.gen_range(512) as u16),
        1 => Operand::Ind {
            ar: rng.gen_range(NUM_AR) as u8,
            disp: rng.gen_range(64) as u8,
        },
        2 => Operand::Imm(rng.gen_range_i64(-256, 256) as i16),
        _ => Operand::Rem {
            ar: rng.gen_range(NUM_AR) as u8,
            disp: rng.gen_range(64) as u8,
        },
    }
}

/// A random operand legal as a source (never remote).
pub fn random_src(rng: &mut Rng) -> Operand {
    loop {
        let o = random_operand(rng);
        if o.valid_src() {
            return o;
        }
    }
}

/// A random operand legal as a destination (never an immediate).
pub fn random_dst(rng: &mut Rng) -> Operand {
    loop {
        let o = random_operand(rng);
        if o.valid_dst() {
            return o;
        }
    }
}

/// A random *local* destination (never immediate, never remote) — what a
/// `djnz` counter or a link-less program needs.
pub fn random_local_dst(rng: &mut Rng) -> Operand {
    loop {
        let o = random_dst(rng);
        if !matches!(o, Operand::Rem { .. }) {
            return o;
        }
    }
}

/// A uniformly random valid instruction. Branch targets land anywhere in
/// the 512-slot instruction memory, so single instructions always pass
/// [`Instr::validate`] but a *sequence* of them generally does not form a
/// well-shaped program — use [`random_program`] for that.
pub fn random_instr(rng: &mut Rng) -> Instr {
    let target = |rng: &mut Rng| rng.gen_range(512) as u16;
    match rng.gen_range(24) {
        0 => Instr::Nop,
        1 => Instr::Halt,
        2 => Instr::ClrAcc,
        3 => Instr::Add {
            dst: random_dst(rng),
            a: random_src(rng),
            b: random_src(rng),
        },
        4 => Instr::Sub {
            dst: random_dst(rng),
            a: random_src(rng),
            b: random_src(rng),
        },
        5 => Instr::Mul {
            dst: random_dst(rng),
            a: random_src(rng),
            b: random_src(rng),
            frac: rng.gen_range(64) as u8,
        },
        6 => Instr::Mac {
            a: random_src(rng),
            b: random_src(rng),
            frac: rng.gen_range(64) as u8,
        },
        7 => Instr::MovAcc {
            dst: random_dst(rng),
        },
        8 => Instr::And {
            dst: random_dst(rng),
            a: random_src(rng),
            b: random_src(rng),
        },
        9 => Instr::Or {
            dst: random_dst(rng),
            a: random_src(rng),
            b: random_src(rng),
        },
        10 => Instr::Xor {
            dst: random_dst(rng),
            a: random_src(rng),
            b: random_src(rng),
        },
        11 => Instr::Not {
            dst: random_dst(rng),
            a: random_src(rng),
        },
        12 => Instr::Shl {
            dst: random_dst(rng),
            a: random_src(rng),
            b: random_src(rng),
        },
        13 => Instr::Shr {
            dst: random_dst(rng),
            a: random_src(rng),
            b: random_src(rng),
        },
        14 => Instr::Mov {
            dst: random_dst(rng),
            a: random_src(rng),
        },
        15 => Instr::Ldi {
            dst: random_dst(rng),
            imm: rng.gen_range_i64(-(1 << 23), 1 << 23) as i32,
        },
        16 => Instr::Jmp {
            target: target(rng),
        },
        17 => Instr::Bz {
            a: random_src(rng),
            target: target(rng),
        },
        18 => Instr::Bnz {
            a: random_src(rng),
            target: target(rng),
        },
        19 => Instr::Bneg {
            a: random_src(rng),
            target: target(rng),
        },
        20 => Instr::Bgez {
            a: random_src(rng),
            target: target(rng),
        },
        21 => Instr::Djnz {
            dst: random_local_dst(rng),
            target: target(rng),
        },
        22 => match rng.gen_range(3) {
            0 => Instr::Ldar {
                k: rng.gen_range(NUM_AR) as u8,
                src: None,
                imm: rng.gen_range(512) as u16,
            },
            1 => Instr::Ldar {
                k: rng.gen_range(NUM_AR) as u8,
                src: Some(loop {
                    let s = random_src(rng);
                    if !matches!(s, Operand::Imm(_)) {
                        break s;
                    }
                }),
                imm: 0,
            },
            _ => Instr::Adar {
                k: rng.gen_range(NUM_AR) as u8,
                delta: rng.gen_range_i64(-512, 512) as i16,
            },
        },
        _ => Instr::Movar {
            dst: random_dst(rng),
            k: rng.gen_range(NUM_AR) as u8,
        },
    }
}

/// A random *well-shaped* program of at most `max_len` instructions:
///
/// * every branch target stays inside the program,
/// * unconditional `jmp`s only go forward (no closed cycles),
/// * the final instruction is `halt`,
///
/// so every path terminates in `halt` — the shape the `cgra-verify`
/// termination analysis accepts. Conditional branches may still go
/// backward (bounded loops), and remote destinations, uninitialized
/// reads, and unreachable tails can all occur; those are legal at the
/// program level or warning-class findings.
pub fn random_program(rng: &mut Rng, max_len: usize) -> Vec<Instr> {
    let n = 2 + rng.gen_range(max_len.max(3) - 2);
    let mut prog = Vec::with_capacity(n);
    for pc in 0..n - 1 {
        let i = loop {
            let cand = random_instr(rng);
            match cand {
                // Re-aim branches inside the program; jmp strictly forward.
                Instr::Jmp { .. } => {
                    if pc + 1 < n {
                        break Instr::Jmp {
                            target: (pc + 1 + rng.gen_range(n - pc - 1)) as u16,
                        };
                    }
                }
                Instr::Bz { a, .. } => {
                    break Instr::Bz {
                        a,
                        target: rng.gen_range(n) as u16,
                    }
                }
                Instr::Bnz { a, .. } => {
                    break Instr::Bnz {
                        a,
                        target: rng.gen_range(n) as u16,
                    }
                }
                Instr::Bneg { a, .. } => {
                    break Instr::Bneg {
                        a,
                        target: rng.gen_range(n) as u16,
                    }
                }
                Instr::Bgez { a, .. } => {
                    break Instr::Bgez {
                        a,
                        target: rng.gen_range(n) as u16,
                    }
                }
                Instr::Djnz { dst, .. } => {
                    break Instr::Djnz {
                        dst,
                        target: rng.gen_range(n) as u16,
                    }
                }
                other => break other,
            }
        };
        prog.push(i);
    }
    prog.push(Instr::Halt);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instrs_always_validate() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..2000 {
            let i = random_instr(&mut rng);
            assert!(i.validate().is_ok(), "{i:?}");
        }
    }

    #[test]
    fn generated_programs_are_well_shaped() {
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..200 {
            let p = random_program(&mut rng, 30);
            assert!(p.len() >= 2 && p.len() <= 30);
            assert_eq!(*p.last().unwrap(), Instr::Halt);
            for (pc, i) in p.iter().enumerate() {
                assert!(i.validate().is_ok());
                match i {
                    Instr::Jmp { target } => {
                        assert!((*target as usize) > pc && (*target as usize) < p.len())
                    }
                    Instr::Bz { target, .. }
                    | Instr::Bnz { target, .. }
                    | Instr::Bneg { target, .. }
                    | Instr::Bgez { target, .. }
                    | Instr::Djnz { target, .. } => assert!((*target as usize) < p.len()),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from_u64(77);
        let mut b = Rng::seed_from_u64(77);
        for _ in 0..50 {
            assert_eq!(random_instr(&mut a), random_instr(&mut b));
        }
    }
}
