//! # cgra-isa
//!
//! The instruction set of the reMORPH-style PE and everything needed to
//! program it:
//!
//! * [`instr`] — instruction & operand model with validation,
//! * [`mod@encode`] — 72-bit binary encoding (what the 512x72 instruction BRAM
//!   actually stores, and what the partial bitstream reloads),
//! * [`builder`] — label-resolving program builder used by the kernel
//!   generators,
//! * [`asm`]/[`disasm`] — a round-trippable text assembler,
//! * [`exec`] — the cycle-counting interpreter (one instruction per 2.5 ns
//!   cycle, 2R/1W memory discipline, remote writes over the active link),
//! * [`testgen`] — deterministic random-instruction/program generators for
//!   the workspace's property tests.

#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod instr;
pub mod testgen;

pub use asm::assemble;
pub use builder::{ops, BuildError, Label, ProgramBuilder};
pub use disasm::{disassemble, disassemble_one};
pub use encode::{decode, decode_program, encode, encode_program, DecodeError};
pub use exec::{run, run_with_sink, step, ExecError, PeState, RunStats, StepEffect};
pub use instr::{Instr, IsaError, Operand, NUM_AR};

#[cfg(test)]
mod random_tests {
    use super::testgen::{random_instr, random_program};
    use super::*;
    use cgra_fabric::rng::Rng;

    /// Every valid instruction survives encode -> decode.
    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = Rng::seed_from_u64(0x15A_0001);
        for _ in 0..4000 {
            let i = random_instr(&mut rng);
            assert!(i.validate().is_ok(), "{i:?}");
            let w = encode::encode(&i);
            assert_eq!(w >> 72, 0, "{i:?} encodes past 72 bits");
            assert_eq!(encode::decode(w).unwrap(), i);
        }
    }

    /// Every valid program survives disassemble -> assemble.
    #[test]
    fn asm_roundtrip() {
        let mut rng = Rng::seed_from_u64(0x15A_0002);
        for _ in 0..200 {
            let prog = random_program(&mut rng, 40);
            let text = disasm::disassemble(&prog);
            let back = asm::assemble(&text).unwrap();
            assert_eq!(back, prog);
        }
    }

    /// Decoding arbitrary 72-bit garbage never panics, and anything that
    /// does decode re-validates cleanly (no invalid instruction escapes
    /// the decoder).
    #[test]
    fn decode_never_panics_or_smuggles() {
        let mut rng = Rng::seed_from_u64(0x15A_0003);
        for _ in 0..20_000 {
            let bits =
                ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) & ((1u128 << 72) - 1);
            if let Ok(i) = encode::decode(bits) {
                assert!(i.validate().is_ok(), "decoded invalid instr {i:?}");
            }
        }
    }
}
