//! # cgra-isa
//!
//! The instruction set of the reMORPH-style PE and everything needed to
//! program it:
//!
//! * [`instr`] — instruction & operand model with validation,
//! * [`mod@encode`] — 72-bit binary encoding (what the 512x72 instruction BRAM
//!   actually stores, and what the partial bitstream reloads),
//! * [`builder`] — label-resolving program builder used by the kernel
//!   generators,
//! * [`asm`]/[`disasm`] — a round-trippable text assembler,
//! * [`exec`] — the cycle-counting interpreter (one instruction per 2.5 ns
//!   cycle, 2R/1W memory discipline, remote writes over the active link).

#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod instr;

pub use asm::assemble;
pub use builder::{ops, BuildError, Label, ProgramBuilder};
pub use disasm::{disassemble, disassemble_one};
pub use encode::{decode, decode_program, encode, encode_program, DecodeError};
pub use exec::{run, run_with_sink, step, ExecError, PeState, RunStats, StepEffect};
pub use instr::{Instr, Operand, NUM_AR};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_operand() -> impl Strategy<Value = Operand> {
        prop_oneof![
            (0u16..512).prop_map(Operand::Dir),
            ((0u8..8), (0u8..64)).prop_map(|(ar, disp)| Operand::Ind { ar, disp }),
            (-256i16..256).prop_map(Operand::Imm),
            ((0u8..8), (0u8..64)).prop_map(|(ar, disp)| Operand::Rem { ar, disp }),
        ]
    }

    fn arb_src() -> impl Strategy<Value = Operand> {
        arb_operand().prop_filter("src", |o| o.valid_src())
    }

    fn arb_dst() -> impl Strategy<Value = Operand> {
        arb_operand().prop_filter("dst", |o| o.valid_dst())
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            Just(Instr::Nop),
            Just(Instr::Halt),
            Just(Instr::ClrAcc),
            (arb_dst(), arb_src(), arb_src()).prop_map(|(dst, a, b)| Instr::Add { dst, a, b }),
            (arb_dst(), arb_src(), arb_src()).prop_map(|(dst, a, b)| Instr::Sub { dst, a, b }),
            (arb_dst(), arb_src(), arb_src(), 0u8..64).prop_map(|(dst, a, b, frac)| Instr::Mul {
                dst,
                a,
                b,
                frac
            }),
            (arb_src(), arb_src(), 0u8..64).prop_map(|(a, b, frac)| Instr::Mac { a, b, frac }),
            arb_dst().prop_map(|dst| Instr::MovAcc { dst }),
            (arb_dst(), arb_src(), arb_src()).prop_map(|(dst, a, b)| Instr::Xor { dst, a, b }),
            (arb_dst(), arb_src()).prop_map(|(dst, a)| Instr::Not { dst, a }),
            (arb_dst(), arb_src(), arb_src()).prop_map(|(dst, a, b)| Instr::Shl { dst, a, b }),
            (arb_dst(), arb_src(), arb_src()).prop_map(|(dst, a, b)| Instr::Shr { dst, a, b }),
            (arb_dst(), arb_src()).prop_map(|(dst, a)| Instr::Mov { dst, a }),
            (arb_dst(), -(1i32 << 23)..(1i32 << 23)).prop_map(|(dst, imm)| Instr::Ldi { dst, imm }),
            (0u16..512).prop_map(|target| Instr::Jmp { target }),
            (arb_src(), 0u16..512).prop_map(|(a, target)| Instr::Bz { a, target }),
            (arb_src(), 0u16..512).prop_map(|(a, target)| Instr::Bnz { a, target }),
            (arb_src(), 0u16..512).prop_map(|(a, target)| Instr::Bneg { a, target }),
            (arb_src(), 0u16..512).prop_map(|(a, target)| Instr::Bgez { a, target }),
            (
                arb_dst().prop_filter("djnz", |d| !matches!(d, Operand::Rem { .. })),
                0u16..512
            )
                .prop_map(|(dst, target)| Instr::Djnz { dst, target }),
            (0u8..8, 0u16..512).prop_map(|(k, imm)| Instr::Ldar { k, src: None, imm }),
            (
                0u8..8,
                arb_src().prop_filter("ldar", |s| !matches!(s, Operand::Imm(_)))
            )
                .prop_map(|(k, s)| Instr::Ldar {
                    k,
                    src: Some(s),
                    imm: 0
                }),
            (0u8..8, -512i16..512).prop_map(|(k, delta)| Instr::Adar { k, delta }),
            (arb_dst(), 0u8..8).prop_map(|(dst, k)| Instr::Movar { dst, k }),
        ]
    }

    proptest! {
        /// Every valid instruction survives encode -> decode.
        #[test]
        fn encode_decode_roundtrip(i in arb_instr()) {
            prop_assert!(i.validate().is_ok());
            let w = encode::encode(&i);
            prop_assert_eq!(w >> 72, 0u128);
            prop_assert_eq!(encode::decode(w).unwrap(), i);
        }

        /// Every valid instruction survives disassemble -> assemble.
        #[test]
        fn asm_roundtrip(prog in proptest::collection::vec(arb_instr(), 1..40)) {
            let text = disasm::disassemble(&prog);
            let back = asm::assemble(&text).unwrap();
            prop_assert_eq!(back, prog);
        }

        /// Decoding arbitrary 72-bit garbage never panics.
        #[test]
        fn decode_never_panics(bits in any::<u128>()) {
            let _ = encode::decode(bits & ((1u128 << 72) - 1));
        }
    }
}
