//! The PE instruction set.
//!
//! The reMORPH PE "can implement arithmetic and logic operations along
//! with direct and indirect addressing", enabling "complete 'C' style
//! loops".
//! We realize that description as a small three-operand, memory-to-memory
//! ISA over the tile's 512-word data memory:
//!
//! * every instruction executes in **one cycle** (2.5 ns at 400 MHz),
//! * an instruction reads at most two operands and writes at most one —
//!   exactly the 2R/1W budget of the dual-port BRAM pair,
//! * *indirect* operands go through one of eight **address registers**
//!   (`a0..a7`, the paper's "base addresses of the registers ... register
//!   indirect addressing"), updated by dedicated `LDAR`/`ADAR` instructions,
//! * a `MAC` accumulator models the DSP48 multiply-accumulate cascade,
//! * a *remote* destination writes through the tile's single active
//!   outgoing link into the neighbour's data memory.

/// Number of address registers per PE.
pub const NUM_AR: usize = 8;

/// Why an instruction failed validation.
///
/// Typed so callers (the assembler, the program builder, the decoder, and
/// the `cgra-verify` static analyzer) can match on the failure kind
/// instead of parsing message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaError {
    /// An operand illegal as a source (a remote destination) was read.
    BadSource {
        /// Which source slot ("left", "right", "tested", ...).
        role: &'static str,
        /// The offending operand.
        op: Operand,
    },
    /// An operand illegal as a destination (an immediate) was written.
    BadDest {
        /// The offending operand.
        op: Operand,
    },
    /// An operand's encoded fields are out of range.
    OperandRange {
        /// Which slot the operand occupies.
        role: &'static str,
        /// The offending operand.
        op: Operand,
    },
    /// A branch target lies outside the 512-slot instruction memory.
    TargetRange {
        /// The offending target.
        target: u16,
    },
    /// A multiplier `frac` shift of 64 or more.
    FracRange {
        /// The offending shift.
        frac: u8,
    },
    /// An `ldi` immediate exceeding 24 bits.
    ImmRange {
        /// The offending immediate.
        imm: i32,
    },
    /// The `djnz` counter operand is remote (read-modify-write cannot
    /// cross the link).
    RemoteCounter,
    /// An address-register index of 8 or more.
    ArIndex {
        /// The offending index.
        k: u8,
    },
    /// The `ldar` memory form was given an immediate source.
    LdarImmForm,
    /// An `ldar` immediate address of 512 or more.
    LdarImmRange {
        /// The offending address.
        imm: u16,
    },
    /// An `adar` step outside `-512..=511`.
    AdarDeltaRange {
        /// The offending step.
        delta: i16,
    },
}

impl std::fmt::Display for IsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaError::BadSource { role, op } => {
                write!(f, "{role} operand {op} cannot be a source")
            }
            IsaError::BadDest { op } => write!(f, "destination operand {op} cannot be written"),
            IsaError::OperandRange { role, op } => write!(f, "{role} operand {op} out of range"),
            IsaError::TargetRange { target } => write!(f, "branch target {target} out of range"),
            IsaError::FracRange { frac } => write!(f, "frac {frac} out of range"),
            IsaError::ImmRange { imm } => write!(f, "immediate {imm} exceeds 24 bits"),
            IsaError::RemoteCounter => write!(f, "djnz counter cannot be remote"),
            IsaError::ArIndex { k } => write!(f, "address register a{k} does not exist"),
            IsaError::LdarImmForm => {
                write!(
                    f,
                    "ldar memory form cannot take an immediate; use the imm form"
                )
            }
            IsaError::LdarImmRange { imm } => write!(f, "ldar immediate {imm} out of range"),
            IsaError::AdarDeltaRange { delta } => write!(f, "adar delta {delta} out of range"),
        }
    }
}

impl std::error::Error for IsaError {}

/// Operand addressing modes.
///
/// The encoding packs each operand into 11 bits (2 mode + 9 payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Direct data-memory address: `d[addr]`, `addr < 512`.
    Dir(u16),
    /// Register-indirect: `@aK+disp` reads/writes `dmem[(ar[k] + disp) mod 512]`.
    Ind {
        /// Address-register index (0..8).
        ar: u8,
        /// Unsigned displacement (0..64).
        disp: u8,
    },
    /// Small signed immediate (-256..=255); sources only.
    Imm(i16),
    /// Remote write through the active link: `r@aK+disp` writes the
    /// neighbour's data memory at `(ar[k] + disp) mod 512` — the link's
    /// address port is driven by a local address register, so block
    /// transfers stride with `ADAR` exactly like local indirect accesses.
    /// Destinations only.
    Rem {
        /// Address-register index (0..8) supplying the remote base address.
        ar: u8,
        /// Unsigned displacement (0..64).
        disp: u8,
    },
}

impl Operand {
    /// True iff the operand is legal as a source.
    pub fn valid_src(self) -> bool {
        !matches!(self, Operand::Rem { .. })
    }

    /// True iff the operand is legal as a destination.
    pub fn valid_dst(self) -> bool {
        !matches!(self, Operand::Imm(_))
    }

    /// True iff all encoded fields are in range.
    pub fn in_range(self) -> bool {
        match self {
            Operand::Dir(a) => a < 512,
            Operand::Rem { ar, disp } => (ar as usize) < NUM_AR && disp < 64,
            Operand::Ind { ar, disp } => (ar as usize) < NUM_AR && disp < 64,
            Operand::Imm(v) => (-256..=255).contains(&v),
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Dir(a) => write!(f, "d[{a}]"),
            Operand::Ind { ar, disp } => {
                if *disp == 0 {
                    write!(f, "@a{ar}")
                } else {
                    write!(f, "@a{ar}+{disp}")
                }
            }
            Operand::Imm(v) => write!(f, "#{v}"),
            Operand::Rem { ar, disp } => {
                if *disp == 0 {
                    write!(f, "r@a{ar}")
                } else {
                    write!(f, "r@a{ar}+{disp}")
                }
            }
        }
    }
}

/// Machine operations. `frac` fields are the barrel-shifter setting of the
/// fixed-point multiplier (result is `(a*b) >> frac`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Do nothing for a cycle.
    Nop,
    /// Stop the PE; the tile signals completion to the runtime system.
    Halt,
    /// `dst = a + b` (48-bit wrapping).
    Add {
        /// Destination operand.
        dst: Operand,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// `dst = a - b` (48-bit wrapping).
    Sub {
        /// Destination operand.
        dst: Operand,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// `dst = (a * b) >> frac` (96-bit intermediate).
    Mul {
        /// Destination operand.
        dst: Operand,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
        /// Right-shift applied to the full product.
        frac: u8,
    },
    /// `acc += (a * b) >> frac`.
    Mac {
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
        /// Right-shift applied to the full product.
        frac: u8,
    },
    /// `acc = 0`.
    ClrAcc,
    /// `dst = acc` (wrapped to 48 bits).
    MovAcc {
        /// Destination operand.
        dst: Operand,
    },
    /// `dst = a & b`.
    And {
        /// Destination operand.
        dst: Operand,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// `dst = a | b`.
    Or {
        /// Destination operand.
        dst: Operand,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// `dst = a ^ b`.
    Xor {
        /// Destination operand.
        dst: Operand,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// `dst = !a` (48-bit pattern complement).
    Not {
        /// Destination operand.
        dst: Operand,
        /// Source.
        a: Operand,
    },
    /// `dst = a << (b & 63)` (logical).
    Shl {
        /// Destination operand.
        dst: Operand,
        /// Value source.
        a: Operand,
        /// Shift-amount source.
        b: Operand,
    },
    /// `dst = a >> (b & 63)` (arithmetic).
    Shr {
        /// Destination operand.
        dst: Operand,
        /// Value source.
        a: Operand,
        /// Shift-amount source.
        b: Operand,
    },
    /// `dst = a`.
    Mov {
        /// Destination operand.
        dst: Operand,
        /// Source.
        a: Operand,
    },
    /// `dst = imm` (sign-extended 24-bit immediate).
    Ldi {
        /// Destination operand.
        dst: Operand,
        /// Immediate value (-2^23 .. 2^23-1).
        imm: i32,
    },
    /// `pc = target`.
    Jmp {
        /// Absolute branch target.
        target: u16,
    },
    /// `if a == 0 { pc = target }`.
    Bz {
        /// Tested source.
        a: Operand,
        /// Absolute branch target.
        target: u16,
    },
    /// `if a != 0 { pc = target }`.
    Bnz {
        /// Tested source.
        a: Operand,
        /// Absolute branch target.
        target: u16,
    },
    /// `if a < 0 { pc = target }`.
    Bneg {
        /// Tested source.
        a: Operand,
        /// Absolute branch target.
        target: u16,
    },
    /// `if a >= 0 { pc = target }`.
    Bgez {
        /// Tested source.
        a: Operand,
        /// Absolute branch target.
        target: u16,
    },
    /// `dst -= 1; if dst != 0 { pc = target }` — the C-style loop primitive.
    Djnz {
        /// Counter operand (read-modify-write).
        dst: Operand,
        /// Absolute branch target.
        target: u16,
    },
    /// `ar[k] = src` (address taken mod 512); with an immediate source the
    /// 24-bit immediate field is used so any address is reachable.
    Ldar {
        /// Address-register index.
        k: u8,
        /// Source of the new address (memory operand) or `None` when the
        /// immediate form is used.
        src: Option<Operand>,
        /// Immediate address for the immediate form.
        imm: u16,
    },
    /// `ar[k] = (ar[k] + delta) mod 512`.
    Adar {
        /// Address-register index.
        k: u8,
        /// Signed step.
        delta: i16,
    },
    /// `dst = ar[k]`.
    Movar {
        /// Destination operand.
        dst: Operand,
        /// Address-register index.
        k: u8,
    },
}

impl Instr {
    /// Validates operand roles and field ranges.
    pub fn validate(&self) -> Result<(), IsaError> {
        let check_src = |o: &Operand, role: &'static str| -> Result<(), IsaError> {
            if !o.valid_src() {
                return Err(IsaError::BadSource { role, op: *o });
            }
            if !o.in_range() {
                return Err(IsaError::OperandRange { role, op: *o });
            }
            Ok(())
        };
        let check_dst = |o: &Operand| -> Result<(), IsaError> {
            if !o.valid_dst() {
                return Err(IsaError::BadDest { op: *o });
            }
            if !o.in_range() {
                return Err(IsaError::OperandRange {
                    role: "destination",
                    op: *o,
                });
            }
            Ok(())
        };
        let check_target = |t: u16| -> Result<(), IsaError> {
            if t >= 512 {
                Err(IsaError::TargetRange { target: t })
            } else {
                Ok(())
            }
        };
        let check_frac = |frac: u8| -> Result<(), IsaError> {
            if frac >= 64 {
                Err(IsaError::FracRange { frac })
            } else {
                Ok(())
            }
        };
        let check_ar = |k: u8| -> Result<(), IsaError> {
            if k as usize >= NUM_AR {
                Err(IsaError::ArIndex { k })
            } else {
                Ok(())
            }
        };
        match self {
            Instr::Nop | Instr::Halt | Instr::ClrAcc => Ok(()),
            Instr::Add { dst, a, b }
            | Instr::Sub { dst, a, b }
            | Instr::And { dst, a, b }
            | Instr::Or { dst, a, b }
            | Instr::Xor { dst, a, b }
            | Instr::Shl { dst, a, b }
            | Instr::Shr { dst, a, b } => {
                check_dst(dst)?;
                check_src(a, "left")?;
                check_src(b, "right")
            }
            Instr::Mul { dst, a, b, frac } => {
                check_dst(dst)?;
                check_src(a, "left")?;
                check_src(b, "right")?;
                check_frac(*frac)
            }
            Instr::Mac { a, b, frac } => {
                check_src(a, "left")?;
                check_src(b, "right")?;
                check_frac(*frac)
            }
            Instr::MovAcc { dst } => check_dst(dst),
            Instr::Not { dst, a } | Instr::Mov { dst, a } => {
                check_dst(dst)?;
                check_src(a, "source")
            }
            Instr::Ldi { dst, imm } => {
                check_dst(dst)?;
                if !(-(1 << 23)..(1 << 23)).contains(imm) {
                    return Err(IsaError::ImmRange { imm: *imm });
                }
                Ok(())
            }
            Instr::Jmp { target } => check_target(*target),
            Instr::Bz { a, target }
            | Instr::Bnz { a, target }
            | Instr::Bneg { a, target }
            | Instr::Bgez { a, target } => {
                check_src(a, "tested")?;
                check_target(*target)
            }
            Instr::Djnz { dst, target } => {
                check_dst(dst)?;
                if matches!(dst, Operand::Rem { .. }) {
                    return Err(IsaError::RemoteCounter);
                }
                check_src(dst, "counter")?;
                check_target(*target)
            }
            Instr::Ldar { k, src, imm } => {
                check_ar(*k)?;
                if let Some(s) = src {
                    if matches!(s, Operand::Imm(_)) {
                        return Err(IsaError::LdarImmForm);
                    }
                    check_src(s, "address")?;
                }
                if *imm >= 512 {
                    return Err(IsaError::LdarImmRange { imm: *imm });
                }
                Ok(())
            }
            Instr::Adar { k, delta } => {
                check_ar(*k)?;
                if !(-512..=511).contains(delta) {
                    return Err(IsaError::AdarDeltaRange { delta: *delta });
                }
                Ok(())
            }
            Instr::Movar { dst, k } => {
                check_ar(*k)?;
                check_dst(dst)
            }
        }
    }

    /// The instruction's mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Nop => "nop",
            Instr::Halt => "halt",
            Instr::Add { .. } => "add",
            Instr::Sub { .. } => "sub",
            Instr::Mul { .. } => "mul",
            Instr::Mac { .. } => "mac",
            Instr::ClrAcc => "clracc",
            Instr::MovAcc { .. } => "movacc",
            Instr::And { .. } => "and",
            Instr::Or { .. } => "or",
            Instr::Xor { .. } => "xor",
            Instr::Not { .. } => "not",
            Instr::Shl { .. } => "shl",
            Instr::Shr { .. } => "shr",
            Instr::Mov { .. } => "mov",
            Instr::Ldi { .. } => "ldi",
            Instr::Jmp { .. } => "jmp",
            Instr::Bz { .. } => "bz",
            Instr::Bnz { .. } => "bnz",
            Instr::Bneg { .. } => "bneg",
            Instr::Bgez { .. } => "bgez",
            Instr::Djnz { .. } => "djnz",
            Instr::Ldar { .. } => "ldar",
            Instr::Adar { .. } => "adar",
            Instr::Movar { .. } => "movar",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_roles() {
        assert!(Operand::Dir(0).valid_src() && Operand::Dir(0).valid_dst());
        assert!(Operand::Imm(5).valid_src() && !Operand::Imm(5).valid_dst());
        assert!(!Operand::Rem { ar: 0, disp: 0 }.valid_src());
        assert!(Operand::Rem { ar: 0, disp: 0 }.valid_dst());
        assert!(!Operand::Rem { ar: 8, disp: 0 }.in_range());
        assert!(Operand::Ind { ar: 7, disp: 63 }.in_range());
        assert!(!Operand::Ind { ar: 8, disp: 0 }.in_range());
        assert!(!Operand::Dir(512).in_range());
        assert!(!Operand::Imm(256).in_range());
        assert!(Operand::Imm(-256).in_range());
    }

    #[test]
    fn validate_catches_bad_roles() {
        let bad = Instr::Add {
            dst: Operand::Imm(1),
            a: Operand::Dir(0),
            b: Operand::Dir(1),
        };
        assert!(bad.validate().is_err());
        let bad2 = Instr::Mov {
            dst: Operand::Dir(0),
            a: Operand::Rem { ar: 3, disp: 0 },
        };
        assert!(bad2.validate().is_err());
        let ok = Instr::Mov {
            dst: Operand::Rem { ar: 3, disp: 0 },
            a: Operand::Dir(0),
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_ranges() {
        assert!(Instr::Jmp { target: 511 }.validate().is_ok());
        assert!(Instr::Jmp { target: 512 }.validate().is_err());
        assert!(Instr::Ldi {
            dst: Operand::Dir(0),
            imm: (1 << 23) - 1
        }
        .validate()
        .is_ok());
        assert!(Instr::Ldi {
            dst: Operand::Dir(0),
            imm: 1 << 23
        }
        .validate()
        .is_err());
        assert!(Instr::Adar { k: 3, delta: -512 }.validate().is_ok());
        assert!(Instr::Adar { k: 9, delta: 0 }.validate().is_err());
        assert!(Instr::Mul {
            dst: Operand::Dir(1),
            a: Operand::Dir(2),
            b: Operand::Dir(3),
            frac: 64
        }
        .validate()
        .is_err());
    }

    #[test]
    fn djnz_counter_cannot_be_remote() {
        assert!(Instr::Djnz {
            dst: Operand::Rem { ar: 1, disp: 0 },
            target: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn display_operands() {
        assert_eq!(Operand::Dir(42).to_string(), "d[42]");
        assert_eq!(Operand::Ind { ar: 2, disp: 0 }.to_string(), "@a2");
        assert_eq!(Operand::Ind { ar: 2, disp: 5 }.to_string(), "@a2+5");
        assert_eq!(Operand::Imm(-7).to_string(), "#-7");
        assert_eq!(Operand::Rem { ar: 1, disp: 0 }.to_string(), "r@a1");
        assert_eq!(Operand::Rem { ar: 1, disp: 9 }.to_string(), "r@a1+9");
    }
}
