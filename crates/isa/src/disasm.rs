//! Disassembler emitting the [`crate::asm`] syntax.

use crate::instr::Instr;

/// Renders one instruction in assembler syntax (without label names —
/// branch targets print as absolute addresses).
pub fn disassemble_one(i: &Instr) -> String {
    match i {
        Instr::Nop => "nop".into(),
        Instr::Halt => "halt".into(),
        Instr::ClrAcc => "clracc".into(),
        Instr::Add { dst, a, b } => format!("add {dst}, {a}, {b}"),
        Instr::Sub { dst, a, b } => format!("sub {dst}, {a}, {b}"),
        Instr::Mul { dst, a, b, frac } => format!("mul.{frac} {dst}, {a}, {b}"),
        Instr::Mac { a, b, frac } => format!("mac.{frac} {a}, {b}"),
        Instr::MovAcc { dst } => format!("movacc {dst}"),
        Instr::And { dst, a, b } => format!("and {dst}, {a}, {b}"),
        Instr::Or { dst, a, b } => format!("or {dst}, {a}, {b}"),
        Instr::Xor { dst, a, b } => format!("xor {dst}, {a}, {b}"),
        Instr::Not { dst, a } => format!("not {dst}, {a}"),
        Instr::Shl { dst, a, b } => format!("shl {dst}, {a}, {b}"),
        Instr::Shr { dst, a, b } => format!("shr {dst}, {a}, {b}"),
        Instr::Mov { dst, a } => format!("mov {dst}, {a}"),
        Instr::Ldi { dst, imm } => format!("ldi {dst}, {imm}"),
        Instr::Jmp { target } => format!("jmp {target}"),
        Instr::Bz { a, target } => format!("bz {a}, {target}"),
        Instr::Bnz { a, target } => format!("bnz {a}, {target}"),
        Instr::Bneg { a, target } => format!("bneg {a}, {target}"),
        Instr::Bgez { a, target } => format!("bgez {a}, {target}"),
        Instr::Djnz { dst, target } => format!("djnz {dst}, {target}"),
        Instr::Ldar { k, src, imm } => match src {
            Some(s) => format!("ldar a{k}, {s}"),
            None => format!("ldar a{k}, {imm}"),
        },
        Instr::Adar { k, delta } => format!("adar a{k}, {delta}"),
        Instr::Movar { dst, k } => format!("movar {dst}, a{k}"),
    }
}

/// Renders a whole program, one instruction per line with addresses in a
/// leading comment column.
pub fn disassemble(prog: &[Instr]) -> String {
    let mut out = String::new();
    for (pc, i) in prog.iter().enumerate() {
        out.push_str(&format!("    {}    ; {pc:3}\n", disassemble_one(i)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::instr::Operand;

    #[test]
    fn roundtrip_through_assembler() {
        let prog = vec![
            Instr::Ldi {
                dst: Operand::Dir(0),
                imm: -1234,
            },
            Instr::Mul {
                dst: Operand::Dir(1),
                a: Operand::Ind { ar: 2, disp: 5 },
                b: Operand::Imm(-3),
                frac: 24,
            },
            Instr::Mov {
                dst: Operand::Rem { ar: 2, disp: 17 },
                a: Operand::Dir(1),
            },
            Instr::Djnz {
                dst: Operand::Dir(9),
                target: 1,
            },
            Instr::Ldar {
                k: 4,
                src: Some(Operand::Dir(2)),
                imm: 0,
            },
            Instr::Ldar {
                k: 4,
                src: None,
                imm: 300,
            },
            Instr::Adar { k: 4, delta: -17 },
            Instr::Movar {
                dst: Operand::Dir(3),
                k: 4,
            },
            Instr::Halt,
        ];
        let text = disassemble(&prog);
        let back = assemble(&text).unwrap();
        assert_eq!(back, prog);
    }
}
