//! Ergonomic program construction with forward-referencable labels.
//!
//! The kernel generators (`cgra-kernels`) build butterfly, copy and JPEG
//! programs through this builder rather than hand-writing encodings.

use crate::instr::{Instr, Operand};
use cgra_fabric::INSTR_SLOTS;

/// A forward-referencable branch label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors raised when finalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// An instruction failed validation.
    Invalid {
        /// Instruction index.
        at: usize,
        /// The typed validation failure.
        err: crate::instr::IsaError,
    },
    /// The program exceeds the 512-slot instruction memory.
    TooLarge(usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l} never bound"),
            BuildError::Invalid { at, err } => write!(f, "instruction {at}: {err}"),
            BuildError::TooLarge(n) => {
                write!(f, "program of {n} instructions exceeds {INSTR_SLOTS} slots")
            }
        }
    }
}

impl std::error::Error for BuildError {}

enum Pending {
    Done(Instr),
    /// Branch whose target label is patched at build time.
    Branch {
        make: fn(u16) -> Instr,
        label: Label,
    },
    /// DJNZ/conditional with an operand and a label target.
    CondBranch {
        make: fn(Operand, u16) -> Instr,
        opnd: Operand,
        label: Label,
    },
}

/// Builds validated PE programs.
#[derive(Default)]
pub struct ProgramBuilder {
    code: Vec<Pending>,
    labels: Vec<Option<usize>>,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current instruction index (== address of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `l` to the current position.
    pub fn bind(&mut self, l: Label) {
        self.labels[l.0] = Some(self.code.len());
    }

    /// Creates a label bound to the current position.
    pub fn here_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.code.push(Pending::Done(i));
        self
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::Add { dst, a, b })
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::Sub { dst, a, b })
    }

    /// `dst = (a*b) >> frac`.
    pub fn mul(&mut self, dst: Operand, a: Operand, b: Operand, frac: u8) -> &mut Self {
        self.push(Instr::Mul { dst, a, b, frac })
    }

    /// `acc += (a*b) >> frac`.
    pub fn mac(&mut self, a: Operand, b: Operand, frac: u8) -> &mut Self {
        self.push(Instr::Mac { a, b, frac })
    }

    /// `dst = a & b`.
    pub fn and(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::And { dst, a, b })
    }

    /// `dst = a | b`.
    pub fn or(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::Or { dst, a, b })
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::Xor { dst, a, b })
    }

    /// `dst = !a`.
    pub fn not(&mut self, dst: Operand, a: Operand) -> &mut Self {
        self.push(Instr::Not { dst, a })
    }

    /// `acc = 0`.
    pub fn clracc(&mut self) -> &mut Self {
        self.push(Instr::ClrAcc)
    }

    /// `dst = acc`.
    pub fn movacc(&mut self, dst: Operand) -> &mut Self {
        self.push(Instr::MovAcc { dst })
    }

    /// `dst = a`.
    pub fn mov(&mut self, dst: Operand, a: Operand) -> &mut Self {
        self.push(Instr::Mov { dst, a })
    }

    /// `dst = imm`.
    pub fn ldi(&mut self, dst: Operand, imm: i32) -> &mut Self {
        self.push(Instr::Ldi { dst, imm })
    }

    /// `dst = a >> b` (arithmetic).
    pub fn shr(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::Shr { dst, a, b })
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Operand, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::Shl { dst, a, b })
    }

    /// `ar[k] = imm`.
    pub fn ldar(&mut self, k: u8, imm: u16) -> &mut Self {
        self.push(Instr::Ldar { k, src: None, imm })
    }

    /// `ar[k] = mem src`.
    pub fn ldar_mem(&mut self, k: u8, src: Operand) -> &mut Self {
        self.push(Instr::Ldar {
            k,
            src: Some(src),
            imm: 0,
        })
    }

    /// `ar[k] += delta`.
    pub fn adar(&mut self, k: u8, delta: i16) -> &mut Self {
        self.push(Instr::Adar { k, delta })
    }

    /// `dst = ar[k]`.
    pub fn movar(&mut self, dst: Operand, k: u8) -> &mut Self {
        self.push(Instr::Movar { dst, k })
    }

    /// Unconditional jump to `l`.
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        self.code.push(Pending::Branch {
            make: |t| Instr::Jmp { target: t },
            label: l,
        });
        self
    }

    /// Branch to `l` if `a == 0`.
    pub fn bz(&mut self, a: Operand, l: Label) -> &mut Self {
        self.code.push(Pending::CondBranch {
            make: |a, t| Instr::Bz { a, target: t },
            opnd: a,
            label: l,
        });
        self
    }

    /// Branch to `l` if `a != 0`.
    pub fn bnz(&mut self, a: Operand, l: Label) -> &mut Self {
        self.code.push(Pending::CondBranch {
            make: |a, t| Instr::Bnz { a, target: t },
            opnd: a,
            label: l,
        });
        self
    }

    /// Branch to `l` if `a < 0`.
    pub fn bneg(&mut self, a: Operand, l: Label) -> &mut Self {
        self.code.push(Pending::CondBranch {
            make: |a, t| Instr::Bneg { a, target: t },
            opnd: a,
            label: l,
        });
        self
    }

    /// Branch to `l` if `a >= 0`.
    pub fn bgez(&mut self, a: Operand, l: Label) -> &mut Self {
        self.code.push(Pending::CondBranch {
            make: |a, t| Instr::Bgez { a, target: t },
            opnd: a,
            label: l,
        });
        self
    }

    /// `ctr -= 1; if ctr != 0 goto l`.
    pub fn djnz(&mut self, ctr: Operand, l: Label) -> &mut Self {
        self.code.push(Pending::CondBranch {
            make: |a, t| Instr::Djnz { dst: a, target: t },
            opnd: ctr,
            label: l,
        });
        self
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Resolves labels, validates every instruction, and returns the program.
    pub fn build(self) -> Result<Vec<Instr>, BuildError> {
        if self.code.len() > INSTR_SLOTS {
            return Err(BuildError::TooLarge(self.code.len()));
        }
        let resolve = |l: Label| -> Result<u16, BuildError> {
            self.labels[l.0]
                .map(|pc| pc as u16)
                .ok_or(BuildError::UnboundLabel(l.0))
        };
        let mut out = Vec::with_capacity(self.code.len());
        for (at, p) in self.code.iter().enumerate() {
            let i = match p {
                Pending::Done(i) => *i,
                Pending::Branch { make, label } => make(resolve(*label)?),
                Pending::CondBranch { make, opnd, label } => make(*opnd, resolve(*label)?),
            };
            i.validate()
                .map_err(|err| BuildError::Invalid { at, err })?;
            out.push(i);
        }
        Ok(out)
    }
}

/// Shorthand constructors for operands.
pub mod ops {
    use crate::instr::Operand;

    /// Direct operand `d[a]`.
    pub const fn d(a: u16) -> Operand {
        Operand::Dir(a)
    }

    /// Indirect operand `@aK`.
    pub const fn at(ar: u8) -> Operand {
        Operand::Ind { ar, disp: 0 }
    }

    /// Indirect operand `@aK+disp`.
    pub const fn at_off(ar: u8, disp: u8) -> Operand {
        Operand::Ind { ar, disp }
    }

    /// Immediate operand `#v`.
    pub const fn imm(v: i16) -> Operand {
        Operand::Imm(v)
    }

    /// Remote operand `r@aK` (neighbour write at address `ar[k]`).
    pub const fn rem(ar: u8) -> Operand {
        Operand::Rem { ar, disp: 0 }
    }

    /// Remote operand `r@aK+disp`.
    pub const fn rem_off(ar: u8, disp: u8) -> Operand {
        Operand::Rem { ar, disp }
    }
}

#[cfg(test)]
mod tests {
    use super::ops::*;
    use super::*;
    use crate::exec::{run, PeState};
    use cgra_fabric::{Tile, Word};

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.ldi(d(0), 3);
        let top = b.here_label();
        b.bz(d(0), end);
        b.add(d(1), d(1), d(0));
        b.sub(d(0), d(0), imm(1));
        b.jmp(top);
        b.bind(end);
        b.halt();
        let prog = b.build().unwrap();
        let mut t = Tile::new(0);
        t.load_program(&crate::encode::encode_program(&prog))
            .unwrap();
        let mut st = PeState::new();
        run(&mut t, &mut st, 1000).unwrap();
        // 3 + 2 + 1 = 6
        assert_eq!(t.dmem.peek(1).unwrap(), Word::wrap(6));
    }

    #[test]
    fn unbound_label_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l);
        assert!(matches!(b.build(), Err(BuildError::UnboundLabel(_))));
    }

    #[test]
    fn invalid_instruction_rejected() {
        let mut b = ProgramBuilder::new();
        b.add(imm(0), d(0), d(1)); // immediate destination
        match b.build() {
            Err(BuildError::Invalid { at: 0, .. }) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn too_large_rejected() {
        let mut b = ProgramBuilder::new();
        for _ in 0..600 {
            b.nop();
        }
        assert!(matches!(b.build(), Err(BuildError::TooLarge(600))));
    }

    #[test]
    fn djnz_label() {
        let mut b = ProgramBuilder::new();
        b.ldi(d(0), 4);
        let top = b.here_label();
        b.add(d(1), d(1), imm(1));
        b.djnz(d(0), top);
        b.halt();
        let prog = b.build().unwrap();
        let mut t = Tile::new(0);
        t.load_program(&crate::encode::encode_program(&prog))
            .unwrap();
        let mut st = PeState::new();
        run(&mut t, &mut st, 100).unwrap();
        assert_eq!(t.dmem.peek(1).unwrap().value(), 4);
    }
}
