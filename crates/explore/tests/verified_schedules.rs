//! The DSE candidates are real: the schedules behind the sweeps verify
//! clean statically, and — run through the epoch runner with strict
//! verification enabled — compute bit-exact results.

use cgra_explore::schedule::{
    assignment_diagnostics, fft_column_schedule, fft_schedule_diagnostics, jpeg_block_schedule,
    jpeg_schedule_diagnostics, network_budget_diagnostics,
};
use cgra_fabric::CostModel;
use cgra_kernels::fft::fixed::Cfx;
use cgra_kernels::fft::partition::FftPlan;
use cgra_kernels::fft::pipeline::run_partitioned;
use cgra_kernels::fft::reference::{bit_reverse, Cf64};
use cgra_kernels::jpeg::processes::paper_network;
use cgra_kernels::jpeg::programs::{run_block_pipeline, SH};
use cgra_kernels::jpeg::quant::QuantTable;
use cgra_map::Assignment;
use cgra_sim::{ArraySim, EpochRunner, VerifyMode};

/// Acceptance anchor: the paper's full 1024-point / M=128 FFT schedule —
/// 8 tiles, chunked cross-stage exchanges, multi-hop routes — passes the
/// whole-schedule static verifier with zero errors.
#[test]
fn fft_1024_paper_schedule_verifies_clean() {
    let plan = FftPlan::paper_1024();
    let diags = fft_schedule_diagnostics(&plan);
    let errs: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
    assert!(errs.is_empty(), "FFT-1024 schedule rejected: {errs:?}");
}

/// Every partition size the DSE can propose produces a schedule the
/// verifier accepts.
#[test]
fn fft_schedules_verify_clean_across_partitions() {
    for (n, m) in [(16usize, 4usize), (64, 16), (256, 32), (1024, 128)] {
        let plan = FftPlan::new(n, m).unwrap();
        let diags = fft_schedule_diagnostics(&plan);
        assert!(
            !cgra_verify::has_errors(&diags),
            "N={n} M={m} rejected: {diags:?}"
        );
    }
}

/// The generated 64-point schedule is not just statically clean — executed
/// through the epoch runner (strict verification on), it reproduces the
/// partitioned functional model bit for bit.
#[test]
fn fft_64_schedule_executes_bit_exact() {
    let plan = FftPlan::new(64, 16).unwrap();
    let n = plan.n;
    let input: Vec<Cfx> = (0..n)
        .map(|i| {
            Cfx::from_c(Cf64::new(
                (i as f64 * 0.21).sin(),
                (i as f64 * 0.55).cos() * 0.7,
            ))
        })
        .collect();
    let (mesh, epochs) = fft_column_schedule(&plan, &input);

    let mut sim = ArraySim::new(mesh);
    sim.verify = VerifyMode::Strict;
    let mut runner = EpochRunner::new(sim, CostModel::with_link_cost(150.0));
    runner.run_schedule(&epochs).expect("schedule runs");

    let m = plan.m;
    let mut flat = Vec::with_capacity(n);
    for t in 0..plan.rows() {
        for i in 0..m {
            flat.push(Cfx {
                re: runner.sim.tiles[t].dmem.peek(2 * i).unwrap(),
                im: runner.sim.tiles[t].dmem.peek(2 * i + 1).unwrap(),
            });
        }
    }
    let bits = n.trailing_zeros();
    let mut got = vec![Cfx::default(); n];
    for (g, v) in flat.iter().enumerate() {
        got[bit_reverse(g, bits)] = *v;
    }
    let (want, _) = run_partitioned(plan, &input).unwrap();
    assert_eq!(got, want, "schedule execution must be bit-exact");
}

/// The JPEG pipeline schedule verifies clean and, executed, produces the
/// same zig-zag scan as the reference block pipeline.
#[test]
fn jpeg_schedule_verifies_and_executes() {
    let qt = QuantTable::luma(75);
    assert!(!cgra_verify::has_errors(&jpeg_schedule_diagnostics(&qt)));

    let block: [u8; 64] = std::array::from_fn(|i| ((i * 7 + 13) % 256) as u8);
    let (mesh, epochs) = jpeg_block_schedule(&block, &qt);
    let mut sim = ArraySim::new(mesh);
    sim.verify = VerifyMode::Strict;
    let mut runner = EpochRunner::new(sim, CostModel::default());
    runner.run_schedule(&epochs).expect("pipeline runs");

    let got: [i32; 64] = std::array::from_fn(|i| {
        runner.sim.tiles[2]
            .dmem
            .peek(SH as usize + i)
            .unwrap()
            .value() as i32
    });
    let (want, _) = run_block_pipeline(&block, &qt);
    assert_eq!(got, want, "scan must match the reference pipeline");
}

/// Budget checks over the JPEG process network and its assignments: the
/// paper's network fits, single-tile packings warn (reconfiguration
/// time-shares the tile) without erroring, and an impossible process is
/// rejected.
#[test]
fn jpeg_budget_checks() {
    let net = paper_network();
    assert!(network_budget_diagnostics(&net).is_empty());

    let asg = Assignment::single_tile(&net);
    let d = assignment_diagnostics(&net, &asg);
    assert!(!cgra_verify::has_errors(&d));

    let mut broken = net.clone();
    broken.processes[3].data1 = 4096;
    assert!(cgra_verify::has_errors(&network_budget_diagnostics(
        &broken
    )));
}
