//! Plain-text table/series rendering for the figure and table benches.

/// Renders an ASCII table: `headers` then `rows`, columns padded.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| format!("-{}-", "-".repeat(*w)))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<w$} ", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Renders `(x, y)` series as aligned columns (one x column, one column
/// per series) — the textual form of a figure.
pub fn render_series(
    x_label: &str,
    series_labels: &[String],
    xs: &[f64],
    ys: &[Vec<f64>],
) -> String {
    let mut headers = vec![x_label.to_string()];
    headers.extend(series_labels.iter().cloned());
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let mut row = vec![format!("{x:.0}")];
            for s in ys {
                row.push(format!("{:.1}", s[i]));
            }
            row
        })
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    render_table(&header_refs, &rows)
}

/// An ASCII sparkline of a series (for quick shape checks in bench logs).
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if !min.is_finite() || (max - min).abs() < 1e-12 {
        return TICKS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let t = ((v - min) / (max - min) * 7.0).round() as usize;
            TICKS[t.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(lines[0].contains("long-header"));
    }

    #[test]
    fn series_rendering() {
        let s = render_series(
            "x",
            &["s1".into(), "s2".into()],
            &[0.0, 1.0],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
        );
        assert!(s.contains("s1") && s.contains("s2"));
        assert!(s.contains("3.0") && s.contains("4.0"));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        let flat = sparkline(&[5.0, 5.0]);
        assert_eq!(flat.chars().count(), 2);
    }
}
