//! Content-addressed memoization of simulation results.
//!
//! Simulating a candidate schedule is the expensive tail of a DSE
//! sweep, and sweeps repeat themselves: re-runs with a tweaked grid,
//! lint-minimized variants that collapse to the same stream, FFT/JPEG
//! configurations shared between sweeps. [`SimCache`] memoizes each
//! simulation under a **content address**: a stable 64-bit FNV-1a
//! fingerprint of the verified schedule ([`schedule_fingerprint`] —
//! mesh shape, link configurations, encoded programs, data patches,
//! budgets) paired with a fingerprint of the cost model it ran under
//! ([`cost_fingerprint`]). Identical content hits; anything else — a
//! different minimization, a different patch stream, a different link
//! price — misses and re-simulates.
//!
//! The cache is two-level: a thread-safe in-memory map (always on) and
//! an optional persistent directory (`--cache DIR` on the drivers).
//! Persistent entries are one tiny JSON file each, named by both
//! fingerprints, and **self-describing**: the file re-states the
//! fingerprints it was stored under, and [`SimCache::lookup`] rejects
//! any entry whose recorded hashes do not match the key it was found
//! under ([`CacheLookup::Poisoned`]) — a stale or hand-edited entry is
//! detected and re-simulated, never silently trusted.
//!
//! ```
//! use cgra_explore::cache::{CacheLookup, SimCache, SimResult};
//! use cgra_explore::CandidateMetrics;
//!
//! let cache = SimCache::in_memory();
//! assert_eq!(cache.lookup(0xfeed, 0xbeef), CacheLookup::Miss);
//! let result = SimResult {
//!     simulated_ns: 125.0,
//!     metrics: CandidateMetrics {
//!         runtime_ns: 125.0,
//!         reconfig_ns: 50.0,
//!         reconfig_overhead: 0.4,
//!         utilization: 0.8,
//!         words_moved: 16,
//!     },
//! };
//! cache.insert(0xfeed, 0xbeef, &result).unwrap();
//! assert_eq!(cache.lookup(0xfeed, 0xbeef), CacheLookup::Hit(result));
//! assert_eq!(cache.lookup(0xfeed, 0xffff), CacheLookup::Miss); // other cost model
//! ```

use crate::rank::CandidateMetrics;
use cgra_fabric::{CostModel, Mesh};
use cgra_isa::encode_program;
use cgra_sim::Epoch;
use cgra_telemetry::json::{self, Json};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a, the same dependency-free hash the `cgra-verify` batch
/// pricing memo uses.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Stable fingerprint of a schedule's full observable content: mesh
/// dimensions, per-epoch name, budget, link configuration, and every
/// tile setup (encoded program image and data patches, in order). Two
/// schedules with equal fingerprints stream the same bits onto the
/// fabric and therefore simulate identically.
pub fn schedule_fingerprint(mesh: Mesh, epochs: &[Epoch]) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(mesh.rows() as u64);
    h.write_u64(mesh.cols() as u64);
    h.write_u64(epochs.len() as u64);
    for e in epochs {
        h.write(e.name.as_bytes());
        h.write_u64(e.budget);
        h.write_u64(e.links.len() as u64);
        for t in 0..e.links.len() {
            h.write(&[match e.links.get(t) {
                None => 0u8,
                Some(d) => 1 + d as u8,
            }]);
        }
        h.write_u64(e.setups.len() as u64);
        for (tile, setup) in &e.setups {
            h.write_u64(*tile as u64);
            match &setup.program {
                None => h.write(&[0]),
                Some(prog) => {
                    h.write(&[1]);
                    let image = encode_program(prog);
                    h.write_u64(image.len() as u64);
                    for w in image {
                        h.write_u64(w as u64);
                        h.write_u64((w >> 64) as u64);
                    }
                }
            }
            h.write_u64(setup.data_patches.len() as u64);
            for p in &setup.data_patches {
                h.write_u64(p.base as u64);
                h.write_u64(p.words.len() as u64);
                for w in &p.words {
                    h.write_u64(w.value() as u64);
                }
            }
        }
    }
    h.finish()
}

/// Stable fingerprint of a cost model (bit-exact on all three
/// constants), so results priced under different clocks, ICAP
/// bandwidths or link costs never alias.
pub fn cost_fingerprint(cost: &CostModel) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(cost.clock_mhz.to_bits());
    h.write_u64(cost.icap_mb_per_s.to_bits());
    h.write_u64(cost.link_reconfig_ns.to_bits());
    h.finish()
}

/// One memoized simulation: the Eq. 1 runtime the simulator reported
/// and the telemetry-backed metrics of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Simulated Eq. 1 runtime, ns.
    pub simulated_ns: f64,
    /// Measured metrics (utilization, reconfiguration overhead,
    /// traffic) from the run's counters.
    pub metrics: CandidateMetrics,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheLookup {
    /// Entry found and its content hashes match the key.
    Hit(SimResult),
    /// No entry under this key.
    Miss,
    /// An entry existed but failed validation (recorded hashes did not
    /// match the key, or the file was malformed) — treat as a miss and
    /// overwrite with the re-simulated result.
    Poisoned,
}

/// The two-level simulation cache (in-memory map + optional
/// persistent directory). Thread-safe: workers of one pool share a
/// single instance.
#[derive(Debug, Default)]
pub struct SimCache {
    mem: Mutex<HashMap<(u64, u64), SimResult>>,
    dir: Option<PathBuf>,
}

impl SimCache {
    /// A cache that lives only as long as the process.
    pub fn in_memory() -> SimCache {
        SimCache::default()
    }

    /// A cache backed by `dir` (created, with parents, if missing).
    /// Entries persist across runs — the warm re-sweep path.
    pub fn at_dir(dir: impl Into<PathBuf>) -> std::io::Result<SimCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SimCache {
            mem: Mutex::new(HashMap::new()),
            dir: Some(dir),
        })
    }

    /// The persistent directory, when one is attached.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Path of the persistent entry for a key, when a directory is
    /// attached. Exposed so tests can poison entries deliberately.
    pub fn entry_path(&self, schedule_hash: u64, cost_hash: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("dse-{schedule_hash:016x}-{cost_hash:016x}.json")))
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock poisoned").len()
    }

    /// True when the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes the cache: memory first, then the persistent directory.
    /// Disk entries are validated against the key before being
    /// trusted; validated entries are promoted into memory.
    pub fn lookup(&self, schedule_hash: u64, cost_hash: u64) -> CacheLookup {
        if let Some(r) = self
            .mem
            .lock()
            .expect("cache lock poisoned")
            .get(&(schedule_hash, cost_hash))
        {
            return CacheLookup::Hit(*r);
        }
        let Some(path) = self.entry_path(schedule_hash, cost_hash) else {
            return CacheLookup::Miss;
        };
        let Ok(doc) = std::fs::read_to_string(&path) else {
            return CacheLookup::Miss;
        };
        match parse_entry(&doc, schedule_hash, cost_hash) {
            Some(r) => {
                self.mem
                    .lock()
                    .expect("cache lock poisoned")
                    .insert((schedule_hash, cost_hash), r);
                CacheLookup::Hit(r)
            }
            None => CacheLookup::Poisoned,
        }
    }

    /// Stores a result under its content address: into memory always,
    /// and onto disk when a directory is attached. The disk write is
    /// best-effort — an I/O failure downgrades the cache, it never
    /// fails the sweep — and reports whether it happened.
    pub fn insert(&self, schedule_hash: u64, cost_hash: u64, r: &SimResult) -> std::io::Result<()> {
        self.mem
            .lock()
            .expect("cache lock poisoned")
            .insert((schedule_hash, cost_hash), *r);
        if let Some(path) = self.entry_path(schedule_hash, cost_hash) {
            std::fs::write(&path, render_entry(schedule_hash, cost_hash, r))?;
        }
        Ok(())
    }
}

/// Serializes one persistent entry. Floats use Rust's shortest
/// round-trip formatting, so a warm lookup returns bit-identical
/// values — the property the byte-identical-frontier guarantee rests
/// on.
fn render_entry(schedule_hash: u64, cost_hash: u64, r: &SimResult) -> String {
    format!(
        "{{\n  \"schedule_hash\": \"{schedule_hash:016x}\",\n  \"cost_hash\": \"{cost_hash:016x}\",\n  \
         \"simulated_ns\": {:?},\n  \"runtime_ns\": {:?},\n  \"reconfig_ns\": {:?},\n  \
         \"reconfig_overhead\": {:?},\n  \"utilization\": {:?},\n  \"words_moved\": {}\n}}\n",
        r.simulated_ns,
        r.metrics.runtime_ns,
        r.metrics.reconfig_ns,
        r.metrics.reconfig_overhead,
        r.metrics.utilization,
        r.metrics.words_moved,
    )
}

/// Parses and validates one persistent entry; `None` means poisoned.
fn parse_entry(doc: &str, schedule_hash: u64, cost_hash: u64) -> Option<SimResult> {
    let v = json::parse(doc).ok()?;
    let hex = |key: &str| -> Option<u64> { u64::from_str_radix(v.get(key)?.as_str()?, 16).ok() };
    if hex("schedule_hash")? != schedule_hash || hex("cost_hash")? != cost_hash {
        return None;
    }
    let num = |key: &str| v.get(key).and_then(Json::as_f64);
    Some(SimResult {
        simulated_ns: num("simulated_ns")?,
        metrics: CandidateMetrics {
            runtime_ns: num("runtime_ns")?,
            reconfig_ns: num("reconfig_ns")?,
            reconfig_overhead: num("reconfig_overhead")?,
            utilization: num("utilization")?,
            words_moved: num("words_moved")? as u64,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let d = std::env::temp_dir().join(format!(
            "remorph-cache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn result(ns: f64) -> SimResult {
        SimResult {
            simulated_ns: ns,
            metrics: CandidateMetrics {
                runtime_ns: ns,
                reconfig_ns: ns / 3.0,
                reconfig_overhead: 1.0 / 3.0,
                utilization: 0.625,
                words_moved: 4242,
            },
        }
    }

    #[test]
    fn memory_round_trip() {
        let c = SimCache::in_memory();
        assert_eq!(c.lookup(1, 2), CacheLookup::Miss);
        c.insert(1, 2, &result(10.5)).unwrap();
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(result(10.5)));
        assert_eq!(c.lookup(1, 3), CacheLookup::Miss);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[allow(clippy::excessive_precision)] // awkward mantissas are the point
    fn disk_round_trip_is_bit_exact() {
        let dir = tmp_dir("roundtrip");
        let r = SimResult {
            simulated_ns: 123456.78900000001,
            metrics: CandidateMetrics {
                runtime_ns: 0.1 + 0.2, // deliberately not exactly 0.3
                reconfig_ns: 1e-9,
                reconfig_overhead: 2.0 / 3.0,
                utilization: 0.9999999999999999,
                words_moved: u64::from(u32::MAX),
            },
        };
        {
            let c = SimCache::at_dir(&dir).unwrap();
            c.insert(7, 9, &r).unwrap();
        }
        // A fresh cache instance must reload the exact bits from disk.
        let c = SimCache::at_dir(&dir).unwrap();
        match c.lookup(7, 9) {
            CacheLookup::Hit(got) => {
                assert_eq!(got.simulated_ns.to_bits(), r.simulated_ns.to_bits());
                assert_eq!(
                    got.metrics.runtime_ns.to_bits(),
                    r.metrics.runtime_ns.to_bits()
                );
                assert_eq!(
                    got.metrics.utilization.to_bits(),
                    r.metrics.utilization.to_bits()
                );
                assert_eq!(got.metrics.words_moved, r.metrics.words_moved);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_entry_is_poisoned_not_trusted() {
        let dir = tmp_dir("poison");
        let c = SimCache::at_dir(&dir).unwrap();
        c.insert(11, 13, &result(50.0)).unwrap();
        let path = c.entry_path(11, 13).unwrap();
        // Forge the entry: valid JSON, wrong recorded schedule hash —
        // what a stale file from an older schedule build looks like.
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            doc.replace(&format!("{:016x}", 11), &format!("{:016x}", 999)),
        )
        .unwrap();
        let fresh = SimCache::at_dir(&dir).unwrap();
        assert_eq!(fresh.lookup(11, 13), CacheLookup::Poisoned);
        // Garbage is poisoned too.
        std::fs::write(&path, "{not json").unwrap();
        assert_eq!(fresh.lookup(11, 13), CacheLookup::Poisoned);
        // Re-inserting repairs the entry.
        fresh.insert(11, 13, &result(51.0)).unwrap();
        let again = SimCache::at_dir(&dir).unwrap();
        assert_eq!(again.lookup(11, 13), CacheLookup::Hit(result(51.0)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_separate_cost_models() {
        let a = cost_fingerprint(&CostModel::with_link_cost(0.0));
        let b = cost_fingerprint(&CostModel::with_link_cost(100.0));
        let c = cost_fingerprint(&CostModel::with_link_cost(100.0));
        assert_ne!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn schedule_fingerprint_sees_content_changes() {
        use crate::schedule::{example_probe_input, fft_column_schedule};
        use cgra_kernels::fft::partition::FftPlan;
        let input = example_probe_input(16);
        let plan = FftPlan::new(16, 4).unwrap();
        let (mesh, mut epochs) = fft_column_schedule(&plan, &input);
        let base = schedule_fingerprint(mesh, &epochs);
        // Rebuilding identically reproduces the fingerprint.
        let (mesh2, epochs2) = fft_column_schedule(&plan, &input);
        assert_eq!(schedule_fingerprint(mesh2, &epochs2), base);
        // Touching one budget changes it.
        epochs[0].budget += 1;
        assert_ne!(schedule_fingerprint(mesh, &epochs), base);
        epochs[0].budget -= 1;
        assert_eq!(schedule_fingerprint(mesh, &epochs), base);
        // Dropping a patch changes it.
        let dropped = epochs
            .iter_mut()
            .find_map(|e| {
                e.setups
                    .iter_mut()
                    .find(|(_, s)| !s.data_patches.is_empty())
                    .map(|(_, s)| s.data_patches.remove(0))
            })
            .expect("an FFT schedule patches data");
        drop(dropped);
        assert_ne!(schedule_fingerprint(mesh, &epochs), base);
    }
}
