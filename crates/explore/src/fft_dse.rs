//! FFT design-space exploration: the empirical performance equation of
//! Sec. 3.2 and the sweeps behind Figures 10, 11, 12 and Tables 1, 2.
//!
//! ## The tau model (as reconstructed — see DESIGN.md)
//!
//! For an N-point radix-2 FFT on `rows = N/M` tiles per column and `cols`
//! columns (cols divides log2 N), with per-link reconfiguration cost `L`:
//!
//! * `t_l = rows * L` — re-routing one column's worth of links,
//! * `tau0 = t_hcp` — streaming the input into the first column (all row
//!   tiles receive in parallel),
//! * `tau1` — ICAP reload of yellow twiddles: `events(cols) * N/2 * 33.33ns`
//!   with `events = {1:3, 2:3, 5:2, 10:0}` for the 1024-point case (Eq. 7),
//! * `tau2` — the lockstep pipeline interval: columns advance together
//!   through `log2N / cols` steps; a step takes the max BF runtime over
//!   columns, overlapped with vertical link reconfiguration
//!   (`max(BF, S_i * t_l)`),
//! * `tau3` — copy-variable reloads (`2 * rows` words per in-column vcp
//!   retargeting event); the Table 2 optimization replaces it with a few
//!   self-update instructions,
//! * `tau4` — non-overlapped vcp executions: `{1:3, 2:3, 5:2, 10:1}`,
//! * `tau5 = t_l * cols` — establishing the horizontal links (Eq. 12),
//! * `tau6 = 0` (Eq. 13),
//! * `tau7 = t_hcp * cols` — results ripple column-to-column over the
//!   single-word-wide links, serialized per FFT.
//!
//! With the paper's Table 1 process runtimes this reproduces the published
//! anchors: ~45 000 FFT/s at 10 columns and L=0, ~11 000 at one column,
//! and the 700–1100 ns crossover band of Figure 12.

use cgra_fabric::{parallel_map, CostModel};
use cgra_kernels::fft::partition::FftPlan;
use cgra_kernels::fft::programs::measure_processes;

/// Per-process runtimes feeding the tau model (Table 1's runtime column).
#[derive(Debug, Clone, PartialEq)]
pub struct FftProcessTimes {
    /// `BF0..BF(log2N-1)` runtimes, ns.
    pub bf_ns: Vec<f64>,
    /// Vertical copy process runtime, ns.
    pub vcp_ns: f64,
    /// Horizontal copy process runtime, ns.
    pub hcp_ns: f64,
}

impl FftProcessTimes {
    /// The paper's published Table 1 numbers (1024-point, M=128).
    pub fn paper_table1() -> FftProcessTimes {
        FftProcessTimes {
            bf_ns: vec![
                2672.0, 2672.0, 2672.0, 4112.0, 3434.0, 3134.0, 3062.0, 3182.0, 3554.0, 4364.0,
            ],
            vcp_ns: 789.0,
            hcp_ns: 1557.0,
        }
    }

    /// Runtimes measured by executing our generated PE programs on the
    /// interpreter.
    pub fn measured(plan: &FftPlan, cost: &CostModel) -> FftProcessTimes {
        let rows = measure_processes(plan.n, plan.m, cost);
        let stages = plan.stages();
        FftProcessTimes {
            bf_ns: rows[..stages].iter().map(|r| r.runtime_ns).collect(),
            vcp_ns: rows[stages].runtime_ns,
            hcp_ns: rows[stages + 1].runtime_ns,
        }
    }
}

/// The tau performance model.
#[derive(Debug, Clone)]
pub struct TauModel {
    /// Partition plan.
    pub plan: FftPlan,
    /// Process runtimes.
    pub times: FftProcessTimes,
    /// Base cost model (per-link cost is passed per query instead).
    pub cost: CostModel,
    /// Use the Table 2 self-updating copy processes (tau3 ~ 0).
    pub optimized_copy: bool,
    /// Use green twiddle generation (tau1 only pays yellow events); when
    /// false every stage beyond the first reloads its full complement —
    /// the ablation baseline.
    pub twiddle_generation: bool,
}

/// Breakdown of one evaluation of the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauBreakdown {
    /// Input streaming, ns.
    pub tau0: f64,
    /// Yellow twiddle reloads, ns.
    pub tau1: f64,
    /// Lockstep compute interval (with overlapped vertical relink), ns.
    pub tau2: f64,
    /// Copy-variable reloads, ns.
    pub tau3: f64,
    /// Vertical copy executions, ns.
    pub tau4: f64,
    /// Horizontal link establishment, ns.
    pub tau5: f64,
    /// hcp data-memory reconfiguration (0 by Eq. 13), ns.
    pub tau6: f64,
    /// Column-to-column result transfer, ns.
    pub tau7: f64,
}

impl TauBreakdown {
    /// Total time for one FFT, ns.
    pub fn total_ns(&self) -> f64 {
        self.tau0
            + self.tau1
            + self.tau2
            + self.tau3
            + self.tau4
            + self.tau5
            + self.tau6
            + self.tau7
    }

    /// FFTs per second.
    pub fn throughput(&self) -> f64 {
        1e9 / self.total_ns()
    }
}

impl TauModel {
    /// Model over the paper's 1024-point plan and published Table 1 times.
    pub fn paper_1024() -> TauModel {
        TauModel {
            plan: FftPlan::paper_1024(),
            times: FftProcessTimes::paper_table1(),
            cost: CostModel::default(),
            optimized_copy: true,
            twiddle_generation: true,
        }
    }

    /// Model with runtimes measured from our generated PE programs.
    pub fn measured_1024() -> TauModel {
        let plan = FftPlan::paper_1024();
        let cost = CostModel::default();
        TauModel {
            times: FftProcessTimes::measured(&plan, &cost),
            plan,
            cost,
            optimized_copy: true,
            twiddle_generation: true,
        }
    }

    fn rows(&self) -> usize {
        self.plan.rows()
    }

    /// In-column vcp retargeting events (`tau3`): boundaries between
    /// consecutive *cross* stages that fall inside one column.
    fn cp_events(&self, cols: usize) -> usize {
        let spc = self.plan.stages() / cols;
        (1..self.plan.cross_stages())
            .filter(|s| s % spc != 0)
            .count()
    }

    /// Non-overlapped vcp executions (`tau4`).
    fn vcp_events(&self, cols: usize) -> usize {
        let spc = self.plan.stages() / cols;
        let aligned = (1..self.plan.cross_stages())
            .filter(|s| s % spc == 0)
            .count();
        self.plan.cross_stages() - aligned
    }

    /// Evaluates the model for `cols` columns at per-link cost `link_ns`.
    pub fn evaluate(&self, cols: usize, link_ns: f64) -> Result<TauBreakdown, String> {
        let spc = self.plan.stages_per_col(cols)?;
        let t_l = self.rows() as f64 * link_ns;
        let word_ns = self.cost.data_word_reload_ns();

        let tau0 = self.times.hcp_ns;

        let reload_events = if self.twiddle_generation {
            self.plan.yellow_reload_events(cols)?
        } else {
            // Ablation: every stage after the first executed in-column
            // reloads its full twiddle complement.
            (1..self.plan.stages()).filter(|s| s % spc != 0).count()
        };
        let tau1 = reload_events as f64 * self.plan.yellow_words_per_event() as f64 * word_ns;

        // Lockstep interval: step i runs stage (c*spc + i) on column c.
        let mut tau2 = 0.0;
        for i in 0..spc {
            let mut step = 0.0f64;
            let mut needs_vrelink = false;
            for c in 0..cols {
                let s = c * spc + i;
                step = step.max(self.times.bf_ns[s]);
                if s < self.plan.cross_stages() {
                    needs_vrelink = true;
                }
            }
            if needs_vrelink {
                step = step.max(t_l); // vertical relink overlaps BF execution
            }
            tau2 += step;
        }

        let tau3 = if self.optimized_copy {
            // Self-updating copy variables: two adds per event (Table 2).
            self.cp_events(cols) as f64 * 2.0 * self.cost.cycle_ns()
        } else {
            self.cp_events(cols) as f64 * (2 * self.rows()) as f64 * word_ns
        };

        let tau4 = self.vcp_events(cols) as f64 * self.times.vcp_ns;
        let tau5 = t_l * cols as f64;
        let tau6 = 0.0;
        let tau7 = self.times.hcp_ns * cols as f64;

        Ok(TauBreakdown {
            tau0,
            tau1,
            tau2,
            tau3,
            tau4,
            tau5,
            tau6,
            tau7,
        })
    }

    /// Throughput (FFT/s) for `cols` at link cost `link_ns`.
    pub fn throughput(&self, cols: usize, link_ns: f64) -> Result<f64, String> {
        Ok(self.evaluate(cols, link_ns)?.throughput())
    }
}

/// One series of Figure 10/11: throughput vs link cost for a column count.
#[derive(Debug, Clone)]
pub struct ThroughputSeries {
    /// Column count.
    pub cols: usize,
    /// `(link_cost_ns, ffts_per_sec)` points.
    pub points: Vec<(f64, f64)>,
}

/// Debug-build gate: statically verify the concrete epoch schedule behind
/// the candidate plan before pricing it. A schedule the verifier rejects
/// is not a design point.
fn verify_candidate(plan: &FftPlan) {
    if cfg!(debug_assertions) {
        let diags = crate::schedule::fft_schedule_diagnostics(plan);
        assert!(
            !cgra_verify::has_errors(&diags),
            "candidate FFT schedule failed static verification: {diags:?}"
        );
    }
}

/// Figure 10/11 sweep: throughput vs link cost for every valid column
/// count.
pub fn sweep_link_cost(model: &TauModel, max_link_ns: f64, step_ns: f64) -> Vec<ThroughputSeries> {
    verify_candidate(&model.plan);
    parallel_map(model.plan.valid_cols(), |cols| {
        let mut points = Vec::new();
        let mut l = 0.0;
        while l <= max_link_ns + 1e-9 {
            // `cols` comes from `valid_cols()`, so this cannot fail; a
            // column count the model rejects simply yields no point.
            if let Ok(t) = model.throughput(cols, l) {
                points.push((l, t));
            }
            l += step_ns;
        }
        ThroughputSeries { cols, points }
    })
}

/// Figure 12 sweep: throughput vs column count for each link cost.
pub fn sweep_columns(model: &TauModel, link_costs_ns: &[f64]) -> Vec<(f64, Vec<(usize, f64)>)> {
    verify_candidate(&model.plan);
    parallel_map(link_costs_ns.to_vec(), |l| {
        let series = model
            .plan
            .valid_cols()
            .into_iter()
            .filter_map(|c| model.throughput(c, l).ok().map(|t| (c, t)))
            .collect();
        (l, series)
    })
}

/// A Table 2 row: copy-process retargeting cost per column count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyOptRow {
    /// Column count.
    pub cols: usize,
    /// ICAP-reload cost (previous approach), ns.
    pub prev_ns: f64,
    /// Self-update cost (optimized), ns.
    pub new_ns: f64,
}

impl CopyOptRow {
    /// Improvement, ns.
    pub fn improvement_ns(&self) -> f64 {
        self.prev_ns - self.new_ns
    }
}

/// Regenerates Table 2 from the model.
pub fn copy_optimization_table(model: &TauModel) -> Vec<CopyOptRow> {
    model
        .plan
        .valid_cols()
        .into_iter()
        .filter_map(|cols| {
            let mut reload = model.clone();
            reload.optimized_copy = false;
            let mut updated = model.clone();
            updated.optimized_copy = true;
            let prev = reload.evaluate(cols, 0.0).ok()?.tau3;
            let new = updated.evaluate(cols, 0.0).ok()?.tau3;
            Some(CopyOptRow {
                cols,
                prev_ns: prev,
                new_ns: new,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_10_columns_45000() {
        let m = TauModel::paper_1024();
        let t = m.throughput(10, 0.0).unwrap();
        assert!(
            (40_000.0..50_000.0).contains(&t),
            "10-column throughput {t} should be ~45000/s"
        );
    }

    #[test]
    fn paper_anchor_one_column_11000() {
        let m = TauModel::paper_1024();
        let t = m.throughput(1, 0.0).unwrap();
        assert!(
            (10_000.0..13_000.0).contains(&t),
            "1-column throughput {t} should be ~11-12k/s"
        );
    }

    #[test]
    fn more_columns_win_at_zero_link_cost() {
        let m = TauModel::paper_1024();
        let t: Vec<f64> = [1, 2, 5, 10]
            .iter()
            .map(|&c| m.throughput(c, 0.0).unwrap())
            .collect();
        assert!(t[0] < t[1] && t[1] < t[2] && t[2] < t[3], "{t:?}");
    }

    #[test]
    fn crossover_in_paper_band() {
        // Figure 12: above ~700ns adding columns stops helping; above
        // ~1100ns it hurts. Find where 10 columns drop below 1 column.
        let m = TauModel::paper_1024();
        let mut crossover = None;
        for l in 0..3000 {
            let l = l as f64;
            if m.throughput(10, l).unwrap() < m.throughput(1, l).unwrap() {
                crossover = Some(l);
                break;
            }
        }
        let c = crossover.expect("must cross");
        assert!(
            (700.0..1400.0).contains(&c),
            "10-vs-1 column crossover at {c} ns, expected the paper's band"
        );
        // And 10 vs 5 columns crosses earlier.
        let mut c105 = None;
        for l in 0..3000 {
            let l = l as f64;
            if m.throughput(10, l).unwrap() < m.throughput(5, l).unwrap() {
                c105 = Some(l);
                break;
            }
        }
        assert!(c105.expect("must cross") < c);
    }

    #[test]
    fn sensitivity_grows_with_columns() {
        // Figure 11: more columns are more sensitive to link cost.
        let m = TauModel::paper_1024();
        let slope = |cols: usize| {
            let a = m.throughput(cols, 0.0).unwrap();
            let b = m.throughput(cols, 1000.0).unwrap();
            (a - b) / a
        };
        assert!(slope(10) > slope(5));
        assert!(slope(5) > slope(2));
        assert!(slope(2) > slope(1));
    }

    #[test]
    fn one_column_is_the_flattest() {
        // Figure 10: the one-column curve is nearly flat compared with the
        // steep multi-column curves.
        let m = TauModel::paper_1024();
        let drop = |cols: usize| {
            let a = m.throughput(cols, 0.0).unwrap();
            let b = m.throughput(cols, 2000.0).unwrap();
            (a - b) / a
        };
        assert!(drop(1) < 0.45, "one column dropped {:.2}", drop(1));
        assert!(drop(10) > 2.0 * drop(1));
    }

    #[test]
    fn table2_matches_paper() {
        // Paper Table 2: prev cost 1066.6 / 1066.6 / 533.3 / 0 ns.
        let m = TauModel::paper_1024();
        let rows = copy_optimization_table(&m);
        let prev: Vec<f64> = rows.iter().map(|r| r.prev_ns).collect();
        assert!((prev[0] - 1066.6).abs() < 1.0, "{prev:?}");
        assert!((prev[1] - 1066.6).abs() < 1.0);
        assert!((prev[2] - 533.3).abs() < 1.0);
        assert!(prev[3].abs() < 1e-9);
        // New costs are tiny and improvement is ~prev.
        for r in &rows {
            assert!(r.new_ns <= 15.0);
            assert!(r.improvement_ns() >= 0.0);
        }
    }

    #[test]
    fn twiddle_generation_ablation_hurts() {
        let on = TauModel::paper_1024();
        let mut off = TauModel::paper_1024();
        off.twiddle_generation = false;
        for cols in [1usize, 2, 5] {
            assert!(
                off.throughput(cols, 0.0).unwrap() < on.throughput(cols, 0.0).unwrap(),
                "cols={cols}"
            );
        }
        // 10 columns preload everything either way.
        assert_eq!(
            off.throughput(10, 0.0).unwrap(),
            on.throughput(10, 0.0).unwrap()
        );
    }

    #[test]
    fn measured_model_preserves_shape() {
        let m = TauModel::measured_1024();
        assert_eq!(m.times.bf_ns.len(), 10);
        let t1 = m.throughput(1, 0.0).unwrap();
        let t10 = m.throughput(10, 0.0).unwrap();
        assert!(t10 > 2.0 * t1, "t1={t1} t10={t10}");
        // Crossover still exists.
        let mut crossed = false;
        for l in 0..5000 {
            if m.throughput(10, l as f64).unwrap() < m.throughput(1, l as f64).unwrap() {
                crossed = true;
                break;
            }
        }
        assert!(crossed);
    }

    #[test]
    fn sweeps_have_expected_shape() {
        let m = TauModel::paper_1024();
        let series = sweep_link_cost(&m, 5000.0, 500.0);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.points.len(), 11);
            // Monotonically non-increasing in link cost.
            for w in s.points.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-9);
            }
        }
        let cols_sweep = sweep_columns(&m, &[0.0, 700.0, 1500.0]);
        assert_eq!(cols_sweep.len(), 3);
        // At 0 cost increasing columns increases throughput...
        let at0 = &cols_sweep[0].1;
        assert!(at0.windows(2).all(|w| w[1].1 > w[0].1));
        // ...at 1500ns it decreases from 5 to 10 columns.
        let at1500 = &cols_sweep[2].1;
        assert!(at1500[3].1 < at1500[2].1);
    }
}
