//! Bounded worker pool for the DSE sweeps.
//!
//! A rayon-style fan-out without the dependency: workers self-schedule
//! off a shared queue (the degenerate-but-equivalent form of work
//! stealing for a single shared deque), results land in per-item slots
//! so the output order is the **input order regardless of thread count
//! or scheduling**, and each worker carries its own
//! [`SweepCounters`] block so the telemetry layer can account for
//! every candidate without cross-thread contention.
//!
//! This extends `cgra_fabric::parallel_map` (which the analytic
//! Figure 10-12 sweeps use) with the two things the schedule-level
//! engine needs: an explicit `--jobs` bound instead of always taking
//! every core, and counter threading.
//!
//! ```
//! use cgra_explore::pool::run_sharded;
//!
//! let out = run_sharded(4, (0..10).collect(), |ctx, i: u64| {
//!     ctx.counters.candidates += 1;
//!     i * i
//! });
//! // Deterministic input-order results, however many threads ran.
//! assert_eq!(out.results, (0..10).map(|i| i * i).collect::<Vec<_>>());
//! assert_eq!(out.workers.iter().map(|w| w.candidates).sum::<u64>(), 10);
//! ```

use cgra_telemetry::SweepCounters;
use std::sync::Mutex;

/// Per-worker context handed to the work function: the worker's index
/// (stable for the lifetime of the pool) and its private counter
/// block.
#[derive(Debug)]
pub struct WorkerCtx {
    /// Worker index, `0..jobs`.
    pub worker: usize,
    /// This worker's counters; merged after the pool drains.
    pub counters: SweepCounters,
}

/// What a pool run returns: results in input order plus the per-worker
/// counter blocks in worker-index order.
#[derive(Debug)]
pub struct PoolOutput<R> {
    /// One result per input item, in input order.
    pub results: Vec<R>,
    /// Counter blocks, indexed by worker.
    pub workers: Vec<SweepCounters>,
}

/// Resolves a `--jobs` request: `0` means "one per available core".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

/// Applies `f` to every item across up to `jobs` worker threads
/// (`jobs == 0` takes every available core) and returns the results in
/// input order. Workers pull items off a shared queue as they free up,
/// so an expensive item never blocks the rest of the batch behind it.
/// Panics in `f` propagate to the caller.
pub fn run_sharded<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> PoolOutput<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut WorkerCtx, T) -> R + Sync,
{
    let n = items.len();
    let workers_n = effective_jobs(jobs).min(n.max(1));
    if workers_n <= 1 {
        let mut ctx = WorkerCtx {
            worker: 0,
            counters: SweepCounters::default(),
        };
        let results = items.into_iter().map(|it| f(&mut ctx, it)).collect();
        return PoolOutput {
            results,
            workers: vec![ctx.counters],
        };
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let mut workers = vec![SweepCounters::default(); workers_n];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers_n)
            .map(|w| {
                let queue = &queue;
                let slots = &slots;
                let f = &f;
                s.spawn(move || {
                    let mut ctx = WorkerCtx {
                        worker: w,
                        counters: SweepCounters::default(),
                    };
                    loop {
                        // Take the lock only to pull the next item; the
                        // work itself runs unlocked.
                        let next = queue.lock().expect("work queue poisoned").next();
                        let Some((i, item)) = next else { break };
                        let r = f(&mut ctx, item);
                        *slots[i].lock().expect("result slot poisoned") = Some(r);
                    }
                    ctx.counters
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            workers[w] = h.join().expect("sweep worker panicked");
        }
    });
    let results = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every item produces a result")
        })
        .collect();
    PoolOutput { results, workers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        for jobs in [0, 1, 2, 4, 16] {
            let out = run_sharded(jobs, (0..64).collect(), |_, i: i64| i * 3);
            assert_eq!(
                out.results,
                (0..64).map(|i| i * 3).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn counters_cover_every_item() {
        let out = run_sharded(4, (0..57).collect(), |ctx, _i: usize| {
            ctx.counters.candidates += 1;
        });
        assert_eq!(out.workers.len(), 4);
        let total: u64 = out.workers.iter().map(|w| w.candidates).sum();
        assert_eq!(total, 57);
    }

    #[test]
    fn worker_indices_are_stable() {
        let out = run_sharded(3, (0..30).collect(), |ctx, _i: usize| ctx.worker);
        for &w in &out.results {
            assert!(w < 3);
        }
    }

    #[test]
    fn empty_and_oversized_pools() {
        let out = run_sharded(8, Vec::<u8>::new(), |_, b| b);
        assert!(out.results.is_empty());
        assert_eq!(out.workers.len(), 1);
        // More workers than items degrades gracefully.
        let out = run_sharded(16, vec![1u8, 2], |_, b| b + 1);
        assert_eq!(out.results, vec![2, 3]);
        assert_eq!(out.workers.len(), 2);
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(7), 7);
    }
}
