//! # cgra-explore
//!
//! Design-space exploration reproducing the paper's evaluation:
//!
//! * [`fft_dse`] — the Sec. 3.2 tau performance model and the sweeps of
//!   Figures 10-12 plus the Table 2 copy-process optimization,
//! * [`jpeg_dse`] — Table 4's manual mappings, Table 5's 24-tile binding,
//!   and the rebalancing sweeps of Figures 16-17,
//! * [`report`] — plain-text table/series rendering for the bench targets.

#![warn(missing_docs)]

pub mod fft_dse;
pub mod jpeg_dse;
pub mod report;

pub use fft_dse::{copy_optimization_table, sweep_columns, sweep_link_cost, TauModel};
pub use jpeg_dse::{evaluate_manual, manual_implementations, rebalance_sweep, Algo};
