//! # cgra-explore
//!
//! Design-space exploration reproducing the paper's evaluation:
//!
//! * [`fft_dse`] — the Sec. 3.2 tau performance model and the sweeps of
//!   Figures 10-12 plus the Table 2 copy-process optimization,
//! * [`jpeg_dse`] — Table 4's manual mappings, Table 5's 24-tile binding,
//!   and the rebalancing sweeps of Figures 16-17,
//! * [`rank`] — static Eq. 1 pricing of candidate schedules via the
//!   `cgra-verify` WCET engine, so sweeps simulate only the frontier,
//! * [`report`] — plain-text table/series rendering for the bench targets,
//! * [`schedule`] — concrete epoch schedules behind the candidates, plus
//!   the `cgra-verify` gates the sweeps run over every design point.

#![warn(missing_docs)]

pub mod fft_dse;
pub mod jpeg_dse;
pub mod rank;
pub mod report;
pub mod schedule;

pub use fft_dse::{copy_optimization_table, sweep_columns, sweep_link_cost, TauModel};
pub use jpeg_dse::{evaluate_manual, manual_implementations, rebalance_sweep, Algo};
pub use rank::{
    fft_partition_candidates, rank_fft_candidates, simulate_frontier, CandidateMetrics,
    FrontierPoint, RankedCandidate,
};
pub use schedule::{
    assignment_diagnostics, build_example_schedule, example_probe_input, fft_column_schedule,
    fft_schedule_diagnostics, jpeg_block_schedule, jpeg_probe_blocks, jpeg_schedule_diagnostics,
    jpeg_stream_diagnostics, jpeg_stream_schedule, minimize_schedule, network_budget_diagnostics,
    EXAMPLE_SCHEDULES,
};
