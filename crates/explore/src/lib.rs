//! # cgra-explore
//!
//! Design-space exploration reproducing the paper's evaluation:
//!
//! * [`fft_dse`] — the Sec. 3.2 tau performance model and the sweeps of
//!   Figures 10-12 plus the Table 2 copy-process optimization,
//! * [`jpeg_dse`] — Table 4's manual mappings, Table 5's 24-tile binding,
//!   and the rebalancing sweeps of Figures 16-17,
//! * [`rank`] — static Eq. 1 pricing of candidate schedules via the
//!   `cgra-verify` WCET engine, so sweeps simulate only the frontier,
//! * [`sweep`] — the parallel, cached sweep engine behind `cgra-explore`:
//!   sharded prepare/price/evaluate phases, WCET pruning, and memoized
//!   simulation,
//! * [`pool`] — the bounded worker pool the engine shards over, with
//!   per-worker telemetry counters and input-order-deterministic results,
//! * [`cache`] — the content-addressed simulation cache (in-memory plus
//!   an optional on-disk directory) keyed by schedule and cost-model
//!   fingerprints,
//! * [`report`] — plain-text table/series rendering for the bench targets,
//! * [`schedule`] — concrete epoch schedules behind the candidates, plus
//!   the `cgra-verify` gates the sweeps run over every design point.
//!
//! Running a sweep through the engine takes a spec, a config, and a
//! cache; the outcome carries the ranked rows and conservation-checked
//! worker telemetry:
//!
//! ```
//! use cgra_explore::{run_sweep, EngineConfig, SimCache, SweepSpec, Workload};
//!
//! let spec = SweepSpec { workload: Workload::Fft64, link_costs_ns: vec![0.0] };
//! let cfg = EngineConfig { jobs: 1, frontier: 1, prune: true };
//! let cache = SimCache::in_memory();
//! let out = run_sweep(&spec, &cfg, &cache).expect("sweep runs");
//! assert_eq!(out.rows.len(), 5);               // five partition sizes
//! assert_eq!(out.stats.total.simulated, 1);    // only the frontier ran
//! assert!(out.conservation_violations().is_empty());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fft_dse;
pub mod jpeg_dse;
pub mod pool;
pub mod rank;
pub mod report;
pub mod schedule;
pub mod sweep;

pub use cache::{cost_fingerprint, schedule_fingerprint, CacheLookup, SimCache, SimResult};
pub use fft_dse::{copy_optimization_table, sweep_columns, sweep_link_cost, TauModel};
pub use jpeg_dse::{evaluate_manual, manual_implementations, rebalance_sweep, Algo};
pub use pool::{effective_jobs, run_sharded, PoolOutput, WorkerCtx};
pub use rank::{
    fft_partition_candidates, rank_fft_candidates, rank_fft_candidates_hoisted, simulate_frontier,
    simulate_frontier_hoisted, static_metrics, static_worst_ns, CandidateMetrics, FrontierPoint,
    RankedCandidate,
};
pub use schedule::{
    assignment_diagnostics, build_example_schedule, example_probe_input, fft_column_schedule,
    fft_schedule_diagnostics, hoist_schedule, jpeg_block_schedule, jpeg_probe_blocks,
    jpeg_schedule_diagnostics, jpeg_stream_diagnostics, jpeg_stream_schedule, minimize_schedule,
    network_budget_diagnostics, EXAMPLE_SCHEDULES,
};
pub use sweep::{
    run_sweep, run_sweep_naive, Candidate, EngineConfig, RowOutcome, Scheme, SweepError,
    SweepOutcome, SweepRow, SweepSpec, Workload, DEFAULT_LINK_COSTS,
};
