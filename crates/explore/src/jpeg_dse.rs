//! JPEG design-space exploration: the manual mappings of Table 4, the
//! 24-tile binding of Table 5, and the rebalancing sweeps of Figures 16-17.

use cgra_fabric::{CostModel, INSTR_SLOTS};
use cgra_kernels::jpeg::processes::{
    copy_processes_time_optimal, paper_network, quarter_dct, JpegProcess, BLOCKS_PER_IMAGE,
};
use cgra_map::rebalance::{rebalance_one, rebalance_opt, rebalance_two};
use cgra_map::{evaluate, Assignment, ProcessSpec};

/// Unit time of an arbitrary set of processes on one tile: runtimes plus
/// per-block reconfiguration when the programs exceed the instruction
/// memory.
pub fn procs_time_ns(procs: &[&ProcessSpec], cost: &CostModel) -> f64 {
    let cycles: u64 = procs.iter().map(|p| p.runtime_cycles).sum();
    let insts: usize = procs.iter().map(|p| p.insts).sum();
    let mut t = cost.exec_ns(cycles);
    if insts > INSTR_SLOTS {
        let data3: usize = procs.iter().map(|p| p.data3).sum();
        t += cost.instr_reload_ns(insts) + cost.data_reload_ns(data3);
    }
    t
}

/// One pipeline stage of a manual mapping: one or more tiles working in
/// parallel on the same block (the four quarter-DCT tiles of Figure 15).
#[derive(Debug, Clone)]
pub struct ManualStage {
    /// Each inner vec is one tile's process list (indices into the
    /// catalog).
    pub tiles: Vec<Vec<usize>>,
}

/// A manual mapping (one Table 4 column).
#[derive(Debug, Clone)]
pub struct ManualImpl {
    /// Implementation name.
    pub name: String,
    /// Pipeline stages.
    pub stages: Vec<ManualStage>,
    /// Whether the mapping re-routes links at runtime (DCT fan-out/fan-in).
    pub relink: bool,
}

/// Evaluated Table 4 metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ManualMetrics {
    /// Name.
    pub name: String,
    /// Tiles used.
    pub tiles: usize,
    /// Time per block-unit, us.
    pub time_us: f64,
    /// Average tile utilization.
    pub avg_util: f64,
    /// Images per second (800 blocks/image).
    pub images_per_sec: f64,
    /// Runtime program reconfiguration needed?
    pub reconfig: bool,
    /// Link re-routing needed?
    pub relink: bool,
}

/// The process catalog backing the manual mappings: the Table 3 main
/// pipeline, the quarter-DCT, and the time-optimal copy helpers.
pub fn catalog() -> Vec<ProcessSpec> {
    let mut v = paper_network().processes;
    v.push(quarter_dct()); // index 10
    v.extend(copy_processes_time_optimal()); // 11: CP16, 12: CP32, 13: CP64
    v
}

const DCT: usize = JpegProcess::Dct as usize;
const QDCT: usize = 10;
const CP16: usize = 11;
const CP64: usize = 13;

/// The five manual implementations of Table 4.
pub fn manual_implementations() -> Vec<ManualImpl> {
    let all: Vec<usize> = (0..10).collect();
    let rest: Vec<usize> = (0..10).filter(|&i| i != DCT).collect();
    let one_each = |idxs: &[usize]| -> Vec<ManualStage> {
        idxs.iter()
            .map(|&i| ManualStage {
                tiles: vec![vec![i]],
            })
            .collect()
    };
    vec![
        ManualImpl {
            name: "Impl1 (1 tile)".into(),
            stages: vec![ManualStage {
                tiles: vec![all.clone()],
            }],
            relink: false,
        },
        ManualImpl {
            name: "Impl2 (2 tiles)".into(),
            stages: vec![
                ManualStage {
                    tiles: vec![vec![DCT]],
                },
                ManualStage {
                    tiles: vec![rest.clone()],
                },
            ],
            relink: false,
        },
        ManualImpl {
            name: "Impl3 (10 tiles)".into(),
            stages: one_each(&all),
            relink: false,
        },
        ManualImpl {
            name: "Impl4 (13 tiles)".into(),
            stages: {
                let mut s = vec![ManualStage {
                    // shift tile also runs the CP64 fan-out copy
                    tiles: vec![vec![JpegProcess::Shift as usize, CP64]],
                }];
                // four parallel quarter-DCT tiles, each with a CP16 fan-in
                s.push(ManualStage {
                    tiles: (0..4).map(|_| vec![QDCT, CP16]).collect(),
                });
                for i in 2..10 {
                    s.push(ManualStage {
                        tiles: vec![vec![i]],
                    });
                }
                s
            },
            relink: true,
        },
        ManualImpl {
            name: "Impl5 (5 tiles)".into(),
            stages: vec![
                ManualStage {
                    tiles: (0..4).map(|_| vec![QDCT, CP16]).collect(),
                },
                ManualStage {
                    tiles: vec![{
                        let mut v = vec![JpegProcess::Shift as usize];
                        v.extend(2..10);
                        v.push(CP64);
                        v
                    }],
                },
            ],
            relink: true,
        },
    ]
}

/// Evaluates a manual mapping into Table 4 metrics.
pub fn evaluate_manual(imp: &ManualImpl, cost: &CostModel) -> ManualMetrics {
    let cat = catalog();
    let mut interval = 0.0f64;
    let mut busy_sum = 0.0f64;
    let mut tiles = 0usize;
    let mut reconfig = false;
    for stage in &imp.stages {
        let mut stage_time = 0.0f64;
        for tile in &stage.tiles {
            let procs: Vec<&ProcessSpec> = tile.iter().map(|&i| &cat[i]).collect();
            debug_assert!(
                procs
                    .iter()
                    .all(|p| cgra_verify::check_data_budget(&p.name, p.data_words()).is_none()),
                "manual implementation assigns a process that overflows tile data memory"
            );
            let t = procs_time_ns(&procs, cost);
            let insts: usize = procs.iter().map(|p| p.insts).sum();
            reconfig |= insts > INSTR_SLOTS;
            stage_time = stage_time.max(t);
            busy_sum += t;
            tiles += 1;
        }
        interval = interval.max(stage_time);
    }
    ManualMetrics {
        name: imp.name.clone(),
        tiles,
        time_us: interval / 1e3,
        avg_util: busy_sum / (tiles as f64 * interval),
        images_per_sec: 1e9 / (interval * BLOCKS_PER_IMAGE as f64),
        reconfig,
        relink: imp.relink,
    }
}

/// The paper's published Table 4 values, for side-by-side reporting.
pub fn paper_table4() -> Vec<ManualMetrics> {
    let row = |name: &str, tiles, time_us, avg_util, images, reconfig, relink| ManualMetrics {
        name: name.into(),
        tiles,
        time_us,
        avg_util,
        images_per_sec: images,
        reconfig,
        relink,
    };
    vec![
        row("Impl1 (1 tile)", 1, 419.0, 1.0, 2.98, true, false),
        row("Impl2 (2 tiles)", 2, 334.0, 0.62, 3.74, true, false),
        row("Impl3 (10 tiles)", 10, 334.0, 0.12, 3.74, false, false),
        row("Impl4 (13 tiles)", 13, 84.0, 0.37, 14.88, false, true),
        row("Impl5 (5 tiles)", 5, 86.0, 0.98, 14.43, true, true),
    ]
}

/// Which rebalancing algorithm to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Algorithm 1.
    One,
    /// Algorithm 2.
    Two,
    /// Optimal redistribution.
    Opt,
}

/// One point of Figures 16/17.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Tile budget.
    pub tiles: usize,
    /// Images per second.
    pub images_per_sec: f64,
    /// Average utilization.
    pub utilization: f64,
    /// The assignment behind the point.
    pub assignment: Assignment,
}

/// Sweeps a rebalancing algorithm over `1..=max_tiles` tiles on the
/// paper's JPEG network (Figures 16 and 17).
pub fn rebalance_sweep(algo: Algo, max_tiles: usize, cost: &CostModel) -> Vec<SweepPoint> {
    let net = paper_network();
    let asgs = match algo {
        Algo::One => rebalance_one(&net, max_tiles, cost),
        Algo::Two => rebalance_two(&net, max_tiles, cost),
        Algo::Opt => rebalance_opt(&net, max_tiles, cost),
    };
    asgs.into_iter()
        .enumerate()
        .map(|(i, asg)| {
            debug_assert!(
                !cgra_verify::has_errors(&crate::schedule::assignment_diagnostics(&net, &asg)),
                "rebalanced assignment failed the data-budget check"
            );
            let m = evaluate(&net, &asg, cost);
            SweepPoint {
                tiles: i + 1,
                images_per_sec: m.images_per_sec(BLOCKS_PER_IMAGE),
                utilization: m.utilization,
                assignment: asg,
            }
        })
        .collect()
}

/// Renders an assignment in the paper's Table 5 notation
/// (`p1(17)` = 17 tiles instantiated for p1, `p2-4` = one tile for p2..p4).
pub fn binding_notation(asg: &Assignment) -> Vec<String> {
    asg.loads
        .iter()
        .map(|l| {
            let name = if l.first == l.last {
                format!("p{}", l.first)
            } else {
                format!("p{}-{}", l.first, l.last)
            };
            if l.instances > 1 {
                format!("{name}({})", l.instances)
            } else {
                name
            }
        })
        .collect()
}

/// Table 5: reBalanceOne binding of the JPEG encoder to `tiles` tiles.
/// `None` when the sweep has no design point (too few tiles for the
/// eleven pipeline stages).
pub fn bind_tiles(tiles: usize, cost: &CostModel) -> Option<(Vec<String>, SweepPoint)> {
    let pts = rebalance_sweep(Algo::One, tiles, cost);
    let last = pts.into_iter().last()?;
    Some((binding_notation(&last.assignment), last))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Vec<ManualMetrics> {
        let cost = CostModel::default();
        manual_implementations()
            .iter()
            .map(|i| evaluate_manual(i, &cost))
            .collect()
    }

    #[test]
    fn table4_tile_counts() {
        let m = metrics();
        assert_eq!(
            m.iter().map(|r| r.tiles).collect::<Vec<_>>(),
            vec![1, 2, 10, 13, 5]
        );
    }

    #[test]
    fn table4_times_near_paper() {
        let m = metrics();
        let paper = paper_table4();
        for (ours, theirs) in m.iter().zip(&paper) {
            let ratio = ours.time_us / theirs.time_us;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}: ours {:.1}us vs paper {:.1}us",
                ours.name,
                ours.time_us,
                theirs.time_us
            );
        }
    }

    #[test]
    fn table4_qualitative_structure() {
        let m = metrics();
        // Impl2 and Impl3 are DCT-bound: same throughput.
        assert!((m[1].time_us - m[2].time_us).abs() < 1.0);
        // Impl4 and Impl5 split DCT: ~4x faster than Impl2/3.
        assert!(m[3].images_per_sec > 3.0 * m[1].images_per_sec);
        assert!(m[4].images_per_sec > 3.0 * m[1].images_per_sec);
        // Impl1 utilization 1.0 (its only tile is the bottleneck).
        assert!((m[0].avg_util - 1.0).abs() < 1e-9);
        // Impl3 wastes 10 tiles on a DCT-bound pipeline.
        assert!(m[2].avg_util < 0.2);
        // Impl5 reaches the best utilization of the multi-tile mappings.
        assert!(m[4].avg_util > m[1].avg_util);
        assert!(m[4].avg_util > m[2].avg_util);
        assert!(m[4].avg_util > m[3].avg_util);
        // reconfig flags: impl1, impl2, impl5 reload programs.
        assert_eq!(
            m.iter().map(|r| r.reconfig).collect::<Vec<_>>(),
            vec![true, true, false, false, true]
        );
        // relink: only the DCT fan-out mappings.
        assert_eq!(
            m.iter().map(|r| r.relink).collect::<Vec<_>>(),
            vec![false, false, false, true, true]
        );
    }

    #[test]
    fn figure16_throughput_grows_with_tiles() {
        let cost = CostModel::default();
        for algo in [Algo::One, Algo::Two, Algo::Opt] {
            let pts = rebalance_sweep(algo, 25, &cost);
            assert_eq!(pts.len(), 25);
            // Non-decreasing throughput.
            for w in pts.windows(2) {
                assert!(
                    w[1].images_per_sec >= w[0].images_per_sec - 1e-9,
                    "{algo:?}: {} -> {}",
                    w[0].images_per_sec,
                    w[1].images_per_sec
                );
            }
            // 24 tiles reach tens of images per second (paper Fig. 16).
            assert!(pts[23].images_per_sec > 30.0, "{algo:?}");
            assert!(pts[0].images_per_sec < 4.0);
        }
    }

    #[test]
    fn algorithms_agree_mostly() {
        // Paper: "applying proposed reBalancing algorithms gives the same
        // mapping in most cases".
        let cost = CostModel::default();
        let one = rebalance_sweep(Algo::One, 25, &cost);
        let two = rebalance_sweep(Algo::Two, 25, &cost);
        let opt = rebalance_sweep(Algo::Opt, 25, &cost);
        let mut same = 0;
        for i in 0..25 {
            if (one[i].images_per_sec - two[i].images_per_sec).abs() < 1e-6
                && (two[i].images_per_sec - opt[i].images_per_sec).abs() < 1e-6
            {
                same += 1;
            }
            // OPT is never worse.
            assert!(opt[i].images_per_sec >= one[i].images_per_sec - 1e-6);
            assert!(opt[i].images_per_sec >= two[i].images_per_sec - 1e-6);
        }
        assert!(same >= 15, "algorithms agree on only {same}/25 points");
    }

    #[test]
    fn table5_binding_shape() {
        let cost = CostModel::default();
        let (binding, pt) = bind_tiles(24, &cost).expect("24 tiles is a valid sweep");
        assert_eq!(pt.assignment.tiles(), 24);
        // DCT must dominate the replicas, like the paper's p1(17).
        let dct_instances = pt
            .assignment
            .loads
            .iter()
            .find(|l| l.first <= 1 && l.last >= 1)
            .map(|l| l.instances)
            .unwrap();
        assert!(
            dct_instances >= 12,
            "DCT should hold most tiles, got {dct_instances}: {binding:?}"
        );
        // Rendering includes the instance notation.
        assert!(binding.iter().any(|s| s.contains('(')), "{binding:?}");
    }

    #[test]
    fn utilization_curve_shape() {
        // Figure 17: one tile is fully utilized; utilization dips while the
        // DCT bottleneck still dominates mid-sweep, then recovers as the
        // replicas soak up the imbalance.
        let cost = CostModel::default();
        let pts = rebalance_sweep(Algo::Opt, 25, &cost);
        assert!((pts[0].utilization - 1.0).abs() < 1e-9);
        let min = pts
            .iter()
            .map(|p| p.utilization)
            .fold(f64::INFINITY, f64::min);
        assert!(min > 0.3, "utilization collapsed to {min}");
        // Large tile counts recover past the mid-sweep dip: the rebalanced
        // 24/25-tile mappings keep the array mostly busy.
        assert!(
            pts[24].utilization > 0.75,
            "no recovery: {}",
            pts[24].utilization
        );
    }
}
