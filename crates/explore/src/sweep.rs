//! The parallel, cached DSE sweep engine behind `cgra-explore`.
//!
//! A sweep enumerates candidate design points — a schedule *shape*
//! (FFT partition size, JPEG mapping) crossed with a cost-model axis
//! (the paper's link reconfiguration price `L`) — and must report a
//! ranked frontier with measured numbers. Simulating every candidate
//! is the naive path ([`run_sweep_naive`], kept as the reference
//! baseline); the engine ([`run_sweep`]) gets the same answer with a
//! fraction of the work:
//!
//! 1. **Prepare** (sharded): each distinct schedule shape is built,
//!    lint-minimized and WCET-bounded exactly once, with the
//!    `cgra-verify` batch pricing memo ([`cgra_verify::BoundCache`])
//!    threaded through the analysis. Cycle intervals are
//!    cost-independent, so one bound serves the whole cost axis.
//! 2. **Price** (sharded): every candidate is priced by *repricing*
//!    its shape's bound under the candidate's cost model
//!    ([`cgra_verify::ScheduleBound::at_cost`]) — no re-analysis.
//! 3. **Rank** (barrier): candidates sort by static worst-case ns,
//!    ties broken by candidate index, so the ranking is a total order
//!    independent of thread count.
//! 4. **Evaluate** (sharded): only the top-`frontier` candidates are
//!    simulated; the rest are pruned on their static price. Frontier
//!    simulations go through the content-addressed [`SimCache`], so
//!    warm re-sweeps hit instead of re-simulating, and poisoned
//!    entries are detected and repaired.
//!
//! Workers carry [`cgra_telemetry::SweepCounters`]; the merged
//! [`SweepStats`] are conservation-checked
//! ([`SweepOutcome::conservation_violations`]) so a dropped or
//! double-counted candidate is an error, not a silent gap.
//!
//! Determinism: results, ranking and rendered frontier are
//! byte-identical across `--jobs` widths and across cold/warm caches
//! (`tests/dse_determinism.rs` holds the engine to this).

use crate::cache::{cost_fingerprint, schedule_fingerprint, CacheLookup, SimCache, SimResult};
use crate::pool::{effective_jobs, run_sharded};
use crate::rank::{fft_partition_candidates, static_metrics, static_worst_ns, CandidateMetrics};
use crate::schedule::{
    build_example_schedule, example_probe_input, fft_column_schedule, minimize_schedule,
};
use cgra_fabric::{CostModel, Mesh};
use cgra_kernels::fft::partition::FftPlan;
use cgra_sim::{epoch_spec, ArraySim, Epoch, EpochRunner, SimError};
use cgra_telemetry::json::esc;
use cgra_telemetry::{sweep_conservation_violations, SweepStats};
use cgra_verify::{bound_schedule_with, has_errors, BoundCache, EpochSpec, ScheduleBound};

/// The candidate families a sweep can enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 64-point FFT, every feasible partition size (m = 4..64).
    Fft64,
    /// 1024-point FFT, the feasible partition range (m = 16..128 —
    /// smaller partitions put 128+ rows in one column and their
    /// schedules explode past any practical budget; see
    /// [`SweepSpec::named`]).
    Fft1024,
    /// The JPEG encoder: single-block mapping and the streamed
    /// two-block pipeline.
    Jpeg,
}

impl Workload {
    /// Stable sweep name used by `--sweep` and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Fft64 => "fft-64",
            Workload::Fft1024 => "fft-1024",
            Workload::Jpeg => "jpeg",
        }
    }
}

/// One schedule *shape* — the cost-model-independent identity of a
/// candidate. All candidates sharing a scheme share one prepared
/// (built + minimized + bounded) schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Column-partitioned `n`-point FFT with `m` points per tile.
    Fft {
        /// FFT size.
        n: usize,
        /// Partition size (points per tile).
        m: usize,
    },
    /// Single-block JPEG encoder mapping.
    JpegBlock,
    /// Streamed multi-block JPEG pipeline.
    JpegStream,
}

impl Scheme {
    /// Stable label used in reports and JSON.
    pub fn label(&self) -> String {
        match self {
            Scheme::Fft { n, m } => format!("fft{n}-m{m}"),
            Scheme::JpegBlock => "jpeg".to_string(),
            Scheme::JpegStream => "jpeg-stream".to_string(),
        }
    }

    /// Builds the concrete (un-minimized) schedule.
    fn build(&self) -> Option<(Mesh, Vec<Epoch>)> {
        match self {
            Scheme::Fft { n, m } => {
                let plan = FftPlan::new(*n, *m).ok()?;
                Some(fft_column_schedule(&plan, &example_probe_input(*n)))
            }
            Scheme::JpegBlock => build_example_schedule("jpeg"),
            Scheme::JpegStream => build_example_schedule("jpeg-stream"),
        }
    }
}

/// One design point: a scheme priced under one link cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Position in the sweep's enumeration order (the deterministic
    /// tie-breaker).
    pub index: usize,
    /// The schedule shape.
    pub scheme: Scheme,
    /// Link reconfiguration price `L` for this point, ns.
    pub link_ns: f64,
}

impl Candidate {
    /// Stable label: scheme plus the swept link cost.
    pub fn label(&self) -> String {
        format!("{} L={}", self.scheme.label(), self.link_ns)
    }

    /// The candidate's full cost model.
    pub fn cost(&self) -> CostModel {
        CostModel::with_link_cost(self.link_ns)
    }
}

/// What a sweep enumerates: a workload crossed with a link-cost grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The candidate family.
    pub workload: Workload,
    /// Link reconfiguration prices to sweep (the paper's Figures 10-12
    /// axis), ns per re-routed link.
    pub link_costs_ns: Vec<f64>,
}

/// The default link-cost grid: the paper's swept range, endpoints plus
/// two interior points.
pub const DEFAULT_LINK_COSTS: [f64; 4] = [0.0, 100.0, 400.0, 700.0];

impl SweepSpec {
    /// The sweeps the drivers know by name.
    pub const NAMES: [&'static str; 3] = ["fft-64", "fft-1024", "jpeg"];

    /// Looks a sweep up by name with the default link-cost grid.
    ///
    /// The FFT-1024 family deliberately starts at m = 16: m = 4 and
    /// m = 8 are *constructible* but put 256/128 rows in one column —
    /// 131k/33k epochs whose preparation alone dwarfs every other
    /// candidate combined, for design points the m = 16 price already
    /// dominates. The cap is reported, not silent: they are absent
    /// from the enumeration, never pruned quietly.
    pub fn named(name: &str) -> Option<SweepSpec> {
        let workload = match name {
            "fft-64" => Workload::Fft64,
            "fft-1024" => Workload::Fft1024,
            "jpeg" => Workload::Jpeg,
            _ => return None,
        };
        Some(SweepSpec {
            workload,
            link_costs_ns: DEFAULT_LINK_COSTS.to_vec(),
        })
    }

    /// The distinct schedule shapes, in enumeration order.
    pub fn schemes(&self) -> Vec<Scheme> {
        match self.workload {
            Workload::Fft64 => fft_partition_candidates(64)
                .into_iter()
                .map(|m| Scheme::Fft { n: 64, m })
                .collect(),
            Workload::Fft1024 => fft_partition_candidates(1024)
                .into_iter()
                .filter(|&m| m >= 16)
                .map(|m| Scheme::Fft { n: 1024, m })
                .collect(),
            Workload::Jpeg => vec![Scheme::JpegBlock, Scheme::JpegStream],
        }
    }

    /// The full candidate enumeration: schemes crossed with the
    /// link-cost grid, scheme-major, in deterministic order.
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        for scheme in self.schemes() {
            for &link_ns in &self.link_costs_ns {
                out.push(Candidate {
                    index: out.len(),
                    scheme,
                    link_ns,
                });
            }
        }
        out
    }
}

/// Engine knobs, mirroring the `cgra-explore` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (`0` = one per available core) — `--jobs`.
    pub jobs: usize,
    /// How many top-ranked candidates to simulate — `--frontier`.
    pub frontier: usize,
    /// When false, simulate every candidate instead of pruning on the
    /// static price — `--no-prune` (the determinism tests use this to
    /// check the pruned frontier against the exhaustive one).
    pub prune: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            jobs: 0,
            frontier: 6,
            prune: true,
        }
    }
}

/// Why a sweep could not complete.
#[derive(Debug)]
pub enum SweepError {
    /// A scheme failed to build a schedule.
    Build(String),
    /// A scheme's schedule failed static verification — the sweep
    /// refuses to price or simulate invalid candidates.
    Invalid {
        /// The scheme's label.
        scheme: String,
        /// Rendered error diagnostics.
        diags: Vec<String>,
    },
    /// A frontier simulation failed.
    Sim {
        /// The candidate's label.
        candidate: String,
        /// The simulator's error.
        err: SimError,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Build(s) => write!(f, "cannot build schedule for {s}"),
            SweepError::Invalid { scheme, diags } => {
                write!(
                    f,
                    "{scheme}: schedule fails verification: {}",
                    diags.join("; ")
                )
            }
            SweepError::Sim { candidate, err } => {
                write!(f, "{candidate}: simulation failed: {err}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// How a ranked candidate was resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowOutcome {
    /// Discarded on its static WCET price; never simulated.
    Pruned,
    /// Served from the memoized simulation cache.
    FromCache(SimResult),
    /// Simulated this run (and inserted into the cache).
    Simulated(SimResult),
}

/// One ranked design point in a sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Rank in the static ordering (0 = fastest static bound).
    pub rank: usize,
    /// The design point.
    pub candidate: Candidate,
    /// Content address of the prepared schedule behind it.
    pub schedule_hash: u64,
    /// Static Eq. 1 best-case, ns.
    pub static_best_ns: f64,
    /// Static Eq. 1 worst-case, ns (`+inf` when unbounded).
    pub static_worst_ns: f64,
    /// Static metrics (utilization 0 — that needs cycles).
    pub static_metrics: CandidateMetrics,
    /// Pruned / cached / simulated.
    pub outcome: RowOutcome,
}

impl SweepRow {
    /// The measured result, when the row was evaluated.
    pub fn simulated(&self) -> Option<&SimResult> {
        match &self.outcome {
            RowOutcome::Pruned => None,
            RowOutcome::FromCache(r) | RowOutcome::Simulated(r) => Some(r),
        }
    }
}

/// A completed sweep: ranked rows plus merged, per-worker telemetry.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Sweep name (the workload's).
    pub sweep: String,
    /// Effective worker count the pool ran with.
    pub jobs: usize,
    /// Frontier size the engine was asked for.
    pub frontier_k: usize,
    /// Whether static pruning was enabled.
    pub prune: bool,
    /// Every candidate, in rank order.
    pub rows: Vec<SweepRow>,
    /// Merged per-worker counters.
    pub stats: SweepStats,
}

impl SweepOutcome {
    /// The simulated frontier rows, best static rank first.
    pub fn frontier_rows(&self) -> impl Iterator<Item = &SweepRow> {
        self.rows
            .iter()
            .take(self.frontier_k)
            .filter(|r| r.simulated().is_some())
    }

    /// Conservation check over the merged counters (empty = sound).
    pub fn conservation_violations(&self) -> Vec<String> {
        sweep_conservation_violations(&self.stats)
    }

    /// Renders the ranked frontier — the part of the report that is
    /// guaranteed **byte-identical** across `--jobs` widths and
    /// cold/warm caches (it deliberately excludes worker counts and
    /// hit rates, which legitimately differ).
    pub fn render_frontier(&self) -> String {
        let mut out = format!(
            "frontier of {} (top {} of {} candidates, ranked by static Eq. 1 worst case):\n\
             {:>4}  {:<22} {:>14} {:>14} {:>7} {:>8} {:>9}  {}\n",
            self.sweep,
            self.frontier_rows().count(),
            self.rows.len(),
            "rank",
            "candidate",
            "static/ns",
            "simulated/ns",
            "util%",
            "reconf%",
            "words",
            "schedule"
        );
        for r in self.frontier_rows() {
            let Some(sim) = r.simulated() else { continue };
            out.push_str(&format!(
                "{:>4}  {:<22} {:>14.3} {:>14.3} {:>7.1} {:>8.1} {:>9}  {:016x}\n",
                r.rank + 1,
                r.candidate.label(),
                r.static_worst_ns,
                sim.simulated_ns,
                sim.metrics.utilization * 100.0,
                sim.metrics.reconfig_overhead * 100.0,
                sim.metrics.words_moved,
                r.schedule_hash,
            ));
        }
        out
    }

    /// Renders the full human-readable report: frontier, the complete
    /// static ranking, and the pool/cache statistics.
    pub fn render_text(&self) -> String {
        let mut out = self.render_frontier();
        out.push_str(&format!(
            "\nstatic ranking ({} candidates, {} pruned):\n",
            self.rows.len(),
            self.stats.total.pruned
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>4}  {:<22} {:>14.3}  {}\n",
                r.rank + 1,
                r.candidate.label(),
                r.static_worst_ns,
                match &r.outcome {
                    RowOutcome::Pruned => "pruned",
                    RowOutcome::FromCache(_) => "cache",
                    RowOutcome::Simulated(_) => "simulated",
                }
            ));
        }
        let t = &self.stats.total;
        out.push_str(&format!(
            "\njobs {}  prepared {}  priced {}  pruned {}  cache hits {}  misses {}  \
             simulated {}  poisoned {}  hit rate {:.1}%\n",
            self.jobs,
            t.prepared,
            t.priced,
            t.pruned,
            t.cache_hits,
            t.cache_misses,
            t.simulated,
            t.poisoned,
            self.stats.hit_rate() * 100.0
        ));
        out
    }

    /// Renders the machine-readable report (validated by
    /// `cgra_telemetry::json::parse` in tests and CI).
    pub fn render_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            let worst = if r.static_worst_ns.is_finite() {
                format!("{:?}", r.static_worst_ns)
            } else {
                "null".to_string()
            };
            rows.push_str(&format!(
                "    {{\"rank\": {}, \"candidate\": \"{}\", \"scheme\": \"{}\", \
                 \"link_ns\": {:?}, \"schedule_hash\": \"{:016x}\", \
                 \"static_best_ns\": {:?}, \"static_worst_ns\": {worst}, \
                 \"static_reconfig_ns\": {:?}, \"outcome\": \"{}\"{}}}",
                r.rank + 1,
                esc(&r.candidate.label()),
                esc(&r.candidate.scheme.label()),
                r.candidate.link_ns,
                r.schedule_hash,
                r.static_best_ns,
                r.static_metrics.reconfig_ns,
                match &r.outcome {
                    RowOutcome::Pruned => "pruned",
                    RowOutcome::FromCache(_) => "cache",
                    RowOutcome::Simulated(_) => "simulated",
                },
                match r.simulated() {
                    None => String::new(),
                    Some(s) => format!(
                        ", \"simulated_ns\": {:?}, \"utilization\": {:?}, \
                         \"reconfig_overhead\": {:?}, \"words_moved\": {}",
                        s.simulated_ns,
                        s.metrics.utilization,
                        s.metrics.reconfig_overhead,
                        s.metrics.words_moved
                    ),
                }
            ));
        }
        let mut workers = String::new();
        for (i, w) in self.stats.workers.iter().enumerate() {
            if i > 0 {
                workers.push_str(", ");
            }
            workers.push_str(&format!(
                "{{\"prepared\": {}, \"priced\": {}, \"candidates\": {}, \"pruned\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"simulated\": {}, \"poisoned\": {}}}",
                w.prepared,
                w.priced,
                w.candidates,
                w.pruned,
                w.cache_hits,
                w.cache_misses,
                w.simulated,
                w.poisoned
            ));
        }
        let t = &self.stats.total;
        format!(
            "{{\n  \"sweep\": \"{}\",\n  \"jobs\": {},\n  \"frontier_k\": {},\n  \
             \"prune\": {},\n  \"candidates\": {},\n  \"rows\": [\n{rows}\n  ],\n  \
             \"stats\": {{\"prepared\": {}, \"priced\": {}, \"evaluated\": {}, \"pruned\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"simulated\": {}, \"poisoned\": {}, \
             \"hit_rate\": {:?}, \"workers\": [{workers}]}}\n}}\n",
            esc(&self.sweep),
            self.jobs,
            self.frontier_k,
            self.prune,
            self.rows.len(),
            t.prepared,
            t.priced,
            t.candidates,
            t.pruned,
            t.cache_hits,
            t.cache_misses,
            t.simulated,
            t.poisoned,
            self.stats.hit_rate(),
        )
    }
}

/// The cost model schedules are prepared (minimized + bounded) under.
/// Lint removals and cycle bounds are cost-independent; pricing is
/// swept afterwards via [`ScheduleBound::at_cost`], so any fixed model
/// works — the zero-link-cost paper default keeps it canonical.
fn prep_cost() -> CostModel {
    CostModel::with_link_cost(0.0)
}

/// One prepared schedule shape, shared by every candidate on its cost
/// axis.
#[derive(Debug)]
struct Prepared {
    scheme: Scheme,
    mesh: Mesh,
    epochs: Vec<Epoch>,
    schedule_hash: u64,
    bound: ScheduleBound,
}

fn prepare(scheme: Scheme) -> Result<Prepared, SweepError> {
    let (mesh, mut epochs) = scheme
        .build()
        .ok_or_else(|| SweepError::Build(scheme.label()))?;
    let cost = prep_cost();
    minimize_schedule(mesh, &mut epochs, &cost);
    let specs: Vec<EpochSpec> = epochs.iter().map(epoch_spec).collect();
    let mut memo = BoundCache::new();
    let bound = bound_schedule_with(mesh, &cost, &specs, &mut memo);
    if has_errors(&bound.diags) {
        return Err(SweepError::Invalid {
            scheme: scheme.label(),
            diags: cgra_verify::errors(&bound.diags)
                .map(|d| d.to_string())
                .collect(),
        });
    }
    Ok(Prepared {
        scheme,
        mesh,
        schedule_hash: schedule_fingerprint(mesh, &epochs),
        epochs,
        bound,
    })
}

fn simulate(p: &Prepared, cost: &CostModel, label: &str) -> Result<SimResult, SweepError> {
    let mut runner = EpochRunner::new(ArraySim::new(p.mesh), *cost);
    let report = runner
        .run_schedule(&p.epochs)
        .map_err(|err| SweepError::Sim {
            candidate: label.to_string(),
            err,
        })?;
    Ok(SimResult {
        simulated_ns: report.total_ns(),
        metrics: CandidateMetrics::from_counters(&runner.counters(), cost),
    })
}

/// Runs a sweep through the engine: sharded prepare/price/evaluate,
/// static pruning, memoized simulation. See the module docs for the
/// pipeline and its guarantees.
pub fn run_sweep(
    spec: &SweepSpec,
    cfg: &EngineConfig,
    cache: &SimCache,
) -> Result<SweepOutcome, SweepError> {
    let candidates = spec.candidates();
    let schemes = spec.schemes();
    let mut stats = SweepStats::default();

    // Phase A: prepare each distinct schedule shape once.
    let prep = run_sharded(cfg.jobs, schemes, |ctx, scheme| {
        let p = prepare(scheme)?;
        ctx.counters.prepared += 1;
        Ok::<Prepared, SweepError>(p)
    });
    stats.absorb_phase(&prep.workers);
    let prepared = prep.results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let scheme_of = |c: &Candidate| -> usize {
        prepared
            .iter()
            .position(|p| p.scheme == c.scheme)
            .expect("every candidate's scheme was prepared")
    };

    // Phase B: price every candidate by repricing its shape's bound.
    let priced = run_sharded(cfg.jobs, candidates.clone(), |ctx, cand| {
        let p = &prepared[scheme_of(&cand)];
        let bound = p.bound.at_cost(&cand.cost());
        ctx.counters.priced += 1;
        (
            static_worst_ns(&bound),
            bound.total_ns().best,
            static_metrics(&bound),
        )
    });
    stats.absorb_phase(&priced.workers);
    let priced = priced.results;

    // Rank (barrier): total order — static worst case, then index.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        priced[a]
            .0
            .partial_cmp(&priced[b].0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let frontier_k = cfg.frontier.min(candidates.len());
    let mut in_frontier = vec![!cfg.prune; candidates.len()];
    for &i in order.iter().take(frontier_k) {
        in_frontier[i] = true;
    }

    // Phase C: evaluate in rank order — prune, hit the cache, or
    // simulate.
    let work: Vec<(usize, usize)> = order.iter().enumerate().map(|(r, &i)| (r, i)).collect();
    let eval = run_sharded(cfg.jobs, work, |ctx, (rank, i)| {
        let cand = candidates[i];
        let p = &prepared[scheme_of(&cand)];
        ctx.counters.candidates += 1;
        let (best, worst, statics) = (priced[i].1, priced[i].0, priced[i].2);
        let outcome = if !in_frontier[i] {
            ctx.counters.pruned += 1;
            RowOutcome::Pruned
        } else {
            let cost = cand.cost();
            let ch = cost_fingerprint(&cost);
            match cache.lookup(p.schedule_hash, ch) {
                CacheLookup::Hit(r) => {
                    ctx.counters.cache_hits += 1;
                    RowOutcome::FromCache(r)
                }
                probe => {
                    if probe == CacheLookup::Poisoned {
                        ctx.counters.poisoned += 1;
                    }
                    ctx.counters.cache_misses += 1;
                    let r = simulate(p, &cost, &cand.label())?;
                    ctx.counters.simulated += 1;
                    // Best-effort persistence; a failed write only
                    // means the next sweep re-simulates.
                    let _ = cache.insert(p.schedule_hash, ch, &r);
                    RowOutcome::Simulated(r)
                }
            }
        };
        Ok::<SweepRow, SweepError>(SweepRow {
            rank,
            candidate: cand,
            schedule_hash: p.schedule_hash,
            static_best_ns: best,
            static_worst_ns: worst,
            static_metrics: statics,
            outcome,
        })
    });
    stats.absorb_phase(&eval.workers);
    let rows = eval.results.into_iter().collect::<Result<Vec<_>, _>>()?;

    Ok(SweepOutcome {
        sweep: spec.workload.name().to_string(),
        jobs: effective_jobs(cfg.jobs),
        frontier_k,
        prune: cfg.prune,
        rows,
        stats,
    })
}

/// The pre-engine reference path: one thread, no sharing, no pruning,
/// no cache — every candidate is built, minimized, bounded and
/// simulated independently, exactly what the sweeps did before the
/// engine existed. Kept for the scaling bench (the honest serial
/// baseline) and for cross-checking: its top-`frontier_k` rows render
/// byte-identically to the engine's frontier.
pub fn run_sweep_naive(spec: &SweepSpec, frontier_k: usize) -> Result<SweepOutcome, SweepError> {
    let candidates = spec.candidates();
    let mut stats = SweepStats::merge(vec![Default::default()]);
    let mut evaluated = Vec::with_capacity(candidates.len());
    for cand in &candidates {
        let p = prepare(cand.scheme)?;
        let cost = cand.cost();
        let bound = p.bound.at_cost(&cost);
        let r = simulate(&p, &cost, &cand.label())?;
        let w = &mut stats.workers[0];
        w.prepared += 1;
        w.priced += 1;
        w.candidates += 1;
        w.cache_misses += 1;
        w.simulated += 1;
        evaluated.push((
            static_worst_ns(&bound),
            bound.total_ns().best,
            static_metrics(&bound),
            p.schedule_hash,
            r,
        ));
    }
    stats = SweepStats::merge(stats.workers);
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        evaluated[a]
            .0
            .partial_cmp(&evaluated[b].0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let rows = order
        .iter()
        .enumerate()
        .map(|(rank, &i)| {
            let (worst, best, statics, hash, r) = evaluated[i];
            SweepRow {
                rank,
                candidate: candidates[i],
                schedule_hash: hash,
                static_best_ns: best,
                static_worst_ns: worst,
                static_metrics: statics,
                outcome: RowOutcome::Simulated(r),
            }
        })
        .collect();
    Ok(SweepOutcome {
        sweep: spec.workload.name().to_string(),
        jobs: 1,
        frontier_k: frontier_k.min(candidates.len()),
        prune: false,
        rows,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            workload: Workload::Fft64,
            link_costs_ns: vec![0.0, 400.0],
        }
    }

    #[test]
    fn enumeration_is_deterministic_and_scheme_major() {
        let spec = small_spec();
        let cands = spec.candidates();
        assert_eq!(cands.len(), 5 * 2);
        assert_eq!(cands[0].scheme, Scheme::Fft { n: 64, m: 4 });
        assert_eq!(cands[0].link_ns, 0.0);
        assert_eq!(cands[1].link_ns, 400.0);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        assert_eq!(spec.candidates(), cands);
    }

    #[test]
    fn fft1024_family_caps_small_partitions() {
        let spec = SweepSpec::named("fft-1024").unwrap();
        let ms: Vec<usize> = spec
            .schemes()
            .iter()
            .map(|s| match s {
                Scheme::Fft { m, .. } => *m,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ms, vec![16, 32, 64, 128]);
        assert!(SweepSpec::named("nope").is_none());
    }

    #[test]
    fn engine_agrees_with_naive_reference() {
        let spec = SweepSpec {
            workload: Workload::Jpeg,
            link_costs_ns: vec![0.0, 250.0],
        };
        let k = 2;
        let cache = SimCache::in_memory();
        let engine = run_sweep(
            &spec,
            &EngineConfig {
                jobs: 2,
                frontier: k,
                prune: true,
            },
            &cache,
        )
        .expect("engine sweep runs");
        let naive = run_sweep_naive(&spec, k).expect("naive sweep runs");
        assert_eq!(engine.render_frontier(), naive.render_frontier());
        assert!(engine.conservation_violations().is_empty());
        assert!(naive.conservation_violations().is_empty());
        // Pruning did real work: 4 candidates, k simulated.
        assert_eq!(engine.stats.total.pruned, 2);
        assert_eq!(engine.stats.total.simulated, 2);
        assert_eq!(naive.stats.total.simulated, 4);
        // JSON is well-formed and carries the rows.
        let doc = engine.render_json();
        let v = cgra_telemetry::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("rows").and_then(|r| r.as_arr()).map(|r| r.len()),
            Some(4)
        );
    }

    #[test]
    fn warm_cache_serves_the_frontier() {
        let spec = SweepSpec {
            workload: Workload::Jpeg,
            link_costs_ns: vec![0.0],
        };
        let cfg = EngineConfig {
            jobs: 1,
            frontier: 2,
            prune: true,
        };
        let cache = SimCache::in_memory();
        let cold = run_sweep(&spec, &cfg, &cache).expect("cold sweep");
        let warm = run_sweep(&spec, &cfg, &cache).expect("warm sweep");
        assert_eq!(cold.stats.total.cache_hits, 0);
        assert_eq!(warm.stats.total.cache_hits, 2);
        assert_eq!(warm.stats.total.simulated, 0);
        assert!(warm.stats.hit_rate() > 0.99);
        assert_eq!(cold.render_frontier(), warm.render_frontier());
    }
}
