//! Static candidate ranking for the DSE sweeps.
//!
//! Simulating every design point is the expensive part of a sweep: an
//! FFT schedule runs thousands of cycles per epoch across every tile.
//! The WCET engine makes most of that unnecessary — every kernel
//! program is branch-deterministic, so [`cgra_sim::bound_epochs`]
//! prices a candidate schedule *exactly* (Eq. 1: `Σ T_i + Σ τ_ij`)
//! without executing a cycle. The sweep then ranks all candidates by
//! their static worst-case bound and simulates only the frontier it
//! actually wants to report, trusting (and, in tests, checking) that
//! the static order matches the simulated order.

use crate::schedule::{fft_column_schedule, minimize_schedule};
use cgra_fabric::CostModel;
use cgra_kernels::fft::fixed::Cfx;
use cgra_kernels::fft::partition::FftPlan;
use cgra_sim::{bound_epochs, ArraySim, EpochRunner, SimError};
use cgra_verify::ScheduleBound;

/// A deterministic input signal; the values are irrelevant to timing
/// (the ISA has no data-dependent latencies) but make the schedule
/// concrete.
fn probe_input(n: usize) -> Vec<Cfx> {
    (0..n)
        .map(|i| Cfx::from_f64((i as f64 * 0.13).sin() * 0.5, (i as f64 * 0.71).cos() * 0.5))
        .collect()
}

/// Partition sizes worth considering for an `n`-point FFT: powers of
/// two from 4 (smaller partitions leave the butterfly layout no room)
/// up to the 128-point cap a 512-word tile memory imposes.
pub fn fft_partition_candidates(n: usize) -> Vec<usize> {
    (2..=7).map(|s| 1usize << s).filter(|&m| m <= n).collect()
}

/// One statically-priced design point.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// Partition size (points per tile).
    pub m: usize,
    /// Static Eq. 1 bound of the candidate's concrete schedule.
    pub bound: ScheduleBound,
}

impl RankedCandidate {
    /// The ranking key: static worst-case runtime in ns (`+inf` when
    /// the bound is open, pushing the candidate behind every bounded
    /// one).
    pub fn worst_ns(&self) -> f64 {
        self.bound.total_ns().worst.unwrap_or(f64::INFINITY)
    }
}

/// Prices every partition-size candidate for an `n`-point FFT with the
/// WCET engine and returns them ranked, fastest static bound first.
/// Nothing is simulated. Every candidate schedule is first minimized by
/// the `cgra-lint` reconfiguration-diff pass
/// ([`crate::schedule::minimize_schedule`]), so the static prices — and
/// therefore the ranking — reflect the patches the runtime system would
/// actually stream, not the generator's redundant ones.
pub fn rank_fft_candidates(n: usize, cost: &CostModel) -> Vec<RankedCandidate> {
    let input = probe_input(n);
    let mut ranked: Vec<RankedCandidate> = fft_partition_candidates(n)
        .into_iter()
        .filter_map(|m| {
            let plan = FftPlan::new(n, m).ok()?;
            let (mesh, mut epochs) = fft_column_schedule(&plan, &input);
            minimize_schedule(mesh, &mut epochs, cost);
            Some(RankedCandidate {
                m,
                bound: bound_epochs(mesh, cost, &epochs),
            })
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.worst_ns()
            .partial_cmp(&b.worst_ns())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

/// One simulated frontier point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Partition size.
    pub m: usize,
    /// Eq. 1 runtime the simulator reported, ns.
    pub simulated_ns: f64,
}

/// Simulates the top `k` statically-ranked candidates (in rank order)
/// and returns their measured Eq. 1 runtimes. This is the only part of
/// the sweep that executes cycles.
pub fn simulate_frontier(
    n: usize,
    ranked: &[RankedCandidate],
    cost: &CostModel,
    k: usize,
) -> Result<Vec<FrontierPoint>, SimError> {
    let input = probe_input(n);
    let mut out = Vec::new();
    for cand in ranked.iter().take(k) {
        // Ranked candidates came from valid plans; a stale entry for a
        // different `n` simply yields no point.
        let Ok(plan) = FftPlan::new(n, cand.m) else {
            continue;
        };
        // Simulate the same minimized schedule the ranking priced.
        let (mesh, mut epochs) = fft_column_schedule(&plan, &input);
        minimize_schedule(mesh, &mut epochs, cost);
        let mut runner = EpochRunner::new(ArraySim::new(mesh), *cost);
        let report = runner.run_schedule(&epochs)?;
        out.push(FrontierPoint {
            m: cand.m,
            simulated_ns: report.total_ns(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_verify::has_errors;

    #[test]
    fn candidates_are_valid_powers_of_two() {
        assert_eq!(fft_partition_candidates(64), vec![4, 8, 16, 32, 64]);
        assert_eq!(fft_partition_candidates(8), vec![4, 8]);
        assert_eq!(fft_partition_candidates(1024), vec![4, 8, 16, 32, 64, 128]);
    }

    #[test]
    fn fft64_static_rank_matches_simulated_order() {
        let cost = CostModel::with_link_cost(25.0);
        let ranked = rank_fft_candidates(64, &cost);
        assert_eq!(ranked.len(), 5);
        for c in &ranked {
            assert!(
                !has_errors(&c.bound.diags),
                "m={}: {:?}",
                c.m,
                c.bound.diags
            );
            assert!(c.bound.is_bounded(), "m={} should bound statically", c.m);
        }
        // Simulate the whole frontier and compare orderings.
        let sim = simulate_frontier(64, &ranked, &cost, ranked.len()).expect("schedules run");
        let mut by_sim = sim.clone();
        by_sim.sort_by(|a, b| a.simulated_ns.partial_cmp(&b.simulated_ns).unwrap());
        let static_order: Vec<usize> = sim.iter().map(|p| p.m).collect();
        let sim_order: Vec<usize> = by_sim.iter().map(|p| p.m).collect();
        assert_eq!(
            static_order, sim_order,
            "static Eq. 1 ranking must agree with the simulator"
        );
        // Every kernel is branch-deterministic, so the static interval
        // must contain the simulated runtime tightly.
        for (c, p) in ranked.iter().zip(&sim) {
            let b = c.bound.total_ns();
            assert!(
                b.contains(p.simulated_ns, 1e-9),
                "m={}: simulated {} outside static {:?}",
                c.m,
                p.simulated_ns,
                b
            );
        }
    }
}
