//! Static candidate ranking for the DSE sweeps.
//!
//! Simulating every design point is the expensive part of a sweep: an
//! FFT schedule runs thousands of cycles per epoch across every tile.
//! The WCET engine makes most of that unnecessary — every kernel
//! program is branch-deterministic, so [`cgra_sim::bound_epochs`]
//! prices a candidate schedule *exactly* (Eq. 1: `Σ T_i + Σ τ_ij`)
//! without executing a cycle. The sweep then ranks all candidates by
//! their static worst-case bound and simulates only the frontier it
//! actually wants to report, trusting (and, in tests, checking) that
//! the static order matches the simulated order.

use crate::schedule::{
    example_probe_input, fft_column_schedule, hoist_schedule, minimize_schedule,
};
use cgra_fabric::CostModel;
use cgra_kernels::fft::partition::FftPlan;
use cgra_lint::hoisted_bound;
use cgra_sim::{bound_epochs, ArraySim, EpochRunner, SimError};
use cgra_telemetry::Counters;
use cgra_verify::ScheduleBound;

/// Summary metrics for one design point — the telemetry-counter view
/// every DSE candidate carries, so sweep reports can show utilization
/// and reconfiguration overhead next to raw runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateMetrics {
    /// Wall-clock runtime (epoch spans priced at the tile clock), ns.
    pub runtime_ns: f64,
    /// Total reconfiguration time, ns.
    pub reconfig_ns: f64,
    /// Reconfiguration share of the wall clock (0..).
    pub reconfig_overhead: f64,
    /// Mean tile utilization: busy tile-cycles over available (0..=1).
    pub utilization: f64,
    /// Remote words moved over the links.
    pub words_moved: u64,
}

impl CandidateMetrics {
    /// Derives the metrics from a folded [`Counters`] registry.
    pub fn from_counters(c: &Counters, cost: &CostModel) -> CandidateMetrics {
        CandidateMetrics {
            runtime_ns: cost.exec_ns(c.epoch_cycles),
            reconfig_ns: c.reconfig_ns,
            reconfig_overhead: c.reconfig_overhead(cost),
            utilization: c.utilization(),
            words_moved: c.total_words_sent(),
        }
    }
}

/// Partition sizes worth considering for an `n`-point FFT: powers of
/// two from 4 (smaller partitions leave the butterfly layout no room)
/// up to the 128-point cap a 512-word tile memory imposes.
pub fn fft_partition_candidates(n: usize) -> Vec<usize> {
    (2..=7).map(|s| 1usize << s).filter(|&m| m <= n).collect()
}

/// One statically-priced design point.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// Partition size (points per tile).
    pub m: usize,
    /// Static Eq. 1 bound of the candidate's concrete schedule.
    pub bound: ScheduleBound,
}

/// The ranking key of a static bound: worst-case runtime in ns
/// (`+inf` when the bound is open, pushing the candidate behind every
/// bounded one).
pub fn static_worst_ns(bound: &ScheduleBound) -> f64 {
    bound.total_ns().worst.unwrap_or(f64::INFINITY)
}

/// Static (un-simulated) metrics from a WCET bound: worst-case
/// runtime, reconfiguration totals, and worst-case words moved.
/// Utilization requires cycle-level observation, so it is 0 here —
/// simulation fills the measured version in.
pub fn static_metrics(bound: &ScheduleBound) -> CandidateMetrics {
    let reconfig_ns: f64 = bound.epochs.iter().map(|e| e.reconfig_ns).sum();
    let runtime_ns = static_worst_ns(bound);
    let words_moved: u64 = bound
        .epochs
        .iter()
        .map(|e| e.copied_words.worst.unwrap_or(e.copied_words.best))
        .sum();
    CandidateMetrics {
        runtime_ns,
        reconfig_ns,
        reconfig_overhead: if runtime_ns > 0.0 && runtime_ns.is_finite() {
            reconfig_ns / runtime_ns
        } else {
            0.0
        },
        utilization: 0.0,
        words_moved,
    }
}

impl RankedCandidate {
    /// The ranking key: [`static_worst_ns`] of this candidate's bound.
    pub fn worst_ns(&self) -> f64 {
        static_worst_ns(&self.bound)
    }

    /// [`static_metrics`] of this candidate's bound.
    pub fn static_metrics(&self) -> CandidateMetrics {
        static_metrics(&self.bound)
    }
}

/// Prices every partition-size candidate for an `n`-point FFT with the
/// WCET engine and returns them ranked, fastest static bound first.
/// Nothing is simulated. Every candidate schedule is first minimized by
/// the `cgra-lint` reconfiguration-diff pass
/// ([`crate::schedule::minimize_schedule`]), so the static prices — and
/// therefore the ranking — reflect the patches the runtime system would
/// actually stream, not the generator's redundant ones.
pub fn rank_fft_candidates(n: usize, cost: &CostModel) -> Vec<RankedCandidate> {
    let input = example_probe_input(n);
    let mut ranked: Vec<RankedCandidate> = fft_partition_candidates(n)
        .into_iter()
        .filter_map(|m| {
            let plan = FftPlan::new(n, m).ok()?;
            let (mesh, mut epochs) = fft_column_schedule(&plan, &input);
            minimize_schedule(mesh, &mut epochs, cost);
            Some(RankedCandidate {
                m,
                bound: bound_epochs(mesh, cost, &epochs),
            })
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.worst_ns()
            .partial_cmp(&b.worst_ns())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

/// [`rank_fft_candidates`] with the proof-gated hoisting pass applied
/// after minimization: every candidate's payloads are hoisted into its
/// own idle windows ([`crate::schedule::hoist_schedule`]) and the static
/// price is the [`cgra_lint::hoisted_bound`] — the Eq. 1 reconfiguration
/// term the runtime system would actually pay with a double-buffered
/// configuration plane. Still nothing is simulated.
pub fn rank_fft_candidates_hoisted(n: usize, cost: &CostModel) -> Vec<RankedCandidate> {
    let input = example_probe_input(n);
    let mut ranked: Vec<RankedCandidate> = fft_partition_candidates(n)
        .into_iter()
        .filter_map(|m| {
            let plan = FftPlan::new(n, m).ok()?;
            let (mesh, mut epochs) = fft_column_schedule(&plan, &input);
            minimize_schedule(mesh, &mut epochs, cost);
            let hoists = hoist_schedule(mesh, &epochs, cost);
            let bound = hoisted_bound(&bound_epochs(mesh, cost, &epochs), &hoists, cost);
            Some(RankedCandidate { m, bound })
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.worst_ns()
            .partial_cmp(&b.worst_ns())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

/// One simulated frontier point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Partition size.
    pub m: usize,
    /// Eq. 1 runtime the simulator reported, ns.
    pub simulated_ns: f64,
    /// Measured telemetry metrics for the run (utilization,
    /// reconfiguration overhead, traffic).
    pub metrics: CandidateMetrics,
}

/// Simulates the top `k` statically-ranked candidates (in rank order)
/// and returns their measured Eq. 1 runtimes. This is the only part of
/// the sweep that executes cycles.
pub fn simulate_frontier(
    n: usize,
    ranked: &[RankedCandidate],
    cost: &CostModel,
    k: usize,
) -> Result<Vec<FrontierPoint>, SimError> {
    let input = example_probe_input(n);
    let mut out = Vec::new();
    for cand in ranked.iter().take(k) {
        // Ranked candidates came from valid plans; a stale entry for a
        // different `n` simply yields no point.
        let Ok(plan) = FftPlan::new(n, cand.m) else {
            continue;
        };
        // Simulate the same minimized schedule the ranking priced.
        let (mesh, mut epochs) = fft_column_schedule(&plan, &input);
        minimize_schedule(mesh, &mut epochs, cost);
        let mut runner = EpochRunner::new(ArraySim::new(mesh), *cost);
        let report = runner.run_schedule(&epochs)?;
        out.push(FrontierPoint {
            m: cand.m,
            simulated_ns: report.total_ns(),
            metrics: CandidateMetrics::from_counters(&runner.counters(), cost),
        });
    }
    Ok(out)
}

/// [`simulate_frontier`] for hoisted candidates: each frontier schedule
/// is minimized, hoisted exactly as [`rank_fft_candidates_hoisted`]
/// priced it, and executed through
/// `cgra_sim::EpochRunner::run_hoisted_schedule` — the strict gate
/// re-verifies every certificate before anything is applied.
pub fn simulate_frontier_hoisted(
    n: usize,
    ranked: &[RankedCandidate],
    cost: &CostModel,
    k: usize,
) -> Result<Vec<FrontierPoint>, SimError> {
    let input = example_probe_input(n);
    let mut out = Vec::new();
    for cand in ranked.iter().take(k) {
        let Ok(plan) = FftPlan::new(n, cand.m) else {
            continue;
        };
        let (mesh, mut epochs) = fft_column_schedule(&plan, &input);
        minimize_schedule(mesh, &mut epochs, cost);
        let hoists = hoist_schedule(mesh, &epochs, cost);
        let mut runner = EpochRunner::new(ArraySim::new(mesh), *cost);
        let report = runner.run_hoisted_schedule(&epochs, &hoists)?;
        out.push(FrontierPoint {
            m: cand.m,
            simulated_ns: report.total_ns(),
            metrics: CandidateMetrics::from_counters(&runner.counters(), cost),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_verify::has_errors;

    #[test]
    fn candidates_are_valid_powers_of_two() {
        assert_eq!(fft_partition_candidates(64), vec![4, 8, 16, 32, 64]);
        assert_eq!(fft_partition_candidates(8), vec![4, 8]);
        assert_eq!(fft_partition_candidates(1024), vec![4, 8, 16, 32, 64, 128]);
    }

    #[test]
    fn fft64_static_rank_matches_simulated_order() {
        let cost = CostModel::with_link_cost(25.0);
        let ranked = rank_fft_candidates(64, &cost);
        assert_eq!(ranked.len(), 5);
        for c in &ranked {
            assert!(
                !has_errors(&c.bound.diags),
                "m={}: {:?}",
                c.m,
                c.bound.diags
            );
            assert!(c.bound.is_bounded(), "m={} should bound statically", c.m);
        }
        // Simulate the whole frontier and compare orderings.
        let sim = simulate_frontier(64, &ranked, &cost, ranked.len()).expect("schedules run");
        let mut by_sim = sim.clone();
        by_sim.sort_by(|a, b| a.simulated_ns.partial_cmp(&b.simulated_ns).unwrap());
        let static_order: Vec<usize> = sim.iter().map(|p| p.m).collect();
        let sim_order: Vec<usize> = by_sim.iter().map(|p| p.m).collect();
        assert_eq!(
            static_order, sim_order,
            "static Eq. 1 ranking must agree with the simulator"
        );
        // Every kernel is branch-deterministic, so the static interval
        // must contain the simulated runtime tightly.
        for (c, p) in ranked.iter().zip(&sim) {
            let b = c.bound.total_ns();
            assert!(
                b.contains(p.simulated_ns, 1e-9),
                "m={}: simulated {} outside static {:?}",
                c.m,
                p.simulated_ns,
                b
            );
        }
        // Every point carries telemetry-backed metrics.
        assert!(
            sim.iter().any(|p| p.metrics.words_moved > 0),
            "multi-tile FFT partitions move data over the links"
        );
        for (c, p) in ranked.iter().zip(&sim) {
            assert!(p.metrics.runtime_ns > 0.0, "m={}", p.m);
            assert!(p.metrics.utilization > 0.0 && p.metrics.utilization <= 1.0);
            assert!(p.metrics.reconfig_ns > 0.0);
            // The static view prices the same reconfiguration stream.
            let s = c.static_metrics();
            assert!(
                (s.reconfig_ns - p.metrics.reconfig_ns).abs() < 1e-6,
                "m={}: static reconfig {} vs measured {}",
                c.m,
                s.reconfig_ns,
                p.metrics.reconfig_ns
            );
            assert!(s.runtime_ns.is_finite());
        }
    }

    #[test]
    fn hoisted_rank_is_consistent_and_cheaper() {
        let cost = CostModel::with_link_cost(25.0);
        let baseline = rank_fft_candidates(64, &cost);
        let hoisted = rank_fft_candidates_hoisted(64, &cost);
        assert_eq!(hoisted.len(), baseline.len());
        // Hoisting only ever shrinks the Eq. 1 reconfiguration term.
        for h in &hoisted {
            let b = baseline
                .iter()
                .find(|c| c.m == h.m)
                .expect("same candidate set");
            assert!(
                h.bound.total_reconfig_ns() <= b.bound.total_reconfig_ns() + 1e-9,
                "m={}",
                h.m
            );
            assert_eq!(
                h.bound.total_compute_ns(),
                b.bound.total_compute_ns(),
                "m={}: compute is invariant under hoisting",
                h.m
            );
        }
        // The strict-gated hoisted simulation agrees with the hoisted
        // static price exactly as the baseline pair does.
        let sim = simulate_frontier_hoisted(64, &hoisted, &cost, hoisted.len()).expect("runs");
        let mut by_sim = sim.clone();
        by_sim.sort_by(|a, b| a.simulated_ns.partial_cmp(&b.simulated_ns).unwrap());
        let static_order: Vec<usize> = sim.iter().map(|p| p.m).collect();
        let sim_order: Vec<usize> = by_sim.iter().map(|p| p.m).collect();
        assert_eq!(static_order, sim_order);
        for (c, p) in hoisted.iter().zip(&sim) {
            let b = c.bound.total_ns();
            assert!(
                b.contains(p.simulated_ns, 1e-9),
                "m={}: hoisted simulated {} outside hoisted static {:?}",
                c.m,
                p.simulated_ns,
                b
            );
            let s = c.static_metrics();
            assert!(
                (s.reconfig_ns - p.metrics.reconfig_ns).abs() < 1e-6,
                "m={}: hoisted static reconfig {} vs measured {}",
                c.m,
                s.reconfig_ns,
                p.metrics.reconfig_ns
            );
        }
    }
}
