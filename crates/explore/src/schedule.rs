//! Executable epoch schedules behind the DSE candidates, plus the static
//! verification glue that gates them.
//!
//! The sweeps in [`crate::fft_dse`] and [`crate::jpeg_dse`] are analytic —
//! they price candidates with the tau model and the rebalancing interval
//! formula. This module makes the candidates *concrete*: it builds the
//! actual epoch schedule (link configurations, generated PE programs, and
//! ICAP data patches for inputs, twiddles and copy variables) that a
//! candidate corresponds to, so `cgra-verify` can check it statically
//! before anything is burned into the array:
//!
//! * [`fft_column_schedule`] — a full N-point FFT on one column of
//!   `rows = N/M` tiles: cross-tile stages exchange partner halves over
//!   the vertical links (directly for adjacent partners, as multi-hop
//!   routed copies otherwise), local stages run in place,
//! * [`jpeg_block_schedule`] — the per-block JPEG pipeline distributed
//!   over a 1x3 array (shift | DCT | quantize+zigzag) with the
//!   intermediates shipped tile-to-tile,
//! * [`fft_schedule_diagnostics`] / [`jpeg_schedule_diagnostics`] — build
//!   the schedule and run the whole-schedule verifier over it,
//! * [`network_budget_diagnostics`] / [`assignment_diagnostics`] — the
//!   512-word data-budget checks applied to every process network and
//!   rebalanced tile assignment the JPEG sweeps produce.
//!
//! Every schedule is **self-contained**: all inputs arrive as
//! [`DataPatch`]es, so the static dataflow analysis sees the complete
//! initialization story and the schedules verify clean on a cold array.

use cgra_fabric::{CostModel, DataPatch, Direction, Mesh, Word, DATA_WORDS};
use cgra_isa::Instr;
use cgra_kernels::fft::fixed::{twiddle_fx, Cfx};
use cgra_kernels::fft::partition::FftPlan;
use cgra_kernels::fft::programs::{
    bf_program, copy_program, cross_bf_local_program, cross_bf_program, local_copy_program,
    tmp_base, tw_base,
};
use cgra_kernels::fft::twiddle::butterfly_twiddle;
use cgra_kernels::jpeg::dct::{alpha, cos_basis_fx};
use cgra_kernels::jpeg::programs::{
    dct_program, quantize_program, shift_program, zigzag_program, AL, COS, KONST, PX, QR, SH, T2,
};
use cgra_kernels::jpeg::quant::QuantTable;
use cgra_lint::{LintLevels, LintReport};
use cgra_map::routing::plan_route;
use cgra_map::{Assignment, ProcessNetwork};
use cgra_sim::{apply_lint_fixes, lint_epochs, verify_epochs, Epoch, TileSetup};
use cgra_verify::{check_data_budget, Code, Diagnostic};

/// Cycle budget per epoch — generous: the largest epoch (a 256-word input
/// patch plus a butterfly sweep) stays well under it.
const BUDGET: u64 = 100_000;

/// Copy-variable window for the JPEG shipping hops (clear of the
/// `programs.rs` layout, which tops out at word 416).
const JPEG_CPVARS: u16 = 470;

fn idle() -> Vec<Instr> {
    vec![Instr::Halt]
}

fn words(vals: impl IntoIterator<Item = i64>) -> Vec<Word> {
    vals.into_iter().map(Word::wrap).collect()
}

/// Copy variables consumed by [`copy_program`]: source and destination
/// base addresses, delivered through the ICAP like the paper's
/// non-self-updating vcp.
fn copy_vars_patch(var_base: u16, src: u16, dst: u16) -> DataPatch {
    DataPatch::new(var_base as usize, words([src as i64, dst as i64]))
}

// ---------------------------------------------------------------------------
// FFT column schedule
// ---------------------------------------------------------------------------

/// Scratch-memory layout for the cross-stage exchanges of an M-point tile.
///
/// The fixed program layout (`x` at `[0, 2m)`, twiddles at `[2m, 3m)`,
/// temporaries at `[3m, 3m+41)`) leaves little headroom at M = 128, so the
/// exchange runs in *chunks* of at most 32 butterflies; the received
/// partner points land after the temporaries and, when even that does not
/// fit, the write-back staging buffer reuses the upper half of the twiddle
/// region (a chunk only ever occupies its lower half).
#[derive(Debug, Clone, Copy)]
struct Layout {
    /// Butterflies processed per exchange chunk.
    chunk: usize,
    /// Received partner points (also the relay buffer on route hops).
    recv: u16,
    /// Locally-kept results awaiting multi-hop write-back.
    out: u16,
    /// Copy variables for [`copy_program`].
    cpvars: u16,
}

impl Layout {
    fn for_m(m: usize) -> Layout {
        assert!(m >= 4 && m.is_power_of_two(), "unsupported partition {m}");
        let chunk = (m / 2).min(32);
        let cpvars: u16 = 504;
        let recv = (tmp_base(m) + 41) as u16;
        let block = (2 * chunk) as u16;
        assert!(recv + block <= cpvars, "recv buffer does not fit for m={m}");
        let out = if recv + 2 * block <= cpvars {
            recv + block
        } else {
            // Stage the outputs over the unused upper twiddle half.
            assert!(4 * chunk <= m, "no staging room for m={m}");
            tw_base(m) + block
        };
        Layout {
            chunk,
            recv,
            out,
            cpvars,
        }
    }

    /// Word count shipped per chunk (a multiple of 4, as `copy_program`
    /// requires).
    fn block_words(&self) -> u16 {
        (2 * self.chunk) as u16
    }
}

/// Twiddle patch for `count` cross-stage butterflies whose top elements
/// start at global index `g0` (visit order).
fn cross_twiddle_patch(n: usize, m: usize, s: usize, g0: usize, count: usize) -> DataPatch {
    let mut w = Vec::with_capacity(2 * count);
    for i in 0..count {
        let k = butterfly_twiddle(n, s, g0 + i).expect("top position");
        let t = twiddle_fx(n, k);
        w.push(t.re);
        w.push(t.im);
    }
    DataPatch::new(tw_base(m) as usize, w)
}

/// Twiddle patch for a tile-local stage `s` (the table every tile shares).
fn local_twiddle_patch(n: usize, m: usize, s: usize) -> DataPatch {
    let h = n >> (s + 1);
    let mut w = Vec::with_capacity(2 * h);
    for j in 0..h {
        let t = twiddle_fx(n, (j << s) % n);
        w.push(t.re);
        w.push(t.im);
    }
    DataPatch::new(tw_base(m) as usize, w)
}

/// Epochs shipping `count` words from `src_addr` on tile `src` to
/// `dst_addr` on tile `dst`, hop by hop through the relay buffers of the
/// intermediate tiles — one epoch per hop, copy variables patched in.
#[allow(clippy::too_many_arguments)]
fn route_epochs(
    mesh: &Mesh,
    lay: Layout,
    src: usize,
    dst: usize,
    src_addr: u16,
    dst_addr: u16,
    count: u16,
    what: &str,
) -> Vec<Epoch> {
    let route = plan_route(mesh, src, dst).expect("column route exists");
    let hops = route.hops.len();
    route
        .hops
        .iter()
        .enumerate()
        .map(|(i, hop)| {
            let from_addr = if i == 0 { src_addr } else { lay.recv };
            let to_addr = if i + 1 == hops { dst_addr } else { lay.recv };
            Epoch {
                name: format!("{what} {src}->{dst} hop {i}"),
                links: route.link_config(mesh, i),
                setups: vec![(
                    hop.from,
                    TileSetup {
                        program: Some(copy_program(count, false, lay.cpvars)),
                        data_patches: vec![copy_vars_patch(lay.cpvars, from_addr, to_addr)],
                    },
                )],
                budget: BUDGET,
            }
        })
        .collect()
}

/// Builds the complete epoch schedule for an N-point FFT on one column of
/// `rows = N/M` tiles, `input` being the N natural-order points (the
/// output comes back in DIF order, row-major across tiles; the caller
/// bit-reverses).
///
/// The schedule is self-contained: the input points, every stage's twiddle
/// complement and all copy variables arrive as data patches, so it
/// verifies clean on a cold array and can be handed straight to an
/// [`cgra_sim::EpochRunner`].
pub fn fft_column_schedule(plan: &FftPlan, input: &[Cfx]) -> (Mesh, Vec<Epoch>) {
    let (n, m, rows) = (plan.n, plan.m, plan.rows());
    assert_eq!(input.len(), n, "need {n} input points");
    let lay = Layout::for_m(m);
    let mesh = Mesh::new(rows, 1);
    let mut epochs = Vec::new();

    // Stream the input rows in (tau0's role in schedule form).
    epochs.push(Epoch {
        name: "load input".into(),
        links: mesh.disconnected(),
        setups: (0..rows)
            .map(|t| {
                let mut w = Vec::with_capacity(2 * m);
                for c in &input[t * m..(t + 1) * m] {
                    w.push(c.re);
                    w.push(c.im);
                }
                (
                    t,
                    TileSetup {
                        program: Some(idle()),
                        data_patches: vec![DataPatch::new(0, w)],
                    },
                )
            })
            .collect(),
        budget: BUDGET,
    });

    // Cross-tile stages: exchange partner halves, then butterfly.
    for s in 0..plan.cross_stages() {
        let span = rows >> (s + 1);
        for r in 0..rows {
            let q = match plan.exchange_partner(s, r) {
                Some(q) if q > r => q,
                _ => continue,
            };
            let chunks = (m / 2) / lay.chunk;
            for c in 0..chunks {
                let cw = lay.block_words();
                // Word offsets of this chunk inside the first half (the
                // upper tile's butterflies) and the second half (the
                // lower tile's).
                let a_off = (2 * c * lay.chunk) as u16;
                let b_off = (m + 2 * c * lay.chunk) as u16;
                // Twiddles in visit order for each side's butterflies.
                let tw_r = cross_twiddle_patch(n, m, s, r * m + c * lay.chunk, lay.chunk);
                let tw_q = cross_twiddle_patch(n, m, s, r * m + m / 2 + c * lay.chunk, lay.chunk);
                if span == 1 {
                    // Adjacent partners: simultaneous bidirectional vcp,
                    // then butterflies with direct remote-write outputs.
                    let links = mesh
                        .disconnected()
                        .with(r, Direction::South)
                        .with(q, Direction::North);
                    epochs.push(Epoch {
                        name: format!("BF{s} ({r},{q}) chunk {c}: vcp"),
                        links: links.clone(),
                        setups: vec![
                            (
                                r,
                                TileSetup {
                                    program: Some(copy_program(cw, false, lay.cpvars)),
                                    data_patches: vec![copy_vars_patch(
                                        lay.cpvars, b_off, lay.recv,
                                    )],
                                },
                            ),
                            (
                                q,
                                TileSetup {
                                    program: Some(copy_program(cw, false, lay.cpvars)),
                                    data_patches: vec![copy_vars_patch(
                                        lay.cpvars, a_off, lay.recv,
                                    )],
                                },
                            ),
                        ],
                        budget: BUDGET,
                    });
                    epochs.push(Epoch {
                        name: format!("BF{s} ({r},{q}) chunk {c}: butterfly"),
                        links,
                        setups: vec![
                            (
                                r,
                                TileSetup {
                                    program: Some(cross_bf_program(
                                        m, lay.chunk, a_off, lay.recv, a_off, true,
                                    )),
                                    data_patches: vec![tw_r],
                                },
                            ),
                            (
                                q,
                                TileSetup {
                                    program: Some(cross_bf_program(
                                        m, lay.chunk, b_off, lay.recv, b_off, false,
                                    )),
                                    data_patches: vec![tw_q],
                                },
                            ),
                        ],
                        budget: BUDGET,
                    });
                } else {
                    // Non-neighbour partners: multi-hop routed copies in,
                    // local butterflies, multi-hop write-back (Sec. 2's
                    // "explicit copy instructions and changing
                    // connectivity").
                    epochs.extend(route_epochs(&mesh, lay, q, r, a_off, lay.recv, cw, "exch"));
                    epochs.extend(route_epochs(&mesh, lay, r, q, b_off, lay.recv, cw, "exch"));
                    epochs.push(Epoch {
                        name: format!("BF{s} ({r},{q}) chunk {c}: butterfly"),
                        links: mesh.disconnected(),
                        setups: vec![
                            (
                                r,
                                TileSetup {
                                    program: Some(cross_bf_local_program(
                                        m, lay.chunk, a_off, lay.recv, a_off, lay.out,
                                    )),
                                    data_patches: vec![tw_r],
                                },
                            ),
                            (
                                q,
                                TileSetup {
                                    program: Some(cross_bf_local_program(
                                        m, lay.chunk, lay.recv, b_off, lay.out, b_off,
                                    )),
                                    data_patches: vec![tw_q],
                                },
                            ),
                        ],
                        budget: BUDGET,
                    });
                    epochs.extend(route_epochs(&mesh, lay, r, q, lay.out, a_off, cw, "wb"));
                    epochs.extend(route_epochs(&mesh, lay, q, r, lay.out, b_off, cw, "wb"));
                }
            }
        }
    }

    // Tile-local stages: every tile sweeps its own points.
    for s in plan.cross_stages()..plan.stages() {
        let h = n >> (s + 1);
        let prog = bf_program(m, h);
        epochs.push(Epoch {
            name: format!("BF{s} local"),
            links: mesh.disconnected(),
            setups: (0..rows)
                .map(|t| {
                    (
                        t,
                        TileSetup {
                            program: Some(prog.clone()),
                            data_patches: vec![local_twiddle_patch(n, m, s)],
                        },
                    )
                })
                .collect(),
            budget: BUDGET,
        });
    }
    (mesh, epochs)
}

/// Builds the candidate FFT column schedule for `plan` and statically
/// verifies it end to end. The sweeps call this (in debug builds) before
/// pricing the candidate — a schedule the verifier rejects is not a
/// design point.
pub fn fft_schedule_diagnostics(plan: &FftPlan) -> Vec<Diagnostic> {
    // The input values are irrelevant to the static analysis; any
    // deterministic signal makes the schedule concrete.
    let input: Vec<Cfx> = (0..plan.n)
        .map(|i| Cfx::from_f64((i as f64 * 0.13).sin() * 0.5, (i as f64 * 0.71).cos() * 0.5))
        .collect();
    let (mesh, epochs) = fft_column_schedule(plan, &input);
    verify_epochs(mesh, &epochs)
}

// ---------------------------------------------------------------------------
// JPEG pipeline schedule
// ---------------------------------------------------------------------------

/// Constant tables one tile of the 1x3 JPEG pipeline actually reads, as
/// data patches (the per-tile minimal form of `load_jpeg_constants`):
/// the shift stage on tile 0 needs no tables at all, the DCT on tile 1
/// reads the cosine basis, the alpha row and the rounding constant, and
/// the quantizer on tile 2 reads the reciprocal table and the rounding
/// constant. Patching only these keeps the ICAP traffic minimal and the
/// lint pass's dead-initializer check (`L004`) quiet.
fn jpeg_tile_constant_patches(t: usize, qt: &QuantTable) -> Vec<DataPatch> {
    match t {
        1 => {
            let mut cos = Vec::with_capacity(64);
            for row in cos_basis_fx().iter() {
                cos.extend_from_slice(row);
            }
            let al: Vec<Word> = (0..8)
                .map(|u| cgra_fabric::word::fixed::from_f64(0.5 * alpha(u)))
                .collect();
            vec![
                DataPatch::new(COS as usize, cos),
                DataPatch::new(AL as usize, al),
                DataPatch::new(KONST as usize, words([1i64 << 23])),
            ]
        }
        2 => vec![
            DataPatch::new(QR as usize, words(qt.reciprocals_q24())),
            DataPatch::new(KONST as usize, words([1i64 << 23])),
        ],
        _ => vec![],
    }
}

/// Builds the epoch schedule pushing one 8x8 block through the
/// 1x3-pipeline mapping (shift | DCT | quantize+zigzag), intermediates
/// shipped over the east links. The zig-zag scan ends up in tile 2's `SH`
/// region. Self-contained: pixels, DCT/quantizer tables and copy
/// variables all arrive as data patches.
pub fn jpeg_block_schedule(block: &[u8; 64], qt: &QuantTable) -> (Mesh, Vec<Epoch>) {
    let mesh = Mesh::new(1, 3);
    let east = |t: usize| mesh.disconnected().with(t, Direction::East);
    let pixels = DataPatch::new(PX as usize, words(block.iter().map(|&p| p as i64)));
    let epochs = vec![
        Epoch {
            name: "load block + tables".into(),
            links: mesh.disconnected(),
            setups: (0..3)
                .map(|t| {
                    let mut patches = jpeg_tile_constant_patches(t, qt);
                    if t == 0 {
                        patches.push(pixels.clone());
                    }
                    (
                        t,
                        TileSetup {
                            program: Some(idle()),
                            data_patches: patches,
                        },
                    )
                })
                .collect(),
            budget: BUDGET,
        },
        Epoch {
            name: "shift@0".into(),
            links: mesh.disconnected(),
            setups: vec![(
                0,
                TileSetup {
                    program: Some(shift_program()),
                    data_patches: vec![],
                },
            )],
            budget: BUDGET,
        },
        Epoch {
            name: "ship shifted 0->1".into(),
            links: east(0),
            setups: vec![(
                0,
                TileSetup {
                    program: Some(copy_program(64, false, JPEG_CPVARS)),
                    data_patches: vec![copy_vars_patch(JPEG_CPVARS, SH, SH)],
                },
            )],
            budget: BUDGET,
        },
        Epoch {
            name: "dct@1".into(),
            links: mesh.disconnected(),
            setups: vec![(
                1,
                TileSetup {
                    program: Some(dct_program()),
                    data_patches: vec![],
                },
            )],
            budget: BUDGET,
        },
        Epoch {
            name: "ship coefficients 1->2".into(),
            links: east(1),
            setups: vec![(
                1,
                TileSetup {
                    program: Some(copy_program(64, false, JPEG_CPVARS)),
                    data_patches: vec![copy_vars_patch(JPEG_CPVARS, T2, T2)],
                },
            )],
            budget: BUDGET,
        },
        Epoch {
            name: "quantize@2".into(),
            links: mesh.disconnected(),
            setups: vec![(
                2,
                TileSetup {
                    program: Some(quantize_program()),
                    data_patches: vec![],
                },
            )],
            budget: BUDGET,
        },
        Epoch {
            name: "zigzag@2".into(),
            links: mesh.disconnected(),
            setups: vec![(
                2,
                TileSetup {
                    program: Some(zigzag_program()),
                    data_patches: vec![],
                },
            )],
            budget: BUDGET,
        },
    ];
    (mesh, epochs)
}

/// Builds the candidate JPEG pipeline schedule and statically verifies it.
pub fn jpeg_schedule_diagnostics(qt: &QuantTable) -> Vec<Diagnostic> {
    let block: [u8; 64] = std::array::from_fn(|i| (i * 3 % 256) as u8);
    let (mesh, epochs) = jpeg_block_schedule(&block, qt);
    verify_epochs(mesh, &epochs)
}

/// Builds the schedule streaming several 8x8 blocks through the 1x3
/// pipeline back to back. Deliberately **naive**: the generator warms
/// the constant tables into the tiles up front *and* still
/// conservatively re-sends them with every block's load epoch, so the
/// first block's table patches rewrite values the memories provably
/// already hold — exactly the redundancy the `cgra-lint`
/// reconfiguration-diff minimizer detects (`L005`) and
/// [`minimize_schedule`] removes. (Later blocks' re-sends survive: once
/// a compute program with register-indexed stores has run, the static
/// analysis can no longer prove the tables unchanged, and the minimizer
/// only ever removes what it can prove.) Between blocks, tile 2 drains
/// the finished zig-zag scan from `SH` into its (otherwise unused)
/// `[0, 64)` region so the next block's scan does not clobber an unread
/// result; with the two-block cap there is one drain slot.
pub fn jpeg_stream_schedule(blocks: &[[u8; 64]], qt: &QuantTable) -> (Mesh, Vec<Epoch>) {
    assert!(
        !blocks.is_empty() && blocks.len() <= 2,
        "one drain slot supports at most 2 blocks"
    );
    let mesh = Mesh::new(1, 3);
    let mut epochs = vec![Epoch {
        name: "warm tables".into(),
        links: mesh.disconnected(),
        setups: (1..3)
            .map(|t| {
                (
                    t,
                    TileSetup {
                        program: Some(idle()),
                        data_patches: jpeg_tile_constant_patches(t, qt),
                    },
                )
            })
            .collect(),
        budget: BUDGET,
    }];
    for (bi, block) in blocks.iter().enumerate() {
        let (_, mut blk) = jpeg_block_schedule(block, qt);
        for e in &mut blk {
            e.name = format!("b{bi} {}", e.name);
        }
        epochs.extend(blk);
        if bi + 1 < blocks.len() {
            epochs.push(Epoch {
                name: format!("b{bi} drain@2"),
                links: mesh.disconnected(),
                setups: vec![(
                    2,
                    TileSetup {
                        program: Some(local_copy_program(64, SH, 0, JPEG_CPVARS + 2)),
                        data_patches: vec![],
                    },
                )],
                budget: BUDGET,
            });
        }
    }
    (mesh, epochs)
}

/// Builds the two-block streaming JPEG schedule and statically verifies
/// it.
pub fn jpeg_stream_diagnostics(qt: &QuantTable) -> Vec<Diagnostic> {
    let blocks = jpeg_probe_blocks();
    let (mesh, epochs) = jpeg_stream_schedule(&blocks, qt);
    verify_epochs(mesh, &epochs)
}

/// Two deterministic, distinct probe blocks for the streaming schedule.
pub fn jpeg_probe_blocks() -> [[u8; 64]; 2] {
    [
        std::array::from_fn(|i| (i * 3 % 256) as u8),
        std::array::from_fn(|i| (255 - i * 5 % 256) as u8),
    ]
}

// ---------------------------------------------------------------------------
// The example-schedule catalog
// ---------------------------------------------------------------------------

/// Names of the toolkit's example schedules, in canonical order — the
/// `--all` set shared by the `cgra-lint` and `cgra-trace` drivers, the
/// telemetry conservation suite, and the runtime-trajectory benchmark.
pub const EXAMPLE_SCHEDULES: [&str; 5] = ["fft-16", "fft-64", "fft-1024", "jpeg", "jpeg-stream"];

/// A deterministic probe signal for the FFT schedules; the values are
/// irrelevant to timing (the ISA has no data-dependent latencies) but
/// make the schedules concrete and reproducible.
pub fn example_probe_input(n: usize) -> Vec<Cfx> {
    (0..n)
        .map(|i| Cfx::from_f64((i as f64 * 0.13).sin() * 0.5, (i as f64 * 0.71).cos() * 0.5))
        .collect()
}

/// Builds a named example schedule from [`EXAMPLE_SCHEDULES`];
/// `None` for unknown names.
pub fn build_example_schedule(name: &str) -> Option<(Mesh, Vec<Epoch>)> {
    let fft = |n: usize, m: usize| {
        let plan = FftPlan::new(n, m).ok()?;
        Some(fft_column_schedule(&plan, &example_probe_input(n)))
    };
    let qt = QuantTable::luma(75);
    match name {
        "fft-16" => fft(16, 4),
        "fft-64" => fft(64, 16),
        "fft-1024" => fft(1024, 128),
        "jpeg" => Some(jpeg_block_schedule(&jpeg_probe_blocks()[0], &qt)),
        "jpeg-stream" => Some(jpeg_stream_schedule(&jpeg_probe_blocks(), &qt)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Lint-minimized schedules
// ---------------------------------------------------------------------------

/// Runs the `cgra-lint` whole-schedule pass over a schedule and applies
/// the reconfiguration-diff minimizer in place: redundant ICAP patch
/// words (`L005`) are dropped, everything else is untouched. Returns the
/// lint report (priced with `cost`), whose
/// [`cgra_lint::LintReport::saved_ns`] is the predicted Eq. 1 reduction.
///
/// The DSE sweeps minimize every candidate before pricing it, so ranks
/// reflect what the runtime system would actually stream.
pub fn minimize_schedule(mesh: Mesh, epochs: &mut [Epoch], cost: &CostModel) -> LintReport {
    let report = lint_epochs(mesh, epochs, &LintLevels::default(), cost);
    apply_lint_fixes(epochs, &report);
    report
}

/// Runs the `cgra-lint` idle-window analysis over a (usually already
/// minimized) schedule and returns the proof-gated hoisting plan: which
/// per-tile reconfiguration payloads can stream through the background
/// configuration port into earlier provably-idle windows, each carrying
/// its discharged idle-window + non-interference + WCET-containment
/// certificate. The schedule itself is not modified — the plan is
/// applied by `cgra_sim::EpochRunner::run_hoisted_schedule` and priced
/// by [`cgra_lint::hoisted_bound`].
pub fn hoist_schedule(mesh: Mesh, epochs: &[Epoch], cost: &CostModel) -> cgra_lint::HoistPlan {
    let specs: Vec<cgra_verify::EpochSpec> = epochs.iter().map(cgra_sim::epoch_spec).collect();
    cgra_lint::plan_hoists(
        mesh,
        &specs,
        &LintLevels::default(),
        cost,
        &cgra_lint::HoistOptions::default(),
    )
}

// ---------------------------------------------------------------------------
// Data-budget checks over process networks and assignments
// ---------------------------------------------------------------------------

/// Checks every process of a network against the 512-word tile data
/// memory. A process that cannot fit on any tile is an error.
pub fn network_budget_diagnostics(net: &ProcessNetwork) -> Vec<Diagnostic> {
    net.processes
        .iter()
        .filter_map(|p| check_data_budget(&p.name, p.data_words()))
        .collect()
}

/// Checks a rebalanced tile assignment: every process must fit a tile
/// (error), and a load whose *combined* footprint exceeds the tile memory
/// is flagged as a warning — its programs can time-share the instruction
/// memory through reconfiguration, but its data cannot all be resident.
pub fn assignment_diagnostics(net: &ProcessNetwork, asg: &Assignment) -> Vec<Diagnostic> {
    let mut out = network_budget_diagnostics(net);
    for l in &asg.loads {
        let total: usize = net.processes[l.first..=l.last]
            .iter()
            .map(|p| p.data_words())
            .sum();
        if total > DATA_WORDS {
            out.push(Diagnostic::warning(
                Code::DataBudget,
                format!(
                    "load p{}-p{} packs {total} data words onto one tile ({DATA_WORDS} resident)",
                    l.first, l.last
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_kernels::jpeg::processes::paper_network;
    use cgra_verify::has_errors;

    #[test]
    fn layouts_fit_every_partition_size() {
        for m in [4usize, 8, 16, 32, 64, 128] {
            let lay = Layout::for_m(m);
            let top = lay.recv as usize + 2 * lay.chunk;
            assert!(top <= lay.cpvars as usize, "m={m}");
            assert!(lay.out as usize + 2 * lay.chunk <= DATA_WORDS, "m={m}");
            // The staging buffer never collides with a chunk's twiddles.
            assert!(
                lay.out >= tw_base(m) + 2 * lay.chunk as u16
                    || lay.out >= (tmp_base(m) + 41) as u16,
                "m={m}"
            );
        }
    }

    #[test]
    fn fft_16_schedule_verifies_clean() {
        let plan = FftPlan::new(16, 4).unwrap();
        let diags = fft_schedule_diagnostics(&plan);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn jpeg_schedule_verifies_clean() {
        let diags = jpeg_schedule_diagnostics(&QuantTable::luma(75));
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn paper_network_fits_budgets() {
        let net = paper_network();
        assert!(network_budget_diagnostics(&net).is_empty());
    }

    #[test]
    fn oversized_process_flagged() {
        let mut net = paper_network();
        net.processes[0].data2 = DATA_WORDS + 1;
        let d = network_budget_diagnostics(&net);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, Code::DataBudget);
        assert!(d[0].is_error());
    }

    #[test]
    fn single_tile_packing_warns_not_errors() {
        let net = paper_network();
        let asg = Assignment::single_tile(&net);
        let d = assignment_diagnostics(&net, &asg);
        assert!(!has_errors(&d));
    }
}
