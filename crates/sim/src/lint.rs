//! Schedule-level lint integration: running the `cgra-lint` pass over
//! [`Epoch`] schedules and applying its auto-fixes.

use crate::epoch::{epoch_spec, Epoch};
use cgra_fabric::{CostModel, Mesh};
use cgra_lint::{minimize_patches, LintLevels, LintReport};
use cgra_verify::EpochSpec;

/// Runs the whole-schedule lint pass over `epochs` for a cold array on
/// `mesh` — the [`Epoch`]-typed counterpart of
/// [`cgra_lint::lint_schedule`], mirroring [`crate::verify_epochs`].
pub fn lint_epochs(
    mesh: Mesh,
    epochs: &[Epoch],
    levels: &LintLevels,
    cost: &CostModel,
) -> LintReport {
    let specs: Vec<EpochSpec> = epochs.iter().map(epoch_spec).collect();
    cgra_lint::lint_schedule(mesh, &specs, levels, cost)
}

/// Applies a lint report's patch-word removals to a schedule in place:
/// every `(epoch, slot)` with removable words gets its data-patch list
/// rewritten by [`minimize_patches`]. Programs, links and budgets are
/// untouched — only redundant ICAP data words disappear, so the fixed
/// schedule executes bit-exact with a strictly smaller Eq. 1
/// reconfiguration term (see `DESIGN.md` Section 11).
pub fn apply_lint_fixes(epochs: &mut [Epoch], report: &LintReport) {
    let mut slots: Vec<(usize, usize)> =
        report.removals.iter().map(|r| (r.epoch, r.slot)).collect();
    slots.sort_unstable();
    slots.dedup();
    for (ei, slot) in slots {
        let Some((_, setup)) = epochs.get_mut(ei).and_then(|e| e.setups.get_mut(slot)) else {
            continue;
        };
        let removed = report.removals_for(ei, slot);
        setup.data_patches = minimize_patches(&setup.data_patches, &removed);
    }
}
