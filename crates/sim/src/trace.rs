//! Execution traces and ASCII Gantt rendering.
//!
//! The epoch runner records per-tile busy/stall activity per epoch; the
//! Gantt view makes the paper's core claim visible at a glance — during a
//! partial reconfiguration only the rewritten tiles stall (`R`), everyone
//! else keeps computing (`#`).

use cgra_telemetry::Event;

/// Per-tile activity inside one epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileActivity {
    /// Cycles spent executing instructions.
    pub busy: u64,
    /// Cycles stalled for reconfiguration.
    pub stalled: u64,
}

/// One traced epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochTrace {
    /// Epoch name.
    pub name: String,
    /// Global cycle at which the epoch started.
    pub start: u64,
    /// Global cycle at which the epoch ended.
    pub end: u64,
    /// Per-tile activity during the epoch.
    pub tiles: Vec<TileActivity>,
}

/// A whole-run trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Epochs in execution order.
    pub epochs: Vec<EpochTrace>,
}

impl Trace {
    /// Rebuilds the trace from a telemetry event stream — the Gantt
    /// view is one consumer of the same [`Event`] vocabulary the
    /// exporters fold. Only completed epochs (begin *and* end seen)
    /// appear; per-tile rows come from the [`Event::TileEpoch`]
    /// summaries.
    pub fn from_events(events: &[Event]) -> Trace {
        let mut trace = Trace::default();
        let mut open: Option<(usize, EpochTrace)> = None;
        for ev in events {
            match ev {
                Event::EpochBegin { epoch, name, at } => {
                    open = Some((
                        *epoch,
                        EpochTrace {
                            name: name.clone(),
                            start: *at,
                            end: *at,
                            tiles: Vec::new(),
                        },
                    ));
                }
                Event::TileEpoch {
                    epoch,
                    tile,
                    busy,
                    stalled,
                    ..
                } => {
                    if let Some((i, e)) = open.as_mut() {
                        if i == epoch {
                            if e.tiles.len() <= *tile {
                                e.tiles.resize(*tile + 1, TileActivity::default());
                            }
                            e.tiles[*tile] = TileActivity {
                                busy: *busy,
                                stalled: *stalled,
                            };
                        }
                    }
                }
                Event::EpochEnd { epoch, at, .. } => {
                    if let Some((i, mut e)) = open.take() {
                        if i == *epoch {
                            e.end = (*at).max(e.start);
                            trace.epochs.push(e);
                        }
                    }
                }
                _ => {}
            }
        }
        trace
    }

    /// Total traced cycles.
    pub fn total_cycles(&self) -> u64 {
        self.epochs
            .last()
            .map_or(0, |e| e.end)
            .saturating_sub(self.epochs.first().map_or(0, |e| e.start))
    }

    /// Renders an ASCII Gantt chart, one row per tile, `width` characters
    /// across the full traced duration:
    ///
    /// * `#` — mostly computing,
    /// * `R` — mostly stalled for reconfiguration,
    /// * `.` — idle,
    /// * `|` — epoch boundary.
    pub fn gantt(&self, width: usize) -> String {
        if width == 0 {
            // Nothing to draw into; still one line per tile so callers
            // can count rows.
            let tiles = self.epochs.iter().map(|e| e.tiles.len()).max().unwrap_or(0);
            let mut out = String::from("\n");
            for t in 0..tiles {
                out.push_str(&format!("tile {t:>2} \n"));
            }
            return out;
        }
        let total = self.total_cycles().max(1);
        let tiles = self.epochs.iter().map(|e| e.tiles.len()).max().unwrap_or(0);
        let t0 = self.epochs.first().map_or(0, |e| e.start);
        let mut out = String::new();
        // Header: epoch boundaries.
        let mut header = vec![' '; width];
        for e in &self.epochs {
            let pos = (e.start.saturating_sub(t0) as f64 / total as f64 * width as f64) as usize;
            if pos < width {
                header[pos] = '|';
            }
        }
        out.push_str("        ");
        out.extend(header);
        out.push('\n');
        for t in 0..tiles {
            let mut row = vec!['.'; width];
            for e in &self.epochs {
                let a = e.tiles.get(t).copied().unwrap_or_default();
                let span = e.end.saturating_sub(e.start).max(1);
                let lo = (e.start.saturating_sub(t0) as f64 / total as f64 * width as f64) as usize;
                let hi = (e.end.saturating_sub(t0) as f64 / total as f64 * width as f64) as usize;
                let fill = if a.stalled > a.busy {
                    'R'
                } else if a.busy > 0 {
                    '#'
                } else {
                    '.'
                };
                // Scale the filled portion by the tile's active fraction.
                let active = (a.busy + a.stalled).min(span);
                let cells =
                    ((active as f64 / span as f64) * hi.saturating_sub(lo) as f64).ceil() as usize;
                for c in row.iter_mut().take((lo + cells).min(width)).skip(lo) {
                    *c = fill;
                }
            }
            out.push_str(&format!("tile {t:>2} "));
            out.extend(row);
            out.push('\n');
        }
        out
    }

    /// Fraction of tile-cycles spent busy over the trace. 0 for an
    /// empty trace or a zero-tile array (never a division by zero).
    pub fn utilization(&self, tiles: usize) -> f64 {
        let total = self.total_cycles().saturating_mul(tiles as u64);
        if total == 0 {
            return 0.0;
        }
        let busy: u64 = self
            .epochs
            .iter()
            .flat_map(|e| e.tiles.iter().map(|a| a.busy))
            .sum();
        busy as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            epochs: vec![
                EpochTrace {
                    name: "a".into(),
                    start: 0,
                    end: 100,
                    tiles: vec![
                        TileActivity {
                            busy: 100,
                            stalled: 0,
                        },
                        TileActivity {
                            busy: 0,
                            stalled: 80,
                        },
                    ],
                },
                EpochTrace {
                    name: "b".into(),
                    start: 100,
                    end: 200,
                    tiles: vec![
                        TileActivity {
                            busy: 0,
                            stalled: 0,
                        },
                        TileActivity {
                            busy: 100,
                            stalled: 0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn totals_and_utilization() {
        let t = sample();
        assert_eq!(t.total_cycles(), 200);
        // busy = 100 + 100 over 2 tiles x 200 cycles.
        assert!((t.utilization(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gantt_shape() {
        let t = sample();
        let g = t.gantt(40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 tiles
        assert!(lines[1].contains('#'));
        assert!(lines[2].contains('R'));
        assert!(lines[0].contains('|'));
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::default();
        assert_eq!(t.total_cycles(), 0);
        let g = t.gantt(10);
        assert!(g.lines().count() >= 1);
        assert_eq!(t.utilization(4), 0.0);
    }

    #[test]
    fn zero_width_gantt_does_not_panic() {
        let t = sample();
        let g = t.gantt(0);
        // One row per tile, no chart cells.
        assert_eq!(g.lines().count(), 3);
        let g_empty = Trace::default().gantt(0);
        assert!(g_empty.lines().count() >= 1);
    }

    #[test]
    fn zero_tiles_utilization_is_zero() {
        let t = sample();
        assert_eq!(t.utilization(0), 0.0);
    }

    #[test]
    fn differing_tile_counts_render() {
        // Epoch "a" saw 2 tiles, epoch "b" saw 4: rows pad with idle.
        let t = Trace {
            epochs: vec![
                EpochTrace {
                    name: "a".into(),
                    start: 0,
                    end: 50,
                    tiles: vec![
                        TileActivity {
                            busy: 50,
                            stalled: 0
                        };
                        2
                    ],
                },
                EpochTrace {
                    name: "b".into(),
                    start: 50,
                    end: 100,
                    tiles: vec![
                        TileActivity {
                            busy: 25,
                            stalled: 0
                        };
                        4
                    ],
                },
            ],
        };
        let g = t.gantt(20);
        assert_eq!(g.lines().count(), 5); // header + 4 tiles
        assert!((t.utilization(4) - (2.0 * 50.0 + 4.0 * 25.0) / 400.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_epoch_spans_do_not_panic() {
        // Zero-length epoch and an out-of-order start.
        let t = Trace {
            epochs: vec![
                EpochTrace {
                    name: "z".into(),
                    start: 10,
                    end: 10,
                    tiles: vec![TileActivity::default()],
                },
                EpochTrace {
                    name: "y".into(),
                    start: 5,
                    end: 8,
                    tiles: vec![TileActivity {
                        busy: 3,
                        stalled: 0,
                    }],
                },
            ],
        };
        let _ = t.gantt(16);
        let _ = t.total_cycles();
        let _ = t.utilization(1);
    }

    #[test]
    fn from_events_rebuilds_epochs() {
        let events = vec![
            Event::EpochBegin {
                epoch: 0,
                name: "a".into(),
                at: 0,
            },
            Event::TileEpoch {
                epoch: 0,
                tile: 1,
                busy: 30,
                stalled: 10,
                words_sent: 0,
                words_received: 0,
            },
            Event::EpochEnd {
                epoch: 0,
                name: "a".into(),
                at: 40,
            },
            // Unclosed epoch: dropped.
            Event::EpochBegin {
                epoch: 1,
                name: "b".into(),
                at: 40,
            },
        ];
        let t = Trace::from_events(&events);
        assert_eq!(t.epochs.len(), 1);
        assert_eq!(t.epochs[0].name, "a");
        assert_eq!(t.epochs[0].end, 40);
        assert_eq!(t.epochs[0].tiles.len(), 2);
        assert_eq!(
            t.epochs[0].tiles[1],
            TileActivity {
                busy: 30,
                stalled: 10
            }
        );
        assert_eq!(t.epochs[0].tiles[0], TileActivity::default());
    }
}
