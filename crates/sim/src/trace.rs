//! Execution traces and ASCII Gantt rendering.
//!
//! The epoch runner records per-tile busy/stall activity per epoch; the
//! Gantt view makes the paper's core claim visible at a glance — during a
//! partial reconfiguration only the rewritten tiles stall (`R`), everyone
//! else keeps computing (`#`).

/// Per-tile activity inside one epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileActivity {
    /// Cycles spent executing instructions.
    pub busy: u64,
    /// Cycles stalled for reconfiguration.
    pub stalled: u64,
}

/// One traced epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochTrace {
    /// Epoch name.
    pub name: String,
    /// Global cycle at which the epoch started.
    pub start: u64,
    /// Global cycle at which the epoch ended.
    pub end: u64,
    /// Per-tile activity during the epoch.
    pub tiles: Vec<TileActivity>,
}

/// A whole-run trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Epochs in execution order.
    pub epochs: Vec<EpochTrace>,
}

impl Trace {
    /// Total traced cycles.
    pub fn total_cycles(&self) -> u64 {
        self.epochs.last().map_or(0, |e| e.end) - self.epochs.first().map_or(0, |e| e.start)
    }

    /// Renders an ASCII Gantt chart, one row per tile, `width` characters
    /// across the full traced duration:
    ///
    /// * `#` — mostly computing,
    /// * `R` — mostly stalled for reconfiguration,
    /// * `.` — idle,
    /// * `|` — epoch boundary.
    pub fn gantt(&self, width: usize) -> String {
        let total = self.total_cycles().max(1);
        let tiles = self.epochs.iter().map(|e| e.tiles.len()).max().unwrap_or(0);
        let t0 = self.epochs.first().map_or(0, |e| e.start);
        let mut out = String::new();
        // Header: epoch boundaries.
        let mut header = vec![' '; width];
        for e in &self.epochs {
            let pos = ((e.start - t0) as f64 / total as f64 * width as f64) as usize;
            if pos < width {
                header[pos] = '|';
            }
        }
        out.push_str("        ");
        out.extend(header);
        out.push('\n');
        for t in 0..tiles {
            let mut row = vec!['.'; width];
            for e in &self.epochs {
                let a = e.tiles.get(t).copied().unwrap_or_default();
                let span = (e.end - e.start).max(1);
                let lo = ((e.start - t0) as f64 / total as f64 * width as f64) as usize;
                let hi = (((e.end - t0) as f64 / total as f64) * width as f64) as usize;
                let fill = if a.stalled > a.busy {
                    'R'
                } else if a.busy > 0 {
                    '#'
                } else {
                    '.'
                };
                // Scale the filled portion by the tile's active fraction.
                let active = (a.busy + a.stalled).min(span);
                let cells = ((active as f64 / span as f64) * (hi - lo) as f64).ceil() as usize;
                for c in row.iter_mut().take((lo + cells).min(width)).skip(lo) {
                    *c = fill;
                }
            }
            out.push_str(&format!("tile {t:>2} "));
            out.extend(row);
            out.push('\n');
        }
        out
    }

    /// Fraction of tile-cycles spent busy over the trace.
    pub fn utilization(&self, tiles: usize) -> f64 {
        let total = self.total_cycles().max(1) * tiles as u64;
        let busy: u64 = self
            .epochs
            .iter()
            .flat_map(|e| e.tiles.iter().map(|a| a.busy))
            .sum();
        busy as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            epochs: vec![
                EpochTrace {
                    name: "a".into(),
                    start: 0,
                    end: 100,
                    tiles: vec![
                        TileActivity {
                            busy: 100,
                            stalled: 0,
                        },
                        TileActivity {
                            busy: 0,
                            stalled: 80,
                        },
                    ],
                },
                EpochTrace {
                    name: "b".into(),
                    start: 100,
                    end: 200,
                    tiles: vec![
                        TileActivity {
                            busy: 0,
                            stalled: 0,
                        },
                        TileActivity {
                            busy: 100,
                            stalled: 0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn totals_and_utilization() {
        let t = sample();
        assert_eq!(t.total_cycles(), 200);
        // busy = 100 + 100 over 2 tiles x 200 cycles.
        assert!((t.utilization(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gantt_shape() {
        let t = sample();
        let g = t.gantt(40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 tiles
        assert!(lines[1].contains('#'));
        assert!(lines[2].contains('R'));
        assert!(lines[0].contains('|'));
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::default();
        assert_eq!(t.total_cycles(), 0);
        let g = t.gantt(10);
        assert!(g.lines().count() >= 1);
    }
}
