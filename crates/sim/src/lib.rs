//! # cgra-sim
//!
//! Cycle-driven simulation of the reconfigurable tile array:
//!
//! * [`engine`] — the synchronous array simulator (one instruction per
//!   tile per cycle, link-routed remote writes, reconfiguration stalls),
//! * [`epoch`] — epoch schedules, partial-reconfiguration switches with
//!   compute overlap, and the paper's Eq. 1 runtime decomposition,
//! * [`trace`] — per-tile activity traces with ASCII Gantt rendering,
//! * [`lint`] — whole-schedule `cgra-lint` integration: the inter-epoch
//!   lifetime/redundancy pass over [`Epoch`] schedules and the auto-fix
//!   that drops redundant ICAP patch words.
//!
//! The simulator is instrumented with `cgra-telemetry`: the epoch
//! runner always records cheap per-epoch summary events (fold them
//! with [`EpochRunner::trace`] / [`EpochRunner::counters`]), and
//! attaching a sink ([`ArraySim::attach_sink`]) additionally streams
//! per-tile busy/stall segments and per-word link transfers.

#![warn(missing_docs)]

pub mod engine;
pub mod epoch;
pub mod lint;
pub mod trace;

pub use cgra_telemetry::{Event, EventSink, Recorder};
pub use engine::{ArraySim, SimError, TileStats, VerifyMode};
pub use epoch::{
    bound_epochs, epoch_spec, verify_epochs, Epoch, EpochReport, EpochRunner, RunReport, TileSetup,
};
pub use lint::{apply_lint_fixes, lint_epochs};
pub use trace::{EpochTrace, TileActivity, Trace};
