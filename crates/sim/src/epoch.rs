//! Epoch schedules and Eq. 1 accounting.
//!
//! An application runs as a sequence of **epochs**: each has its own link
//! configuration `C_i` and per-tile programs. Switching from `C_i` to
//! `C_j` costs `tau_ij` (proportional to the changed links, plus the ICAP
//! time for memory rewrites); because the reconfiguration is partial, only
//! rewritten tiles stall — the rest keep computing through the switch.
//!
//! The runner produces the paper's Eq. 1 decomposition:
//!
//! ```text
//! Runtime = sum_i T_i  +  sum_ij tau_ij  +  sum T_copy
//!           (A: epochs)   (B: reconfig)    (C: data copies)
//! ```

use crate::engine::{ArraySim, SimError, TileStats, VerifyMode};
use crate::trace::Trace;
use cgra_fabric::bitstream::{self, ParsedBitstream};
use cgra_fabric::{
    CostModel, DataPatch, LinkConfig, Mesh, ReconfigPlan, ShadowConfig, TileId, TileReconfig,
};
use cgra_isa::encode_program;
use cgra_isa::Instr;
use cgra_telemetry::{Counters, Event};
use cgra_verify::{Code, Diagnostic, EpochSpec, ScheduleChecker, TileSpec};

/// Reconfiguration payload for one tile in an epoch.
#[derive(Debug, Clone, Default)]
pub struct TileSetup {
    /// New program (assembled instructions), if the tile's code changes.
    pub program: Option<Vec<Instr>>,
    /// Data words rewritten during the switch (twiddles, copy variables).
    pub data_patches: Vec<DataPatch>,
}

/// One epoch: interconnect + the tiles it reconfigures.
#[derive(Debug, Clone, Default)]
pub struct Epoch {
    /// Human-readable name for traces.
    pub name: String,
    /// Interconnect for this epoch.
    pub links: LinkConfig,
    /// Per-tile reconfiguration payloads.
    pub setups: Vec<(TileId, TileSetup)>,
    /// Cycle budget for the epoch's computation.
    pub budget: u64,
}

/// Borrowed `cgra-verify` view of an [`Epoch`].
pub fn epoch_spec(e: &Epoch) -> EpochSpec<'_> {
    EpochSpec {
        name: &e.name,
        links: &e.links,
        tiles: e
            .setups
            .iter()
            .map(|(t, s)| TileSpec {
                tile: *t,
                program: s.program.as_deref(),
                data_patches: &s.data_patches,
            })
            .collect(),
    }
}

/// Statically verifies a whole schedule for `mesh` (a cold array),
/// without running anything. Returns every finding; filter with
/// [`cgra_verify::has_errors`] to gate execution.
pub fn verify_epochs(mesh: Mesh, epochs: &[Epoch]) -> Vec<Diagnostic> {
    let mut checker = ScheduleChecker::new(mesh);
    epochs
        .iter()
        .flat_map(|e| checker.check_epoch(&epoch_spec(e)))
        .collect()
}

/// Statically bounds a whole schedule for `mesh` without running it:
/// the verifier's WCET engine ([`cgra_verify::bound_schedule`]) plus a
/// per-epoch deadline check against each [`Epoch::budget`]. A budget
/// the best case already exceeds is a [`Code::DeadlineRisk`] error (the
/// runner *will* abort with `CycleBudgetExhausted`); a budget only the
/// worst case exceeds — or an unbounded worst case — is a warning.
pub fn bound_epochs(mesh: Mesh, cost: &CostModel, epochs: &[Epoch]) -> cgra_verify::ScheduleBound {
    let specs: Vec<EpochSpec> = epochs.iter().map(epoch_spec).collect();
    let mut bound = cgra_verify::bound_schedule(mesh, cost, &specs);
    for (ei, (e, eb)) in epochs.iter().zip(bound.epochs.iter()).enumerate() {
        // The stall cycles spend budget too: quiescence counts them.
        let need_best = eb.stall_cycles.saturating_add(eb.compute.best);
        let need_worst = eb.compute.worst.map(|w| eb.stall_cycles.saturating_add(w));
        let risk = |d: Diagnostic| d.in_epoch(ei);
        if need_best > e.budget {
            bound.diags.push(risk(Diagnostic::error(
                Code::DeadlineRisk,
                format!(
                    "epoch '{}': needs at least {} cycles (stall {} + compute {}) but the \
                     budget is {}",
                    e.name, need_best, eb.stall_cycles, eb.compute.best, e.budget
                ),
            )));
        } else {
            match need_worst {
                None => bound.diags.push(risk(Diagnostic::warning(
                    Code::DeadlineRisk,
                    format!(
                        "epoch '{}': worst-case cycles unbounded; the {}-cycle budget \
                         cannot be guaranteed",
                        e.name, e.budget
                    ),
                ))),
                Some(w) if w > e.budget => bound.diags.push(risk(Diagnostic::warning(
                    Code::DeadlineRisk,
                    format!(
                        "epoch '{}': may need up to {} cycles (stall {} + worst-case \
                         compute) but the budget is {}",
                        e.name, w, eb.stall_cycles, e.budget
                    ),
                ))),
                Some(_) => {}
            }
        }
    }
    bound
}

/// Eq. 1 accounting for one executed epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch name.
    pub name: String,
    /// Computation time (term A contribution), ns.
    pub compute_ns: f64,
    /// Reconfiguration time for the switch into this epoch (term B + the
    /// memory-rewrite part), ns.
    pub reconfig_ns: f64,
    /// How much of the reconfiguration overlapped computation that was
    /// still running on untouched tiles, ns (informational).
    pub links_changed: usize,
    /// Words copied across tiles during the epoch (term C traffic).
    pub words_copied: u64,
}

/// Whole-run accounting.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-epoch breakdown.
    pub epochs: Vec<EpochReport>,
}

impl RunReport {
    /// Term A: total compute, ns.
    pub fn total_compute_ns(&self) -> f64 {
        self.epochs.iter().map(|e| e.compute_ns).sum()
    }

    /// Term B: total reconfiguration, ns.
    pub fn total_reconfig_ns(&self) -> f64 {
        self.epochs.iter().map(|e| e.reconfig_ns).sum()
    }

    /// Eq. 1 total, ns.
    pub fn total_ns(&self) -> f64 {
        self.total_compute_ns() + self.total_reconfig_ns()
    }
}

/// Runs epochs on an array, applying partial reconfiguration between them.
#[derive(Debug)]
pub struct EpochRunner {
    /// The simulated array.
    pub sim: ArraySim,
    /// The cost model used for reconfiguration stalls.
    pub cost: CostModel,
    /// Every verifier finding gathered so far (warnings included; errors
    /// additionally abort the offending epoch as [`SimError::Verify`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Summary telemetry events, one small batch per executed epoch
    /// (always on; the trace and counters views fold over these).
    events: Vec<Event>,
    /// Epochs executed so far (indexes the event stream).
    epochs_run: usize,
    prev_links: LinkConfig,
    checker: ScheduleChecker,
}

impl EpochRunner {
    /// Wraps an array.
    pub fn new(sim: ArraySim, cost: CostModel) -> EpochRunner {
        let prev_links = sim.links.clone();
        let checker = ScheduleChecker::new(sim.mesh);
        EpochRunner {
            sim,
            cost,
            diagnostics: Vec::new(),
            events: Vec::new(),
            epochs_run: 0,
            prev_links,
            checker,
        }
    }

    /// The summary event stream recorded so far (fine-grained engine
    /// events go to the sim's attached sink instead; see
    /// [`ArraySim::attach_sink`]).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Per-tile activity trace, rebuilt from the event stream.
    pub fn trace(&self) -> Trace {
        Trace::from_events(&self.events)
    }

    /// The metrics registry folded from the event stream.
    pub fn counters(&self) -> Counters {
        Counters::from_events(&self.events)
    }

    /// Records a summary event and forwards it to the sim's attached
    /// sink (if any) so external consumers see one merged stream.
    fn emit(&mut self, ev: Event) {
        self.sim.emit(&ev);
        self.events.push(ev);
    }

    /// Closes one executed epoch: flushes open engine segments and
    /// emits the per-tile activity summaries and the end bracket.
    fn finish_epoch(&mut self, epoch: usize, name: &str, before: &[TileStats]) {
        self.sim.flush_segments();
        let deltas: Vec<(TileId, TileStats)> = self
            .sim
            .stats
            .iter()
            .zip(before)
            .enumerate()
            .map(|(t, (now, then))| {
                (
                    t,
                    TileStats {
                        busy_cycles: now.busy_cycles - then.busy_cycles,
                        reconfig_cycles: now.reconfig_cycles - then.reconfig_cycles,
                        words_sent: now.words_sent - then.words_sent,
                        words_received: now.words_received - then.words_received,
                    },
                )
            })
            .collect();
        for (t, d) in deltas {
            self.emit(Event::TileEpoch {
                epoch,
                tile: t,
                busy: d.busy_cycles,
                stalled: d.reconfig_cycles,
                words_sent: d.words_sent,
                words_received: d.words_received,
            });
        }
        let at = self.sim.now;
        self.emit(Event::EpochEnd {
            epoch,
            name: name.to_string(),
            at,
        });
        self.epochs_run += 1;
    }

    /// Applies an epoch's reconfiguration and runs it to quiescence.
    ///
    /// Under [`VerifyMode::Strict`] the epoch is first checked by the
    /// schedule verifier (which carries initialized-memory state across
    /// the epochs this runner has executed); error findings abort the
    /// switch before anything is applied.
    pub fn run_epoch(&mut self, epoch: &Epoch) -> Result<EpochReport, SimError> {
        if self.sim.verify != VerifyMode::Off {
            let found = self.checker.check_epoch(&epoch_spec(epoch));
            let errs: Vec<Diagnostic> = cgra_verify::errors(&found).cloned().collect();
            self.diagnostics.extend(found);
            if !errs.is_empty() {
                return Err(SimError::Verify(errs));
            }
        }
        // Build the reconfiguration plan.
        let mut plan = ReconfigPlan::from_link_change(&self.prev_links, &epoch.links);
        for (t, setup) in &epoch.setups {
            plan.add_tile(
                *t,
                TileReconfig {
                    program: setup.program.as_ref().map(|p| encode_program(p)),
                    data_patches: setup.data_patches.clone(),
                },
            );
        }
        let reconfig_ns = plan.total_ns(&self.cost);
        let stall_cycles = self.cost.stall_cycles(reconfig_ns);
        let epoch_idx = self.epochs_run;
        let start = self.sim.now;
        self.emit(Event::EpochBegin {
            epoch: epoch_idx,
            name: epoch.name.clone(),
            at: start,
        });
        self.emit(Event::Reconfig {
            epoch: epoch_idx,
            at: start,
            breakdown: plan.breakdown(),
            reconfig_ns,
            stall_cycles,
            stalled_tiles: plan.stalled_tiles(),
        });

        // Apply the rewrites, stalling only the touched tiles (overlap!).
        for (t, setup) in &epoch.setups {
            if let Some(prog) = &setup.program {
                self.sim.load_program(*t, &encode_program(prog))?;
            }
            for patch in &setup.data_patches {
                self.sim.tiles[*t].dmem.load(patch.base, &patch.words)?;
            }
        }
        for t in plan.stalled_tiles() {
            self.sim.stall_tile(t, stall_cycles);
        }
        self.sim.set_links(epoch.links.clone())?;
        self.prev_links = epoch.links.clone();

        let stats_before = self.sim.stats.clone();
        let cycles = self.sim.run_until_quiesced(epoch.budget)?;
        self.finish_epoch(epoch_idx, &epoch.name, &stats_before);
        let sent_after: u64 = self.sim.stats.iter().map(|s| s.words_sent).sum();
        let sent_before: u64 = stats_before.iter().map(|s| s.words_sent).sum();
        Ok(EpochReport {
            name: epoch.name.clone(),
            compute_ns: self.cost.exec_ns(cycles.saturating_sub(stall_cycles)),
            reconfig_ns,
            links_changed: plan.changed_links,
            words_copied: sent_after - sent_before,
        })
    }

    /// Runs an epoch whose reconfiguration arrives as a serialized partial
    /// bitstream — the prototype's CompactFlash -> ICAP path. The stream is
    /// parsed, the rewritten tiles stall for the ICAP time, the link
    /// settings it carries are applied, and the epoch runs to quiescence.
    pub fn run_bitstream_epoch(
        &mut self,
        name: &str,
        bytes: &[u8],
        budget: u64,
    ) -> Result<EpochReport, SimError> {
        let parsed: ParsedBitstream =
            bitstream::parse(bytes).map_err(|e| SimError::Bitstream(e.to_string()))?;
        // Target links: current config with the stream's settings applied.
        let mut links = self.sim.links.clone();
        for (t, d) in &parsed.links {
            links.set(*t, *d);
        }
        let mut plan = parsed.plan.clone();
        plan.changed_links = self.prev_links.delta(&links);
        let reconfig_ns = plan.total_ns(&self.cost);
        let stall_cycles = self.cost.stall_cycles(reconfig_ns);
        let epoch_idx = self.epochs_run;
        let start = self.sim.now;
        self.emit(Event::EpochBegin {
            epoch: epoch_idx,
            name: name.to_string(),
            at: start,
        });
        self.emit(Event::Reconfig {
            epoch: epoch_idx,
            at: start,
            breakdown: plan.breakdown(),
            reconfig_ns,
            stall_cycles,
            stalled_tiles: plan.stalled_tiles(),
        });

        bitstream::apply(&parsed, &mut self.sim.tiles, &mut self.sim.links)
            .map_err(SimError::Fabric)?;
        // Re-arm reprogrammed PEs and stall rewritten tiles.
        for (t, rc) in &parsed.plan.tiles {
            if rc.program.is_some() {
                self.sim.states[*t].soft_reset();
            }
        }
        for t in plan.stalled_tiles() {
            self.sim.stall_tile(t, stall_cycles);
        }
        self.sim.set_links(links.clone())?;
        self.prev_links = links;

        let stats_before = self.sim.stats.clone();
        let cycles = self.sim.run_until_quiesced(budget)?;
        self.finish_epoch(epoch_idx, name, &stats_before);
        let sent_after: u64 = self.sim.stats.iter().map(|s| s.words_sent).sum();
        let sent_before: u64 = stats_before.iter().map(|s| s.words_sent).sum();
        Ok(EpochReport {
            name: name.to_string(),
            compute_ns: self.cost.exec_ns(cycles.saturating_sub(stall_cycles)),
            reconfig_ns,
            links_changed: plan.changed_links,
            words_copied: sent_after - sent_before,
        })
    }

    /// Runs a whole schedule.
    ///
    /// Unlike [`EpochRunner::run_epoch`] (which only sees one epoch at a
    /// time), this has the whole schedule in hand, so under any verify
    /// mode other than [`VerifyMode::Off`] it first runs the
    /// `cgra-lint` inter-epoch pass at its default levels: deny-level
    /// findings (e.g. a reconfiguration patch clobbering live data,
    /// [`cgra_verify::Code::ClobberByPatch`]) abort before anything is
    /// applied, warnings land in [`EpochRunner::diagnostics`]. The lint
    /// pass assumes a cold array, so it is skipped when this runner has
    /// already executed epochs.
    pub fn run_schedule(&mut self, epochs: &[Epoch]) -> Result<RunReport, SimError> {
        if self.sim.verify != VerifyMode::Off && self.checker.epochs_seen() == 0 {
            let specs: Vec<EpochSpec> = epochs.iter().map(epoch_spec).collect();
            let lint = cgra_lint::lint_schedule(
                self.sim.mesh,
                &specs,
                &cgra_lint::LintLevels::default(),
                &self.cost,
            );
            let errs: Vec<Diagnostic> = cgra_verify::errors(&lint.diags).cloned().collect();
            self.diagnostics.extend(lint.diags);
            if !errs.is_empty() {
                return Err(SimError::Verify(errs));
            }
        }
        let mut report = RunReport::default();
        for e in epochs {
            report.epochs.push(self.run_epoch(e)?);
        }
        Ok(report)
    }

    /// Runs a whole schedule under a hoisting plan from
    /// `cgra_lint::overlap`: hoisted reconfiguration payloads stream into
    /// the double-buffered shadow plane during their donor epochs' idle
    /// windows and commit — at zero foreground ICAP cost — at the switch
    /// into their target epoch.
    ///
    /// The execution is **bit-exact** with [`EpochRunner::run_schedule`]:
    /// a committed payload is byte-identical to the slot it replaces and
    /// lands at the same switch point, every touched tile (committed or
    /// foreground) still waits out the — now shorter — foreground stall,
    /// and untouched tiles stay halted; only the Eq. 1 reconfiguration
    /// term shrinks. Under any verify mode other than [`VerifyMode::Off`]
    /// this is enforced up front: the plan's certificates are re-derived
    /// by `cgra_lint::verify_hoists` and a single failed proof aborts the
    /// run ([`cgra_verify::Code::HoistRefused`]) before anything is
    /// applied, exactly like a verifier error; the cold-run inter-epoch
    /// lint gate of [`EpochRunner::run_schedule`] applies unchanged.
    pub fn run_hoisted_schedule(
        &mut self,
        epochs: &[Epoch],
        plan: &cgra_lint::HoistPlan,
    ) -> Result<RunReport, SimError> {
        if self.sim.verify != VerifyMode::Off {
            let specs: Vec<EpochSpec> = epochs.iter().map(epoch_spec).collect();
            let refused = cgra_lint::verify_hoists(self.sim.mesh, &specs, plan, &self.cost);
            if !refused.is_empty() {
                let errs: Vec<Diagnostic> = cgra_verify::errors(&refused).cloned().collect();
                self.diagnostics.extend(refused);
                return Err(SimError::Verify(errs));
            }
            if self.checker.epochs_seen() == 0 {
                let lint = cgra_lint::lint_schedule(
                    self.sim.mesh,
                    &specs,
                    &cgra_lint::LintLevels::default(),
                    &self.cost,
                );
                let errs: Vec<Diagnostic> = cgra_verify::errors(&lint.diags).cloned().collect();
                self.diagnostics.extend(lint.diags);
                if !errs.is_empty() {
                    return Err(SimError::Verify(errs));
                }
            }
        }
        let mut shadow = ShadowConfig::new(self.sim.mesh.tiles(), plan.shadow_depth.max(1));
        let mut report = RunReport::default();
        for (j, e) in epochs.iter().enumerate() {
            report
                .epochs
                .push(self.run_epoch_hoisted(e, j, plan, &mut shadow)?);
            // Payloads whose last donor window is inside epoch `j` are
            // fully streamed by its end: stage them now.
            for h in plan.hoists.iter() {
                if h.claims.iter().map(|c| c.epoch).max() != Some(j) {
                    continue;
                }
                let Some((tile, setup)) = epochs.get(h.target).and_then(|t| t.setups.get(h.slot))
                else {
                    continue; // verify_hoists already vouched; unreachable
                };
                let rc = TileReconfig {
                    program: setup.program.as_ref().map(|p| encode_program(p)),
                    data_patches: setup.data_patches.clone(),
                };
                shadow
                    .stage(*tile, h.target, rc)
                    .map_err(|e| SimError::Bitstream(format!("shadow stage: {e}")))?;
                let at = self.sim.now;
                let pending = shadow.pending(*tile);
                self.emit(Event::ShadowPrefetch {
                    epoch: j,
                    at,
                    tile: *tile,
                    target: h.target,
                    payload_ns: h.payload_ns,
                    pending,
                });
            }
        }
        Ok(report)
    }

    /// One epoch of a hoisted run: hoisted slots commit from the shadow
    /// plane (zero foreground ICAP time), the rest stream through the
    /// foreground as usual, and *every* touched tile stalls for the
    /// reduced foreground switch time — keeping all re-armed tiles
    /// cycle-aligned, which is what makes the replay bit-exact.
    fn run_epoch_hoisted(
        &mut self,
        epoch: &Epoch,
        idx: usize,
        plan: &cgra_lint::HoistPlan,
        shadow: &mut ShadowConfig,
    ) -> Result<EpochReport, SimError> {
        if self.sim.verify != VerifyMode::Off {
            // The checker sees the *original* epoch: a commit is the same
            // write at the same point, so legality and the threaded
            // may-init state are those of the unhoisted schedule.
            let found = self.checker.check_epoch(&epoch_spec(epoch));
            let errs: Vec<Diagnostic> = cgra_verify::errors(&found).cloned().collect();
            self.diagnostics.extend(found);
            if !errs.is_empty() {
                return Err(SimError::Verify(errs));
            }
        }
        // Foreground plan: the link delta plus the slots that were not
        // hoisted. The full plan still names every touched tile — they
        // all stall through the (shorter) switch.
        let mut fg = ReconfigPlan::from_link_change(&self.prev_links, &epoch.links);
        let mut full = ReconfigPlan::from_link_change(&self.prev_links, &epoch.links);
        for (slot, (t, setup)) in epoch.setups.iter().enumerate() {
            let rc = TileReconfig {
                program: setup.program.as_ref().map(|p| encode_program(p)),
                data_patches: setup.data_patches.clone(),
            };
            full.add_tile(*t, rc.clone());
            if !plan.is_hoisted(idx, slot) {
                fg.add_tile(*t, rc);
            }
        }
        let reconfig_ns = fg.total_ns(&self.cost);
        let stall_cycles = self.cost.stall_cycles(reconfig_ns);
        let epoch_idx = self.epochs_run;
        let start = self.sim.now;
        self.emit(Event::EpochBegin {
            epoch: epoch_idx,
            name: epoch.name.clone(),
            at: start,
        });
        self.emit(Event::Reconfig {
            epoch: epoch_idx,
            at: start,
            breakdown: fg.breakdown(),
            reconfig_ns,
            stall_cycles,
            stalled_tiles: full.stalled_tiles(),
        });

        // Apply the switch: commits swap in from the shadow plane, the
        // rest streams through the foreground.
        for (slot, (t, setup)) in epoch.setups.iter().enumerate() {
            if plan.is_hoisted(idx, slot) {
                let Some(rc) = shadow.commit(*t, idx) else {
                    return Err(SimError::Bitstream(format!(
                        "shadow commit: tile {t} has no payload staged for epoch {idx}"
                    )));
                };
                let payload_ns = self.cost.data_reload_ns(rc.data_words())
                    + self.cost.instr_reload_ns(rc.instr_words());
                if let Some(img) = &rc.program {
                    self.sim.load_program(*t, img)?;
                }
                for patch in &rc.data_patches {
                    self.sim.tiles[*t].dmem.load(patch.base, &patch.words)?;
                }
                self.emit(Event::ShadowCommit {
                    epoch: epoch_idx,
                    at: start,
                    tile: *t,
                    payload_ns,
                });
            } else {
                if let Some(prog) = &setup.program {
                    self.sim.load_program(*t, &encode_program(prog))?;
                }
                for patch in &setup.data_patches {
                    self.sim.tiles[*t].dmem.load(patch.base, &patch.words)?;
                }
            }
        }
        for t in full.stalled_tiles() {
            self.sim.stall_tile(t, stall_cycles);
        }
        self.sim.set_links(epoch.links.clone())?;
        self.prev_links = epoch.links.clone();

        let stats_before = self.sim.stats.clone();
        let cycles = self.sim.run_until_quiesced(epoch.budget)?;
        self.finish_epoch(epoch_idx, &epoch.name, &stats_before);
        let sent_after: u64 = self.sim.stats.iter().map(|s| s.words_sent).sum();
        let sent_before: u64 = stats_before.iter().map(|s| s.words_sent).sum();
        Ok(EpochReport {
            name: epoch.name.clone(),
            compute_ns: self.cost.exec_ns(cycles.saturating_sub(stall_cycles)),
            reconfig_ns,
            links_changed: fg.changed_links,
            words_copied: sent_after - sent_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_fabric::{Direction, Mesh, Word};
    use cgra_isa::ops::{at_off, d, rem_off};
    use cgra_isa::ProgramBuilder;

    fn copy_prog(src: u16, dst: u16, n: i32) -> Vec<Instr> {
        let mut p = ProgramBuilder::new();
        p.ldar(0, src);
        p.ldar(1, dst);
        p.ldi(d(500), n);
        let l = p.here_label();
        p.mov(rem_off(1, 0), at_off(0, 0));
        p.adar(0, 1);
        p.adar(1, 1);
        p.djnz(d(500), l);
        p.halt();
        p.build().unwrap()
    }

    fn idle_prog() -> Vec<Instr> {
        let mut p = ProgramBuilder::new();
        p.halt();
        p.build().unwrap()
    }

    #[test]
    fn two_epoch_ring() {
        // Epoch 1: tile 0 -> tile 1; epoch 2: tile 1 -> tile 0.
        let mesh = Mesh::new(1, 2);
        let mut sim = ArraySim::new(mesh);
        for i in 0..4 {
            sim.tiles[0].dmem.poke(i, Word::wrap(7 + i as i64)).unwrap();
        }
        let cost = CostModel::with_link_cost(100.0);
        let mut runner = EpochRunner::new(sim, cost);
        let e1 = Epoch {
            name: "east".into(),
            links: mesh.disconnected().with(0, Direction::East),
            setups: vec![
                (
                    0,
                    TileSetup {
                        program: Some(copy_prog(0, 100, 4)),
                        data_patches: vec![],
                    },
                ),
                (
                    1,
                    TileSetup {
                        program: Some(idle_prog()),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 10_000,
        };
        let e2 = Epoch {
            name: "west".into(),
            links: mesh.disconnected().with(1, Direction::West),
            setups: vec![
                (
                    1,
                    TileSetup {
                        program: Some(copy_prog(100, 200, 4)),
                        data_patches: vec![],
                    },
                ),
                (
                    0,
                    TileSetup {
                        program: Some(idle_prog()),
                        data_patches: vec![],
                    },
                ),
            ],
            budget: 10_000,
        };
        let report = runner.run_schedule(&[e1, e2]).unwrap();
        // Data made the round trip.
        for i in 0..4 {
            assert_eq!(
                runner.sim.tiles[0].dmem.peek(200 + i).unwrap().value(),
                7 + i as i64
            );
        }
        assert_eq!(report.epochs.len(), 2);
        // Epoch 1 changed 1 link (none -> east); epoch 2 changed 2.
        assert_eq!(report.epochs[0].links_changed, 1);
        assert_eq!(report.epochs[1].links_changed, 2);
        assert!(report.epochs[1].reconfig_ns >= 200.0);
        assert_eq!(report.epochs[0].words_copied, 4);
        assert!(report.total_ns() > 0.0);
    }

    #[test]
    fn data_patch_applied_and_costed() {
        let mesh = Mesh::new(1, 1);
        let sim = ArraySim::new(mesh);
        let cost = CostModel::default();
        let mut runner = EpochRunner::new(sim, cost);
        let epoch = Epoch {
            name: "patch".into(),
            links: mesh.disconnected(),
            setups: vec![(
                0,
                TileSetup {
                    program: Some(idle_prog()),
                    data_patches: vec![DataPatch::new(10, vec![Word::wrap(42); 3])],
                },
            )],
            budget: 100,
        };
        let rep = runner.run_epoch(&epoch).unwrap();
        assert_eq!(runner.sim.tiles[0].dmem.peek(12).unwrap().value(), 42);
        // 3 words + 1 instruction through the ICAP.
        let want = cost.data_reload_ns(3) + cost.instr_reload_ns(1);
        assert!((rep.reconfig_ns - want).abs() < 1e-9);
    }

    #[test]
    fn untouched_tiles_overlap_reconfig() {
        // Tile 1 computes while tile 0 is being reconfigured.
        let mesh = Mesh::new(1, 2);
        let mut sim = ArraySim::new(mesh);
        // Preload tile 1 with a long-running counter.
        let mut p = ProgramBuilder::new();
        p.ldi(d(0), 400);
        let l = p.here_label();
        p.djnz(d(0), l);
        p.halt();
        sim.load_program(1, &encode_program(&p.build().unwrap()))
            .unwrap();
        let cost = CostModel::default();
        let mut runner = EpochRunner::new(sim, cost);
        let epoch = Epoch {
            name: "reload-tile0".into(),
            links: mesh.disconnected(),
            setups: vec![(
                0,
                TileSetup {
                    program: Some(idle_prog()),
                    data_patches: vec![DataPatch::new(0, vec![Word::ZERO; 100])],
                },
            )],
            budget: 100_000,
        };
        runner.run_epoch(&epoch).unwrap();
        // Tile 0 stalled; tile 1 never did.
        assert!(runner.sim.stats[0].reconfig_cycles > 0);
        assert_eq!(runner.sim.stats[1].reconfig_cycles, 0);
        assert!(runner.sim.stats[1].busy_cycles >= 400);
    }
}

#[cfg(test)]
mod bitstream_tests {
    use super::*;
    use crate::engine::ArraySim;
    use cgra_fabric::bitstream::serialize;
    use cgra_fabric::{Direction, Mesh, Word};
    use cgra_isa::encode_program as enc;
    use cgra_isa::ProgramBuilder;

    #[test]
    fn bitstream_epoch_reprograms_and_runs() {
        use cgra_isa::ops::{at_off, d, rem_off};
        let mesh = Mesh::new(1, 2);
        let mut sim = ArraySim::new(mesh);
        for i in 0..4 {
            sim.tiles[0]
                .dmem
                .poke(i, Word::wrap(60 + i as i64))
                .unwrap();
        }
        // Build the copy program and ship it INSIDE a bitstream, together
        // with the link setting and a data patch (the copy count variable).
        let mut p = ProgramBuilder::new();
        p.ldar(0, 0);
        p.ldar(1, 32);
        let l = p.here_label();
        p.mov(rem_off(1, 0), at_off(0, 0));
        p.adar(0, 1);
        p.adar(1, 1);
        p.djnz(d(500), l);
        p.halt();
        let prog = enc(&p.build().unwrap());

        let mut plan = ReconfigPlan::default();
        plan.add_tile(
            0,
            TileReconfig {
                program: Some(prog),
                data_patches: vec![DataPatch::new(500, vec![Word::wrap(4)])],
            },
        );
        let bytes = serialize(&plan, &[(0, Some(Direction::East))]);

        let cost = CostModel::with_link_cost(100.0);
        let mut runner = EpochRunner::new(sim, cost);
        let rep = runner
            .run_bitstream_epoch("flash epoch", &bytes, 100_000)
            .unwrap();
        // The copy ran: tile 1 received the words.
        for i in 0..4 {
            assert_eq!(
                runner.sim.tiles[1].dmem.peek(32 + i).unwrap().value(),
                60 + i as i64
            );
        }
        assert_eq!(rep.links_changed, 1);
        assert_eq!(rep.words_copied, 4);
        // Reconfig charged: program bytes + 1 data word + 1 link.
        let plan_bytes = plan.bitstream_bytes();
        let want = cost.icap_ns(plan_bytes) + 100.0;
        assert!((rep.reconfig_ns - want).abs() < 1e-9);
    }

    #[test]
    fn corrupt_bitstream_rejected() {
        let mesh = Mesh::new(1, 1);
        let sim = ArraySim::new(mesh);
        let mut runner = EpochRunner::new(sim, CostModel::default());
        assert!(matches!(
            runner.run_bitstream_epoch("bad", b"garbage", 100),
            Err(SimError::Bitstream(_))
        ));
    }
}
