//! Cycle-driven simulation of the tile array.
//!
//! The array is synchronous: every active tile retires one instruction per
//! cycle. Remote writes travel over the writer's single active outgoing
//! link and land in the neighbour's data memory at the end of the cycle
//! (semi-systolic shared-memory communication).

use cgra_fabric::{FabricError, LinkConfig, Mesh, Tile, TileId, Word};
use cgra_isa::{step, ExecError, PeState, StepEffect};
use cgra_telemetry::{Coalescer, Event, EventSink, SegState};
use cgra_verify::Diagnostic;

/// Whether the simulator statically verifies programs and epochs before
/// running them (see `cgra-verify`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Skip static verification entirely.
    Off,
    /// Verify; error-severity findings abort the load or epoch switch.
    /// Warnings are collected but don't stop the run.
    Strict,
}

impl Default for VerifyMode {
    /// Verification is on by default in debug builds and opt-in in
    /// release builds (large design-space sweeps shouldn't pay for it
    /// unless asked).
    fn default() -> VerifyMode {
        if cfg!(debug_assertions) {
            VerifyMode::Strict
        } else {
            VerifyMode::Off
        }
    }
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A PE faulted.
    Exec {
        /// Faulting tile.
        tile: TileId,
        /// Underlying error.
        err: ExecError,
    },
    /// A remote write was issued with no active outgoing link.
    UnroutedWrite {
        /// Offending tile.
        tile: TileId,
    },
    /// Fabric-level error (bad link config, unknown tile...).
    Fabric(FabricError),
    /// A partial bitstream failed to parse.
    Bitstream(String),
    /// The cycle budget elapsed before the array quiesced.
    Deadline {
        /// Budget that elapsed.
        budget: u64,
    },
    /// Static verification rejected a program or epoch (error-severity
    /// findings only; see [`VerifyMode`]).
    Verify(Vec<Diagnostic>),
}

impl From<FabricError> for SimError {
    fn from(e: FabricError) -> Self {
        SimError::Fabric(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Exec { tile, err } => write!(f, "tile {tile}: {err}"),
            SimError::UnroutedWrite { tile } => {
                write!(f, "tile {tile} wrote remotely with no active link")
            }
            SimError::Fabric(e) => write!(f, "fabric: {e}"),
            SimError::Bitstream(e) => write!(f, "bitstream: {e}"),
            SimError::Deadline { budget } => {
                write!(f, "array did not quiesce within {budget} cycles")
            }
            SimError::Verify(diags) => {
                write!(f, "verification failed with {} finding(s)", diags.len())?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Per-tile activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Cycles spent executing instructions.
    pub busy_cycles: u64,
    /// Cycles spent stalled for partial reconfiguration.
    pub reconfig_cycles: u64,
    /// Remote words this tile sent.
    pub words_sent: u64,
    /// Remote words that landed in this tile's data memory.
    pub words_received: u64,
}

/// Fine-grained telemetry state, live only while a sink is attached.
/// The coalescer turns the per-cycle tile states into maximal
/// [`Event::Segment`]s so the sink sees runs, not cycles.
#[derive(Debug)]
struct TelemetryState {
    sink: Box<dyn EventSink>,
    coalesce: Coalescer,
}

/// The simulated array: mesh + per-tile hardware and PE state.
#[derive(Debug)]
pub struct ArraySim {
    /// Topology.
    pub mesh: Mesh,
    /// Tile hardware (memories).
    pub tiles: Vec<Tile>,
    /// PE architectural state.
    pub states: Vec<PeState>,
    /// Current interconnect configuration.
    pub links: LinkConfig,
    /// Per-tile reconfiguration stall counters (cycles remaining).
    stall: Vec<u64>,
    /// Per-tile activity counters.
    pub stats: Vec<TileStats>,
    /// Global cycle counter.
    pub now: u64,
    /// Static-verification policy for program loads and epoch switches.
    pub verify: VerifyMode,
    /// Fine-grained event telemetry; `None` (the default) costs one
    /// branch per tile per cycle and nothing else.
    telemetry: Option<TelemetryState>,
}

impl ArraySim {
    /// Builds an idle array on `mesh` with halted PEs and empty memories.
    pub fn new(mesh: Mesh) -> ArraySim {
        let n = mesh.tiles();
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            let mut st = PeState::new();
            st.halted = true; // idle until a program is loaded
            states.push(st);
        }
        ArraySim {
            mesh,
            tiles: (0..n).map(Tile::new).collect(),
            states,
            links: LinkConfig::disconnected(n),
            stall: vec![0; n],
            stats: vec![TileStats::default(); n],
            now: 0,
            verify: VerifyMode::default(),
            telemetry: None,
        }
    }

    /// Attaches an event sink: from now on the engine emits coalesced
    /// per-tile [`Event::Segment`]s and per-word [`Event::LinkTransfer`]s
    /// into it. Replaces (and flushes) any previously attached sink.
    pub fn attach_sink(&mut self, sink: Box<dyn EventSink>) {
        self.detach_sink();
        let tiles = self.tiles.len();
        self.telemetry = Some(TelemetryState {
            sink,
            coalesce: Coalescer::new(tiles),
        });
    }

    /// Detaches the sink, closing any open segments at the current
    /// cycle, and returns it. The engine reverts to zero-overhead mode.
    pub fn detach_sink(&mut self) -> Option<Box<dyn EventSink>> {
        let now = self.now;
        self.telemetry.take().map(|mut ts| {
            ts.coalesce.flush(now, &mut *ts.sink);
            ts.sink
        })
    }

    /// True when a telemetry sink is attached.
    pub fn sink_attached(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Closes open segments at the current cycle without detaching
    /// (epoch boundaries call this so segments never straddle epochs).
    pub fn flush_segments(&mut self) {
        let now = self.now;
        if let Some(ts) = self.telemetry.as_mut() {
            ts.coalesce.flush(now, &mut *ts.sink);
        }
    }

    /// Forwards a summary event to the attached sink, if any (the epoch
    /// runner routes its always-on events through here).
    pub fn emit(&mut self, ev: &Event) {
        if let Some(ts) = self.telemetry.as_mut() {
            ts.sink.record(ev);
        }
    }

    /// Replaces the interconnect configuration (validated against the mesh).
    pub fn set_links(&mut self, links: LinkConfig) -> Result<(), SimError> {
        self.mesh.validate_links(&links)?;
        self.links = links;
        Ok(())
    }

    /// Loads a program onto tile `t` and arms its PE at pc 0.
    ///
    /// Under [`VerifyMode::Strict`] the decoded image is run through the
    /// program-level verifier first (with permissive preconditions — the
    /// host may have poked any word and ARs may carry over), and
    /// error-severity findings reject the load as [`SimError::Verify`].
    pub fn load_program(&mut self, t: TileId, image: &[u128]) -> Result<(), SimError> {
        if self.verify != VerifyMode::Off {
            self.verify_image(image)?;
        }
        let tile = self
            .tiles
            .get_mut(t)
            .ok_or(FabricError::UnknownTile { tile: t })?;
        tile.load_program(image)?;
        self.states[t].soft_reset();
        Ok(())
    }

    /// Statically verifies an encoded program image; `Err` carries the
    /// error-severity findings.
    pub fn verify_image(&self, image: &[u128]) -> Result<(), SimError> {
        use cgra_verify::{DmemInit, VerifyOptions};
        let prog = match cgra_isa::decode_program(image) {
            Ok(p) => p,
            // Undecodable slots fault at execution time with a precise
            // pc; don't mask that path here.
            Err(_) => return Ok(()),
        };
        let opts = VerifyOptions {
            dmem_init: DmemInit::Everything,
            ars_preloaded: true,
            ..VerifyOptions::default()
        };
        let diags = cgra_verify::verify_program_with(&prog, &opts);
        if cgra_verify::has_errors(&diags) {
            return Err(SimError::Verify(
                cgra_verify::errors(&diags).cloned().collect(),
            ));
        }
        Ok(())
    }

    /// Stalls tile `t` for `cycles` (partial reconfiguration in progress);
    /// the rest of the array keeps computing.
    pub fn stall_tile(&mut self, t: TileId, cycles: u64) {
        self.stall[t] = self.stall[t].max(cycles);
    }

    /// True when every PE is halted and no reconfiguration is in flight.
    pub fn quiesced(&self) -> bool {
        self.states.iter().all(|s| s.halted) && self.stall.iter().all(|&s| s == 0)
    }

    /// Advances the whole array by one cycle.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        let cyc = self.now;
        self.now += 1;
        let mut writes: Vec<(TileId, TileId, usize, Word)> = Vec::new();
        for t in 0..self.tiles.len() {
            let state = if self.stall[t] > 0 {
                self.stall[t] -= 1;
                self.stats[t].reconfig_cycles += 1;
                Some(SegState::Stall)
            } else if self.states[t].halted {
                None
            } else {
                let effect = step(&mut self.tiles[t], &mut self.states[t])
                    .map_err(|err| SimError::Exec { tile: t, err })?;
                self.stats[t].busy_cycles += 1;
                if let StepEffect::RemoteWrite { addr, value } = effect {
                    let dir = self
                        .links
                        .get(t)
                        .ok_or(SimError::UnroutedWrite { tile: t })?;
                    let dst = self
                        .mesh
                        .neighbour(t, dir)
                        .ok_or(FabricError::NotNeighbours { from: t, to: t })?;
                    self.stats[t].words_sent += 1;
                    writes.push((t, dst, addr, value));
                }
                Some(SegState::Busy)
            };
            if let Some(ts) = self.telemetry.as_mut() {
                ts.coalesce.observe(t, state, cyc, &mut *ts.sink);
            }
        }
        // Remote writes land at the end of the cycle.
        for (src, dst, addr, value) in writes {
            self.tiles[dst].dmem.poke(addr, value)?;
            self.stats[dst].words_received += 1;
            if let Some(ts) = self.telemetry.as_mut() {
                ts.sink.record(&Event::LinkTransfer {
                    from: src,
                    to: dst,
                    at: self.now,
                    words: 1,
                });
            }
        }
        Ok(())
    }

    /// Runs until the array quiesces, up to `budget` cycles.
    pub fn run_until_quiesced(&mut self, budget: u64) -> Result<u64, SimError> {
        let start = self.now;
        while !self.quiesced() {
            if self.now - start >= budget {
                return Err(SimError::Deadline { budget });
            }
            self.step_cycle()?;
        }
        Ok(self.now - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_fabric::Direction;
    use cgra_isa::ops::{at_off, d, rem_off};
    use cgra_isa::{encode_program, ProgramBuilder};

    fn copy_prog(src: u16, dst: u16, n: i32) -> Vec<u128> {
        let mut p = ProgramBuilder::new();
        p.ldar(0, src);
        p.ldar(1, dst);
        p.ldi(d(500), n);
        let l = p.here_label();
        p.mov(rem_off(1, 0), at_off(0, 0));
        p.adar(0, 1);
        p.adar(1, 1);
        p.djnz(d(500), l);
        p.halt();
        encode_program(&p.build().unwrap())
    }

    #[test]
    fn producer_ships_block_to_consumer() {
        let mesh = Mesh::new(1, 2);
        let mut sim = ArraySim::new(mesh);
        sim.set_links(mesh.disconnected().with(0, Direction::East))
            .unwrap();
        for i in 0..8 {
            sim.tiles[0]
                .dmem
                .poke(i, Word::wrap(100 + i as i64))
                .unwrap();
        }
        sim.load_program(0, &copy_prog(0, 64, 8)).unwrap();
        let cycles = sim.run_until_quiesced(10_000).unwrap();
        for i in 0..8 {
            assert_eq!(
                sim.tiles[1].dmem.peek(64 + i).unwrap().value(),
                100 + i as i64
            );
        }
        assert_eq!(sim.stats[0].words_sent, 8);
        assert_eq!(sim.stats[1].words_received, 8);
        assert!(cycles > 8);
        assert_eq!(sim.stats[1].busy_cycles, 0);
    }

    #[test]
    fn attached_sink_sees_segments_and_transfers() {
        use cgra_telemetry::Recorder;
        let mesh = Mesh::new(1, 2);
        let mut sim = ArraySim::new(mesh);
        sim.set_links(mesh.disconnected().with(0, Direction::East))
            .unwrap();
        for i in 0..4 {
            sim.tiles[0].dmem.poke(i, Word::wrap(7 + i as i64)).unwrap();
        }
        sim.load_program(0, &copy_prog(0, 64, 4)).unwrap();
        let rec = Recorder::new();
        sim.attach_sink(Box::new(rec.clone()));
        assert!(sim.sink_attached());
        sim.run_until_quiesced(10_000).unwrap();
        sim.detach_sink();
        assert!(!sim.sink_attached());
        let evs = rec.events();
        // One maximal busy segment for tile 0, spanning the whole run.
        let segs: Vec<_> = evs
            .iter()
            .filter(|e| matches!(e, Event::Segment { tile: 0, .. }))
            .collect();
        assert_eq!(segs.len(), 1);
        if let Event::Segment {
            state, start, end, ..
        } = segs[0]
        {
            assert_eq!(*state, SegState::Busy);
            assert_eq!(*start, 0);
            assert_eq!(*end, sim.now);
        }
        // Every shipped word shows up as a transfer.
        let words: u64 = evs
            .iter()
            .filter_map(|e| match e {
                Event::LinkTransfer {
                    from: 0,
                    to: 1,
                    words,
                    ..
                } => Some(*words),
                _ => None,
            })
            .sum();
        assert_eq!(words, 4);
        assert_eq!(sim.stats[1].words_received, 4);
    }

    #[test]
    fn unrouted_write_faults() {
        let mesh = Mesh::new(1, 2);
        let mut sim = ArraySim::new(mesh);
        sim.load_program(0, &copy_prog(0, 0, 1)).unwrap();
        assert!(matches!(
            sim.run_until_quiesced(100),
            Err(SimError::UnroutedWrite { tile: 0 })
        ));
    }

    #[test]
    fn stalled_tile_does_not_execute_but_others_do() {
        let mesh = Mesh::new(1, 2);
        let mut sim = ArraySim::new(mesh);
        // Both tiles count to 100.
        let count = |_: u16| {
            let mut p = ProgramBuilder::new();
            p.ldi(d(0), 100);
            let l = p.here_label();
            p.djnz(d(0), l);
            p.halt();
            encode_program(&p.build().unwrap())
        };
        sim.load_program(0, &count(0)).unwrap();
        sim.load_program(1, &count(1)).unwrap();
        sim.stall_tile(0, 50);
        sim.run_until_quiesced(10_000).unwrap();
        assert_eq!(sim.stats[0].reconfig_cycles, 50);
        // Tile 1 overlapped the reconfiguration: same busy cycles, no stall.
        assert_eq!(sim.stats[1].reconfig_cycles, 0);
        assert_eq!(sim.stats[0].busy_cycles, sim.stats[1].busy_cycles);
    }

    #[test]
    fn deadline_detected() {
        let mesh = Mesh::new(1, 1);
        let mut sim = ArraySim::new(mesh);
        // Deliberately load an infinite loop; verification would (rightly)
        // reject it before the deadline machinery gets a chance.
        sim.verify = VerifyMode::Off;
        let mut p = ProgramBuilder::new();
        let l = p.here_label();
        p.jmp(l);
        sim.load_program(0, &encode_program(&p.build().unwrap()))
            .unwrap();
        assert!(matches!(
            sim.run_until_quiesced(100),
            Err(SimError::Deadline { budget: 100 })
        ));
    }

    #[test]
    fn strict_verify_rejects_nonterminating_load() {
        let mesh = Mesh::new(1, 1);
        let mut sim = ArraySim::new(mesh);
        sim.verify = VerifyMode::Strict;
        let mut p = ProgramBuilder::new();
        let l = p.here_label();
        p.jmp(l);
        let err = sim
            .load_program(0, &encode_program(&p.build().unwrap()))
            .unwrap_err();
        match err {
            SimError::Verify(diags) => {
                assert!(diags.iter().all(|d| d.is_error()));
                assert!(!diags.is_empty());
            }
            other => panic!("expected Verify, got {other:?}"),
        }
        // The PE was left untouched (still idle).
        assert!(sim.states[0].halted);
    }

    #[test]
    fn bad_link_config_rejected() {
        let mesh = Mesh::new(1, 2);
        let mut sim = ArraySim::new(mesh);
        let bad = mesh.disconnected().with(0, Direction::North);
        assert!(sim.set_links(bad).is_err());
    }
}
