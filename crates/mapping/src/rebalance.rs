//! The pipeline rebalancing algorithms of Sec. 3.5.
//!
//! All three follow the paper's incremental scheme — start from one tile
//! and add tiles one at a time, always relieving the *heaviest* tile:
//!
//! * [`rebalance_one`] (Algorithm 1): split the heaviest tile's process run
//!   at the first locally-balanced point, or clone the tile when it holds a
//!   single process,
//! * [`rebalance_two`] (Algorithm 2): after each step, re-distribute the
//!   processes of the *surrounding set* of the heaviest tile toward the
//!   set's average execution time,
//! * [`rebalance_opt`]: re-distribute the surrounding set *optimally*
//!   (min-max contiguous partition, by dynamic programming).

use crate::assign::{load_unit_time_ns, Assignment, TileLoad};
use crate::process::ProcessNetwork;
use cgra_fabric::CostModel;

/// Effective per-tile time of a load (replication divides the work).
fn eff(net: &ProcessNetwork, l: &TileLoad, cost: &CostModel) -> f64 {
    load_unit_time_ns(net, l, cost) / l.instances as f64
}

/// Index of the heaviest load.
fn heaviest(net: &ProcessNetwork, asg: &Assignment, cost: &CostModel) -> usize {
    asg.loads
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            eff(net, a, cost)
                .partial_cmp(&eff(net, b, cost))
                .expect("times are finite")
        })
        .map(|(i, _)| i)
        .expect("non-empty assignment")
}

fn range_time(net: &ProcessNetwork, first: usize, last: usize, cost: &CostModel) -> f64 {
    load_unit_time_ns(net, &TileLoad::run(first, last), cost)
}

/// The paper's split of a multi-process run: walk the prefix forward while
/// the imbalance `|Time(T2) - Time(T1)|` keeps decreasing, then step back.
/// Returns the prefix length (processes kept on the first tile).
fn paper_split(net: &ProcessNetwork, first: usize, last: usize, cost: &CostModel) -> usize {
    let len = last - first + 1;
    debug_assert!(len >= 2);
    let mut best_k = 1;
    let mut best_delta =
        (range_time(net, first, first, cost) - range_time(net, first + 1, last, cost)).abs();
    for k in 2..len {
        let delta = (range_time(net, first, first + k - 1, cost)
            - range_time(net, first + k, last, cost))
        .abs();
        if delta < best_delta {
            best_delta = delta;
            best_k = k;
        } else {
            break; // first local minimum, per Algorithm 1's until-loop
        }
    }
    best_k
}

/// One incremental step: relieve the heaviest tile with one more tile.
/// Returns `false` when no load can absorb another tile (all heavy loads
/// are single, non-splittable processes).
pub fn step_one(net: &ProcessNetwork, asg: &mut Assignment, cost: &CostModel) -> bool {
    // Candidate loads in decreasing effective time.
    let mut order: Vec<usize> = (0..asg.loads.len()).collect();
    order.sort_by(|&a, &b| {
        eff(net, &asg.loads[b], cost)
            .partial_cmp(&eff(net, &asg.loads[a], cost))
            .expect("finite")
    });
    for idx in order {
        let l = asg.loads[idx];
        if l.is_single() {
            if net.splittable[l.first] {
                asg.loads[idx].instances += 1;
                return true;
            }
            continue;
        }
        let k = paper_split(net, l.first, l.last, cost);
        let (a, b) = (
            TileLoad::run(l.first, l.first + k - 1),
            TileLoad::run(l.first + k, l.last),
        );
        asg.loads.splice(idx..=idx, [a, b]);
        return true;
    }
    false
}

/// The *surrounding set* of the heaviest load: the maximal contiguous range
/// of single-instance loads containing it, bounded by replicated loads or
/// the ends of the circuit. Returns load indices `lo..=hi`.
pub fn surrounding(asg: &Assignment, h: usize) -> (usize, usize) {
    let mut lo = h;
    while lo > 0 && asg.loads[lo - 1].instances == 1 {
        lo -= 1;
    }
    let mut hi = h;
    while hi + 1 < asg.loads.len() && asg.loads[hi + 1].instances == 1 {
        hi += 1;
    }
    (lo, hi)
}

/// Optimal contiguous partition of processes `first..=last` into exactly
/// `k` non-empty runs minimizing the maximum run time (DP, exact).
pub fn optimal_partition(
    net: &ProcessNetwork,
    first: usize,
    last: usize,
    k: usize,
    cost: &CostModel,
) -> Vec<TileLoad> {
    let n = last - first + 1;
    assert!(k >= 1 && k <= n, "cannot split {n} processes into {k} runs");
    // dp[i][j]: minimal bottleneck partitioning the first i processes into
    // j runs; cut[i][j]: where the last run starts.
    let mut dp = vec![vec![f64::INFINITY; k + 1]; n + 1];
    let mut cut = vec![vec![0usize; k + 1]; n + 1];
    dp[0][0] = 0.0;
    for j in 1..=k {
        for i in j..=n {
            for start in (j - 1)..i {
                let t = range_time(net, first + start, first + i - 1, cost);
                let v = dp[start][j - 1].max(t);
                if v < dp[i][j] {
                    dp[i][j] = v;
                    cut[i][j] = start;
                }
            }
        }
    }
    let mut runs = Vec::with_capacity(k);
    let mut i = n;
    for j in (1..=k).rev() {
        let start = cut[i][j];
        runs.push(TileLoad::run(first + start, first + i - 1));
        i = start;
    }
    runs.reverse();
    runs
}

/// Greedy average-targeting redistribution of Algorithm 2: sequentially
/// fill each tile of the set until adding the next process would exceed the
/// set's average time (while leaving enough processes for the remaining
/// tiles).
pub fn average_partition(
    net: &ProcessNetwork,
    first: usize,
    last: usize,
    k: usize,
    cost: &CostModel,
) -> Vec<TileLoad> {
    let n = last - first + 1;
    assert!(k >= 1 && k <= n);
    let total: f64 = range_time(net, first, last, cost);
    let avg = total / k as f64;
    let mut runs = Vec::with_capacity(k);
    let mut start = first;
    for tile in 0..k {
        let remaining_tiles = k - tile - 1;
        let mut end = start;
        // Must leave at least one process per remaining tile.
        let max_end = last - remaining_tiles;
        while end < max_end {
            let with_next = range_time(net, start, end + 1, cost);
            let without = range_time(net, start, end, cost);
            // Take the next process if it brings us closer to the average.
            if (with_next - avg).abs() <= (without - avg).abs() {
                end += 1;
            } else {
                break;
            }
        }
        if tile == k - 1 {
            end = last;
        }
        runs.push(TileLoad::run(start, end));
        start = end + 1;
    }
    runs
}

/// Pipeline interval of an assignment (max effective load time).
pub fn interval(net: &ProcessNetwork, asg: &Assignment, cost: &CostModel) -> f64 {
    asg.loads
        .iter()
        .map(|l| eff(net, l, cost))
        .fold(0.0f64, f64::max)
}

fn refine(net: &ProcessNetwork, asg: &mut Assignment, cost: &CostModel, optimal: bool) {
    for _ in 0..50 {
        let h = heaviest(net, asg, cost);
        if asg.loads[h].instances > 1 {
            // A cloned tile is relieved by further cloning, not by shuffling
            // processes; redistribution would destroy its replicas.
            return;
        }
        let (lo, hi) = surrounding(asg, h);
        let k = hi - lo + 1;
        if k <= 1 {
            return;
        }
        let first = asg.loads[lo].first;
        let last = asg.loads[hi].last;
        if last - first + 1 < k {
            return; // fewer processes than tiles: cannot redistribute
        }
        let new_runs = if optimal {
            optimal_partition(net, first, last, k, cost)
        } else {
            average_partition(net, first, last, k, cost)
        };
        let old: Vec<TileLoad> = asg.loads[lo..=hi].to_vec();
        if old == new_runs {
            return; // fixpoint
        }
        let before = interval(net, asg, cost);
        asg.loads.splice(lo..=hi, new_runs);
        if interval(net, asg, cost) > before + 1e-9 {
            // Redistribution worsened the bottleneck: revert and stop (the
            // greedy average targeting is a heuristic, not a descent).
            asg.loads.splice(lo..=hi, old);
            return;
        }
    }
}

fn sweep(
    net: &ProcessNetwork,
    max_tiles: usize,
    cost: &CostModel,
    mode: Option<bool>, // None = One, Some(false) = Two, Some(true) = OPT
) -> Vec<Assignment> {
    let mut asg = Assignment::single_tile(net);
    let mut out = vec![asg.clone()];
    for _ in 2..=max_tiles {
        if !step_one(net, &mut asg, cost) {
            out.push(asg.clone()); // plateau: no further improvement possible
            continue;
        }
        let before = asg.tiles();
        if let Some(optimal) = mode {
            refine(net, &mut asg, cost, optimal);
        }
        debug_assert_eq!(asg.tiles(), before, "refine must preserve tile count");
        debug_assert!(asg.validate(net).is_ok(), "{asg:?}");
        out.push(asg.clone());
    }
    out
}

/// Algorithm 1: greedy heaviest-tile splitting/cloning. Returns the
/// assignment for every tile count `1..=max_tiles` (index `t-1`).
pub fn rebalance_one(net: &ProcessNetwork, max_tiles: usize, cost: &CostModel) -> Vec<Assignment> {
    sweep(net, max_tiles, cost, None)
}

/// Algorithm 2: Algorithm 1 plus average-targeting redistribution of the
/// heaviest tile's surrounding set.
pub fn rebalance_two(net: &ProcessNetwork, max_tiles: usize, cost: &CostModel) -> Vec<Assignment> {
    sweep(net, max_tiles, cost, Some(false))
}

/// The optimal variant: Algorithm 1 plus exact min-max redistribution of
/// the surrounding set.
pub fn rebalance_opt(net: &ProcessNetwork, max_tiles: usize, cost: &CostModel) -> Vec<Assignment> {
    sweep(net, max_tiles, cost, Some(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::evaluate;
    use crate::process::ProcessSpec;

    /// The Figure 13 walkthrough chain: 800/700/1400/900/900 ns.
    fn fig13() -> ProcessNetwork {
        let cycles = |ns: u64| ns * 2 / 5; // 2.5 ns per cycle
        ProcessNetwork::new(vec![
            ProcessSpec::new("p1", 10, 0, 0, 0, cycles(800)),
            ProcessSpec::new("p2", 10, 0, 0, 0, cycles(700)),
            ProcessSpec::new("p3", 10, 0, 0, 0, cycles(1400)),
            ProcessSpec::new("p4", 10, 0, 0, 0, cycles(900)),
            ProcessSpec::new("p5", 10, 0, 0, 0, cycles(900)),
        ])
    }

    #[test]
    fn fig13_progression() {
        let net = fig13();
        let cost = CostModel::default();
        let asgs = rebalance_one(&net, 5, &cost);
        // 1 tile: everything, 4700ns.
        let m1 = evaluate(&net, &asgs[0], &cost);
        assert!((m1.interval_ns - 4700.0).abs() < 1e-6);
        // Figure 13(b): two tiles split into 2900/1800 or 1500/3200 —
        // the paper's walk yields {p1,p2} vs {p3,p4,p5} (1500/3200)... the
        // first local minimum of |T1-T2| is at prefix {p1,p2,p3} (2900 vs
        // 1800, delta 1100) vs prefix {p1,p2} (1500 vs 3200, delta 1700):
        // delta decreases 3900 -> 1700 -> 1100, then increases, so the
        // split is {p1,p2,p3} | {p4,p5}.
        let m2 = evaluate(&net, &asgs[1], &cost);
        assert!((m2.interval_ns - 2900.0).abs() < 1e-6, "{}", m2.interval_ns);
        // Intervals never increase as tiles are added.
        let mut prev = f64::INFINITY;
        for a in &asgs {
            let m = evaluate(&net, a, &cost);
            assert!(m.interval_ns <= prev + 1e-9);
            prev = m.interval_ns;
        }
    }

    #[test]
    fn replication_kicks_in_for_single_heavy_process() {
        let net = fig13();
        let cost = CostModel::default();
        let asgs = rebalance_one(&net, 8, &cost);
        // Eventually p3 (1400ns) sits alone and gets cloned.
        let last = &asgs[7];
        let cloned = last.loads.iter().any(|l| l.instances > 1);
        assert!(cloned, "{last:?}");
        assert_eq!(last.tiles(), 8);
    }

    #[test]
    fn opt_never_worse_than_one_or_two() {
        let net = fig13();
        let cost = CostModel::default();
        let one = rebalance_one(&net, 10, &cost);
        let two = rebalance_two(&net, 10, &cost);
        let opt = rebalance_opt(&net, 10, &cost);
        for t in 0..10 {
            let io = evaluate(&net, &opt[t], &cost).interval_ns;
            let i1 = evaluate(&net, &one[t], &cost).interval_ns;
            let i2 = evaluate(&net, &two[t], &cost).interval_ns;
            assert!(io <= i1 + 1e-6, "tiles={} opt {io} > one {i1}", t + 1);
            assert!(io <= i2 + 1e-6, "tiles={} opt {io} > two {i2}", t + 1);
        }
    }

    #[test]
    fn optimal_partition_is_optimal() {
        let net = fig13();
        let cost = CostModel::default();
        // Exhaustive check against all 2-splits and 3-splits.
        for k in 2..=3usize {
            let dp = optimal_partition(&net, 0, 4, k, &cost);
            let dp_max = dp
                .iter()
                .map(|l| load_unit_time_ns(&net, l, &cost))
                .fold(0.0f64, f64::max);
            // brute force
            let mut best = f64::INFINITY;
            if k == 2 {
                for c in 1..5 {
                    let m = range_time(&net, 0, c - 1, &cost).max(range_time(&net, c, 4, &cost));
                    best = best.min(m);
                }
            } else {
                for c1 in 1..4 {
                    for c2 in (c1 + 1)..5 {
                        let m = range_time(&net, 0, c1 - 1, &cost)
                            .max(range_time(&net, c1, c2 - 1, &cost))
                            .max(range_time(&net, c2, 4, &cost));
                        best = best.min(m);
                    }
                }
            }
            assert!((dp_max - best).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn surrounding_bounded_by_replicated_tiles() {
        let asg = Assignment {
            loads: vec![
                TileLoad::run(0, 0),
                TileLoad {
                    first: 1,
                    last: 1,
                    instances: 3,
                },
                TileLoad::run(2, 3),
                TileLoad::run(4, 4),
            ],
        };
        assert_eq!(surrounding(&asg, 2), (2, 3));
        assert_eq!(surrounding(&asg, 0), (0, 0));
        assert_eq!(surrounding(&asg, 3), (2, 3));
    }

    #[test]
    fn non_splittable_plateau() {
        let mut net = ProcessNetwork::new(vec![ProcessSpec::new("only", 10, 0, 0, 0, 1000)]);
        net.splittable[0] = false;
        let cost = CostModel::default();
        let asgs = rebalance_one(&net, 4, &cost);
        // One process, not splittable: every tile count keeps 1 tile.
        for a in &asgs {
            assert_eq!(a.tiles(), 1);
        }
    }

    #[test]
    fn average_partition_covers_everything() {
        let net = fig13();
        let cost = CostModel::default();
        for k in 1..=5 {
            let runs = average_partition(&net, 0, 4, k, &cost);
            assert_eq!(runs.len(), k);
            assert_eq!(runs[0].first, 0);
            assert_eq!(runs[k - 1].last, 4);
            for w in runs.windows(2) {
                assert_eq!(w[0].last + 1, w[1].first);
            }
        }
    }
}
