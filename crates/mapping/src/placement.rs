//! Physical placement of tile loads onto the mesh (Eq. 1 terms B and C).
//!
//! The pipeline evaluator is placement-agnostic; this module decides which
//! physical tile hosts which load so that (a) consecutive pipeline stages
//! are mesh neighbours (hcp needs no multi-hop copies) and (b) switching
//! between epoch link configurations re-routes as few links as possible.

use crate::assign::Assignment;
use cgra_fabric::{Direction, FabricError, LinkConfig, Mesh, TileId};

/// A physical placement: pipeline position -> tile id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `order[i]` is the tile hosting pipeline position `i`.
    pub order: Vec<TileId>,
}

/// Places a linear pipeline of `n` stages on the mesh in serpentine
/// (boustrophedon) order, which makes every consecutive pair of stages
/// mesh neighbours.
pub fn serpentine(mesh: &Mesh, n: usize) -> Result<Placement, FabricError> {
    if n > mesh.tiles() {
        return Err(FabricError::UnknownTile { tile: n - 1 });
    }
    let mut order = Vec::with_capacity(n);
    'outer: for r in 0..mesh.rows() {
        let cols: Vec<usize> = if r % 2 == 0 {
            (0..mesh.cols()).collect()
        } else {
            (0..mesh.cols()).rev().collect()
        };
        for c in cols {
            if order.len() == n {
                break 'outer;
            }
            order.push(mesh.id(r, c)?);
        }
    }
    Ok(Placement { order })
}

/// The link configuration realizing a placed pipeline: each stage's tile
/// drives its single outgoing link toward the next stage's tile.
pub fn pipeline_links(mesh: &Mesh, p: &Placement) -> Result<LinkConfig, FabricError> {
    let mut cfg = mesh.disconnected();
    for w in p.order.windows(2) {
        let dir = direction_between(mesh, w[0], w[1])?;
        cfg.set(w[0], Some(dir));
    }
    mesh.validate_links(&cfg)?;
    Ok(cfg)
}

/// Direction from tile `a` to adjacent tile `b`.
pub fn direction_between(mesh: &Mesh, a: TileId, b: TileId) -> Result<Direction, FabricError> {
    Direction::ALL
        .into_iter()
        .find(|&d| mesh.neighbour(a, d) == Some(b))
        .ok_or(FabricError::NotNeighbours { from: a, to: b })
}

/// Total Manhattan distance between consecutive stages — the number of
/// hops `cp` processes must bridge; 0 extra hops for a serpentine
/// placement of a chain.
pub fn total_stretch(mesh: &Mesh, p: &Placement) -> Result<usize, FabricError> {
    let mut extra = 0;
    for w in p.order.windows(2) {
        extra += mesh.distance(w[0], w[1])? - 1;
    }
    Ok(extra)
}

/// Link reconfigurations needed to switch between the epoch configurations
/// of two placed pipelines (Eq. 1 term B).
pub fn epoch_link_delta(mesh: &Mesh, a: &Placement, b: &Placement) -> Result<usize, FabricError> {
    Ok(pipeline_links(mesh, a)?.delta(&pipeline_links(mesh, b)?))
}

/// Number of physical tiles an assignment needs (loads + replicas).
pub fn tiles_needed(asg: &Assignment) -> usize {
    asg.tiles()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serpentine_is_all_neighbours() {
        let mesh = Mesh::new(4, 5);
        let p = serpentine(&mesh, 17).unwrap();
        assert_eq!(p.order.len(), 17);
        assert_eq!(total_stretch(&mesh, &p).unwrap(), 0);
        // All distinct tiles.
        let mut seen = p.order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 17);
    }

    #[test]
    fn serpentine_rejects_oversubscription() {
        let mesh = Mesh::new(2, 2);
        assert!(serpentine(&mesh, 5).is_err());
        assert!(serpentine(&mesh, 4).is_ok());
    }

    #[test]
    fn pipeline_links_point_at_next_stage() {
        let mesh = Mesh::new(2, 3);
        let p = serpentine(&mesh, 6).unwrap();
        let cfg = pipeline_links(&mesh, &p).unwrap();
        assert_eq!(cfg.active_links(), 5);
        // First tile (0,0) points East toward (0,1).
        assert_eq!(cfg.get(0), Some(Direction::East));
        // Tile (0,2) points South (serpentine turn).
        assert_eq!(cfg.get(2), Some(Direction::South));
    }

    #[test]
    fn identical_epochs_need_no_relink() {
        let mesh = Mesh::new(3, 3);
        let p = serpentine(&mesh, 9).unwrap();
        assert_eq!(epoch_link_delta(&mesh, &p, &p).unwrap(), 0);
    }

    #[test]
    fn shorter_pipeline_fewer_links() {
        let mesh = Mesh::new(3, 3);
        let long = serpentine(&mesh, 9).unwrap();
        let short = serpentine(&mesh, 4).unwrap();
        let delta = epoch_link_delta(&mesh, &long, &short).unwrap();
        // Tiles 4..8 lose their links (tile 3's target stays tile 4).
        assert_eq!(delta, 5);
    }
}
