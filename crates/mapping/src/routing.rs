//! Multi-hop copy routing (Eq. 1 term C).
//!
//! "The data generated at non neighbour tiles is brought to the tile's
//! memory using explicit copy instructions and changing connectivity if
//! required." A transfer between tiles that are not mesh neighbours is
//! realized as a chain of single-hop `cp` epochs: at each hop the current
//! holder drives its one outgoing link toward the next tile on an
//! L-shaped (row-first) path and re-copies the block.

use cgra_fabric::{CostModel, Direction, FabricError, LinkConfig, Mesh, TileId};

/// One hop of a route: `from` drives its link in `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Sending tile.
    pub from: TileId,
    /// Link direction.
    pub dir: Direction,
    /// Receiving tile.
    pub to: TileId,
}

/// A planned multi-hop transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The hops, in order.
    pub hops: Vec<Hop>,
}

impl Route {
    /// Number of hops (0 when source == destination).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for the degenerate same-tile route.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The link configuration of hop `i` (only the sender's link active).
    pub fn link_config(&self, mesh: &Mesh, i: usize) -> LinkConfig {
        let mut cfg = mesh.disconnected();
        cfg.set(self.hops[i].from, Some(self.hops[i].dir));
        cfg
    }

    /// Total copy time: every hop re-copies the block (`hop_copy_ns`), and
    /// every hop whose link differs from the *previous* epoch's
    /// configuration pays one link reconfiguration. This is the Eq. 1
    /// term C contribution of the transfer.
    pub fn cost_ns(&self, cost: &CostModel, hop_copy_ns: f64) -> f64 {
        self.hops.len() as f64 * (hop_copy_ns + cost.link_reconfig_ns)
    }
}

/// Plans the row-first (L-shaped) route from `src` to `dst`.
pub fn plan_route(mesh: &Mesh, src: TileId, dst: TileId) -> Result<Route, FabricError> {
    let (sr, sc) = mesh.coords(src)?;
    let (dr, dc) = mesh.coords(dst)?;
    let mut hops = Vec::new();
    let mut cur = src;
    let (mut r, mut c) = (sr, sc);
    while c != dc {
        let dir = if dc > c {
            Direction::East
        } else {
            Direction::West
        };
        let next = mesh.neighbour(cur, dir).expect("in-mesh step");
        hops.push(Hop {
            from: cur,
            dir,
            to: next,
        });
        cur = next;
        c = if dc > c { c + 1 } else { c - 1 };
    }
    while r != dr {
        let dir = if dr > r {
            Direction::South
        } else {
            Direction::North
        };
        let next = mesh.neighbour(cur, dir).expect("in-mesh step");
        hops.push(Hop {
            from: cur,
            dir,
            to: next,
        });
        cur = next;
        r = if dr > r { r + 1 } else { r - 1 };
    }
    Ok(Route { hops })
}

/// Total term-C cost of a set of transfers under a placement (pipeline
/// position -> tile), where `transfers` are `(producer_pos, consumer_pos,
/// copy_ns_per_hop)` triples.
pub fn placement_copy_cost(
    mesh: &Mesh,
    order: &[TileId],
    transfers: &[(usize, usize, f64)],
    cost: &CostModel,
) -> Result<f64, FabricError> {
    let mut total = 0.0;
    for &(p, q, copy_ns) in transfers {
        let route = plan_route(mesh, order[p], order[q])?;
        total += route.cost_ns(cost, copy_ns);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbour_route_is_one_hop() {
        let mesh = Mesh::new(3, 3);
        let route = plan_route(&mesh, 0, 1).unwrap();
        assert_eq!(route.len(), 1);
        assert_eq!(route.hops[0].dir, Direction::East);
        assert_eq!(route.hops[0].to, 1);
    }

    #[test]
    fn same_tile_route_is_empty() {
        let mesh = Mesh::new(2, 2);
        assert!(plan_route(&mesh, 3, 3).unwrap().is_empty());
    }

    #[test]
    fn l_shaped_route_has_manhattan_hops() {
        let mesh = Mesh::new(4, 5);
        let src = mesh.id(0, 0).unwrap();
        let dst = mesh.id(3, 4).unwrap();
        let route = plan_route(&mesh, src, dst).unwrap();
        assert_eq!(route.len(), mesh.distance(src, dst).unwrap());
        // Row-first: the first 4 hops go east, the last 3 south.
        assert!(route.hops[..4].iter().all(|h| h.dir == Direction::East));
        assert!(route.hops[4..].iter().all(|h| h.dir == Direction::South));
        // Hops chain correctly.
        for w in route.hops.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(route.hops.last().unwrap().to, dst);
    }

    #[test]
    fn route_cost_scales_with_hops_and_link_price() {
        let mesh = Mesh::new(3, 3);
        let cost = CostModel::with_link_cost(200.0);
        let one = plan_route(&mesh, 0, 1).unwrap();
        let far = plan_route(&mesh, 0, 8).unwrap();
        assert!((one.cost_ns(&cost, 500.0) - 700.0).abs() < 1e-9);
        assert!((far.cost_ns(&cost, 500.0) - 4.0 * 700.0).abs() < 1e-9);
    }

    #[test]
    fn link_configs_activate_only_the_sender() {
        let mesh = Mesh::new(2, 3);
        let route = plan_route(&mesh, 0, 5).unwrap();
        for i in 0..route.len() {
            let cfg = route.link_config(&mesh, i);
            assert_eq!(cfg.active_links(), 1);
            assert_eq!(cfg.get(route.hops[i].from), Some(route.hops[i].dir));
            assert!(mesh.validate_links(&cfg).is_ok());
        }
    }

    #[test]
    fn placement_cost_prefers_adjacent_stages() {
        let mesh = Mesh::new(2, 2);
        let cost = CostModel::with_link_cost(100.0);
        let transfers = [(0usize, 1usize, 300.0)];
        let adjacent = placement_copy_cost(&mesh, &[0, 1], &transfers, &cost).unwrap();
        let diagonal = placement_copy_cost(&mesh, &[0, 3], &transfers, &cost).unwrap();
        assert!(adjacent < diagonal);
        assert!((adjacent - 400.0).abs() < 1e-9);
        assert!((diagonal - 800.0).abs() < 1e-9);
    }
}
