//! The application model: a pipeline of annotated sequential processes.
//!
//! The paper models an application as interacting sequential processes
//! `{p1..pk}` mapped onto compute grains. Each process is annotated with
//! the Table 3 parameters: instruction count, three classes of data-memory
//! words, and a per-work-unit runtime in cycles:
//!
//! * `data1` — fixed data loaded once (quant tables, cosine bases),
//! * `data2` — temporaries (live only inside one execution),
//! * `data3` — words that must be re-initialized every time the process is
//!   re-instantiated on a tile (the per-epoch reconfiguration payload).

/// One annotated process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessSpec {
    /// Short name (`shift`, `DCT`, `Hman1`, ...).
    pub name: String,
    /// Instruction-memory footprint.
    pub insts: usize,
    /// Fixed data words, loaded once.
    pub data1: usize,
    /// Temporary data words.
    pub data2: usize,
    /// Data words re-initialized on every re-instantiation.
    pub data3: usize,
    /// Runtime per work unit (an 8x8 block for JPEG), in cycles.
    pub runtime_cycles: u64,
}

impl ProcessSpec {
    /// Builds a spec.
    pub fn new(
        name: impl Into<String>,
        insts: usize,
        data1: usize,
        data2: usize,
        data3: usize,
        runtime_cycles: u64,
    ) -> ProcessSpec {
        ProcessSpec {
            name: name.into(),
            insts,
            data1,
            data2,
            data3,
            runtime_cycles,
        }
    }

    /// Total data-memory words the process touches.
    pub fn data_words(&self) -> usize {
        self.data1 + self.data2 + self.data3
    }
}

/// An ordered pipeline of processes (the paper's process networks for both
/// kernels are linear chains; helper/copy processes are inserted in-line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessNetwork {
    /// Pipeline stages in dataflow order.
    pub processes: Vec<ProcessSpec>,
    /// A process marked splittable can be *replicated* onto several tiles
    /// working round-robin on work units (the paper duplicates `DCT`).
    pub splittable: Vec<bool>,
}

impl ProcessNetwork {
    /// Builds a network where every process may be replicated.
    pub fn new(processes: Vec<ProcessSpec>) -> ProcessNetwork {
        let n = processes.len();
        ProcessNetwork {
            processes,
            splittable: vec![true; n],
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// True for an empty network.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Total runtime of all processes, cycles per work unit.
    pub fn total_cycles(&self) -> u64 {
        self.processes.iter().map(|p| p.runtime_cycles).sum()
    }

    /// Index of the process with the largest runtime.
    pub fn heaviest(&self) -> usize {
        self.processes
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.runtime_cycles)
            .map(|(i, _)| i)
            .expect("non-empty network")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> ProcessNetwork {
        ProcessNetwork::new(vec![
            ProcessSpec::new("a", 10, 0, 0, 2, 100),
            ProcessSpec::new("b", 20, 5, 1, 3, 500),
            ProcessSpec::new("c", 30, 0, 2, 4, 200),
        ])
    }

    #[test]
    fn totals() {
        let n = net();
        assert_eq!(n.total_cycles(), 800);
        assert_eq!(n.heaviest(), 1);
        assert_eq!(n.processes[1].data_words(), 9);
        assert_eq!(n.len(), 3);
    }
}
