//! # cgra-map
//!
//! Mapping process networks onto the tile array:
//!
//! * [`process`] — annotated sequential processes and pipelines,
//! * [`assign`] — tile assignments (contiguous runs + replication) and the
//!   steady-state throughput/utilization evaluator,
//! * [`rebalance`] — the paper's reBalanceOne / reBalanceTwo / reBalanceOPT
//!   algorithms (Sec. 3.5),
//! * [`placement`] — serpentine physical placement and link algebra,
//! * [`routing`] — multi-hop copy planning for non-neighbour transfers
//!   (Eq. 1 term C),
//! * [`anneal`] — simulated-annealing placement over epoch sequences
//!   (minimizing Eq. 1 terms B and C).

#![warn(missing_docs)]

pub mod anneal;
pub mod assign;
pub mod placement;
pub mod process;
pub mod rebalance;
pub mod routing;

pub use assign::{evaluate, Assignment, PipelineMetrics, TileLoad};
pub use process::{ProcessNetwork, ProcessSpec};
pub use rebalance::{rebalance_one, rebalance_opt, rebalance_two};
