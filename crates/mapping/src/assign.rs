//! Tile assignments and the pipelined throughput/utilization evaluator.
//!
//! An [`Assignment`] maps a process chain onto tiles: each [`TileLoad`]
//! owns a contiguous run of processes and may be *instantiated* on several
//! tiles (the paper's duplication of heavy processes, Table 5's `p1(17)`).
//!
//! Steady-state model (the one behind Table 4, Table 5, Figs 16-17):
//!
//! * a tile's **unit time** is the runtime of its processes plus, when the
//!   tile's programs don't all fit the 512-slot instruction memory at once,
//!   the ICAP time to reload instructions and `data3` words every unit,
//! * a load replicated `k` times serves work units round-robin, so its
//!   pipeline contribution is `unit_time / k`,
//! * the pipeline **interval** is the max contribution over loads; work
//!   units complete one per interval,
//! * **utilization** is total busy time over total tile-time per interval.

use crate::process::ProcessNetwork;
use cgra_fabric::{CostModel, INSTR_SLOTS};

/// A contiguous run of processes `first..=last` on `instances` tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileLoad {
    /// Index of the first process of the run.
    pub first: usize,
    /// Index of the last process of the run (inclusive).
    pub last: usize,
    /// Number of tile instances executing this run round-robin.
    pub instances: usize,
}

impl TileLoad {
    /// A single-instance load.
    pub fn run(first: usize, last: usize) -> TileLoad {
        TileLoad {
            first,
            last,
            instances: 1,
        }
    }

    /// Number of processes in the run (always >= 1).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// True when the run is a single process.
    pub fn is_single(&self) -> bool {
        self.first == self.last
    }
}

/// A full chain assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Loads in pipeline order; runs must tile the chain contiguously.
    pub loads: Vec<TileLoad>,
}

impl Assignment {
    /// Everything on one tile.
    pub fn single_tile(net: &ProcessNetwork) -> Assignment {
        Assignment {
            loads: vec![TileLoad::run(0, net.len() - 1)],
        }
    }

    /// Checks that the loads exactly tile the chain.
    pub fn validate(&self, net: &ProcessNetwork) -> Result<(), String> {
        let mut next = 0usize;
        for (i, l) in self.loads.iter().enumerate() {
            if l.first != next {
                return Err(format!("load {i} starts at {} expected {next}", l.first));
            }
            if l.last < l.first {
                return Err(format!("load {i} has inverted range"));
            }
            if l.instances == 0 {
                return Err(format!("load {i} has zero instances"));
            }
            if l.instances > 1 && !l.is_single() {
                return Err(format!(
                    "load {i} replicates a multi-process run (unsupported by the fabric model)"
                ));
            }
            if l.instances > 1 && !net.splittable[l.first] {
                return Err(format!(
                    "load {i} replicates non-splittable process {}",
                    net.processes[l.first].name
                ));
            }
            next = l.last + 1;
        }
        if next != net.len() {
            return Err(format!("loads cover {next} of {} processes", net.len()));
        }
        Ok(())
    }

    /// Total tiles consumed (instances included).
    pub fn tiles(&self) -> usize {
        self.loads.iter().map(|l| l.instances).sum()
    }
}

/// Evaluated steady-state metrics of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineMetrics {
    /// Per-load unit time, ns (single instance).
    pub unit_times_ns: Vec<f64>,
    /// Per-load effective pipeline contribution, ns (`unit/instances`).
    pub effective_ns: Vec<f64>,
    /// Pipeline interval, ns (one work unit completes per interval).
    pub interval_ns: f64,
    /// Whether any tile re-loads programs at runtime.
    pub needs_reconfig: bool,
    /// Average tile utilization in steady state (0..=1).
    pub utilization: f64,
    /// Tiles used.
    pub tiles: usize,
}

impl PipelineMetrics {
    /// Work units per second.
    pub fn units_per_sec(&self) -> f64 {
        1e9 / self.interval_ns
    }

    /// Images per second for `blocks_per_image` work units per image.
    pub fn images_per_sec(&self, blocks_per_image: usize) -> f64 {
        self.units_per_sec() / blocks_per_image as f64
    }

    /// Time to process one image of `blocks_per_image` units, ns.
    pub fn image_time_ns(&self, blocks_per_image: usize) -> f64 {
        self.interval_ns * blocks_per_image as f64
    }
}

/// Unit time of one load on one tile: process runtimes plus per-unit
/// reconfiguration when the run's instructions exceed the instruction
/// memory (a single-process tile is always *pinned* — label `(f)` in the
/// paper's Table 4 — and never reloads).
pub fn load_unit_time_ns(net: &ProcessNetwork, load: &TileLoad, cost: &CostModel) -> f64 {
    let procs = &net.processes[load.first..=load.last];
    let run_cycles: u64 = procs.iter().map(|p| p.runtime_cycles).sum();
    let mut t = cost.exec_ns(run_cycles);
    let total_insts: usize = procs.iter().map(|p| p.insts).sum();
    if total_insts > INSTR_SLOTS {
        // Time-multiplexed tile: every work unit re-streams the programs
        // and re-initializes each process's data3 words over the ICAP.
        let insts: usize = procs.iter().map(|p| p.insts).sum();
        let data3: usize = procs.iter().map(|p| p.data3).sum();
        t += cost.instr_reload_ns(insts) + cost.data_reload_ns(data3);
    }
    t
}

/// True when the load needs runtime program reloads.
pub fn load_needs_reconfig(net: &ProcessNetwork, load: &TileLoad) -> bool {
    net.processes[load.first..=load.last]
        .iter()
        .map(|p| p.insts)
        .sum::<usize>()
        > INSTR_SLOTS
}

/// Evaluates the steady-state pipeline metrics of an assignment.
pub fn evaluate(net: &ProcessNetwork, asg: &Assignment, cost: &CostModel) -> PipelineMetrics {
    debug_assert!(asg.validate(net).is_ok());
    let unit_times_ns: Vec<f64> = asg
        .loads
        .iter()
        .map(|l| load_unit_time_ns(net, l, cost))
        .collect();
    let effective_ns: Vec<f64> = asg
        .loads
        .iter()
        .zip(&unit_times_ns)
        .map(|(l, &t)| t / l.instances as f64)
        .collect();
    let interval_ns = effective_ns.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-9);
    let needs_reconfig = asg.loads.iter().any(|l| load_needs_reconfig(net, l));
    // A load replicated k times keeps each of its k tiles busy
    // `unit/(k*interval)` of the time, so the load's total busy time per
    // interval is its full unit time.
    let busy: f64 = unit_times_ns.iter().sum();
    let tiles = asg.tiles();
    let utilization = busy / (tiles as f64 * interval_ns);
    PipelineMetrics {
        unit_times_ns,
        effective_ns,
        interval_ns,
        needs_reconfig,
        utilization,
        tiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessSpec;

    fn net() -> ProcessNetwork {
        ProcessNetwork::new(vec![
            ProcessSpec::new("a", 100, 0, 0, 0, 400),  // 1000ns
            ProcessSpec::new("b", 100, 0, 0, 0, 1200), // 3000ns
            ProcessSpec::new("c", 100, 0, 0, 0, 400),  // 1000ns
        ])
    }

    #[test]
    fn single_tile_time_includes_reloads_only_when_needed() {
        let n = net();
        let cost = CostModel::default();
        let asg = Assignment::single_tile(&n);
        asg.validate(&n).unwrap();
        let m = evaluate(&n, &asg, &cost);
        // 300 insts total <= 512: pinned, no reconfig.
        assert!(!m.needs_reconfig);
        assert!((m.interval_ns - 5000.0).abs() < 1e-9);
        assert!((m.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_tile_pays_reload() {
        let mut n = net();
        n.processes[0].insts = 300;
        n.processes[1].insts = 300; // total 700 > 512
        n.processes[1].data3 = 10;
        let cost = CostModel::default();
        let asg = Assignment::single_tile(&n);
        let m = evaluate(&n, &asg, &cost);
        assert!(m.needs_reconfig);
        let expect = 5000.0 + cost.instr_reload_ns(700) + cost.data_reload_ns(10);
        assert!((m.interval_ns - expect).abs() < 1e-6);
    }

    #[test]
    fn pipeline_interval_is_bottleneck() {
        let n = net();
        let cost = CostModel::default();
        let asg = Assignment {
            loads: vec![
                TileLoad::run(0, 0),
                TileLoad::run(1, 1),
                TileLoad::run(2, 2),
            ],
        };
        let m = evaluate(&n, &asg, &cost);
        assert!((m.interval_ns - 3000.0).abs() < 1e-9);
        // utilization = (1000+3000+1000)/(3*3000)
        assert!((m.utilization - 5000.0 / 9000.0).abs() < 1e-12);
        assert!((m.units_per_sec() - 1e9 / 3000.0).abs() < 1.0);
    }

    #[test]
    fn replication_divides_bottleneck() {
        let n = net();
        let cost = CostModel::default();
        let asg = Assignment {
            loads: vec![
                TileLoad::run(0, 0),
                TileLoad {
                    first: 1,
                    last: 1,
                    instances: 3,
                },
                TileLoad::run(2, 2),
            ],
        };
        let m = evaluate(&n, &asg, &cost);
        assert_eq!(m.tiles, 5);
        assert!((m.interval_ns - 1000.0).abs() < 1e-9);
        // Perfectly balanced: all five tiles fully busy.
        assert!((m.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_gaps_and_bad_replication() {
        let n = net();
        let bad = Assignment {
            loads: vec![TileLoad::run(0, 0), TileLoad::run(2, 2)],
        };
        assert!(bad.validate(&n).is_err());
        let multi = Assignment {
            loads: vec![TileLoad {
                first: 0,
                last: 2,
                instances: 2,
            }],
        };
        assert!(multi.validate(&n).is_err());
        let mut non_split = net();
        non_split.splittable[1] = false;
        let rep = Assignment {
            loads: vec![
                TileLoad::run(0, 0),
                TileLoad {
                    first: 1,
                    last: 1,
                    instances: 2,
                },
                TileLoad::run(2, 2),
            ],
        };
        assert!(rep.validate(&non_split).is_err());
        assert!(rep.validate(&net()).is_ok());
    }

    #[test]
    fn images_per_sec_scaling() {
        let n = net();
        let m = evaluate(&n, &Assignment::single_tile(&n), &CostModel::default());
        let per_unit = m.units_per_sec();
        assert!((m.images_per_sec(800) - per_unit / 800.0).abs() < 1e-9);
    }
}
