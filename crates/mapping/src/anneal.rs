//! Simulated-annealing placement for epoch sequences.
//!
//! "Careful placement of the p's to the P compute elements can help in
//! reducing the overall runtime" (Sec. 2): the paper leaves automated
//! placement to future work; this module provides it. Given a set of
//! pipeline stages and the inter-stage transfers of each epoch, it
//! searches tile permutations minimizing the Eq. 1 terms the placement
//! controls: multi-hop copy cost (term C) plus link reconfigurations
//! between consecutive epochs (term B).

use crate::routing::plan_route;
use cgra_fabric::rng::Rng;
use cgra_fabric::{parallel_map, CostModel, FabricError, LinkConfig, Mesh, TileId};

/// One epoch's communication pattern: directed transfers between pipeline
/// positions, each with a per-hop copy time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochComms {
    /// `(producer_pos, consumer_pos, copy_ns_per_hop)`.
    pub transfers: Vec<(usize, usize, f64)>,
}

/// The placement problem: `stages` pipeline positions on a mesh, with an
/// epoch sequence of communication patterns.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// Mesh to place onto.
    pub mesh: Mesh,
    /// Number of pipeline positions.
    pub stages: usize,
    /// Epochs in execution order.
    pub epochs: Vec<EpochComms>,
    /// Cost model (supplies the per-link reconfiguration price).
    pub cost: CostModel,
}

impl PlacementProblem {
    /// The link configuration an epoch induces under `order`: each
    /// producer's tile drives its link along the first hop of its route.
    /// (A tile has one outgoing link; when several transfers share a
    /// producer only the first is driven directly and the rest go through
    /// extra copy epochs — the cost function charges their full routes.)
    fn epoch_links(&self, order: &[TileId], e: &EpochComms) -> Result<LinkConfig, FabricError> {
        let mut cfg = self.mesh.disconnected();
        for &(p, q, _) in &e.transfers {
            let route = plan_route(&self.mesh, order[p], order[q])?;
            if let Some(h) = route.hops.first() {
                if cfg.get(h.from).is_none() {
                    cfg.set(h.from, Some(h.dir));
                }
            }
        }
        Ok(cfg)
    }

    /// Full placement cost: term C (all routes) + term B (link deltas
    /// between consecutive epoch configurations).
    pub fn placement_cost(&self, order: &[TileId]) -> Result<f64, FabricError> {
        assert_eq!(order.len(), self.stages);
        let mut total = 0.0;
        let mut prev: Option<LinkConfig> = None;
        for e in &self.epochs {
            for &(p, q, copy_ns) in &e.transfers {
                let route = plan_route(&self.mesh, order[p], order[q])?;
                total += route.cost_ns(&self.cost, copy_ns);
            }
            let links = self.epoch_links(order, e)?;
            if let Some(prev) = &prev {
                total += self.cost.links_reconfig_ns(prev.delta(&links));
            }
            prev = Some(links);
        }
        Ok(total)
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealResult {
    /// Best placement found (pipeline position -> tile id).
    pub order: Vec<TileId>,
    /// Its cost, ns.
    pub cost_ns: f64,
    /// Cost of the initial (serpentine) placement, ns.
    pub initial_cost_ns: f64,
    /// Accepted moves.
    pub accepted: usize,
    /// Proposed moves.
    pub proposed: usize,
}

/// Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealParams {
    /// Proposals to evaluate.
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub t0_frac: f64,
    /// Geometric cooling factor applied each iteration.
    pub cooling: f64,
    /// RNG seed (runs are deterministic).
    pub seed: u64,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            iterations: 4000,
            t0_frac: 0.2,
            cooling: 0.999,
            seed: 0xC6_12A,
        }
    }
}

/// Anneals a placement: starts from the serpentine order and proposes
/// swaps of two positions' tiles (or relocation onto a free tile).
pub fn anneal(
    problem: &PlacementProblem,
    params: AnnealParams,
) -> Result<AnnealResult, FabricError> {
    let serp = crate::placement::serpentine(&problem.mesh, problem.stages)?;
    let mut order = serp.order;
    let mut cost = problem.placement_cost(&order)?;
    let initial_cost_ns = cost;
    let mut best = order.clone();
    let mut best_cost = cost;
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut temp = (initial_cost_ns * params.t0_frac).max(1e-6);
    let all_tiles = problem.mesh.tiles();
    let mut accepted = 0usize;

    for _ in 0..params.iterations {
        let mut cand = order.clone();
        let i = rng.gen_range(problem.stages);
        if rng.gen_bool(0.5) && all_tiles > problem.stages {
            // Relocate position i to a currently-unused tile.
            let used: std::collections::BTreeSet<TileId> = cand.iter().copied().collect();
            let free: Vec<TileId> = (0..all_tiles).filter(|t| !used.contains(t)).collect();
            cand[i] = free[rng.gen_range(free.len())];
        } else {
            let j = rng.gen_range(problem.stages);
            cand.swap(i, j);
        }
        let c = problem.placement_cost(&cand)?;
        let delta = c - cost;
        if delta <= 0.0 || rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0)) {
            order = cand;
            cost = c;
            accepted += 1;
            if cost < best_cost {
                best_cost = cost;
                best = order.clone();
            }
        }
        temp = (temp * params.cooling).max(1e-6);
    }
    Ok(AnnealResult {
        order: best,
        cost_ns: best_cost,
        initial_cost_ns,
        accepted,
        proposed: params.iterations,
    })
}

/// Runs `restarts` independent annealing chains in parallel (distinct
/// seeds derived from `params.seed`) and returns the best result — the
/// standard embarrassingly-parallel way to harden a stochastic search.
pub fn anneal_best_of(
    problem: &PlacementProblem,
    params: AnnealParams,
    restarts: usize,
) -> Result<AnnealResult, FabricError> {
    assert!(restarts >= 1);
    let results: Result<Vec<AnnealResult>, FabricError> =
        parallel_map((0..restarts as u64).collect(), |i| {
            anneal(
                problem,
                AnnealParams {
                    seed: params
                        .seed
                        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ..params
                },
            )
        })
        .into_iter()
        .collect();
    Ok(results?
        .into_iter()
        .min_by(|a, b| a.cost_ns.partial_cmp(&b.cost_ns).expect("finite costs"))
        .expect("at least one restart"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chain pipeline: every epoch ships stage i -> i+1.
    fn chain_problem(mesh: Mesh, stages: usize) -> PlacementProblem {
        let transfers = (0..stages - 1).map(|i| (i, i + 1, 400.0)).collect();
        PlacementProblem {
            mesh,
            stages,
            epochs: vec![EpochComms { transfers }],
            cost: CostModel::with_link_cost(150.0),
        }
    }

    #[test]
    fn serpentine_chain_is_already_optimal() {
        // A pure chain on a snake placement is all single hops; annealing
        // must not make it worse.
        let p = chain_problem(Mesh::new(3, 3), 9);
        let r = anneal(
            &p,
            AnnealParams {
                iterations: 800,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.cost_ns <= r.initial_cost_ns + 1e-9);
        // 8 transfers x (400 copy + 150 link) = 4400 minimum.
        assert!((r.cost_ns - 8.0 * 550.0).abs() < 1e-6);
    }

    #[test]
    fn annealing_fixes_a_bad_communication_pattern() {
        // Epoch ships stage 0 -> stage 4 heavily; the serpentine start
        // puts them two hops apart, annealing should pull them together.
        let mesh = Mesh::new(3, 3);
        let mut p = chain_problem(mesh, 6);
        p.epochs.push(EpochComms {
            transfers: vec![(0, 4, 5000.0)],
        });
        let serp = crate::placement::serpentine(&mesh, 6).unwrap();
        assert_eq!(mesh.distance(serp.order[0], serp.order[4]).unwrap(), 2);
        let r = anneal(
            &p,
            AnnealParams {
                iterations: 6000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            r.cost_ns < r.initial_cost_ns,
            "no improvement: {} vs {}",
            r.cost_ns,
            r.initial_cost_ns
        );
        // After annealing, 0 and 4 should be neighbours (one hop).
        let d = mesh.distance(r.order[0], r.order[4]).unwrap();
        assert_eq!(d, 1, "expensive pair still {d} hops apart");
    }

    #[test]
    fn placements_stay_valid_permutations() {
        let p = chain_problem(Mesh::new(4, 4), 10);
        let r = anneal(
            &p,
            AnnealParams {
                iterations: 1500,
                ..Default::default()
            },
        )
        .unwrap();
        let mut seen = r.order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10, "duplicate tiles in placement");
        assert!(seen.iter().all(|&t| t < 16));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = chain_problem(Mesh::new(3, 4), 8);
        let a = anneal(&p, AnnealParams::default()).unwrap();
        let b = anneal(&p, AnnealParams::default()).unwrap();
        assert_eq!(a.order, b.order);
        assert_eq!(a.cost_ns, b.cost_ns);
    }

    #[test]
    fn best_of_restarts_never_worse_than_single() {
        let mesh = Mesh::new(3, 3);
        let mut p = chain_problem(mesh, 6);
        p.epochs.push(EpochComms {
            transfers: vec![(0, 4, 5000.0)],
        });
        let params = AnnealParams {
            iterations: 1200,
            ..Default::default()
        };
        let single = anneal(&p, params).unwrap();
        let best = anneal_best_of(&p, params, 6).unwrap();
        assert!(best.cost_ns <= single.cost_ns + 1e-9);
        // Determinism across calls.
        let again = anneal_best_of(&p, params, 6).unwrap();
        assert_eq!(best.order, again.order);
    }

    #[test]
    fn epoch_link_deltas_charged() {
        // Two epochs with opposite flows force link reconfigurations; the
        // cost must exceed the pure copy cost.
        let mesh = Mesh::new(1, 3);
        let p = PlacementProblem {
            mesh,
            stages: 3,
            epochs: vec![
                EpochComms {
                    transfers: vec![(0, 1, 100.0), (1, 2, 100.0)],
                },
                EpochComms {
                    transfers: vec![(2, 1, 100.0), (1, 0, 100.0)],
                },
            ],
            cost: CostModel::with_link_cost(300.0),
        };
        let order = vec![0, 1, 2];
        let cost = p.placement_cost(&order).unwrap();
        // 4 transfers x (100 + 300) + link delta between epochs: tile 0
        // clears East, tile 1 flips East->West, tile 2 gains West = 3
        // changed tile settings at 300 ns.
        assert!((cost - (4.0 * 400.0 + 3.0 * 300.0)).abs() < 1e-9, "{cost}");
    }
}
