//! Generated PE programs for the FFT processes (`BF_i`, `vcp`, `hcp`).
//!
//! These are the actual tile programs: the butterfly stage walks the tile's
//! M complex points with address registers, multiplies against a
//! stage-local twiddle table, and runs on the `cgra-isa` interpreter. Their
//! measured cycle counts (at 2.5 ns/cycle) regenerate **Table 1** of the
//! paper, and a whole FFT executed stage-by-stage on a tile is verified
//! bit-exact against the functional fixed-point model.
//!
//! ## Tile data-memory layout for a BF process (complex points, M <= 128)
//!
//! ```text
//! [0        .. 2M)   x: interleaved re/im input, outputs overwrite in place
//! [2M       .. 3M)   stage twiddle table, interleaved re/im, butterfly order
//! [3M       .. 3M+41) temporaries & loop counters (the paper's 41 words)
//! ```

use super::fixed::{twiddle_fx, Cfx};
use cgra_fabric::word::fixed::FRAC_BITS;
use cgra_fabric::{Tile, Word};
use cgra_isa::ops::{at, at_off, d};
use cgra_isa::{encode_program, run, run_with_sink, Instr, PeState, ProgramBuilder};

/// Address of the interleaved input/output region.
pub const X_BASE: u16 = 0;

/// First address of the stage twiddle table for partition size `m`.
pub fn tw_base(m: usize) -> u16 {
    (2 * m) as u16
}

/// First address of the temporary window for partition size `m`.
pub fn tmp_base(m: usize) -> u16 {
    (3 * m) as u16
}

// Temporary/counter slots inside the 41-word scratch window.
const T0: u16 = 0; // t_re
const T1: u16 = 1; // t_im
const T2: u16 = 2;
const T3: u16 = 3;
const CTR_I: u16 = 4; // inner (butterfly) counter
const CTR_B: u16 = 5; // block counter

/// Builds the butterfly-stage program for a tile of `m` complex points with
/// butterfly half-span `h` (complex elements, `1 <= h <= m/2`).
///
/// Cross-tile stages run this with `h = m/2` after the vertical exchange;
/// tile-local stage `s` of an N-point FFT runs it with `h = N >> (s+1)`.
pub fn bf_program(m: usize, h: usize) -> Vec<Instr> {
    assert!(h >= 1 && 2 * h <= m, "invalid half-span {h} for m={m}");
    let tmp = tmp_base(m);
    let (t0, t1, t2, t3) = (d(tmp + T0), d(tmp + T1), d(tmp + T2), d(tmp + T3));
    let ctr_i = d(tmp + CTR_I);
    let ctr_b = d(tmp + CTR_B);
    let nblocks = m / (2 * h);
    let frac = FRAC_BITS as u8;

    let mut p = ProgramBuilder::new();
    // a0 = top pointer, a1 = bottom pointer, a2 = twiddle pointer.
    p.ldi(ctr_b, nblocks as i32);
    p.ldar(0, X_BASE);
    p.ldar(1, X_BASE + (2 * h) as u16);
    let block = p.here_label();
    p.ldar(2, tw_base(m));
    p.ldi(ctr_i, h as i32);
    let inner = p.here_label();
    // DIF butterfly: top' = a + b; bottom' = (a - b) * w.
    p.sub(t0, at(0), at(1)); // d_re = a_re - b_re
    p.sub(t1, at_off(0, 1), at_off(1, 1)); // d_im
    p.add(at(0), at(0), at(1)); // top_re = a_re + b_re (in place)
    p.add(at_off(0, 1), at_off(0, 1), at_off(1, 1)); // top_im
    p.mul(t2, t0, at(2), frac); // d_re * w_re
    p.mul(t3, t1, at_off(2, 1), frac); // d_im * w_im
    p.sub(at(1), t2, t3); // bottom_re
    p.mul(t2, t0, at_off(2, 1), frac); // d_re * w_im
    p.mul(t3, t1, at(2), frac); // d_im * w_re
    p.add(at_off(1, 1), t2, t3); // bottom_im
    p.adar(0, 2);
    p.adar(1, 2);
    p.adar(2, 2);
    p.djnz(ctr_i, inner);
    // Skip over the bottom half of the block we just produced.
    p.adar(0, (2 * h) as i16);
    p.adar(1, (2 * h) as i16);
    p.djnz(ctr_b, block);
    p.halt();
    p.build().expect("bf program is valid")
}

/// Builds the *cross-tile* butterfly program executed after a vertical
/// exchange. The tile computes `count` butterflies pairing its own points
/// (starting at word `own_base`) against the partner half received into
/// `recv_base`; one result half stays local, the other is written straight
/// into the partner's memory over the active link (starting at the
/// partner's word `remote_base`).
///
/// With `upper = true` the tile owns the *tops*: `top' = a + b` stays
/// local and `bottom' = (a - b) * w` goes remote. With `upper = false` the
/// tile owns the *bottoms*: `a` comes from the received buffer, the
/// `bottom'` stays local and `top'` goes remote.
///
/// Twiddles are preloaded at `tw_base(m)` in butterfly order.
pub fn cross_bf_program(
    m: usize,
    count: usize,
    own_base: u16,
    recv_base: u16,
    remote_base: u16,
    upper: bool,
) -> Vec<Instr> {
    assert!(count >= 1 && count <= m);
    let tmp = tmp_base(m);
    let (t0, t1, t2, t3) = (d(tmp + T0), d(tmp + T1), d(tmp + T2), d(tmp + T3));
    let ctr = d(tmp + CTR_I);
    let frac = FRAC_BITS as u8;
    let mut p = ProgramBuilder::new();
    // a0 = a-side (tops), a1 = b-side (bottoms), a2 = twiddles,
    // a3 = remote destination walk.
    if upper {
        p.ldar(0, own_base);
        p.ldar(1, recv_base);
    } else {
        p.ldar(0, recv_base);
        p.ldar(1, own_base);
    }
    p.ldar(2, tw_base(m));
    p.ldar(3, remote_base);
    p.ldi(ctr, count as i32);
    let l = p.here_label();
    p.sub(t0, at(0), at(1)); // d_re
    p.sub(t1, at_off(0, 1), at_off(1, 1)); // d_im
    p.add(t2, at(0), at(1)); // top_re
    p.add(t3, at_off(0, 1), at_off(1, 1)); // top_im
    if upper {
        // tops stay local (overwrite the a-side), bottoms go remote.
        p.mov(at(0), t2);
        p.mov(at_off(0, 1), t3);
        p.mul(t2, t0, at(2), frac);
        p.mul(t3, t1, at_off(2, 1), frac);
        p.sub(t2, t2, t3); // bottom_re
        p.mov(cgra_isa::ops::rem_off(3, 0), t2);
        p.mul(t2, t0, at_off(2, 1), frac);
        p.mul(t3, t1, at(2), frac);
        p.add(t2, t2, t3); // bottom_im
        p.mov(cgra_isa::ops::rem_off(3, 1), t2);
    } else {
        // tops go remote, bottoms stay local (overwrite the b-side).
        p.mov(cgra_isa::ops::rem_off(3, 0), t2);
        p.mov(cgra_isa::ops::rem_off(3, 1), t3);
        p.mul(t2, t0, at(2), frac);
        p.mul(t3, t1, at_off(2, 1), frac);
        p.sub(t2, t2, t3); // bottom_re
        p.mov(at(1), t2);
        p.mul(t2, t0, at_off(2, 1), frac);
        p.mul(t3, t1, at(2), frac);
        p.add(t2, t2, t3); // bottom_im
        p.mov(at_off(1, 1), t2);
    }
    p.adar(0, 2);
    p.adar(1, 2);
    p.adar(2, 2);
    p.adar(3, 2);
    p.djnz(ctr, l);
    p.halt();
    p.build().expect("cross bf program is valid")
}

/// Cross-tile butterfly variant with **local** outputs, for exchange
/// partners that are not mesh neighbours (the results are routed back by
/// separate multi-hop copy epochs): pairs `a[i]` (at `a_base`) with `b[i]`
/// (at `b_base`), writing `top' = a + b` to `out_top` and
/// `bottom' = (a - b) * w` to `out_bot`, all in this tile's memory.
pub fn cross_bf_local_program(
    m: usize,
    count: usize,
    a_base: u16,
    b_base: u16,
    out_top: u16,
    out_bot: u16,
) -> Vec<Instr> {
    assert!(count >= 1 && count <= m);
    let tmp = tmp_base(m);
    let (t0, t1, t2, t3) = (d(tmp + T0), d(tmp + T1), d(tmp + T2), d(tmp + T3));
    let ctr = d(tmp + CTR_I);
    let frac = FRAC_BITS as u8;
    let mut p = ProgramBuilder::new();
    // a0 = a-side, a1 = b-side, a2 = twiddles, a3 = tops out, a4 = bottoms.
    p.ldar(0, a_base);
    p.ldar(1, b_base);
    p.ldar(2, tw_base(m));
    p.ldar(3, out_top);
    p.ldar(4, out_bot);
    p.ldi(ctr, count as i32);
    let l = p.here_label();
    p.sub(t0, at(0), at(1)); // d_re
    p.sub(t1, at_off(0, 1), at_off(1, 1)); // d_im
    p.add(t2, at(0), at(1)); // top_re
    p.add(t3, at_off(0, 1), at_off(1, 1)); // top_im
    p.mov(at_off(3, 0), t2);
    p.mov(at_off(3, 1), t3);
    p.mul(t2, t0, at(2), frac);
    p.mul(t3, t1, at_off(2, 1), frac);
    p.sub(t2, t2, t3); // bottom_re
    p.mov(at_off(4, 0), t2);
    p.mul(t2, t0, at_off(2, 1), frac);
    p.mul(t3, t1, at(2), frac);
    p.add(t2, t2, t3); // bottom_im
    p.mov(at_off(4, 1), t2);
    p.adar(0, 2);
    p.adar(1, 2);
    p.adar(2, 2);
    p.adar(3, 2);
    p.adar(4, 2);
    p.djnz(ctr, l);
    p.halt();
    p.build().expect("local cross bf program is valid")
}

/// The green-tile twiddle generation program (Sec. 3.1): squares the
/// `count` complex twiddles in place (`W^(2k) = (W^k)^2`), so the next
/// stage's factors appear without any ICAP reload. At 2.5 ns/instruction
/// this beats the 33.33 ns/word reload by design — the bench asserts it.
pub fn twiddle_square_program(m: usize, count: usize) -> Vec<Instr> {
    assert!(count >= 1 && 2 * count <= m);
    let tmp = tmp_base(m);
    let (t0, t1, t2) = (d(tmp + T0), d(tmp + T1), d(tmp + T2));
    let ctr = d(tmp + CTR_I);
    let frac = FRAC_BITS as u8;
    let mut p = ProgramBuilder::new();
    p.ldar(0, tw_base(m));
    p.ldi(ctr, count as i32);
    let l = p.here_label();
    // (re + i*im)^2 = (re^2 - im^2) + i*(2*re*im)
    p.mul(t0, at(0), at(0), frac); // re^2
    p.mul(t1, at_off(0, 1), at_off(0, 1), frac); // im^2
    p.mul(t2, at(0), at_off(0, 1), frac); // re*im
    p.sub(t0, t0, t1); // new re
    p.add(t2, t2, t2); // new im = 2*re*im
    p.mov(at(0), t0);
    p.mov(at_off(0, 1), t2);
    p.adar(0, 2);
    p.djnz(ctr, l);
    p.halt();
    p.build().expect("twiddle square program is valid")
}

/// Writes `data` (M complex points) into the tile's x region.
pub fn load_points(tile: &mut Tile, data: &[Cfx]) {
    for (i, c) in data.iter().enumerate() {
        tile.dmem.poke(2 * i, c.re).unwrap();
        tile.dmem.poke(2 * i + 1, c.im).unwrap();
    }
}

/// Reads the M complex points back out of the tile's x region.
pub fn read_points(tile: &Tile, m: usize) -> Vec<Cfx> {
    (0..m)
        .map(|i| Cfx {
            re: tile.dmem.peek(2 * i).unwrap(),
            im: tile.dmem.peek(2 * i + 1).unwrap(),
        })
        .collect()
}

/// Loads the twiddle table for a *local* stage `s` of an `n`-point FFT into
/// the tile (butterfly order: `W_n^(j << s)` for `j = 0..h`).
pub fn load_local_stage_twiddles(tile: &mut Tile, m: usize, n: usize, s: usize) {
    let h = n >> (s + 1);
    let base = tw_base(m) as usize;
    for j in 0..h {
        let w = twiddle_fx(n, (j << s) % n);
        tile.dmem.poke(base + 2 * j, w.re).unwrap();
        tile.dmem.poke(base + 2 * j + 1, w.im).unwrap();
    }
}

/// Runs a program to completion on `tile`, returning the cycle count.
pub fn run_program(tile: &mut Tile, prog: &[Instr], max_cycles: u64) -> u64 {
    tile.load_program(&encode_program(prog)).unwrap();
    let mut st = PeState::new();
    run(tile, &mut st, max_cycles).expect("program runs").cycles
}

/// Executes a full `n`-point FFT *inside one tile* (m = n, every stage
/// local), reloading the stage twiddle table between stages exactly as the
/// reconfiguration engine would. Returns the output in DIF order (caller
/// bit-reverses) and the per-stage cycle counts.
pub fn single_tile_fft(input: &[Cfx]) -> (Vec<Cfx>, Vec<u64>) {
    let n = input.len();
    assert!(n.is_power_of_two() && n >= 2);
    assert!(
        3 * n + 41 <= cgra_fabric::DATA_WORDS,
        "n too large for one tile"
    );
    let mut tile = Tile::new(0);
    load_points(&mut tile, input);
    let stages = n.trailing_zeros() as usize;
    let mut cycles = Vec::with_capacity(stages);
    for s in 0..stages {
        load_local_stage_twiddles(&mut tile, n, n, s);
        let prog = bf_program(n, n >> (s + 1));
        cycles.push(run_program(&mut tile, &prog, 1_000_000));
    }
    (read_points(&tile, n), cycles)
}

/// Builds the vertical-copy process `vcp`: ships `words` words from local
/// address `src` into the linked neighbour at address `dst`, unrolled by
/// four. With `self_update`, the program ends by advancing its own
/// source/destination variables (stored in data memory at `var_base`) so
/// the *next* invocation needs no ICAP reload — the Table 2 optimization.
pub fn copy_program(words: u16, self_update: bool, var_base: u16) -> Vec<Instr> {
    assert!(
        words > 0 && words.is_multiple_of(4),
        "copy length must be a multiple of 4"
    );
    let ctr = d(var_base + 2);
    let mut p = ProgramBuilder::new();
    // Source/destination variables live in data memory so either the ICAP
    // or the program itself can retarget the copy.
    p.ldar_mem(0, d(var_base)); // a0 = src var
    p.ldar_mem(1, d(var_base + 1)); // a1 = dst var
    p.ldi(ctr, (words / 4) as i32);
    let l = p.here_label();
    for k in 0..4 {
        p.mov(cgra_isa::ops::rem_off(1, k), at_off(0, k));
    }
    p.adar(0, 4);
    p.adar(1, 4);
    p.djnz(ctr, l);
    if self_update {
        // Retarget the copy variables for the next epoch: advance both by
        // the block length (the paper's "update these two variables using
        // the current vcp process").
        p.add(d(var_base), d(var_base), d(var_base + 3));
        p.add(d(var_base + 1), d(var_base + 1), d(var_base + 3));
    }
    p.halt();
    p.build().expect("copy program is valid")
}

/// Builds a purely local copy: moves `words` words from `src` to `dst`
/// within the tile's own data memory, unrolled by four, with the loop
/// counter at `ctr`. Used to drain an output region to a scratch area
/// before the next block of a streaming schedule overwrites it.
pub fn local_copy_program(words: u16, src: u16, dst: u16, ctr: u16) -> Vec<Instr> {
    assert!(
        words > 0 && words.is_multiple_of(4),
        "copy length must be a multiple of 4"
    );
    let mut p = ProgramBuilder::new();
    p.ldar(0, src);
    p.ldar(1, dst);
    p.ldi(d(ctr), (words / 4) as i32);
    let l = p.here_label();
    for k in 0..4 {
        p.mov(at_off(1, k), at_off(0, k));
    }
    p.adar(0, 4);
    p.adar(1, 4);
    p.djnz(d(ctr), l);
    p.halt();
    p.build().expect("local copy program is valid")
}

/// Sets up the copy variables consumed by [`copy_program`].
pub fn init_copy_vars(tile: &mut Tile, var_base: u16, src: u16, dst: u16, stride: i64) {
    tile.dmem
        .poke(var_base as usize, Word::wrap(src as i64))
        .unwrap();
    tile.dmem
        .poke(var_base as usize + 1, Word::wrap(dst as i64))
        .unwrap();
    tile.dmem
        .poke(var_base as usize + 3, Word::wrap(stride))
        .unwrap();
}

/// Runs a copy program, collecting the remote writes.
pub fn run_copy(tile: &mut Tile, prog: &[Instr]) -> (u64, Vec<(usize, Word)>) {
    tile.load_program(&encode_program(prog)).unwrap();
    let mut st = PeState::new();
    let mut writes = Vec::new();
    let stats =
        run_with_sink(tile, &mut st, 1_000_000, |a, v| writes.push((a, v))).expect("copy runs");
    (stats.cycles, writes)
}

/// Measured cost of one FFT process, in the shape of a Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessCost {
    /// Process name (`BF0`..`BF9`, `vcp`, `hcp`).
    pub name: String,
    /// Runtime in ns at the cost-model clock.
    pub runtime_ns: f64,
    /// Distinct complex twiddle factors resident for the stage.
    pub twiddles: usize,
    /// Static program length in instructions.
    pub insts: usize,
    /// Measured execution cycles.
    pub cycles: u64,
}

/// Measures every process of an N-point FFT on M-point tiles: the Table 1
/// generator. `BF0..` rows are produced by executing the generated stage
/// programs on the interpreter with representative data.
pub fn measure_processes(n: usize, m: usize, cost: &cgra_fabric::CostModel) -> Vec<ProcessCost> {
    let plan = super::partition::FftPlan::new(n, m).expect("valid plan");
    let mut out = Vec::new();
    let sample: Vec<Cfx> = (0..m)
        .map(|i| Cfx::from_f64((i as f64 * 0.13).sin() * 0.5, (i as f64 * 0.71).cos() * 0.5))
        .collect();
    for s in 0..plan.stages() {
        let h = if s < plan.cross_stages() {
            m / 2 // after the vertical exchange the pairing is half-vs-half
        } else {
            n >> (s + 1)
        };
        let prog = bf_program(m, h);
        let mut tile = Tile::new(0);
        load_points(&mut tile, &sample);
        // Twiddles: h distinct complex factors resident for this stage.
        for j in 0..h {
            let w = twiddle_fx(n, (j << s) % n);
            tile.dmem.poke(tw_base(m) as usize + 2 * j, w.re).unwrap();
            tile.dmem
                .poke(tw_base(m) as usize + 2 * j + 1, w.im)
                .unwrap();
        }
        let cycles = run_program(&mut tile, &prog, 10_000_000);
        out.push(ProcessCost {
            name: format!("BF{s}"),
            runtime_ns: cost.exec_ns(cycles),
            twiddles: h,
            insts: prog.len(),
            cycles,
        });
    }
    // vcp: exchange half the tile's points (M/2 complex = M words).
    let var_base = tmp_base(m) + 8;
    let vcp = copy_program(m as u16, true, var_base);
    let mut tile = Tile::new(0);
    load_points(&mut tile, &sample);
    init_copy_vars(&mut tile, var_base, X_BASE, X_BASE, m as i64);
    let (vcp_cycles, _) = run_copy(&mut tile, &vcp);
    out.push(ProcessCost {
        name: "vcp".into(),
        runtime_ns: cost.exec_ns(vcp_cycles),
        twiddles: 0,
        insts: vcp.len(),
        cycles: vcp_cycles,
    });
    // hcp: ship the full M complex output (2M words) to the next column.
    let hcp = copy_program((2 * m) as u16, true, var_base);
    let mut tile = Tile::new(0);
    load_points(&mut tile, &sample);
    init_copy_vars(&mut tile, var_base, X_BASE, X_BASE, 2 * m as i64);
    let (hcp_cycles, _) = run_copy(&mut tile, &hcp);
    out.push(ProcessCost {
        name: "hcp".into(),
        runtime_ns: cost.exec_ns(hcp_cycles),
        twiddles: 0,
        insts: hcp.len(),
        cycles: hcp_cycles,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fixed::fft_fixed;
    use crate::fft::reference::bit_reverse;
    use cgra_fabric::CostModel;

    fn signal(n: usize) -> Vec<Cfx> {
        (0..n)
            .map(|i| Cfx::from_f64((i as f64 * 0.37).sin() * 0.9, (i as f64 * 0.17).cos() * 0.4))
            .collect()
    }

    #[test]
    fn single_tile_fft_matches_fixed_model_bit_exact() {
        for n in [8usize, 16, 64, 128] {
            let input = signal(n);
            let (dif_out, cycles) = single_tile_fft(&input);
            assert_eq!(cycles.len(), n.trailing_zeros() as usize);
            // Undo the DIF output bit-reversal.
            let bits = n.trailing_zeros();
            let mut got = vec![Cfx::default(); n];
            for (g, v) in dif_out.iter().enumerate() {
                got[bit_reverse(g, bits)] = *v;
            }
            // The DIT host model applies butterflies in a different order,
            // so compare numerically at fixed-point precision...
            let mut host = input.clone();
            fft_fixed(&mut host);
            for (a, b) in got.iter().zip(&host) {
                let d = a.to_c().sub(b.to_c()).abs();
                assert!(d < 1e-4, "n={n} delta={d}");
            }
            // ...and bit-exact against the DIF pipeline model.
            let plan = crate::fft::partition::FftPlan::new(n, n).unwrap();
            let (pipe, _) = crate::fft::pipeline::run_partitioned(plan, &input).unwrap();
            assert_eq!(got, pipe, "n={n}: PE execution must be bit-exact");
        }
    }

    #[test]
    fn bf_program_fits_instruction_memory() {
        for h in [1usize, 2, 4, 8, 16, 32, 64] {
            let p = bf_program(128, h);
            assert!(p.len() <= 512);
            assert!(p.len() < 40, "BF should be compact, got {}", p.len());
        }
    }

    #[test]
    fn bf_cycles_scale_with_block_structure() {
        // One big block (h=m/2) is the cheapest; h=1 pays block overhead
        // per butterfly — the rising tail of Table 1.
        let c64 = {
            let mut t = Tile::new(0);
            load_points(&mut t, &signal(128));
            run_program(&mut t, &bf_program(128, 64), 1_000_000)
        };
        let c1 = {
            let mut t = Tile::new(0);
            load_points(&mut t, &signal(128));
            run_program(&mut t, &bf_program(128, 1), 1_000_000)
        };
        assert!(c1 > c64, "h=1 ({c1}) should cost more than h=64 ({c64})");
        // Both do 64 butterflies at ~14 cycles each.
        assert!(c64 > 64 * 14 && c64 < 64 * 20, "c64={c64}");
    }

    #[test]
    fn copy_program_moves_block() {
        let var_base = tmp_base(128) + 8;
        let prog = copy_program(8, false, var_base);
        let mut t = Tile::new(0);
        for i in 0..8 {
            t.dmem.poke(i, Word::wrap(i as i64 + 1)).unwrap();
        }
        init_copy_vars(&mut t, var_base, 0, 100, 8);
        let (cycles, writes) = run_copy(&mut t, &prog);
        assert_eq!(writes.len(), 8);
        for (k, (addr, v)) in writes.iter().enumerate() {
            assert_eq!(*addr, 100 + k);
            assert_eq!(v.value(), k as i64 + 1);
        }
        // 3 setup + 2 blocks of (4 movs + 2 adar + djnz) + halt
        assert_eq!(cycles, 3 + 2 * 7 + 1);
    }

    #[test]
    fn self_updating_copy_advances_variables() {
        let var_base = tmp_base(128) + 8;
        let prog = copy_program(8, true, var_base);
        let mut t = Tile::new(0);
        init_copy_vars(&mut t, var_base, 16, 200, 8);
        let (_, writes) = run_copy(&mut t, &prog);
        assert_eq!(writes[0].0, 200);
        // Variables advanced by the stride: next epoch copies 24 -> 208.
        assert_eq!(t.dmem.peek(var_base as usize).unwrap().value(), 24);
        assert_eq!(t.dmem.peek(var_base as usize + 1).unwrap().value(), 208);
        let (_, writes2) = run_copy(&mut t, &prog);
        assert_eq!(writes2[0].0, 208);
    }

    #[test]
    fn twiddle_generation_is_bit_faithful_and_cheaper_than_reload() {
        use crate::fft::twiddle::generate_next_stage;
        let m = 128;
        let count = 16;
        let table: Vec<Cfx> = (0..count).map(|k| twiddle_fx(64, k)).collect();
        let mut tile = Tile::new(0);
        for (j, w) in table.iter().enumerate() {
            tile.dmem.poke(tw_base(m) as usize + 2 * j, w.re).unwrap();
            tile.dmem
                .poke(tw_base(m) as usize + 2 * j + 1, w.im)
                .unwrap();
        }
        let prog = twiddle_square_program(m, count);
        let cycles = run_program(&mut tile, &prog, 100_000);
        // Bit-exact with the host squaring path.
        let want = generate_next_stage(&table);
        for (j, w) in want.iter().enumerate() {
            assert_eq!(
                tile.dmem.peek(tw_base(m) as usize + 2 * j).unwrap(),
                w.re,
                "re {j}"
            );
            assert_eq!(
                tile.dmem.peek(tw_base(m) as usize + 2 * j + 1).unwrap(),
                w.im,
                "im {j}"
            );
        }
        // Sec. 3.1's economics: generation at 2.5 ns/cycle beats reloading
        // 2*count words at 33.33 ns each.
        let cost = CostModel::default();
        let gen_ns = cost.exec_ns(cycles);
        let reload_ns = cost.data_reload_ns(2 * count);
        assert!(
            gen_ns < reload_ns,
            "generation {gen_ns:.0} ns should beat reload {reload_ns:.0} ns"
        );
    }

    #[test]
    fn table1_measurement_shape() {
        let cost = CostModel::default();
        let rows = measure_processes(1024, 128, &cost);
        assert_eq!(rows.len(), 12); // BF0..BF9 + vcp + hcp
                                    // Cross stages share a structure: identical runtimes (paper: BF0-BF2).
        assert_eq!(rows[0].runtime_ns, rows[1].runtime_ns);
        assert_eq!(rows[1].runtime_ns, rows[2].runtime_ns);
        // Twiddle complement halves down the local stages (128's table col).
        let tw: Vec<usize> = rows.iter().take(10).map(|r| r.twiddles).collect();
        assert_eq!(tw, vec![64, 64, 64, 64, 32, 16, 8, 4, 2, 1]);
        // BF runtimes live in the paper's 2-5 microsecond band.
        for r in rows.iter().take(10) {
            assert!(
                r.runtime_ns > 1500.0 && r.runtime_ns < 6000.0,
                "{}: {}",
                r.name,
                r.runtime_ns
            );
        }
        // The last stage (h=1) pays the most block overhead (paper: BF9 max).
        let bf: Vec<f64> = rows.iter().take(10).map(|r| r.runtime_ns).collect();
        assert!(bf[9] > bf[3], "BF9 should exceed BF3");
        // vcp moves half of what hcp moves.
        let vcp = &rows[10];
        let hcp = &rows[11];
        assert!(hcp.runtime_ns > 1.8 * vcp.runtime_ns);
        assert!(vcp.insts <= 16, "vcp is tiny: {} insts", vcp.insts);
    }
}
