//! Functional model of the partitioned, tile-parallel FFT dataflow.
//!
//! This executes the *exact* dataflow the tile array implements — rows of M
//! complex points, decimation-in-frequency stages, half-exchanges between
//! partner tiles at cross-tile stages (Figure 9), bit-reversed unscramble at
//! the output — using the PE's 48-bit fixed-point arithmetic. It is the
//! bridge between the architectural model (who moves what, when) and
//! numerical correctness (validated against the f64 reference).

use super::fixed::{butterfly_dif, twiddle_fx, Cfx};
use super::partition::FftPlan;
use super::reference::bit_reverse;
use super::twiddle::butterfly_twiddle;

/// Data-movement statistics of one partitioned execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataflowStats {
    /// Complex values exchanged vertically between partner tiles (vcp).
    pub vertical_exchanged: usize,
    /// Butterflies executed.
    pub butterflies: usize,
    /// Cross-tile stages executed.
    pub cross_stages: usize,
    /// Tile-local stages executed.
    pub local_stages: usize,
}

/// The partitioned FFT state: one `Vec<Cfx>` of length M per row-tile.
#[derive(Debug, Clone)]
pub struct PartitionedFft {
    plan: FftPlan,
    rows: Vec<Vec<Cfx>>,
    stats: DataflowStats,
}

impl PartitionedFft {
    /// Distributes `input` (natural order, length N) across the row-tiles.
    pub fn load(plan: FftPlan, input: &[Cfx]) -> Result<PartitionedFft, String> {
        if input.len() != plan.n {
            return Err(format!(
                "input length {} does not match plan N={}",
                input.len(),
                plan.n
            ));
        }
        let rows = input.chunks(plan.m).map(|c| c.to_vec()).collect();
        Ok(PartitionedFft {
            plan,
            rows,
            stats: DataflowStats::default(),
        })
    }

    /// The plan this state was partitioned under.
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// Executes stage `s` (0-based, DIF order).
    pub fn run_stage(&mut self, s: usize) {
        let (n, m) = (self.plan.n, self.plan.m);
        if self.plan.exchange_partner(s, 0).is_some() {
            // Cross-tile stage: partner rows exchange halves and compute
            // M/2 butterflies each (modeled at the pair level).
            self.stats.cross_stages += 1;
            let span = self.plan.rows() >> (s + 1);
            for r in 0..self.plan.rows() {
                let q = r ^ span;
                if r > q {
                    continue;
                }
                // Each tile of the pair ships half its points to the other
                // (Figure 9's in-column exchange).
                self.stats.vertical_exchanged += m;
                for i in 0..m {
                    let g_top = r * m + i;
                    let w = twiddle_fx(n, butterfly_twiddle(n, s, g_top).expect("top"));
                    let (t, u) = butterfly_dif(self.rows[r][i], self.rows[q][i], w);
                    self.rows[r][i] = t;
                    self.rows[q][i] = u;
                    self.stats.butterflies += 1;
                }
            }
        } else {
            // Tile-local stage: butterflies stay inside each row.
            self.stats.local_stages += 1;
            let h = n >> (s + 1);
            for r in 0..self.plan.rows() {
                let base = r * m;
                for i in 0..m {
                    let g = base + i;
                    if g % (2 * h) < h {
                        let w = twiddle_fx(n, butterfly_twiddle(n, s, g).expect("top"));
                        let j = i + h;
                        let (t, u) = butterfly_dif(self.rows[r][i], self.rows[r][j], w);
                        self.rows[r][i] = t;
                        self.rows[r][j] = u;
                        self.stats.butterflies += 1;
                    }
                }
            }
        }
    }

    /// Runs all stages.
    pub fn run_all(&mut self) {
        for s in 0..self.plan.stages() {
            self.run_stage(s);
        }
    }

    /// Gathers the result in natural frequency order (undoing the DIF
    /// output bit-reversal).
    pub fn gather(&self) -> Vec<Cfx> {
        let n = self.plan.n;
        let bits = n.trailing_zeros();
        let mut out = vec![Cfx::default(); n];
        for (g, v) in self.rows.iter().flatten().enumerate() {
            out[bit_reverse(g, bits)] = *v;
        }
        out
    }

    /// Data-movement statistics accumulated so far.
    pub fn stats(&self) -> DataflowStats {
        self.stats
    }
}

/// Convenience: full partitioned FFT of `input` under `plan`.
pub fn run_partitioned(plan: FftPlan, input: &[Cfx]) -> Result<(Vec<Cfx>, DataflowStats), String> {
    let mut p = PartitionedFft::load(plan, input)?;
    p.run_all();
    Ok((p.gather(), p.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fixed::relative_error;
    use crate::fft::reference::{fft, Cf64};

    fn signal(n: usize) -> Vec<Cf64> {
        (0..n)
            .map(|i| Cf64::new((i as f64 * 0.19).sin() * 0.8, (i as f64 * 0.41).cos() * 0.6))
            .collect()
    }

    fn check(n: usize, m: usize) {
        let plan = FftPlan::new(n, m).unwrap();
        let sig = signal(n);
        let mut oracle = sig.clone();
        fft(&mut oracle);
        let input: Vec<Cfx> = sig.iter().map(|&c| Cfx::from_c(c)).collect();
        let (got, stats) = run_partitioned(plan, &input).unwrap();
        let err = relative_error(&got, &oracle);
        assert!(err < 1e-4, "n={n} m={m} err={err}");
        assert_eq!(stats.butterflies, (n / 2) * plan.stages());
        assert_eq!(stats.cross_stages, plan.cross_stages());
        assert_eq!(stats.local_stages, plan.stages() - plan.cross_stages());
    }

    #[test]
    fn partitioned_matches_reference_16_4() {
        check(16, 4);
    }

    #[test]
    fn partitioned_matches_reference_64_8() {
        check(64, 8);
    }

    #[test]
    fn partitioned_matches_reference_256_32() {
        check(256, 32);
    }

    #[test]
    fn partitioned_matches_reference_paper_1024_128() {
        check(1024, 128);
    }

    #[test]
    fn degenerate_single_row() {
        // m == n: everything tile-local (no exchanges).
        let plan = FftPlan::new(64, 64).unwrap();
        let sig = signal(64);
        let input: Vec<Cfx> = sig.iter().map(|&c| Cfx::from_c(c)).collect();
        let (_, stats) = run_partitioned(plan, &input).unwrap();
        assert_eq!(stats.vertical_exchanged, 0);
        assert_eq!(stats.cross_stages, 0);
    }

    #[test]
    fn exchange_volume_matches_half_transfers() {
        // Each cross stage ships M complex per tile pair; rows/2 pairs.
        let plan = FftPlan::new(1024, 128).unwrap();
        let sig = signal(1024);
        let input: Vec<Cfx> = sig.iter().map(|&c| Cfx::from_c(c)).collect();
        let (_, stats) = run_partitioned(plan, &input).unwrap();
        let pairs = plan.rows() / 2;
        assert_eq!(
            stats.vertical_exchanged,
            plan.cross_stages() * pairs * plan.m
        );
    }

    #[test]
    fn load_rejects_wrong_length() {
        let plan = FftPlan::new(16, 4).unwrap();
        assert!(PartitionedFft::load(plan, &[Cfx::default(); 8]).is_err());
    }
}
