//! Double-precision reference FFT (the "high end PC" baseline of Sec. 3.3).
//!
//! An iterative, in-place, decimation-in-time radix-2 Cooley-Tukey FFT with
//! bit-reversal reordering — the textbook structure the paper's Figure 5
//! draws. Used both as the correctness oracle for the fixed-point PE kernel
//! and as the host baseline the paper compares its throughput against
//! ("throughput in a high end PC computer is roughly 1000" FFT/s).

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cf64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cf64 {
    /// Constructs `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Cf64 {
        Cf64 { re, im }
    }

    /// Complex addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Cf64) -> Cf64 {
        Cf64::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Cf64) -> Cf64 {
        Cf64::new(self.re - o.re, self.im - o.im)
    }

    /// Complex multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Cf64) -> Cf64 {
        Cf64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// The twiddle factor `W_N^k = exp(-2*pi*i*k/N)`.
pub fn twiddle(n: usize, k: usize) -> Cf64 {
    let theta = -2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
    Cf64::new(theta.cos(), theta.sin())
}

/// Bit-reverses `x` within `bits` bits.
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Permutes `data` into bit-reversed order (the paper's "Input Scrambler").
pub fn scramble<T>(data: &mut [T]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// In-place radix-2 DIT FFT. `data.len()` must be a power of two.
pub fn fft(data: &mut [Cf64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    scramble(data);
    let mut half = 1;
    while half < n {
        let step = n / (2 * half);
        for start in (0..n).step_by(2 * half) {
            for j in 0..half {
                let w = twiddle(n, j * step);
                let a = data[start + j];
                let b = data[start + j + half].mul(w);
                data[start + j] = a.add(b);
                data[start + j + half] = a.sub(b);
            }
        }
        half *= 2;
    }
}

/// In-place inverse FFT (unscaled result divided by `n`).
pub fn ifft(data: &mut [Cf64]) {
    for c in data.iter_mut() {
        c.im = -c.im;
    }
    fft(data);
    let n = data.len() as f64;
    for c in data.iter_mut() {
        c.re /= n;
        c.im = -c.im / n;
    }
}

/// Direct O(n^2) DFT used as the oracle for [`fft`] in tests.
pub fn dft_naive(input: &[Cf64]) -> Vec<Cf64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Cf64::default();
            for (j, &x) in input.iter().enumerate() {
                acc = acc.add(x.mul(twiddle(n, (j * k) % n)));
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cf64, b: Cf64, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    #[test]
    fn impulse_transforms_to_ones() {
        let mut d = vec![Cf64::default(); 8];
        d[0] = Cf64::new(1.0, 0.0);
        fft(&mut d);
        for c in d {
            assert!(close(c, Cf64::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn dc_transforms_to_delta() {
        let mut d = vec![Cf64::new(1.0, 0.0); 16];
        fft(&mut d);
        assert!(close(d[0], Cf64::new(16.0, 0.0), 1e-12));
        for c in &d[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let input: Vec<Cf64> = (0..n)
                .map(|i| {
                    Cf64::new(
                        ((i * 37 + 11) % 17) as f64 - 8.0,
                        ((i * 53 + 3) % 23) as f64 - 11.0,
                    )
                })
                .collect();
            let want = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!(close(*g, *w, 1e-8 * n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let input: Vec<Cf64> = (0..128)
            .map(|i| Cf64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut d = input.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in d.iter().zip(&input) {
            assert!(close(*a, *b, 1e-10));
        }
    }

    #[test]
    fn bit_reverse_involutive() {
        for bits in 1..10u32 {
            for x in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut d = vec![Cf64::default(); 12];
        fft(&mut d);
    }
}
