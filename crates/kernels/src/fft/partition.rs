//! Partitioning an N-point radix-2 FFT onto tiles of size M (Sec. 3.1).
//!
//! * the computational structure is broken into `N/M` horizontal rows,
//! * every input passes through `log2 N` stages,
//! * stages are grouped into `cols` columns of tiles; each column holds
//!   `N/M` tiles (one per row),
//! * the first `log2 N - log2 M` stages pair data across tiles and need
//!   vertical exchange (`vcp`) + vertical link reconfiguration; the rest
//!   are tile-local,
//! * `M` itself is bounded by the 512-word data memory:
//!   `2M` input + `M` twiddle + 41 temporary words (`M = 128` for DM=512).

use cgra_fabric::DATA_WORDS;

/// Words of tile data memory reserved for temporaries/control by a BF
/// process (the paper's constant 41).
pub const BF_TEMP_WORDS: usize = 41;

/// The largest partition size M a tile with `dm` data words supports when
/// outputs reuse the input locations: `3M + 41 <= dm`, M a power of two.
///
/// For the reMORPH tile (`dm = 512`) this is the paper's `M = 128`.
pub fn max_partition_size(dm: usize) -> usize {
    let budget = (dm.saturating_sub(BF_TEMP_WORDS)) / 3;
    if budget == 0 {
        return 0;
    }
    // largest power of two <= budget
    1 << (usize::BITS - 1 - budget.leading_zeros())
}

/// A partitioned N-point FFT plan on tiles of size M.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftPlan {
    /// Transform size (power of two).
    pub n: usize,
    /// Partition size: complex points per tile (power of two, <= n).
    pub m: usize,
}

impl FftPlan {
    /// Builds a plan, validating the paper's constraints.
    pub fn new(n: usize, m: usize) -> Result<FftPlan, String> {
        if !n.is_power_of_two() || !m.is_power_of_two() {
            return Err(format!("n={n} and m={m} must be powers of two"));
        }
        if m > n {
            return Err(format!("partition size m={m} exceeds n={n}"));
        }
        if m < 2 {
            return Err("partition size must be at least 2".into());
        }
        Ok(FftPlan { n, m })
    }

    /// The paper's 1024-point plan on reMORPH tiles (M=128).
    pub fn paper_1024() -> FftPlan {
        FftPlan::new(1024, max_partition_size(DATA_WORDS)).expect("valid plan")
    }

    /// log2 N: total butterfly stages.
    pub fn stages(&self) -> usize {
        self.n.trailing_zeros() as usize
    }

    /// N/M: rows (tiles per column).
    pub fn rows(&self) -> usize {
        self.n / self.m
    }

    /// `log2 N - log2 M`: leading stages that pair data across tiles and
    /// need vertical exchange.
    pub fn cross_stages(&self) -> usize {
        self.stages() - self.m.trailing_zeros() as usize
    }

    /// Valid column counts: divisors of the stage count (equal stage
    /// distribution per column, the "good" mappings of Figure 7).
    pub fn valid_cols(&self) -> Vec<usize> {
        let s = self.stages();
        (1..=s).filter(|c| s.is_multiple_of(*c)).collect()
    }

    /// Stages per column for `cols` columns (must divide the stage count).
    pub fn stages_per_col(&self, cols: usize) -> Result<usize, String> {
        let s = self.stages();
        if cols == 0 || !s.is_multiple_of(cols) {
            return Err(format!("{cols} columns do not evenly divide {s} stages"));
        }
        Ok(s / cols)
    }

    /// Tiles used by a `cols`-column implementation.
    pub fn tiles(&self, cols: usize) -> usize {
        self.rows() * cols
    }

    /// Minimum tiles (one column).
    pub fn min_tiles(&self) -> usize {
        self.rows()
    }

    /// Maximum tiles (one column per stage); 80 for the 1024-point plan.
    pub fn max_tiles(&self) -> usize {
        self.rows() * self.stages()
    }

    /// The global stage indices executed by column `col` of a `cols`-column
    /// implementation.
    pub fn column_stages(&self, cols: usize, col: usize) -> Result<std::ops::Range<usize>, String> {
        let spc = self.stages_per_col(cols)?;
        if col >= cols {
            return Err(format!("column {col} out of range for {cols} columns"));
        }
        Ok(col * spc..(col + 1) * spc)
    }

    /// The row a tile in row `r` exchanges halves with at cross-tile stage
    /// `s` (`r XOR rows/2^(s+1)`), or `None` for tile-local stages.
    pub fn exchange_partner(&self, s: usize, r: usize) -> Option<usize> {
        if s >= self.cross_stages() {
            return None;
        }
        let span = self.rows() >> (s + 1);
        Some(r ^ span)
    }

    /// Number of in-column yellow twiddle-reload events for a
    /// `cols`-column implementation: a reload is needed whenever two
    /// consecutive stages `s-1, s` with `s <= cross_stages` execute in the
    /// *same* column (the tile must overwrite its twiddle complement at
    /// runtime); when the boundary falls between columns the next column's
    /// twiddles were preloaded.
    ///
    /// Reproduces the paper's Eq. 7 counts for N=1024, M=128:
    /// cols 1 -> 3, 2 -> 3, 5 -> 2, 10 -> 0.
    pub fn yellow_reload_events(&self, cols: usize) -> Result<usize, String> {
        let spc = self.stages_per_col(cols)?;
        let cross = self.cross_stages();
        Ok((1..=cross).filter(|s| s % spc != 0).count())
    }

    /// Words reloaded per yellow event: N/2 twiddle values (Sec. 3.1's
    /// `(log2 N - log2 M) x N/2` total, spread over the reload events).
    pub fn yellow_words_per_event(&self) -> usize {
        self.n / 2
    }
}

/// One of the Figure-7 style mappings: how many stages each column takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSplit {
    /// Stages assigned to each column, left to right.
    pub per_col: Vec<usize>,
}

impl StageSplit {
    /// An even split into `cols` columns.
    pub fn even(plan: &FftPlan, cols: usize) -> Result<StageSplit, String> {
        let spc = plan.stages_per_col(cols)?;
        Ok(StageSplit {
            per_col: vec![spc; cols],
        })
    }

    /// An arbitrary split (Figure 7d's unequal case allowed).
    pub fn custom(plan: &FftPlan, per_col: Vec<usize>) -> Result<StageSplit, String> {
        if per_col.iter().sum::<usize>() != plan.stages() {
            return Err(format!(
                "split {:?} does not cover {} stages",
                per_col,
                plan.stages()
            ));
        }
        if per_col.contains(&0) {
            return Err("empty column in split".into());
        }
        Ok(StageSplit { per_col })
    }

    /// Columns in the split.
    pub fn cols(&self) -> usize {
        self.per_col.len()
    }

    /// True when all columns carry the same number of stages — the paper's
    /// criterion for a good pipelined mapping ("the complexity ... is
    /// decomposed into partitions uniformly"; Figure 7d fails this).
    pub fn is_balanced(&self) -> bool {
        self.per_col.windows(2).all(|w| w[0] == w[1])
    }

    /// Pipeline imbalance: max stages per column over mean stages per
    /// column (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = *self.per_col.iter().max().unwrap_or(&0) as f64;
        let mean = self.per_col.iter().sum::<usize>() as f64 / self.cols() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_partition_size() {
        // DM=512 => M=128 (the paper's derivation).
        assert_eq!(max_partition_size(512), 128);
        // (512-41)/3 = 157 -> 128.
        assert_eq!(max_partition_size(1024), 256);
        assert_eq!(max_partition_size(41), 0);
    }

    #[test]
    fn paper_1024_plan() {
        let p = FftPlan::paper_1024();
        assert_eq!(p.m, 128);
        assert_eq!(p.rows(), 8);
        assert_eq!(p.stages(), 10);
        assert_eq!(p.cross_stages(), 3);
        // "atleast 8 and at most 80 tiles"
        assert_eq!(p.min_tiles(), 8);
        assert_eq!(p.max_tiles(), 80);
        assert_eq!(p.valid_cols(), vec![1, 2, 5, 10]);
    }

    #[test]
    fn sixteen_point_example() {
        // Figure 6: N=16, M=4 -> 4 rows, 4 stages.
        let p = FftPlan::new(16, 4).unwrap();
        assert_eq!(p.rows(), 4);
        assert_eq!(p.stages(), 4);
        assert_eq!(p.cross_stages(), 2);
        assert_eq!(p.valid_cols(), vec![1, 2, 4]);
    }

    #[test]
    fn column_stage_ranges() {
        let p = FftPlan::paper_1024();
        assert_eq!(p.column_stages(5, 0).unwrap(), 0..2);
        assert_eq!(p.column_stages(5, 4).unwrap(), 8..10);
        assert!(p.column_stages(5, 5).is_err());
        assert!(p.column_stages(3, 0).is_err());
    }

    #[test]
    fn yellow_reload_counts_match_eq7() {
        let p = FftPlan::paper_1024();
        assert_eq!(p.yellow_reload_events(1).unwrap(), 3);
        assert_eq!(p.yellow_reload_events(2).unwrap(), 3);
        assert_eq!(p.yellow_reload_events(5).unwrap(), 2);
        assert_eq!(p.yellow_reload_events(10).unwrap(), 0);
        assert_eq!(p.yellow_words_per_event(), 512);
    }

    #[test]
    fn exchange_partners() {
        let p = FftPlan::paper_1024(); // 8 rows, 3 cross stages
        assert_eq!(p.exchange_partner(0, 0), Some(4));
        assert_eq!(p.exchange_partner(0, 5), Some(1));
        assert_eq!(p.exchange_partner(1, 0), Some(2));
        assert_eq!(p.exchange_partner(2, 0), Some(1));
        assert_eq!(p.exchange_partner(3, 0), None);
        // partnering is an involution
        for s in 0..3 {
            for r in 0..8 {
                let q = p.exchange_partner(s, r).unwrap();
                assert_eq!(p.exchange_partner(s, q), Some(r));
            }
        }
    }

    #[test]
    fn splits() {
        let p = FftPlan::new(16, 4).unwrap();
        let even = StageSplit::even(&p, 2).unwrap();
        assert!(even.is_balanced());
        assert!((even.imbalance() - 1.0).abs() < 1e-12);
        // Figure 7d: unequal 3+1 split.
        let uneq = StageSplit::custom(&p, vec![3, 1]).unwrap();
        assert!(!uneq.is_balanced());
        assert!(uneq.imbalance() > 1.4);
        assert!(StageSplit::custom(&p, vec![2, 1]).is_err());
        assert!(StageSplit::custom(&p, vec![4, 0]).is_err());
    }

    #[test]
    fn invalid_plans_rejected() {
        assert!(FftPlan::new(100, 4).is_err());
        assert!(FftPlan::new(16, 32).is_err());
        assert!(FftPlan::new(16, 1).is_err());
    }
}
