//! The radix-2 FFT kernel family (Sec. 3.1–3.3).
//!
//! * [`mod@reference`] — f64 oracle FFT (and the paper's PC baseline),
//! * [`fixed`] — 48-bit Q24.24 fixed-point FFT with PE semantics,
//! * [`partition`] — the N/M row–column decomposition and its invariants,
//! * [`twiddle`] — red/green/yellow/blue twiddle-factor management,
//! * [`pipeline`] — functional model of the tile-parallel dataflow,
//! * [`programs`] — generated PE programs (`BF`, `vcp`, `hcp`) and the
//!   Table 1 measurement harness.

pub mod fixed;
pub mod partition;
pub mod pipeline;
pub mod programs;
pub mod reference;
pub mod twiddle;
