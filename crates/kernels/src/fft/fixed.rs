//! Fixed-point FFT with the PE's 48-bit word semantics.
//!
//! This is the bit-level model of what the tile programs compute: complex
//! values are pairs of Q24.24 words, butterflies use the same
//! multiply-shift the `MUL`/`MAC` instructions perform, and all additions
//! wrap at 48 bits. The host-level implementation here must agree **bit for
//! bit** with the generated PE programs executed by the interpreter (tested
//! in `programs.rs`), and approximately with the `f64` reference.

use super::reference::{bit_reverse, Cf64};
use cgra_fabric::word::{fixed, Word};

/// A complex number held as two Q24.24 48-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cfx {
    /// Real part (Q24.24).
    pub re: Word,
    /// Imaginary part (Q24.24).
    pub im: Word,
}

impl Cfx {
    /// Converts from `f64` parts.
    pub fn from_f64(re: f64, im: f64) -> Cfx {
        Cfx {
            re: fixed::from_f64(re),
            im: fixed::from_f64(im),
        }
    }

    /// Converts from a reference complex.
    pub fn from_c(c: Cf64) -> Cfx {
        Cfx::from_f64(c.re, c.im)
    }

    /// Converts to a reference complex.
    pub fn to_c(self) -> Cf64 {
        Cf64::new(fixed::to_f64(self.re), fixed::to_f64(self.im))
    }

    /// Wrapping complex addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Cfx) -> Cfx {
        Cfx {
            re: self.re.add(o.re),
            im: self.im.add(o.im),
        }
    }

    /// Wrapping complex subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Cfx) -> Cfx {
        Cfx {
            re: self.re.sub(o.re),
            im: self.im.sub(o.im),
        }
    }

    /// Complex multiplication in the PE Q-format: four `MUL`-equivalent
    /// fixed-point products and two wrapping adds.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Cfx) -> Cfx {
        let rr = fixed::mul(self.re, o.re);
        let ii = fixed::mul(self.im, o.im);
        let ri = fixed::mul(self.re, o.im);
        let ir = fixed::mul(self.im, o.re);
        Cfx {
            re: rr.sub(ii),
            im: ri.add(ir),
        }
    }
}

/// The Q-format twiddle factor `W_N^k`, rounded exactly as the preprocessing
/// loader writes it into tile data memory.
pub fn twiddle_fx(n: usize, k: usize) -> Cfx {
    Cfx::from_c(super::reference::twiddle(n, k))
}

/// The decimation-in-time radix-2 butterfly:
/// `(a, b, w) -> (a + w*b, a - w*b)`.
#[inline]
pub fn butterfly(a: Cfx, b: Cfx, w: Cfx) -> (Cfx, Cfx) {
    let t = w.mul(b);
    (a.add(t), a.sub(t))
}

/// The decimation-in-frequency radix-2 butterfly the `BF` tile processes
/// execute: `(a, b, w) -> (a + b, (a - b) * w)`.
#[inline]
pub fn butterfly_dif(a: Cfx, b: Cfx, w: Cfx) -> (Cfx, Cfx) {
    (a.add(b), a.sub(b).mul(w))
}

/// In-place fixed-point radix-2 DIT FFT, matching [`super::reference::fft`]
/// up to Q24.24 rounding.
pub fn fft_fixed(data: &mut [Cfx]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
    let mut half = 1;
    while half < n {
        let step = n / (2 * half);
        for start in (0..n).step_by(2 * half) {
            for j in 0..half {
                let w = twiddle_fx(n, j * step);
                let (x, y) = butterfly(data[start + j], data[start + j + half], w);
                data[start + j] = x;
                data[start + j + half] = y;
            }
        }
        half *= 2;
    }
}

/// Maximum absolute error of `got` against the `f64` oracle on the same
/// input, normalized by the oracle's peak magnitude.
pub fn relative_error(got: &[Cfx], oracle: &[Cf64]) -> f64 {
    let peak = oracle.iter().map(|c| c.abs()).fold(1e-30, f64::max);
    got.iter()
        .zip(oracle)
        .map(|(g, o)| g.to_c().sub(*o).abs())
        .fold(0.0, f64::max)
        / peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::reference::{dft_naive, fft};

    fn test_signal(n: usize) -> Vec<Cf64> {
        (0..n)
            .map(|i| Cf64::new((i as f64 * 0.61).sin() * 0.9, (i as f64 * 0.23).cos() * 0.7))
            .collect()
    }

    #[test]
    fn fixed_matches_reference_small() {
        for n in [4usize, 16, 64] {
            let sig = test_signal(n);
            let mut oracle = sig.clone();
            fft(&mut oracle);
            let mut fx: Vec<Cfx> = sig.iter().map(|&c| Cfx::from_c(c)).collect();
            fft_fixed(&mut fx);
            let err = relative_error(&fx, &oracle);
            assert!(err < 1e-5, "n={n} err={err}");
        }
    }

    #[test]
    fn fixed_matches_reference_1024() {
        let sig = test_signal(1024);
        let mut oracle = sig.clone();
        fft(&mut oracle);
        let mut fx: Vec<Cfx> = sig.iter().map(|&c| Cfx::from_c(c)).collect();
        fft_fixed(&mut fx);
        let err = relative_error(&fx, &oracle);
        assert!(err < 1e-4, "err={err}");
    }

    #[test]
    fn butterfly_identity_twiddle() {
        let a = Cfx::from_f64(0.25, -0.5);
        let b = Cfx::from_f64(-0.125, 0.375);
        let one = Cfx::from_f64(1.0, 0.0);
        let (x, y) = butterfly(a, b, one);
        assert_eq!(x, a.add(b));
        assert_eq!(y, a.sub(b));
    }

    #[test]
    fn fixed_matches_naive_dft() {
        let n = 32;
        let sig = test_signal(n);
        let oracle = dft_naive(&sig);
        let mut fx: Vec<Cfx> = sig.iter().map(|&c| Cfx::from_c(c)).collect();
        fft_fixed(&mut fx);
        assert!(relative_error(&fx, &oracle) < 1e-5);
    }

    #[test]
    fn complex_mul_sign_conventions() {
        // (0+i) * (0+i) = -1
        let i = Cfx::from_f64(0.0, 1.0);
        let m = i.mul(i).to_c();
        assert!((m.re + 1.0).abs() < 1e-6 && m.im.abs() < 1e-6);
    }
}
