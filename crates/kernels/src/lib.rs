//! # cgra-kernels
//!
//! The two compute-intensive application kernels the paper maps onto the
//! partially reconfigurable CGRA:
//!
//! * [`fft`] — N-point radix-2 FFT, partitioned over M-point tiles,
//! * [`jpeg`] — a baseline JPEG encoder (and validating decoder) plus the
//!   paper's process network (Table 3).

#![warn(missing_docs)]

pub mod fft;
pub mod jpeg;
