//! The JPEG encoder kernel family (Sec. 3.4-3.5).
//!
//! * [`image`] — grayscale images and synthetic workloads,
//! * [`dct`]/[`quant`]/[`zigzag`]/[`huffman`]/[`bitio`] — the coding
//!   stages,
//! * [`encoder`]/[`decoder`] — the monolithic JFIF encoder and a
//!   validating decoder,
//! * [`processes`] — the paper's Table 3 process network,
//! * [`programs`] — generated PE programs for the pipeline stages,
//!   bit-exact with the host encoder.

pub mod bitio;
pub mod color;
pub mod dct;
pub mod decoder;
pub mod encoder;
pub mod entropy_programs;
pub mod huffman;
pub mod image;
pub mod processes;
pub mod programs;
pub mod quant;
pub mod zigzag;
