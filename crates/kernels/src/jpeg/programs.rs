//! Generated PE programs for the JPEG pipeline stages.
//!
//! Each program runs on the `cgra-isa` interpreter and is validated
//! **bit-exact** against the host stage functions in
//! [`super::encoder::stages`] — so a block pushed through tiles produces
//! the same bytes as the monolithic encoder. Measured cycle counts feed
//! the "ours" column of the Table 3 bench.
//!
//! ## Tile data-memory layout (one JPEG block pipeline)
//!
//! ```text
//! [0   ..  64)  PX   input pixels (0..255)
//! [64  .. 128)  SH   shifted samples; reused as the zig-zag output
//! [128 .. 192)  T1   DCT pass-1 temporaries; reused as quantized output
//! [192 .. 256)  T2   DCT coefficients
//! [256 .. 320)  COS  8x8 cosine basis, Q24.24, row-major [u][x]
//! [320 .. 328)  AL   0.5*c(u) alpha factors, Q24.24
//! [328 .. 392)  QR   quantizer reciprocals round(2^24/q), natural order
//! [392 .. 400)  K    constants (K+0 = 2^23 rounding half)
//! [400 .. 416)  W    scratch + loop counters
//! ```

use super::dct::{alpha, cos_basis_fx};
use super::quant::QuantTable;
use super::zigzag::ZIGZAG;
use cgra_fabric::word::fixed;
use cgra_fabric::{Tile, Word};
use cgra_isa::ops::{at_off, d, imm};
use cgra_isa::{Instr, ProgramBuilder};

/// Input pixel region base.
pub const PX: u16 = 0;
/// Shifted-sample / zig-zag-output region base.
pub const SH: u16 = 64;
/// Pass-1 temporary / quantized-output region base.
pub const T1: u16 = 128;
/// DCT coefficient region base.
pub const T2: u16 = 192;
/// Cosine basis base.
pub const COS: u16 = 256;
/// Alpha factor base.
pub const AL: u16 = 320;
/// Quantizer reciprocal base.
pub const QR: u16 = 328;
/// Constant pool base (K+0 holds 2^23).
pub const KONST: u16 = 392;
/// Scratch/counter base.
pub const WRK: u16 = 400;

const FRAC: u8 = fixed::FRAC_BITS as u8;

/// `shift`: `SH[i] = PX[i] - 128`, unrolled by four.
pub fn shift_program() -> Vec<Instr> {
    let ctr = d(WRK);
    let mut p = ProgramBuilder::new();
    p.ldar(0, PX);
    p.ldar(1, SH);
    p.ldi(ctr, 16);
    let l = p.here_label();
    for k in 0..4 {
        p.sub(at_off(1, k), at_off(0, k), imm(128));
    }
    p.adar(0, 4);
    p.adar(1, 4);
    p.djnz(ctr, l);
    p.halt();
    p.build().expect("shift program")
}

/// `DCT` + `Alpha`, fused: separable two-pass 8x8 DCT over `SH` into `T2`
/// with the alpha scaling applied in pass 2. Bit-exact with
/// [`super::dct::dct2d_fixed`].
pub fn dct_program() -> Vec<Instr> {
    let (cu, cy, cv) = (d(WRK), d(WRK + 1), d(WRK + 2));
    let t = d(WRK + 3);
    let mut p = ProgramBuilder::new();

    // ---- Pass 1: T1[u*8+y] = sum_x SH[x*8+y] * COS[u*8+x] ----
    // a0 -> SH (+y walk), a1 -> COS row u, a2 -> T1 walk.
    p.ldar(0, SH);
    p.ldar(1, COS);
    p.ldar(2, T1);
    p.ldi(cu, 8);
    let uloop = p.here_label();
    p.ldi(cy, 8);
    let yloop = p.here_label();
    p.clracc();
    for x in 0..8u8 {
        // SH[x*8 + y] stride-8 via displacement; COS[u*8 + x] stride-1.
        // Shift by FRAC-8: the running sums keep 8 guard bits (Q8).
        p.mac(at_off(0, 8 * x), at_off(1, x), FRAC - 8);
    }
    p.movacc(at_off(2, 0));
    p.adar(2, 1);
    p.adar(0, 1); // next y
    p.djnz(cy, yloop);
    p.adar(0, -8); // y walked 0..8: back to SH
    p.adar(1, 8); // next cosine row
    p.djnz(cu, uloop);

    // ---- Pass 2 + alpha: T2[u*8+v] = ((sum_y T1[u*8+y] * COS[v*8+y])
    //      << 24) *q AL[u] *q AL[v] >> 24 ----
    // a0 -> T1 row u, a1 -> COS row v, a2 -> T2 walk,
    // a3 -> AL[u], a4 -> AL[v].
    p.ldar(0, T1);
    p.ldar(1, COS);
    p.ldar(2, T2);
    p.ldar(3, AL);
    p.ldi(cu, 8);
    let u2 = p.here_label();
    p.ldar(1, COS);
    p.ldar(4, AL);
    p.ldi(cv, 8);
    let v2 = p.here_label();
    p.clracc();
    for y in 0..8u8 {
        p.mac(at_off(0, y), at_off(1, y), FRAC);
    }
    p.movacc(t);
    p.shl(t, t, imm((FRAC - 8) as i16)); // Q8 -> Q24
    p.mul(t, t, at_off(3, 0), FRAC);
    p.mul(t, t, at_off(4, 0), FRAC);
    p.add(t, t, d(KONST)); // + 2^23: round-half-up
    p.shr(t, t, imm(FRAC as i16));
    p.mov(at_off(2, 0), t);
    p.adar(2, 1);
    p.adar(1, 8); // next cosine row v
    p.adar(4, 1); // next AL[v]
    p.djnz(cv, v2);
    p.adar(0, 8); // next T1 row u
    p.adar(3, 1); // next AL[u]
    p.djnz(cu, u2);
    p.halt();
    p.build().expect("dct program")
}

/// The paper's quarter-DCT `dct` (p10, Figure 15): computes one 4x4
/// quadrant of the output coefficients (`qu`, `qv` in {0,1} select it).
/// Four tiles each running one quadrant on the same shifted block
/// reproduce [`dct_program`]'s output exactly — the fan-out mapping of
/// implementations 4 and 5.
pub fn dct_quarter_program(qu: u8, qv: u8) -> Vec<Instr> {
    assert!(qu < 2 && qv < 2);
    let (cu, cy, cv) = (d(WRK), d(WRK + 1), d(WRK + 2));
    let t = d(WRK + 3);
    let mut p = ProgramBuilder::new();

    // Pass 1 over the four u-rows of this quadrant only:
    // T1[u*8+y] = sum_x SH[x*8+y] * COS[u*8+x], for u in qu*4..qu*4+4.
    p.ldar(0, SH);
    p.ldar(1, COS + (qu as u16) * 32);
    p.ldar(2, T1 + (qu as u16) * 32);
    p.ldi(cu, 4);
    let uloop = p.here_label();
    p.ldi(cy, 8);
    let yloop = p.here_label();
    p.clracc();
    for x in 0..8u8 {
        p.mac(at_off(0, 8 * x), at_off(1, x), FRAC - 8);
    }
    p.movacc(at_off(2, 0));
    p.adar(2, 1);
    p.adar(0, 1);
    p.djnz(cy, yloop);
    p.adar(0, -8);
    p.adar(1, 8);
    p.djnz(cu, uloop);

    // Pass 2 + alpha over the 4x4 output quadrant.
    p.ldar(0, T1 + (qu as u16) * 32);
    p.ldar(2, T2 + (qu as u16) * 32 + (qv as u16) * 4);
    p.ldar(3, AL + qu as u16 * 4);
    p.ldi(cu, 4);
    let u2 = p.here_label();
    p.ldar(1, COS + (qv as u16) * 32);
    p.ldar(4, AL + qv as u16 * 4);
    p.ldi(cv, 4);
    let v2 = p.here_label();
    p.clracc();
    for y in 0..8u8 {
        p.mac(at_off(0, y), at_off(1, y), FRAC);
    }
    p.movacc(t);
    p.shl(t, t, imm((FRAC - 8) as i16));
    p.mul(t, t, at_off(3, 0), FRAC);
    p.mul(t, t, at_off(4, 0), FRAC);
    p.add(t, t, d(KONST));
    p.shr(t, t, imm(FRAC as i16));
    p.mov(at_off(2, 0), t);
    p.adar(2, 1);
    p.adar(1, 8);
    p.adar(4, 1);
    p.djnz(cv, v2);
    p.adar(0, 8);
    p.adar(2, 4); // skip the other quadrant's v-columns
    p.adar(3, 1);
    p.djnz(cu, u2);
    p.halt();
    p.build().expect("quarter dct program")
}

/// `Quantize`: `T1[i] = (T2[i] * QR[i] + 2^23) >> 24`.
pub fn quantize_program() -> Vec<Instr> {
    let ctr = d(WRK);
    let t = d(WRK + 3);
    let half = d(KONST);
    let mut p = ProgramBuilder::new();
    p.ldar(0, T2);
    p.ldar(1, QR);
    p.ldar(2, T1);
    p.ldi(ctr, 64);
    let l = p.here_label();
    p.mul(t, at_off(0, 0), at_off(1, 0), 0);
    p.add(t, t, half);
    p.shr(t, t, imm(FRAC as i16));
    p.mov(at_off(2, 0), t);
    p.adar(0, 1);
    p.adar(1, 1);
    p.adar(2, 1);
    p.djnz(ctr, l);
    p.halt();
    p.build().expect("quantize program")
}

/// `ZigZag`: 64 straight-line moves `SH[k] = T1[ZIGZAG[k]]` — 65
/// instructions and 65 cycles, exactly the paper's Table 3 entry.
pub fn zigzag_program() -> Vec<Instr> {
    let mut p = ProgramBuilder::new();
    for (k, &nat) in ZIGZAG.iter().enumerate() {
        p.mov(d(SH + k as u16), d(T1 + nat as u16));
    }
    p.halt();
    p.build().expect("zigzag program")
}

/// Loads the constant regions (cosine basis, alphas, reciprocals, halves)
/// a JPEG tile needs — the `data1` payload of Table 3.
pub fn load_jpeg_constants(tile: &mut Tile, qt: &QuantTable) {
    let cos = cos_basis_fx();
    for (u, row) in cos.iter().enumerate() {
        for (x, &w) in row.iter().enumerate() {
            tile.dmem.poke(COS as usize + u * 8 + x, w).unwrap();
        }
    }
    for u in 0..8 {
        tile.dmem
            .poke(AL as usize + u, fixed::from_f64(0.5 * alpha(u)))
            .unwrap();
    }
    for (i, r) in qt.reciprocals_q24().iter().enumerate() {
        tile.dmem.poke(QR as usize + i, Word::wrap(*r)).unwrap();
    }
    tile.dmem.poke(KONST as usize, Word::wrap(1 << 23)).unwrap();
}

/// Writes a pixel block into the tile.
pub fn load_pixels(tile: &mut Tile, block: &[u8; 64]) {
    for (i, &px) in block.iter().enumerate() {
        tile.dmem
            .poke(PX as usize + i, Word::wrap(px as i64))
            .unwrap();
    }
}

/// Reads an i32 region back out of the tile.
pub fn read_region(tile: &Tile, base: u16) -> [i32; 64] {
    std::array::from_fn(|i| tile.dmem.peek(base as usize + i).unwrap().value() as i32)
}

/// Cycle counts measured for each implemented JPEG stage program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JpegStageCycles {
    /// `shift` cycles.
    pub shift: u64,
    /// Fused `DCT`+`Alpha` cycles.
    pub dct: u64,
    /// `Quantize` cycles.
    pub quantize: u64,
    /// `ZigZag` cycles.
    pub zigzag: u64,
}

/// Runs the full per-block pipeline (shift -> DCT -> quantize -> zigzag)
/// on one tile, reloading the stage program between stages like the
/// reconfiguration engine does. Returns the zig-zag-ordered quantized
/// block and the per-stage cycle counts.
pub fn run_block_pipeline(block: &[u8; 64], qt: &QuantTable) -> ([i32; 64], JpegStageCycles) {
    let mut tile = Tile::new(0);
    load_jpeg_constants(&mut tile, qt);
    load_pixels(&mut tile, block);
    let run = |tile: &mut Tile, prog: &[Instr]| -> u64 {
        crate::fft::programs::run_program(tile, prog, 1_000_000)
    };
    let shift = run(&mut tile, &shift_program());
    let dct = run(&mut tile, &dct_program());
    let quantize = run(&mut tile, &quantize_program());
    let zigzag = run(&mut tile, &zigzag_program());
    (
        read_region(&tile, SH),
        JpegStageCycles {
            shift,
            dct,
            quantize,
            zigzag,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpeg::encoder::stages;
    use crate::jpeg::image::GrayImage;

    fn check_block(block: &[u8; 64], qt: &QuantTable) {
        let (got, _) = run_block_pipeline(block, qt);
        let want = stages::zig(&stages::quantize(&stages::dct(&stages::shift(block)), qt));
        assert_eq!(got, want, "tile pipeline must be bit-exact with host");
    }

    #[test]
    fn pipeline_bit_exact_across_content() {
        let qt = QuantTable::luma(75);
        for img in [
            GrayImage::gradient(16, 16),
            GrayImage::rings(16, 16),
            GrayImage::noise(16, 16, 123),
            GrayImage::checkerboard(16, 16, 3),
        ] {
            for by in 0..2 {
                for bx in 0..2 {
                    check_block(&img.block(bx, by), &qt);
                }
            }
        }
    }

    #[test]
    fn pipeline_bit_exact_across_quality() {
        let img = GrayImage::rings(8, 8);
        for q in [10u8, 50, 95] {
            check_block(&img.block(0, 0), &QuantTable::luma(q));
        }
    }

    #[test]
    fn four_quarter_dcts_reproduce_the_full_transform() {
        // Figure 15: the DCT split across four tiles, each computing one
        // output quadrant of the SAME block, must agree exactly with the
        // monolithic program.
        let qt = QuantTable::luma(75);
        let img = GrayImage::noise(8, 8, 31);
        let block = img.block(0, 0);
        // Full transform on one tile.
        let mut full = Tile::new(0);
        load_jpeg_constants(&mut full, &qt);
        load_pixels(&mut full, &block);
        crate::fft::programs::run_program(&mut full, &shift_program(), 100_000);
        crate::fft::programs::run_program(&mut full, &dct_program(), 1_000_000);
        let want = read_region(&full, T2);
        // Four quarter tiles.
        let mut got = [0i32; 64];
        let mut quarter_cycles = 0u64;
        for qu in 0..2u8 {
            for qv in 0..2u8 {
                let mut tile = Tile::new(0);
                load_jpeg_constants(&mut tile, &qt);
                load_pixels(&mut tile, &block);
                crate::fft::programs::run_program(&mut tile, &shift_program(), 100_000);
                quarter_cycles = quarter_cycles.max(crate::fft::programs::run_program(
                    &mut tile,
                    &dct_quarter_program(qu, qv),
                    1_000_000,
                ));
                let part = read_region(&tile, T2);
                for u in 0..4 {
                    for v in 0..4 {
                        let idx = (qu as usize * 4 + u) * 8 + qv as usize * 4 + v;
                        got[idx] = part[idx];
                    }
                }
            }
        }
        assert_eq!(got, want, "quadrants must tile the full DCT");
        // The paper's economics: a quarter runs in roughly a quarter of
        // the pass-2 work (pass 1 halves), so ~2.5-4x faster than full.
        let mut full2 = Tile::new(0);
        load_jpeg_constants(&mut full2, &qt);
        load_pixels(&mut full2, &block);
        crate::fft::programs::run_program(&mut full2, &shift_program(), 100_000);
        let full_cycles = crate::fft::programs::run_program(&mut full2, &dct_program(), 1_000_000);
        assert!(
            (quarter_cycles as f64) < 0.5 * full_cycles as f64,
            "quarter {quarter_cycles} vs full {full_cycles}"
        );
    }

    #[test]
    fn zigzag_costs_sixty_five_cycles() {
        // Table 3: ZigZag is 65 instructions, 65 cycles.
        let prog = zigzag_program();
        assert_eq!(prog.len(), 65);
        let (_, cycles) = run_block_pipeline(&[128u8; 64], &QuantTable::luma(50));
        assert_eq!(cycles.zigzag, 65);
    }

    #[test]
    fn stage_cycle_sanity() {
        let img = GrayImage::noise(8, 8, 9);
        let (_, c) = run_block_pipeline(&img.block(0, 0), &QuantTable::luma(75));
        // shift: 16 iterations of 7 + 3 setup + halt.
        assert_eq!(c.shift, 3 + 16 * 7 + 1);
        // quantize: 64 iterations of 8 + setup + halt.
        assert_eq!(c.quantize, 4 + 64 * 8 + 1);
        // Separable DCT lands well under the paper's naive 133k cycles but
        // still dominates the pipeline.
        assert!(c.dct > 1000 && c.dct < 5000, "dct={}", c.dct);
        assert!(c.dct > c.quantize && c.dct > c.shift && c.dct > c.zigzag);
    }

    #[test]
    fn programs_fit_instruction_memory() {
        for prog in [
            shift_program(),
            dct_program(),
            quantize_program(),
            zigzag_program(),
        ] {
            assert!(prog.len() <= 512, "{} instructions", prog.len());
        }
    }

    #[test]
    fn gray_block_quantizes_to_zero() {
        // A uniform 128 block has zero shifted samples -> all-zero output.
        let (got, _) = run_block_pipeline(&[128u8; 64], &QuantTable::luma(50));
        assert_eq!(got, [0i32; 64]);
    }
}
