//! Entropy-coded segment bit I/O with JPEG byte stuffing.
//!
//! JPEG writes bits MSB-first; any `0xFF` byte produced inside the entropy
//! stream must be followed by a stuffed `0x00` so decoders do not mistake
//! it for a marker.

/// MSB-first bit writer with `0xFF 0x00` stuffing.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `n` bits of `bits` (MSB of the field first), `n <= 24`.
    pub fn put(&mut self, bits: u32, n: u32) {
        debug_assert!(n <= 24, "put supports at most 24 bits at a time");
        if n == 0 {
            return;
        }
        let mask = (1u32 << n) - 1;
        self.acc = (self.acc << n) | (bits & mask);
        self.nbits += n;
        while self.nbits >= 8 {
            let byte = (self.acc >> (self.nbits - 8)) as u8;
            self.out.push(byte);
            if byte == 0xff {
                self.out.push(0x00); // stuffing
            }
            self.nbits -= 8;
        }
    }

    /// Pads the final partial byte with 1-bits (JPEG convention) and
    /// returns the stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1 << pad) - 1, pad);
        }
        self.out
    }

    /// Bits buffered or emitted so far (including stuffing bytes).
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }
}

/// MSB-first bit reader that skips stuffed `0x00` after `0xFF`.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Reads from an entropy-coded segment.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn fill(&mut self) -> bool {
        while self.nbits <= 24 {
            if self.pos >= self.data.len() {
                return self.nbits > 0;
            }
            let byte = self.data[self.pos];
            self.pos += 1;
            if byte == 0xff {
                // Skip the stuffed zero; a non-zero next byte is a marker,
                // which ends the entropy segment.
                match self.data.get(self.pos) {
                    Some(0x00) => {
                        self.pos += 1;
                    }
                    _ => {
                        self.pos = self.data.len();
                        return self.nbits > 0;
                    }
                }
            }
            self.acc = (self.acc << 8) | byte as u32;
            self.nbits += 8;
        }
        true
    }

    /// Reads one bit, or `None` at end of stream.
    pub fn bit(&mut self) -> Option<u32> {
        if self.nbits == 0 && !self.fill() {
            return None;
        }
        if self.nbits == 0 {
            return None;
        }
        self.nbits -= 1;
        Some((self.acc >> self.nbits) & 1)
    }

    /// Reads `n` bits MSB-first, or `None` if the stream runs out.
    pub fn bits(&mut self, n: u32) -> Option<u32> {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.bit()?;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_msb_first() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0b01100, 5);
        assert_eq!(w.finish(), vec![0b10101100]);
    }

    #[test]
    fn pads_with_ones() {
        let mut w = BitWriter::new();
        w.put(0b10, 2);
        assert_eq!(w.finish(), vec![0b10111111]);
    }

    #[test]
    fn stuffs_ff() {
        let mut w = BitWriter::new();
        w.put(0xff, 8);
        w.put(0xab, 8);
        assert_eq!(w.finish(), vec![0xff, 0x00, 0xab]);
    }

    #[test]
    fn reader_skips_stuffing() {
        let mut r = BitReader::new(&[0xff, 0x00, 0xab]);
        assert_eq!(r.bits(8), Some(0xff));
        assert_eq!(r.bits(8), Some(0xab));
        assert_eq!(r.bit(), None);
    }

    #[test]
    fn roundtrip_random_fields() {
        let mut w = BitWriter::new();
        let mut fields = Vec::new();
        let mut s = 0x12345u64;
        for _ in 0..500 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let n = 1 + (s % 16) as u32;
            let v = (s >> 16) as u32 & ((1 << n) - 1);
            fields.push((v, n));
            w.put(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.bits(n), Some(v));
        }
    }

    #[test]
    fn reader_stops_at_marker() {
        // 0xFF followed by non-zero = marker: entropy data ends.
        let mut r = BitReader::new(&[0xaa, 0xff, 0xd9]);
        assert_eq!(r.bits(8), Some(0xaa));
        assert_eq!(r.bits(8), None);
    }
}
