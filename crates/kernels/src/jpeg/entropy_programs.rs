//! PE-executed Huffman entropy coding (the paper's `Hman1..Hman5`).
//!
//! The paper calls Huffman "the most code intensive process which does not
//! fit in a tile" and splits it five ways. We realize the same pipeline as
//! two generated tile programs with an explicit intermediate
//! representation, mirroring the split's structure:
//!
//! * [`prep_program`] (Hman1/Hman2's role) — walks the zig-zag scan,
//!   performs DC prediction, zero-run-length coding with ZRL/EOB, computes
//!   each value's JPEG category and magnitude bits, and writes packed
//!   *triples* `(run<<20 | cat<<16 | magbits)`,
//! * [`emit_program`] (Hman3..Hman5's role) — looks the triples up in the
//!   DC/AC code tables resident in data memory and packs the variable-
//!   length codes into 48-bit words with a branchy bit-buffer, exactly the
//!   arithmetic a divider-less 48-bit PE can do.
//!
//! Both programs run on the interpreter and the resulting bit stream is
//! validated **bit-exact** against the host encoder
//! ([`super::huffman::encode_block`]).
//!
//! ## Tile data-memory layout
//!
//! ```text
//! [0   ..  64)  SCAN   zig-zag scan of the quantized block
//! [64  .. 130)  TRI    packed triples (one per emitted symbol) + slack
//! [130 .. 142)  DCTAB  DC code table: (len << 24) | code, per category
//! [142 .. 398)  ACTAB  AC code table, indexed by (run << 4) | cat
//! [400 .. 436)  OUT    packed 48-bit output words
//! [440 .. 470)  V      variables (DC predictor, counts, bit buffer...)
//! ```

use super::huffman::EncTable;
use cgra_fabric::{Tile, Word};
use cgra_isa::ops::{at, d, imm};
use cgra_isa::{encode_program, run, Instr, PeState, ProgramBuilder};

/// Zig-zag scan input region.
pub const SCAN: u16 = 0;
/// Triple buffer region.
pub const TRI: u16 = 64;
/// DC code table region (12 categories).
pub const DCTAB: u16 = 130;
/// AC code table region (256 symbols).
pub const ACTAB: u16 = 142;
/// Output bit-word region.
pub const OUT: u16 = 400;
/// Variable block.
pub const V: u16 = 440;

// Variable slots.
const DC_PRED: u16 = V; // DC predictor (persists across blocks)
const NTRI: u16 = V + 1; // triples produced by prep
const NWORDS: u16 = V + 2; // output words flushed by emit
const NBITS_LAST: u16 = V + 3; // bits used in the last (unflushed) word
const TOTAL_BITS: u16 = V + 4; // total bits emitted
                               // prep scratch
const RUN: u16 = V + 5;
const VAL: u16 = V + 6;
const CAT: u16 = V + 7;
const MAG: u16 = V + 8;
const ABSV: u16 = V + 9;
const K: u16 = V + 10;
// emit scratch
const CUR: u16 = V + 11; // bit accumulator
const NB: u16 = V + 12; // bits in accumulator
const LEN: u16 = V + 13;
const CODE: u16 = V + 14;
const ROOM: u16 = V + 15;
const TMP: u16 = V + 16;
const TMP2: u16 = V + 17;
const MASK24: u16 = V + 18; // 2^24 - 1 constant (built at runtime)
const IDX: u16 = V + 19;

/// Builds the preparation program (RLE + categories + magnitudes).
///
/// Consumes `SCAN`, updates `DC_PRED`, produces `NTRI` triples at `TRI`.
pub fn prep_program() -> Vec<Instr> {
    let mut p = ProgramBuilder::new();
    // a0 walks SCAN, a1 walks TRI.
    p.ldar(0, SCAN);
    p.ldar(1, TRI);
    p.ldi(d(NTRI), 0);
    p.ldi(d(RUN), 0);

    // --- DC: val = scan[0] - pred; pred = scan[0]. -----------------------
    p.sub(d(VAL), at(0), d(DC_PRED));
    p.mov(d(DC_PRED), at(0));
    p.adar(0, 1);
    // category + magnitude of VAL, then store triple (run=0).
    emit_catmag(&mut p);
    store_triple(&mut p);

    // --- AC loop over k = 1..64. ----------------------------------------
    p.ldi(d(K), 63);
    let k_loop = p.here_label();
    let next_k = p.label();
    let nonzero = p.label();
    p.mov(d(VAL), at(0));
    p.adar(0, 1);
    p.bnz(d(VAL), nonzero);
    // zero coefficient: run += 1.
    p.add(d(RUN), d(RUN), imm(1));
    p.jmp(next_k);
    p.bind(nonzero);
    // while run >= 16: emit ZRL (run=15, cat=0, mag=0).
    let zrl_check = p.here_label();
    let zrl_done = p.label();
    p.sub(d(TMP), d(RUN), imm(16));
    p.bneg(d(TMP), zrl_done);
    p.ldi(d(TMP2), 15);
    p.shl(d(TMP2), d(TMP2), imm(20));
    p.mov(at(1), d(TMP2));
    p.adar(1, 1);
    p.add(d(NTRI), d(NTRI), imm(1));
    p.mov(d(RUN), d(TMP));
    p.jmp(zrl_check);
    p.bind(zrl_done);
    // triple (run, cat(val), mag(val)).
    emit_catmag(&mut p);
    store_triple(&mut p);
    p.ldi(d(RUN), 0);
    p.bind(next_k);
    p.djnz(d(K), k_loop);

    // --- trailing zeros: emit EOB (0,0,0). -------------------------------
    let done = p.label();
    p.bz(d(RUN), done);
    p.ldi(d(TMP2), 0);
    p.mov(at(1), d(TMP2));
    p.adar(1, 1);
    p.add(d(NTRI), d(NTRI), imm(1));
    p.bind(done);
    p.halt();
    p.build().expect("prep program is valid")
}

/// Emits `CAT = category(VAL)` and `MAG = magnitude_bits(VAL, CAT)`.
fn emit_catmag(p: &mut ProgramBuilder) {
    let not_neg = p.label();
    let cat_loop_end = p.label();
    // ABSV = |VAL|
    p.mov(d(ABSV), d(VAL));
    p.bgez(d(VAL), not_neg);
    p.sub(d(ABSV), imm(0), d(VAL));
    p.bind(not_neg);
    // CAT = bit length of ABSV.
    p.ldi(d(CAT), 0);
    p.mov(d(TMP), d(ABSV));
    let cat_loop = p.here_label();
    p.bz(d(TMP), cat_loop_end);
    p.shr(d(TMP), d(TMP), imm(1));
    p.add(d(CAT), d(CAT), imm(1));
    p.jmp(cat_loop);
    p.bind(cat_loop_end);
    // MAG = VAL >= 0 ? VAL : VAL + (1 << CAT) - 1.
    let pos = p.label();
    let magdone = p.label();
    p.bgez(d(VAL), pos);
    p.shl(d(TMP), imm(1), d(CAT));
    p.add(d(MAG), d(VAL), d(TMP));
    p.sub(d(MAG), d(MAG), imm(1));
    p.jmp(magdone);
    p.bind(pos);
    p.mov(d(MAG), d(VAL));
    p.bind(magdone);
}

/// Stores the packed triple `(RUN<<20) | (CAT<<16) | MAG` at `@a1++`.
fn store_triple(p: &mut ProgramBuilder) {
    p.shl(d(TMP), d(RUN), imm(20));
    p.shl(d(TMP2), d(CAT), imm(16));
    p.or(d(TMP), d(TMP), d(TMP2));
    p.or(d(TMP), d(TMP), d(MAG));
    p.mov(at(1), d(TMP));
    p.adar(1, 1);
    p.add(d(NTRI), d(NTRI), imm(1));
}

/// Builds the emission program: triples -> packed 48-bit code words.
pub fn emit_program() -> Vec<Instr> {
    let mut p = ProgramBuilder::new();
    // a0 walks TRI, a1 walks OUT, a2 indexes the code tables.
    p.ldar(0, TRI);
    p.ldar(1, OUT);
    p.ldi(d(CUR), 0);
    p.ldi(d(NB), 0);
    p.ldi(d(NWORDS), 0);
    p.ldi(d(TOTAL_BITS), 0);
    // MASK24 = 2^24 - 1.
    p.ldi(d(TMP), 1);
    p.shl(d(TMP), d(TMP), imm(24));
    p.sub(d(MASK24), d(TMP), imm(1));

    let finish = p.label();
    // Loop counter: NTRI triples (prep guarantees >= 1). The first
    // triple (K == NTRI) selects the DC table, the rest the AC table.
    p.mov(d(K), d(NTRI));
    let tri_loop = p.here_label();
    // Fetch triple fields.
    p.mov(d(TMP), at(0));
    p.adar(0, 1);
    p.shr(d(RUN), d(TMP), imm(20)); // run (4 bits; garbage above is zero)
    p.shr(d(CAT), d(TMP), imm(16));
    p.and(d(CAT), d(CAT), imm(0x0f));
    // MAG is the low 16 bits: isolate with a shift pair.
    p.shl(d(MAG), d(TMP), imm(32));
    p.shr(d(MAG), d(MAG), imm(32));
    // Table select: DC for the first triple (K == NTRI), else AC.
    let use_ac = p.label();
    let have_idx = p.label();
    p.sub(d(TMP2), d(K), d(NTRI));
    p.bnz(d(TMP2), use_ac);
    p.ldi(d(IDX), DCTAB as i32);
    p.add(d(IDX), d(IDX), d(CAT));
    p.jmp(have_idx);
    p.bind(use_ac);
    // symbol = run<<4 | cat; IDX = ACTAB + symbol.
    p.shl(d(TMP2), d(RUN), imm(4));
    p.add(d(TMP2), d(TMP2), d(CAT));
    p.ldi(d(IDX), ACTAB as i32);
    p.add(d(IDX), d(IDX), d(TMP2));
    p.bind(have_idx);
    p.ldar_mem(2, d(IDX));
    // entry = (len << 24) | code.
    p.mov(d(TMP), at(2));
    p.shr(d(LEN), d(TMP), imm(24));
    p.and(d(CODE), d(TMP), d(MASK24));
    emit_bits(&mut p);
    // Magnitude bits: LEN = CAT, CODE = MAG (skipped when CAT == 0).
    let skip_mag = p.label();
    p.bz(d(CAT), skip_mag);
    p.mov(d(LEN), d(CAT));
    p.mov(d(CODE), d(MAG));
    emit_bits(&mut p);
    p.bind(skip_mag);
    p.djnz(d(K), tri_loop);

    // Flush the partial word (left-aligned within 48 bits for unpacking).
    p.bind(finish);
    let no_tail = p.label();
    p.bz(d(NB), no_tail);
    p.ldi(d(TMP), 48);
    p.sub(d(TMP), d(TMP), d(NB));
    p.shl(d(TMP2), d(CUR), d(TMP));
    p.mov(at(1), d(TMP2));
    p.bind(no_tail);
    p.mov(d(NBITS_LAST), d(NB));
    p.halt();
    p.build().expect("emit program is valid")
}

/// Inline bit-buffer append: `CUR/NB += (CODE, LEN)`, flushing full 48-bit
/// words to `@a1`.
fn emit_bits(p: &mut ProgramBuilder) {
    let fits = p.label();
    let done = p.label();
    p.add(d(TOTAL_BITS), d(TOTAL_BITS), d(LEN));
    // ROOM = 48 - NB.
    p.ldi(d(ROOM), 48);
    p.sub(d(ROOM), d(ROOM), d(NB));
    p.sub(d(TMP), d(ROOM), d(LEN));
    p.bgez(d(TMP), fits);
    // Split: HI = LEN - ROOM bits overflow into the next word.
    // CUR = (CUR << ROOM) | (CODE >> HI); flush; CUR = CODE & ((1<<HI)-1).
    p.sub(d(TMP2), d(LEN), d(ROOM)); // HI
    p.shl(d(CUR), d(CUR), d(ROOM));
    p.shr(d(TMP), d(CODE), d(TMP2));
    p.or(d(CUR), d(CUR), d(TMP));
    p.mov(at(1), d(CUR));
    p.adar(1, 1);
    p.add(d(NWORDS), d(NWORDS), imm(1));
    p.shl(d(TMP), imm(1), d(TMP2));
    p.sub(d(TMP), d(TMP), imm(1));
    p.and(d(CUR), d(CODE), d(TMP));
    p.mov(d(NB), d(TMP2));
    p.jmp(done);
    p.bind(fits);
    p.shl(d(CUR), d(CUR), d(LEN));
    p.or(d(CUR), d(CUR), d(CODE));
    p.add(d(NB), d(NB), d(LEN));
    p.bind(done);
}

/// Loads the DC/AC code tables as `(len << 24) | code` entries.
pub fn load_entropy_tables(tile: &mut Tile, dc: &EncTable, ac: &EncTable) {
    for cat in 0..12u16 {
        let (code, len) = dc.code(cat as u8).expect("DC category coded");
        tile.dmem
            .poke(
                (DCTAB + cat) as usize,
                Word::wrap(((len as i64) << 24) | code as i64),
            )
            .unwrap();
    }
    for sym in 0..=255u16 {
        let entry = match ac.code(sym as u8) {
            Some((code, len)) => ((len as i64) << 24) | code as i64,
            None => 0, // unused symbol: never referenced by valid input
        };
        tile.dmem
            .poke((ACTAB + sym) as usize, Word::wrap(entry))
            .unwrap();
    }
}

/// Result of running the two entropy programs on a tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntropyRun {
    /// The emitted bit stream.
    pub bits: Vec<bool>,
    /// Cycles of the preparation program.
    pub prep_cycles: u64,
    /// Cycles of the emission program.
    pub emit_cycles: u64,
    /// Triples produced (symbols emitted).
    pub triples: usize,
}

/// Runs prep + emit for one zig-zag scan on `tile` (tables must already be
/// loaded). `DC_PRED` persists in the tile across calls, exactly like the
/// hardware pipeline's predictor.
pub fn run_entropy_block(tile: &mut Tile, scan: &[i32; 64]) -> EntropyRun {
    for (i, &v) in scan.iter().enumerate() {
        tile.dmem
            .poke(SCAN as usize + i, Word::wrap(v as i64))
            .unwrap();
    }
    let run_prog = |tile: &mut Tile, prog: &[Instr]| -> u64 {
        tile.load_program(&encode_program(prog)).unwrap();
        let mut st = PeState::new();
        run(tile, &mut st, 1_000_000)
            .expect("entropy program halts")
            .cycles
    };
    let prep_cycles = run_prog(tile, &prep_program());
    let emit_cycles = run_prog(tile, &emit_program());
    let triples = tile.dmem.peek(NTRI as usize).unwrap().value() as usize;
    let nwords = tile.dmem.peek(NWORDS as usize).unwrap().value() as usize;
    let nb_last = tile.dmem.peek(NBITS_LAST as usize).unwrap().value() as usize;
    let total = tile.dmem.peek(TOTAL_BITS as usize).unwrap().value() as usize;
    // Unpack: full words then the left-aligned tail.
    let mut bits = Vec::with_capacity(total);
    for w in 0..nwords {
        let word = tile.dmem.peek(OUT as usize + w).unwrap().bits();
        for b in (0..48).rev() {
            bits.push((word >> b) & 1 == 1);
        }
    }
    if nb_last > 0 {
        let word = tile.dmem.peek(OUT as usize + nwords).unwrap().bits();
        for b in 0..nb_last {
            bits.push((word >> (47 - b)) & 1 == 1);
        }
    }
    debug_assert_eq!(bits.len(), total);
    EntropyRun {
        bits,
        prep_cycles,
        emit_cycles,
        triples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpeg::bitio::{BitReader, BitWriter};
    use crate::jpeg::huffman::{ac_luma_spec, category, dc_luma_spec, encode_block, EncTable};

    fn tables() -> (EncTable, EncTable) {
        (
            EncTable::from_spec(&dc_luma_spec()),
            EncTable::from_spec(&ac_luma_spec()),
        )
    }

    /// Host bit stream of `encode_block` (destuffed, exact length).
    fn host_bits(blocks: &[[i32; 64]]) -> Vec<bool> {
        let (dc, ac) = tables();
        let mut w = BitWriter::new();
        let mut pred = 0;
        let mut total = 0usize;
        let mut count_pred = 0;
        for scan in blocks {
            total += count_bits(scan, &dc, &ac, count_pred);
            count_pred = scan[0];
            encode_block(&mut w, &dc, &ac, scan, &mut pred);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        (0..total).map(|_| r.bit().unwrap() == 1).collect()
    }

    fn count_bits(scan: &[i32; 64], dc: &EncTable, ac: &EncTable, pred: i32) -> usize {
        let mut bits = 0usize;
        let diff = scan[0] - pred;
        let cat = category(diff);
        bits += dc.code(cat as u8).unwrap().1 as usize + cat as usize;
        let mut run = 0u32;
        for &v in &scan[1..] {
            if v == 0 {
                run += 1;
                continue;
            }
            while run >= 16 {
                bits += ac.code(0xf0).unwrap().1 as usize;
                run -= 16;
            }
            let cat = category(v);
            bits += ac.code(((run as u8) << 4) | cat as u8).unwrap().1 as usize + cat as usize;
            run = 0;
        }
        if run > 0 {
            bits += ac.code(0x00).unwrap().1 as usize;
        }
        bits
    }

    fn sparse_block(seed: u64, density: u64) -> [i32; 64] {
        let mut s = seed | 1;
        std::array::from_fn(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s.is_multiple_of(density) {
                ((s >> 20) % 255) as i32 - 127
            } else {
                0
            }
        })
    }

    #[test]
    fn programs_fit_instruction_memory() {
        assert!(prep_program().len() <= 512, "{}", prep_program().len());
        assert!(emit_program().len() <= 512, "{}", emit_program().len());
    }

    #[test]
    fn single_block_bit_exact() {
        let (dc, ac) = tables();
        let mut tile = Tile::new(0);
        load_entropy_tables(&mut tile, &dc, &ac);
        for seed in [3u64, 17, 99, 12345] {
            let scan = sparse_block(seed, 4);
            // fresh predictor per comparison
            tile.dmem.poke(super::DC_PRED as usize, Word::ZERO).unwrap();
            let got = run_entropy_block(&mut tile, &scan);
            let want = host_bits(&[scan]);
            assert_eq!(got.bits, want, "seed {seed}");
        }
    }

    #[test]
    fn multi_block_dc_prediction_persists() {
        let (dc, ac) = tables();
        let mut tile = Tile::new(0);
        load_entropy_tables(&mut tile, &dc, &ac);
        let blocks: Vec<[i32; 64]> = (0..6).map(|i| sparse_block(1000 + i, 5)).collect();
        let mut got = Vec::new();
        for b in &blocks {
            got.extend(run_entropy_block(&mut tile, b).bits);
        }
        assert_eq!(got, host_bits(&blocks));
    }

    #[test]
    fn long_zero_runs_and_eob() {
        let (dc, ac) = tables();
        let mut tile = Tile::new(0);
        load_entropy_tables(&mut tile, &dc, &ac);
        // One DC, a coefficient after 39 zeros (2 ZRLs), then trailing EOB.
        let mut scan = [0i32; 64];
        scan[0] = -100;
        scan[40] = 7;
        let got = run_entropy_block(&mut tile, &scan);
        assert_eq!(got.bits, host_bits(&[scan]));
        // triples: DC + 2 ZRL + coefficient + EOB = 5.
        assert_eq!(got.triples, 5);
    }

    #[test]
    fn all_zero_block() {
        let (dc, ac) = tables();
        let mut tile = Tile::new(0);
        load_entropy_tables(&mut tile, &dc, &ac);
        let scan = [0i32; 64];
        let got = run_entropy_block(&mut tile, &scan);
        assert_eq!(got.bits, host_bits(&[scan]));
        assert_eq!(got.triples, 2); // DC(cat 0) + EOB
    }

    #[test]
    fn dense_block_stress() {
        let (dc, ac) = tables();
        let mut tile = Tile::new(0);
        load_entropy_tables(&mut tile, &dc, &ac);
        // Every coefficient non-zero: worst-case 64 triples, many flushes.
        let scan: [i32; 64] = std::array::from_fn(|i| ((i as i32 % 19) - 9) * 3 + 1);
        tile.dmem.poke(super::DC_PRED as usize, Word::ZERO).unwrap();
        let got = run_entropy_block(&mut tile, &scan);
        assert_eq!(got.bits, host_bits(&[scan]));
        assert_eq!(got.triples, 64);
    }

    #[test]
    fn cycle_costs_in_paper_ballpark() {
        // Paper: Hman1..Hman5 total ~20 300 cycles per block. Our two
        // programs are leaner but must land within an order of magnitude.
        let (dc, ac) = tables();
        let mut tile = Tile::new(0);
        load_entropy_tables(&mut tile, &dc, &ac);
        let scan = sparse_block(7, 4);
        let got = run_entropy_block(&mut tile, &scan);
        let total = got.prep_cycles + got.emit_cycles;
        assert!(total > 400 && total < 20_000, "total={total}");
    }
}
