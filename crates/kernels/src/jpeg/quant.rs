//! Quantization (the `Quantize` process) with the ITU-T T.81 Annex K
//! tables and IJG quality scaling.

/// Annex K.1 luminance quantization table, row-major natural order.
pub const LUMA_Q50: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Annex K.2 chrominance quantization table, row-major natural order.
pub const CHROMA_Q50: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// A quantization table (natural order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTable {
    /// Divisors in natural (row-major) order, each in `1..=255` for
    /// baseline JPEG.
    pub q: [u16; 64],
}

impl QuantTable {
    /// The Annex K luminance table scaled to `quality` (1..=100, IJG
    /// convention: 50 = unscaled).
    pub fn luma(quality: u8) -> QuantTable {
        QuantTable::scaled(&LUMA_Q50, quality)
    }

    /// The Annex K chrominance table scaled to `quality`.
    pub fn chroma(quality: u8) -> QuantTable {
        QuantTable::scaled(&CHROMA_Q50, quality)
    }

    /// IJG quality scaling: `scale = 5000/q` below 50, `200 - 2q` above.
    pub fn scaled(base: &[u16; 64], quality: u8) -> QuantTable {
        let quality = quality.clamp(1, 100) as u32;
        let scale = if quality < 50 {
            5000 / quality
        } else {
            200 - 2 * quality
        };
        let mut q = [0u16; 64];
        for (dst, &src) in q.iter_mut().zip(base) {
            *dst = (((src as u32 * scale) + 50) / 100).clamp(1, 255) as u16;
        }
        QuantTable { q }
    }

    /// Quantizes one coefficient with round-half-away-from-zero (the
    /// JPEG-standard `round(coef / q)`).
    pub fn quantize_one(&self, idx: usize, coef: i32) -> i32 {
        let q = self.q[idx] as i32;
        if coef >= 0 {
            (coef + q / 2) / q
        } else {
            -((-coef + q / 2) / q)
        }
    }

    /// Quantizes a natural-order coefficient block.
    pub fn quantize(&self, coef: &[i32; 64]) -> [i32; 64] {
        std::array::from_fn(|i| self.quantize_one(i, coef[i]))
    }

    /// Dequantizes a natural-order block. Saturating: corrupted streams
    /// can carry arbitrarily large coefficients (e.g. a runaway DC
    /// predictor), which must clamp rather than overflow.
    pub fn dequantize(&self, qcoef: &[i32; 64]) -> [i32; 64] {
        std::array::from_fn(|i| qcoef[i].saturating_mul(self.q[i] as i32))
    }

    /// Q24.24 reciprocals `round(2^24 / q)` — what the tile's data memory
    /// holds, since the PE datapath has no divider.
    pub fn reciprocals_q24(&self) -> [i64; 64] {
        std::array::from_fn(|i| {
            let q = self.q[i] as i64;
            ((1i64 << 24) + q / 2) / q
        })
    }

    /// Quantizes one coefficient exactly as the tile program does:
    /// `(coef * recip + 2^23) >> 24` (multiply by the stored reciprocal,
    /// add half, arithmetic shift). Round-half-up instead of
    /// round-half-away-from-zero; within one of [`Self::quantize_one`].
    pub fn quantize_one_recip(&self, idx: usize, coef: i32) -> i32 {
        let recip = self.reciprocals_q24()[idx];
        (((coef as i64 * recip) + (1 << 23)) >> 24) as i32
    }

    /// Quantizes a block via the reciprocal path (the hardware semantics).
    pub fn quantize_recip(&self, coef: &[i32; 64]) -> [i32; 64] {
        let recips = self.reciprocals_q24();
        std::array::from_fn(|i| (((coef[i] as i64 * recips[i]) + (1 << 23)) >> 24) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q50_is_unscaled() {
        assert_eq!(QuantTable::luma(50).q, LUMA_Q50);
        assert_eq!(QuantTable::chroma(50).q, CHROMA_Q50);
    }

    #[test]
    fn quality_ordering() {
        // Higher quality => smaller divisors.
        let q10 = QuantTable::luma(10);
        let q90 = QuantTable::luma(90);
        for (i, &base) in LUMA_Q50.iter().enumerate() {
            assert!(q90.q[i] <= base);
            assert!(q10.q[i] >= base);
        }
    }

    #[test]
    fn extreme_qualities_stay_in_range() {
        for q in [1u8, 100] {
            let t = QuantTable::luma(q);
            assert!(t.q.iter().all(|&v| (1..=255).contains(&v)));
        }
        // q=100 => all ones (lossless quantization).
        assert!(QuantTable::luma(100).q.iter().all(|&v| v == 1));
    }

    #[test]
    fn rounding_is_symmetric() {
        let t = QuantTable::luma(50); // q[0] = 16
        assert_eq!(t.quantize_one(0, 8), 1);
        assert_eq!(t.quantize_one(0, -8), -1);
        assert_eq!(t.quantize_one(0, 7), 0);
        assert_eq!(t.quantize_one(0, -7), 0);
        assert_eq!(t.quantize_one(0, 24), 2);
        assert_eq!(t.quantize_one(0, -24), -2);
    }

    #[test]
    fn recip_path_within_one_of_exact() {
        for quality in [10u8, 50, 90] {
            let t = QuantTable::luma(quality);
            for idx in [0usize, 7, 35, 63] {
                for coef in -1200..=1200 {
                    let exact = t.quantize_one(idx, coef);
                    let recip = t.quantize_one_recip(idx, coef);
                    assert!(
                        (exact - recip).abs() <= 1,
                        "q={quality} idx={idx} coef={coef}: {exact} vs {recip}"
                    );
                }
            }
        }
    }

    #[test]
    fn recip_block_matches_elementwise() {
        let t = QuantTable::luma(75);
        let coef: [i32; 64] = std::array::from_fn(|i| (i as i32 * 41 % 301) - 150);
        let block = t.quantize_recip(&coef);
        for i in 0..64 {
            assert_eq!(block[i], t.quantize_one_recip(i, coef[i]));
        }
    }

    #[test]
    fn quantize_dequantize_bounds_error() {
        let t = QuantTable::luma(50);
        let coef: [i32; 64] = std::array::from_fn(|i| (i as i32 * 37 % 201) - 100);
        let rt = t.dequantize(&t.quantize(&coef));
        for i in 0..64 {
            assert!((rt[i] - coef[i]).abs() <= t.q[i] as i32 / 2 + 1, "i={i}");
        }
    }
}
