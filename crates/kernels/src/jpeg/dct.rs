//! 8x8 two-dimensional DCT-II / DCT-III (the `DCT` and `Alpha` processes).
//!
//! The paper splits the transform into a raw basis-projection (`DCT`) and a
//! normalization pass (`Alpha`, the `c(u)c(v)/4` scaling); we expose both
//! fused and split forms. A fixed-point variant mirrors the PE's Q24.24
//! multiply-accumulate semantics and is the host oracle for the generated
//! tile program.

use super::image::BLOCK;
use cgra_fabric::word::{fixed, Word};

const N: usize = BLOCK;

/// `cos((2x+1) u pi / 16)` basis matrix, row `u`, column `x`.
fn cos_basis() -> [[f64; N]; N] {
    let mut c = [[0.0; N]; N];
    for (u, row) in c.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            *v = ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos();
        }
    }
    c
}

/// DCT normalization factor `c(u)`: `1/sqrt(2)` for `u = 0`, else 1.
pub fn alpha(u: usize) -> f64 {
    if u == 0 {
        std::f64::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

/// Full normalized 2-D DCT-II of a level-shifted block (f64 reference).
pub fn dct2d(input: &[f64; N * N]) -> [f64; N * N] {
    let c = cos_basis();
    let mut out = [0.0; N * N];
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0;
            for x in 0..N {
                for y in 0..N {
                    acc += input[x * N + y] * c[u][x] * c[v][y];
                }
            }
            out[u * N + v] = 0.25 * alpha(u) * alpha(v) * acc;
        }
    }
    out
}

/// Unnormalized projection only (the paper's `DCT` process, before `Alpha`).
pub fn dct2d_raw(input: &[f64; N * N]) -> [f64; N * N] {
    let c = cos_basis();
    let mut out = [0.0; N * N];
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0;
            for x in 0..N {
                for y in 0..N {
                    acc += input[x * N + y] * c[u][x] * c[v][y];
                }
            }
            out[u * N + v] = acc;
        }
    }
    out
}

/// The `Alpha` normalization applied after [`dct2d_raw`].
pub fn apply_alpha(raw: &[f64; N * N]) -> [f64; N * N] {
    let mut out = [0.0; N * N];
    for u in 0..N {
        for v in 0..N {
            out[u * N + v] = 0.25 * alpha(u) * alpha(v) * raw[u * N + v];
        }
    }
    out
}

/// Inverse 2-D DCT (DCT-III), producing level-shifted samples.
pub fn idct2d(coef: &[f64; N * N]) -> [f64; N * N] {
    let c = cos_basis();
    let mut out = [0.0; N * N];
    for x in 0..N {
        for y in 0..N {
            let mut acc = 0.0;
            for u in 0..N {
                for v in 0..N {
                    acc += alpha(u) * alpha(v) * coef[u * N + v] * c[u][x] * c[v][y];
                }
            }
            out[x * N + y] = 0.25 * acc;
        }
    }
    out
}

/// The Q24.24 cosine basis the tile program multiplies against.
pub fn cos_basis_fx() -> [[Word; N]; N] {
    let c = cos_basis();
    let mut out = [[Word::ZERO; N]; N];
    for u in 0..N {
        for x in 0..N {
            out[u][x] = fixed::from_f64(c[u][x]);
        }
    }
    out
}

/// Fixed-point separable 2-D DCT with PE MAC semantics: two passes of
/// 8-point basis projections, then the alpha scaling. Matches what the
/// generated tile program computes (same operation order and rounding).
pub fn dct2d_fixed(input: &[i32; N * N]) -> [i32; N * N] {
    let c = cos_basis_fx();
    let frac = fixed::FRAC_BITS;
    // Eight guard bits ride through both passes so per-term MAC truncation
    // stays below 2^-8; the alpha step rounds back to integers.
    let guard = 8;
    // Pass 1 (columns): tmp[u][y] = sum_x in[x][y] * C[u][x], in Q8.
    // MAC shift = 24 - 8 = 16, exactly what the tile program uses.
    let mut tmp = [Word::ZERO; N * N];
    for u in 0..N {
        for y in 0..N {
            let mut acc: i128 = 0;
            for x in 0..N {
                let a = Word::wrap(input[x * N + y] as i64);
                let prod = (a.value() as i128) * (c[u][x].value() as i128);
                acc += prod >> (frac - guard);
            }
            tmp[u * N + y] = Word::wrap(acc as i64);
        }
    }
    // Pass 2 (rows): raw[u][v] = sum_y tmp[u][y] * C[v][y], still Q8.
    let mut out = [0i32; N * N];
    let alpha_fx: [Word; N] = std::array::from_fn(|u| fixed::from_f64(0.5 * alpha(u)));
    for u in 0..N {
        for v in 0..N {
            let mut acc: i128 = 0;
            for y in 0..N {
                let prod = (tmp[u * N + y].value() as i128) * (c[v][y].value() as i128);
                acc += prod >> frac;
            }
            // Alpha: 0.25 c(u) c(v) as (0.5 c(u)) * (0.5 c(v)); lift Q8 to
            // Q24, scale, then round-half-up back to an integer.
            let raw = Word::wrap(acc as i64);
            let scaled = fixed::mul(fixed::mul(raw.shl(frac - guard), alpha_fx[u]), alpha_fx[v]);
            let rounded = scaled.add(Word::wrap(1 << (frac - 1))).shr(frac);
            out[u * N + v] = rounded.value() as i32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_block(seed: u64) -> [f64; 64] {
        let mut s = seed | 1;
        std::array::from_fn(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 24) as u8) as f64 - 128.0
        })
    }

    #[test]
    fn constant_block_is_pure_dc() {
        let input = [10.0; 64];
        let out = dct2d(&input);
        // DC = 8 * value for the normalized transform.
        assert!((out[0] - 80.0).abs() < 1e-9);
        for &c in &out[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn raw_plus_alpha_equals_fused() {
        let input = shifted_block(3);
        let fused = dct2d(&input);
        let split = apply_alpha(&dct2d_raw(&input));
        for (a, b) in fused.iter().zip(&split) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dct_idct_roundtrip() {
        let input = shifted_block(11);
        let back = idct2d(&dct2d(&input));
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let input = shifted_block(5);
        let out = dct2d(&input);
        let ein: f64 = input.iter().map(|v| v * v).sum();
        let eout: f64 = out.iter().map(|v| v * v).sum();
        assert!((ein - eout).abs() / ein < 1e-12);
    }

    #[test]
    fn fixed_matches_f64_within_rounding() {
        for seed in [1u64, 9, 42, 1234] {
            let f = shifted_block(seed);
            let i: [i32; 64] = std::array::from_fn(|k| f[k] as i32);
            let fi: [f64; 64] = std::array::from_fn(|k| i[k] as f64);
            let want = dct2d(&fi);
            let got = dct2d_fixed(&i);
            for (k, (&g, &w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g as f64 - w).abs() <= 2.0,
                    "seed={seed} k={k} got={g} want={w}"
                );
            }
        }
    }

    #[test]
    fn basis_orthogonality() {
        let c = cos_basis();
        for u in 0..8 {
            for v in 0..8 {
                let dot: f64 = (0..8).map(|x| c[u][x] * c[v][x]).sum();
                let want = if u == v {
                    if u == 0 {
                        8.0
                    } else {
                        4.0
                    }
                } else {
                    0.0
                };
                assert!((dot - want).abs() < 1e-9, "u={u} v={v}");
            }
        }
    }
}
