//! A baseline JPEG decoder for round-trip validation of the encoder.
//!
//! Parses exactly the profile our encoder emits (single-component baseline
//! JFIF with one DC and one AC table) plus enough generality to reject
//! malformed streams with useful errors. The paper had no way to validate
//! its encoder output end-to-end; we do.

use super::bitio::BitReader;
use super::dct::idct2d;
use super::huffman::{decode_block, DecTable, HuffSpec};
use super::image::{GrayImage, BLOCK};
use super::quant::QuantTable;
use super::zigzag::unzigzag;

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream does not start with SOI.
    NotAJpeg,
    /// Unexpected end of data.
    Truncated,
    /// A marker segment was malformed.
    BadSegment(&'static str),
    /// The stream uses a feature outside the baseline profile we accept.
    Unsupported(&'static str),
    /// Entropy data ended before all blocks decoded.
    EntropyTruncated {
        /// Blocks successfully decoded.
        decoded: usize,
        /// Blocks expected.
        expected: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NotAJpeg => write!(f, "missing SOI marker"),
            DecodeError::Truncated => write!(f, "unexpected end of stream"),
            DecodeError::BadSegment(s) => write!(f, "malformed {s} segment"),
            DecodeError::Unsupported(s) => write!(f, "unsupported feature: {s}"),
            DecodeError::EntropyTruncated { decoded, expected } => {
                write!(f, "entropy data ended after {decoded}/{expected} blocks")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Parser<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let v = *self.data.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(((self.u8()? as u16) << 8) | self.u8()? as u16)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.data.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Decodes a baseline grayscale JFIF stream produced by
/// [`super::encoder::encode`].
pub fn decode(data: &[u8]) -> Result<GrayImage, DecodeError> {
    let mut p = Parser { data, pos: 0 };
    if p.u8()? != 0xff || p.u8()? != 0xd8 {
        return Err(DecodeError::NotAJpeg);
    }
    let mut qt: Option<QuantTable> = None;
    let mut dc: Option<DecTable> = None;
    let mut ac: Option<DecTable> = None;
    let mut dims: Option<(usize, usize)> = None;

    loop {
        // Seek to the next marker.
        let mut byte = p.u8()?;
        while byte != 0xff {
            byte = p.u8()?;
        }
        let mut marker = p.u8()?;
        while marker == 0xff {
            marker = p.u8()?;
        }
        match marker {
            0xd9 => return Err(DecodeError::BadSegment("EOI before SOS")),
            0xe0..=0xef | 0xfe => {
                // APPn / COM: skip.
                let len = p.u16()? as usize;
                p.bytes(len.checked_sub(2).ok_or(DecodeError::BadSegment("APPn"))?)?;
            }
            0xdb => {
                let len = p.u16()? as usize;
                let body = p.bytes(len - 2)?;
                if body.len() != 65 {
                    return Err(DecodeError::Unsupported("multi-table or 16-bit DQT"));
                }
                if body[0] & 0xf0 != 0 {
                    return Err(DecodeError::Unsupported("16-bit DQT"));
                }
                let mut zz = [0i32; 64];
                for k in 0..64 {
                    zz[k] = body[1 + k] as i32;
                }
                let natural = unzigzag(&zz);
                let mut q = [0u16; 64];
                for i in 0..64 {
                    q[i] = natural[i] as u16;
                }
                qt = Some(QuantTable { q });
            }
            0xc0 => {
                let len = p.u16()? as usize;
                let body = p.bytes(len - 2)?;
                if body.len() < 6 || body[0] != 8 {
                    return Err(DecodeError::BadSegment("SOF0"));
                }
                let h = ((body[1] as usize) << 8) | body[2] as usize;
                let w = ((body[3] as usize) << 8) | body[4] as usize;
                if body[5] != 1 {
                    return Err(DecodeError::Unsupported("multi-component image"));
                }
                dims = Some((w, h));
            }
            0xc1..=0xcf if marker != 0xc4 && marker != 0xc8 && marker != 0xcc => {
                return Err(DecodeError::Unsupported("non-baseline SOF"));
            }
            0xc4 => {
                let len = p.u16()? as usize;
                let mut body = Parser {
                    data: p.bytes(len - 2)?,
                    pos: 0,
                };
                while body.pos < body.data.len() {
                    let tc_th = body.u8()?;
                    let mut bits = [0u8; 16];
                    for b in bits.iter_mut() {
                        *b = body.u8()?;
                    }
                    let total: usize = bits.iter().map(|&b| b as usize).sum();
                    let vals = body.bytes(total)?.to_vec();
                    let spec = HuffSpec { bits, vals };
                    let table = DecTable::from_spec(&spec);
                    match tc_th >> 4 {
                        0 => dc = Some(table),
                        1 => ac = Some(table),
                        _ => return Err(DecodeError::BadSegment("DHT class")),
                    }
                }
            }
            0xda => {
                let len = p.u16()? as usize;
                p.bytes(len - 2)?;
                let (w, h) = dims.ok_or(DecodeError::BadSegment("SOS before SOF"))?;
                let qt = qt.ok_or(DecodeError::BadSegment("SOS before DQT"))?;
                let dc = dc.ok_or(DecodeError::BadSegment("SOS before DC DHT"))?;
                let ac = ac.ok_or(DecodeError::BadSegment("SOS before AC DHT"))?;
                return decode_scan(&p.data[p.pos..], w, h, &qt, &dc, &ac);
            }
            _ => {
                let len = p.u16()? as usize;
                p.bytes(
                    len.checked_sub(2)
                        .ok_or(DecodeError::BadSegment("marker"))?,
                )?;
            }
        }
    }
}

fn decode_scan(
    entropy: &[u8],
    width: usize,
    height: usize,
    qt: &QuantTable,
    dc: &DecTable,
    ac: &DecTable,
) -> Result<GrayImage, DecodeError> {
    let mut img = GrayImage::new(width, height);
    let mut r = BitReader::new(entropy);
    let mut pred = 0i32;
    let (bx_max, by_max) = (img.blocks_x(), img.blocks_y());
    let expected = bx_max * by_max;
    let mut done = 0usize;
    for by in 0..by_max {
        for bx in 0..bx_max {
            let scan =
                decode_block(&mut r, dc, ac, &mut pred).ok_or(DecodeError::EntropyTruncated {
                    decoded: done,
                    expected,
                })?;
            let q = unzigzag(&scan);
            let coef = qt.dequantize(&q);
            let coef_f: [f64; 64] = std::array::from_fn(|i| coef[i] as f64);
            let spatial = idct2d(&coef_f);
            let px: [i32; BLOCK * BLOCK] =
                std::array::from_fn(|i| (spatial[i].round() as i32) + 128);
            img.set_block(bx, by, &px);
            done += 1;
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpeg::encoder::{encode, EncoderConfig};

    #[test]
    fn roundtrip_psnr_by_content() {
        let cases = [
            ("gradient", GrayImage::gradient(48, 48), 38.0),
            ("rings", GrayImage::rings(48, 48), 30.0),
            ("checker", GrayImage::checkerboard(48, 48, 4), 26.0),
        ];
        for (name, img, min_psnr) in cases {
            let bytes = encode(&img, &EncoderConfig { quality: 90 });
            let back = decode(&bytes).unwrap();
            let psnr = img.psnr(&back);
            assert!(psnr > min_psnr, "{name}: psnr {psnr:.1} < {min_psnr}");
        }
    }

    #[test]
    fn quality_improves_psnr() {
        let img = GrayImage::rings(64, 64);
        let lo = decode(&encode(&img, &EncoderConfig { quality: 10 })).unwrap();
        let hi = decode(&encode(&img, &EncoderConfig { quality: 95 })).unwrap();
        assert!(img.psnr(&hi) > img.psnr(&lo) + 5.0);
    }

    #[test]
    fn non_multiple_of_8_dimensions() {
        let img = GrayImage::gradient(45, 37);
        let back = decode(&encode(&img, &EncoderConfig { quality: 85 })).unwrap();
        assert_eq!((back.width, back.height), (45, 37));
        assert!(img.psnr(&back) > 30.0);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode(&[0x00, 0x01]), Err(DecodeError::NotAJpeg));
        assert_eq!(decode(&[0xff, 0xd8]), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_truncated_entropy() {
        let img = GrayImage::rings(32, 32);
        let mut bytes = encode(&img, &EncoderConfig::default());
        bytes.truncate(bytes.len() - 40);
        match decode(&bytes) {
            Err(DecodeError::EntropyTruncated { .. }) | Err(DecodeError::Truncated) => {}
            other => panic!("expected truncation error, got {other:?}"),
        }
    }
}
