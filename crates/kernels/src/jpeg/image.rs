//! Grayscale images and synthetic workload generators.
//!
//! The paper's evaluation streams 200x200-pixel camera images through the
//! encoder; lacking those, we synthesize test patterns with comparable
//! block statistics (smooth gradients, textured noise, sharp edges).

/// Width/height of a JPEG coding block.
pub const BLOCK: usize = 8;

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major samples.
    pub pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> GrayImage {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        GrayImage {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Sample at `(x, y)`, clamping coordinates to the edge (JPEG block
    /// padding semantics).
    pub fn get_clamped(&self, x: usize, y: usize) -> u8 {
        let x = x.min(self.width - 1);
        let y = y.min(self.height - 1);
        self.pixels[y * self.width + x]
    }

    /// Sets the sample at `(x, y)`.
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = v;
    }

    /// Blocks per row (ceil division).
    pub fn blocks_x(&self) -> usize {
        self.width.div_ceil(BLOCK)
    }

    /// Blocks per column (ceil division).
    pub fn blocks_y(&self) -> usize {
        self.height.div_ceil(BLOCK)
    }

    /// Total 8x8 blocks the encoder processes.
    pub fn block_count(&self) -> usize {
        self.blocks_x() * self.blocks_y()
    }

    /// Extracts the 8x8 block at block coordinates `(bx, by)` with edge
    /// clamping, row-major.
    pub fn block(&self, bx: usize, by: usize) -> [u8; BLOCK * BLOCK] {
        let mut out = [0u8; BLOCK * BLOCK];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                out[y * BLOCK + x] = self.get_clamped(bx * BLOCK + x, by * BLOCK + y);
            }
        }
        out
    }

    /// Writes an 8x8 block back (pixels outside the image are dropped).
    pub fn set_block(&mut self, bx: usize, by: usize, data: &[i32; BLOCK * BLOCK]) {
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                let (px, py) = (bx * BLOCK + x, by * BLOCK + y);
                if px < self.width && py < self.height {
                    self.pixels[py * self.width + px] = data[y * BLOCK + x].clamp(0, 255) as u8;
                }
            }
        }
    }

    /// Smooth diagonal gradient — DC-heavy blocks.
    pub fn gradient(width: usize, height: usize) -> GrayImage {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.pixels[y * width + x] = (((x + y) * 255) / (width + height - 2).max(1)) as u8;
            }
        }
        img
    }

    /// Concentric sine rings — mid-frequency content.
    pub fn rings(width: usize, height: usize) -> GrayImage {
        let mut img = GrayImage::new(width, height);
        let (cx, cy) = (width as f64 / 2.0, height as f64 / 2.0);
        for y in 0..height {
            for x in 0..width {
                let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
                img.pixels[y * width + x] = ((0.5 + 0.5 * (d * 0.35).sin()) * 255.0) as u8;
            }
        }
        img
    }

    /// Deterministic pseudo-random texture (xorshift) — high-frequency
    /// stress content.
    pub fn noise(width: usize, height: usize, seed: u64) -> GrayImage {
        let mut img = GrayImage::new(width, height);
        let mut s = seed | 1;
        for p in img.pixels.iter_mut() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *p = (s >> 24) as u8;
        }
        img
    }

    /// Checkerboard with `cell`-pixel cells — hard edges.
    pub fn checkerboard(width: usize, height: usize, cell: usize) -> GrayImage {
        let mut img = GrayImage::new(width, height);
        let cell = cell.max(1);
        for y in 0..height {
            for x in 0..width {
                img.pixels[y * width + x] = if ((x / cell) + (y / cell)).is_multiple_of(2) {
                    230
                } else {
                    25
                };
            }
        }
        img
    }

    /// Peak signal-to-noise ratio against another image of equal size, dB.
    pub fn psnr(&self, other: &GrayImage) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let mse: f64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.pixels.len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts_round_up() {
        let img = GrayImage::new(200, 200);
        assert_eq!(img.blocks_x(), 25);
        assert_eq!(img.block_count(), 625);
        let odd = GrayImage::new(201, 17);
        assert_eq!(odd.blocks_x(), 26);
        assert_eq!(odd.blocks_y(), 3);
    }

    #[test]
    fn edge_clamping() {
        let mut img = GrayImage::new(9, 9);
        img.set(8, 8, 77);
        let b = img.block(1, 1);
        // Everything beyond column/row 8 clamps to the last sample.
        assert!(b.iter().all(|&p| p == 77 || p == 0));
        assert_eq!(b[0], 77);
        assert_eq!(b[63], 77);
    }

    #[test]
    fn block_roundtrip() {
        let img = GrayImage::rings(32, 32);
        let b = img.block(1, 2);
        let as_i32: [i32; 64] = std::array::from_fn(|i| b[i] as i32);
        let mut copy = GrayImage::new(32, 32);
        copy.set_block(1, 2, &as_i32);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(
                    copy.get_clamped(8 + x, 16 + y),
                    img.get_clamped(8 + x, 16 + y)
                );
            }
        }
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let img = GrayImage::noise(16, 16, 42);
        assert_eq!(img.psnr(&img), f64::INFINITY);
        let other = GrayImage::noise(16, 16, 77);
        assert!(img.psnr(&other) < 20.0);
    }

    #[test]
    fn generators_fill_range() {
        for img in [
            GrayImage::gradient(40, 40),
            GrayImage::rings(40, 40),
            GrayImage::noise(40, 40, 7),
            GrayImage::checkerboard(40, 40, 5),
        ] {
            let min = *img.pixels.iter().min().unwrap();
            let max = *img.pixels.iter().max().unwrap();
            assert!(max > min, "degenerate test image");
        }
    }
}
