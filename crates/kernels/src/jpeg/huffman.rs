//! Baseline Huffman entropy coding (the `Hman1..Hman5` processes).
//!
//! Implements the ITU-T T.81 Annex K "typical" DC/AC tables, the
//! category/magnitude split, zero-run-length coding with ZRL and EOB, and
//! both encode and decode directions. The paper splits this stage into
//! five sub-processes because the code tables exceed one tile's
//! instruction memory; functionally it is one pass per block.

use super::bitio::{BitReader, BitWriter};

/// A Huffman table in the JPEG (BITS, HUFFVAL) form.
#[derive(Debug, Clone)]
pub struct HuffSpec {
    /// `bits[i]` = number of codes of length `i+1` (16 entries).
    pub bits: [u8; 16],
    /// Symbol values in code order.
    pub vals: Vec<u8>,
}

/// Annex K.3: typical DC luminance table.
pub fn dc_luma_spec() -> HuffSpec {
    HuffSpec {
        bits: [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0],
        vals: (0..=11).collect(),
    }
}

/// Annex K.5: typical AC luminance table.
pub fn ac_luma_spec() -> HuffSpec {
    HuffSpec {
        bits: [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d],
        vals: vec![
            0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51,
            0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08, 0x23, 0x42, 0xb1, 0xc1,
            0x15, 0x52, 0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16, 0x17, 0x18,
            0x19, 0x1a, 0x25, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
            0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57,
            0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75,
            0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92,
            0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
            0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3,
            0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8,
            0xd9, 0xda, 0xe1, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2,
            0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa,
        ],
    }
}

/// An encoder-side table: symbol -> (code, length).
#[derive(Debug, Clone)]
pub struct EncTable {
    codes: Vec<Option<(u32, u32)>>,
}

impl EncTable {
    /// Derives canonical codes from a spec (T.81 Annex C).
    pub fn from_spec(spec: &HuffSpec) -> EncTable {
        let mut codes = vec![None; 256];
        let mut code = 0u32;
        let mut k = 0usize;
        for len in 1..=16u32 {
            for _ in 0..spec.bits[len as usize - 1] {
                codes[spec.vals[k] as usize] = Some((code, len));
                code += 1;
                k += 1;
            }
            code <<= 1;
        }
        EncTable { codes }
    }

    /// The `(code, length)` for `symbol`.
    pub fn code(&self, symbol: u8) -> Option<(u32, u32)> {
        self.codes[symbol as usize]
    }
}

/// A decoder-side table built for canonical code lookup.
#[derive(Debug, Clone)]
pub struct DecTable {
    /// `(first_code, first_index, count)` per code length 1..=16.
    lens: [(u32, usize, usize); 16],
    vals: Vec<u8>,
}

impl DecTable {
    /// Derives the decode structure from a spec.
    pub fn from_spec(spec: &HuffSpec) -> DecTable {
        let mut lens = [(0u32, 0usize, 0usize); 16];
        let mut code = 0u32;
        let mut idx = 0usize;
        for (len, slot) in lens.iter_mut().enumerate() {
            let count = spec.bits[len] as usize;
            *slot = (code, idx, count);
            code = (code + count as u32) << 1;
            idx += count;
        }
        DecTable {
            lens,
            vals: spec.vals.clone(),
        }
    }

    /// Decodes one symbol from the reader.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<u8> {
        let mut code = 0u32;
        for len in 0..16 {
            code = (code << 1) | r.bit()?;
            let (first, idx, count) = self.lens[len];
            if count > 0 && code < first + count as u32 && code >= first {
                return Some(self.vals[idx + (code - first) as usize]);
            }
        }
        None
    }
}

/// JPEG magnitude category of `v` (number of bits to represent |v|).
pub fn category(v: i32) -> u32 {
    32 - v.unsigned_abs().leading_zeros()
}

/// The magnitude bits for `v` in category `cat` (one's-complement form for
/// negatives).
pub fn magnitude_bits(v: i32, cat: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v + (1 << cat) - 1) as u32
    }
}

/// Inverse of [`magnitude_bits`].
pub fn extend(bits: u32, cat: u32) -> i32 {
    if cat == 0 {
        return 0;
    }
    let v = bits as i32;
    if v < (1 << (cat - 1)) {
        v - (1 << cat) + 1
    } else {
        v
    }
}

/// Encodes one zig-zag-ordered quantized block. `dc_pred` carries the DC
/// predictor across blocks and is updated in place.
pub fn encode_block(
    w: &mut BitWriter,
    dc: &EncTable,
    ac: &EncTable,
    scan: &[i32; 64],
    dc_pred: &mut i32,
) {
    // DC: category + magnitude of the prediction difference.
    let diff = scan[0] - *dc_pred;
    *dc_pred = scan[0];
    let cat = category(diff);
    let (code, len) = dc.code(cat as u8).expect("dc category has a code");
    w.put(code, len);
    w.put(magnitude_bits(diff, cat), cat);
    // AC: (run, size) symbols with ZRL (0xF0) and EOB (0x00).
    let mut run = 0u32;
    for &v in &scan[1..] {
        if v == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            let (c, l) = ac.code(0xf0).expect("ZRL");
            w.put(c, l);
            run -= 16;
        }
        let cat = category(v);
        let sym = ((run as u8) << 4) | cat as u8;
        let (c, l) = ac.code(sym).expect("ac symbol has a code");
        w.put(c, l);
        w.put(magnitude_bits(v, cat), cat);
        run = 0;
    }
    if run > 0 {
        let (c, l) = ac.code(0x00).expect("EOB");
        w.put(c, l);
    }
}

/// Decodes one block into zig-zag order, updating the DC predictor.
pub fn decode_block(
    r: &mut BitReader<'_>,
    dc: &DecTable,
    ac: &DecTable,
    dc_pred: &mut i32,
) -> Option<[i32; 64]> {
    let mut scan = [0i32; 64];
    let cat = dc.decode(r)? as u32;
    if cat > 15 {
        // A corrupted table can map to symbols outside the DC category
        // range; baseline JPEG never exceeds 11 (15 with 12-bit extension).
        return None;
    }
    let bits = r.bits(cat)?;
    *dc_pred += extend(bits, cat);
    scan[0] = *dc_pred;
    let mut k = 1usize;
    while k < 64 {
        let sym = ac.decode(r)?;
        if sym == 0x00 {
            break; // EOB
        }
        let run = (sym >> 4) as usize;
        let cat = (sym & 0x0f) as u32;
        if sym == 0xf0 {
            k += 16;
            continue;
        }
        k += run;
        if k >= 64 {
            return None; // corrupt stream
        }
        let bits = r.bits(cat)?;
        scan[k] = extend(bits, cat);
        k += 1;
    }
    Some(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(2), 2);
        assert_eq!(category(-3), 2);
        assert_eq!(category(255), 8);
        assert_eq!(category(-1024), 11);
    }

    #[test]
    fn magnitude_extend_roundtrip() {
        for v in -2000..=2000 {
            let cat = category(v);
            assert_eq!(extend(magnitude_bits(v, cat), cat), v, "v={v}");
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        for spec in [dc_luma_spec(), ac_luma_spec()] {
            let t = EncTable::from_spec(&spec);
            let codes: Vec<(u32, u32)> = spec
                .vals
                .iter()
                .map(|&v| t.code(v).expect("every val coded"))
                .collect();
            for (i, &(ci, li)) in codes.iter().enumerate() {
                for (j, &(cj, lj)) in codes.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let l = li.min(lj);
                    assert_ne!(ci >> (li - l), cj >> (lj - l), "prefix collision");
                }
            }
        }
    }

    #[test]
    fn known_dc_codes() {
        // With Annex K DC luma: category 0 -> "00" (2 bits).
        let t = EncTable::from_spec(&dc_luma_spec());
        assert_eq!(t.code(0), Some((0b00, 2)));
        assert_eq!(t.code(1), Some((0b010, 3)));
        assert_eq!(t.code(11), Some((0b111111110, 9)));
    }

    #[test]
    fn known_ac_codes() {
        let t = EncTable::from_spec(&ac_luma_spec());
        // EOB = "1010" (4 bits), ZRL = "11111111001" (11 bits) per Annex K.5.
        assert_eq!(t.code(0x00), Some((0b1010, 4)));
        assert_eq!(t.code(0xf0), Some((0b11111111001, 11)));
        assert_eq!(t.code(0x01), Some((0b00, 2)));
    }

    #[test]
    fn encode_decode_block_roundtrip() {
        let dc_spec = dc_luma_spec();
        let ac_spec = ac_luma_spec();
        let (enc_dc, enc_ac) = (EncTable::from_spec(&dc_spec), EncTable::from_spec(&ac_spec));
        let (dec_dc, dec_ac) = (DecTable::from_spec(&dc_spec), DecTable::from_spec(&ac_spec));
        let mut blocks = Vec::new();
        let mut s = 99u64;
        for _ in 0..50 {
            let mut b = [0i32; 64];
            for v in b.iter_mut() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // sparse-ish, small coefficients like real quantized data
                *v = if s.is_multiple_of(5) {
                    ((s >> 20) % 63) as i32 - 31
                } else {
                    0
                };
            }
            blocks.push(b);
        }
        let mut w = BitWriter::new();
        let mut pred = 0;
        for b in &blocks {
            encode_block(&mut w, &enc_dc, &enc_ac, b, &mut pred);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut pred = 0;
        for b in &blocks {
            let got = decode_block(&mut r, &dec_dc, &dec_ac, &mut pred).expect("decodes");
            assert_eq!(&got, b);
        }
    }

    #[test]
    fn long_zero_runs_use_zrl() {
        let (enc_dc, enc_ac) = (
            EncTable::from_spec(&dc_luma_spec()),
            EncTable::from_spec(&ac_luma_spec()),
        );
        let (dec_dc, dec_ac) = (
            DecTable::from_spec(&dc_luma_spec()),
            DecTable::from_spec(&ac_luma_spec()),
        );
        let mut b = [0i32; 64];
        b[0] = 5;
        b[40] = -7; // 39 zeros => two ZRLs + run 7
        b[63] = 1; // tail coefficient, no EOB needed after it... still fine
        let mut w = BitWriter::new();
        let mut pred = 0;
        encode_block(&mut w, &enc_dc, &enc_ac, &b, &mut pred);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut pred = 0;
        let got = decode_block(&mut r, &dec_dc, &dec_ac, &mut pred).unwrap();
        assert_eq!(got, b);
    }
}
