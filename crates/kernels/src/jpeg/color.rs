//! Color JPEG: RGB images, YCbCr conversion, and a baseline 4:4:4
//! three-component JFIF encoder/decoder.
//!
//! The paper's evaluation is grayscale ("images of sizes 200 x 200
//! pixels"); color support extends the encoder kernel to the full baseline
//! profile a camera pipeline would need, reusing every stage — the only
//! additions are the color transform and interleaved MCU scanning with
//! separate quantization/Huffman tables for chroma.

use super::bitio::{BitReader, BitWriter};
use super::dct::{dct2d_fixed, idct2d};
use super::decoder::DecodeError;
use super::huffman::{
    ac_luma_spec, dc_luma_spec, decode_block, encode_block, DecTable, EncTable, HuffSpec,
};
use super::image::{GrayImage, BLOCK};
use super::quant::QuantTable;
use super::zigzag::{unzigzag, zigzag, ZIGZAG};

/// Annex K.3/K.6-style typical chrominance DC table.
pub fn dc_chroma_spec() -> HuffSpec {
    HuffSpec {
        bits: [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0],
        vals: (0..=11).collect(),
    }
}

/// Annex K.6: typical AC chrominance table.
pub fn ac_chroma_spec() -> HuffSpec {
    HuffSpec {
        bits: [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77],
        vals: vec![
            0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07,
            0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xa1, 0xb1, 0xc1, 0x09,
            0x23, 0x33, 0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25,
            0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38,
            0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56,
            0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74,
            0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
            0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5,
            0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba,
            0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6,
            0xd7, 0xd8, 0xd9, 0xda, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2,
            0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa,
        ],
    }
}

/// An 8-bit RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Interleaved RGB samples, row-major.
    pub pixels: Vec<[u8; 3]>,
}

impl RgbImage {
    /// A black image.
    pub fn new(width: usize, height: usize) -> RgbImage {
        assert!(width > 0 && height > 0);
        RgbImage {
            width,
            height,
            pixels: vec![[0; 3]; width * height],
        }
    }

    /// A colorful synthetic test card (hue wheel over a gradient).
    pub fn test_card(width: usize, height: usize) -> RgbImage {
        let mut img = RgbImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let fx = x as f64 / width as f64;
                let fy = y as f64 / height as f64;
                img.pixels[y * width + x] = [
                    (255.0 * (0.5 + 0.5 * (6.3 * fx).sin())) as u8,
                    (255.0 * fy) as u8,
                    (255.0 * (0.5 + 0.5 * (6.3 * (fx + fy)).cos())) as u8,
                ];
            }
        }
        img
    }

    /// Per-channel PSNR (dB) against another image of equal size.
    pub fn psnr(&self, other: &RgbImage) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let mse: f64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .flat_map(|(a, b)| (0..3).map(move |c| (a[c] as f64 - b[c] as f64).powi(2)))
            .sum::<f64>()
            / (self.pixels.len() * 3) as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

/// JFIF RGB -> YCbCr (BT.601 full range), one pixel.
pub fn rgb_to_ycbcr(rgb: [u8; 3]) -> [u8; 3] {
    let (r, g, b) = (rgb[0] as f64, rgb[1] as f64, rgb[2] as f64);
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b;
    [
        y.round().clamp(0.0, 255.0) as u8,
        cb.round().clamp(0.0, 255.0) as u8,
        cr.round().clamp(0.0, 255.0) as u8,
    ]
}

/// JFIF YCbCr -> RGB, one pixel.
pub fn ycbcr_to_rgb(ycc: [u8; 3]) -> [u8; 3] {
    let (y, cb, cr) = (ycc[0] as f64, ycc[1] as f64 - 128.0, ycc[2] as f64 - 128.0);
    let r = y + 1.402 * cr;
    let g = y - 0.344136 * cb - 0.714136 * cr;
    let b = y + 1.772 * cb;
    [
        r.round().clamp(0.0, 255.0) as u8,
        g.round().clamp(0.0, 255.0) as u8,
        b.round().clamp(0.0, 255.0) as u8,
    ]
}

/// Splits an RGB image into Y, Cb, Cr planes.
pub fn to_planes(img: &RgbImage) -> [GrayImage; 3] {
    let mut planes = std::array::from_fn::<_, 3, _>(|_| GrayImage::new(img.width, img.height));
    for (i, &px) in img.pixels.iter().enumerate() {
        let ycc = rgb_to_ycbcr(px);
        for c in 0..3 {
            planes[c].pixels[i] = ycc[c];
        }
    }
    planes
}

/// Recombines Y, Cb, Cr planes into RGB.
pub fn from_planes(planes: &[GrayImage; 3]) -> RgbImage {
    let (w, h) = (planes[0].width, planes[0].height);
    let mut img = RgbImage::new(w, h);
    for i in 0..w * h {
        img.pixels[i] = ycbcr_to_rgb([
            planes[0].pixels[i],
            planes[1].pixels[i],
            planes[2].pixels[i],
        ]);
    }
    img
}

fn write_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn write_marker(out: &mut Vec<u8>, m: u8) {
    out.extend_from_slice(&[0xff, m]);
}

/// 2x2 box-filter chroma downsampling (4:2:0).
pub fn downsample_2x2(plane: &GrayImage) -> GrayImage {
    let (w, h) = (plane.width.div_ceil(2), plane.height.div_ceil(2));
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0u32;
            for dy in 0..2 {
                for dx in 0..2 {
                    acc += plane.get_clamped(2 * x + dx, 2 * y + dy) as u32;
                }
            }
            out.pixels[y * w + x] = ((acc + 2) / 4) as u8;
        }
    }
    out
}

/// Encodes an RGB image as baseline 4:2:0 YCbCr JFIF (2x2-subsampled
/// chroma, 16x16-pixel MCUs of four Y blocks plus one Cb and one Cr).
pub fn encode_color_420(img: &RgbImage, quality: u8) -> Vec<u8> {
    let planes = to_planes(img);
    let y_plane = planes[0].clone();
    let cb = downsample_2x2(&planes[1]);
    let cr = downsample_2x2(&planes[2]);
    encode_ycbcr(img.width, img.height, 2, &y_plane, &cb, &cr, quality)
}

/// Encodes an RGB image as baseline 4:4:4 YCbCr JFIF.
pub fn encode_color(img: &RgbImage, quality: u8) -> Vec<u8> {
    let planes = to_planes(img);
    encode_ycbcr(
        img.width, img.height, 1, &planes[0], &planes[1], &planes[2], quality,
    )
}

/// Shared three-component encoder over prepared planes; `samp` is the luma
/// sampling factor (1 = 4:4:4, 2 = 4:2:0).
#[allow(clippy::too_many_arguments)]
fn encode_ycbcr(
    width: usize,
    height: usize,
    samp: usize,
    y_plane: &GrayImage,
    cb_plane: &GrayImage,
    cr_plane: &GrayImage,
    quality: u8,
) -> Vec<u8> {
    let qt_y = QuantTable::luma(quality);
    let qt_c = QuantTable::chroma(quality);
    let specs = [
        (dc_luma_spec(), ac_luma_spec()),
        (dc_chroma_spec(), ac_chroma_spec()),
    ];
    let enc: Vec<(EncTable, EncTable)> = specs
        .iter()
        .map(|(d, a)| (EncTable::from_spec(d), EncTable::from_spec(a)))
        .collect();

    let mut out = Vec::new();
    write_marker(&mut out, 0xd8);
    // APP0.
    write_marker(&mut out, 0xe0);
    write_u16(&mut out, 16);
    out.extend_from_slice(b"JFIF\0");
    out.extend_from_slice(&[1, 1, 0]);
    write_u16(&mut out, 1);
    write_u16(&mut out, 1);
    out.extend_from_slice(&[0, 0]);
    // DQT x2.
    for (id, qt) in [(0u8, &qt_y), (1u8, &qt_c)] {
        write_marker(&mut out, 0xdb);
        write_u16(&mut out, 2 + 1 + 64);
        out.push(id);
        for &nat in ZIGZAG.iter() {
            out.push(qt.q[nat] as u8);
        }
    }
    // SOF0: three components; luma sampling samp x samp.
    write_marker(&mut out, 0xc0);
    write_u16(&mut out, 2 + 6 + 3 * 3);
    out.push(8);
    write_u16(&mut out, height as u16);
    write_u16(&mut out, width as u16);
    out.push(3);
    let y_samp = ((samp as u8) << 4) | samp as u8;
    out.extend_from_slice(&[1, y_samp, 0]); // Y -> qtable 0
    out.extend_from_slice(&[2, 0x11, 1]); // Cb -> qtable 1
    out.extend_from_slice(&[3, 0x11, 1]); // Cr -> qtable 1
                                          // DHT x4.
    for (th, (dc, ac)) in specs.iter().enumerate() {
        for (class, spec) in [(0u8, dc), (1u8, ac)] {
            write_marker(&mut out, 0xc4);
            write_u16(&mut out, 2 + 1 + 16 + spec.vals.len() as u16);
            out.push((class << 4) | th as u8);
            out.extend_from_slice(&spec.bits);
            out.extend_from_slice(&spec.vals);
        }
    }
    // SOS.
    write_marker(&mut out, 0xda);
    write_u16(&mut out, 2 + 1 + 2 * 3 + 3);
    out.push(3);
    out.extend_from_slice(&[1, 0x00, 2, 0x11, 3, 0x11]);
    out.extend_from_slice(&[0, 63, 0]);

    // Interleaved MCUs: samp*samp Y blocks then one Cb and one Cr.
    let mut w = BitWriter::new();
    let mut preds = [0i32; 3];
    let code_block = |w: &mut BitWriter,
                      plane: &GrayImage,
                      bx: usize,
                      by: usize,
                      qt: &QuantTable,
                      tables: &(EncTable, EncTable),
                      pred: &mut i32| {
        let raw = plane.block(bx, by);
        let shifted: [i32; 64] = std::array::from_fn(|i| raw[i] as i32 - 128);
        let coef = dct2d_fixed(&shifted);
        let q = qt.quantize_recip(&coef);
        let scan = zigzag(&q);
        encode_block(w, &tables.0, &tables.1, &scan, pred);
    };
    let mcu_x = width.div_ceil(samp * 8);
    let mcu_y = height.div_ceil(samp * 8);
    for my in 0..mcu_y {
        for mx in 0..mcu_x {
            for sy in 0..samp {
                for sx in 0..samp {
                    code_block(
                        &mut w,
                        y_plane,
                        mx * samp + sx,
                        my * samp + sy,
                        &qt_y,
                        &enc[0],
                        &mut preds[0],
                    );
                }
            }
            code_block(&mut w, cb_plane, mx, my, &qt_c, &enc[1], &mut preds[1]);
            code_block(&mut w, cr_plane, mx, my, &qt_c, &enc[1], &mut preds[2]);
        }
    }
    out.extend_from_slice(&w.finish());
    out.extend_from_slice(&[0xff, 0xd9]);
    out
}

/// Decodes a baseline 4:4:4 three-component stream produced by
/// [`encode_color`].
pub fn decode_color(data: &[u8]) -> Result<RgbImage, DecodeError> {
    // Minimal parser specialized to our own output profile.
    let mut pos = 2usize;
    if data.len() < 4 || data[0] != 0xff || data[1] != 0xd8 {
        return Err(DecodeError::NotAJpeg);
    }
    let mut qts: [Option<QuantTable>; 2] = [None, None];
    let mut dcs: [Option<DecTable>; 2] = [None, None];
    let mut acs: [Option<DecTable>; 2] = [None, None];
    let mut dims: Option<(usize, usize, usize)> = None;
    loop {
        if pos + 4 > data.len() {
            return Err(DecodeError::Truncated);
        }
        if data[pos] != 0xff {
            return Err(DecodeError::BadSegment("marker alignment"));
        }
        let marker = data[pos + 1];
        pos += 2;
        let len = ((data[pos] as usize) << 8 | data[pos + 1] as usize)
            .checked_sub(2)
            .ok_or(DecodeError::BadSegment("length"))?;
        let body = data
            .get(pos + 2..pos + 2 + len)
            .ok_or(DecodeError::Truncated)?;
        pos += 2 + len;
        match marker {
            0xdb => {
                let id = (body[0] & 0x0f) as usize;
                if id > 1 || body.len() != 65 {
                    return Err(DecodeError::Unsupported("DQT layout"));
                }
                let mut zz = [0i32; 64];
                for k in 0..64 {
                    zz[k] = body[1 + k] as i32;
                }
                let nat = unzigzag(&zz);
                let mut q = [0u16; 64];
                for i in 0..64 {
                    q[i] = nat[i] as u16;
                }
                qts[id] = Some(QuantTable { q });
            }
            0xc0 => {
                if body[5] != 3 {
                    return Err(DecodeError::Unsupported("component count"));
                }
                let h = (body[1] as usize) << 8 | body[2] as usize;
                let w = (body[3] as usize) << 8 | body[4] as usize;
                // Component 0's sampling byte: 0x11 = 4:4:4, 0x22 = 4:2:0.
                let samp = match body[7] {
                    0x11 => 1,
                    0x22 => 2,
                    _ => return Err(DecodeError::Unsupported("sampling factors")),
                };
                dims = Some((w, h, samp));
            }
            0xc4 => {
                let mut o = 0usize;
                while o < body.len() {
                    let tc_th = body[o];
                    let mut bits = [0u8; 16];
                    bits.copy_from_slice(&body[o + 1..o + 17]);
                    let total: usize = bits.iter().map(|&b| b as usize).sum();
                    let vals = body[o + 17..o + 17 + total].to_vec();
                    let table = DecTable::from_spec(&HuffSpec { bits, vals });
                    let th = (tc_th & 0x0f) as usize;
                    if th > 1 {
                        return Err(DecodeError::Unsupported("table id"));
                    }
                    if tc_th >> 4 == 0 {
                        dcs[th] = Some(table);
                    } else {
                        acs[th] = Some(table);
                    }
                    o += 17 + total;
                }
            }
            0xda => {
                let (w, h, samp) = dims.ok_or(DecodeError::BadSegment("SOS before SOF"))?;
                let entropy = &data[pos..];
                return decode_color_scan(entropy, w, h, samp, &qts, &dcs, &acs);
            }
            _ => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn decode_one_block(
    r: &mut BitReader<'_>,
    dc: &DecTable,
    ac: &DecTable,
    qt: &QuantTable,
    pred: &mut i32,
    plane: &mut GrayImage,
    bx: usize,
    by: usize,
) -> Option<()> {
    let scan = decode_block(r, dc, ac, pred)?;
    let coef = qt.dequantize(&unzigzag(&scan));
    let coef_f: [f64; 64] = std::array::from_fn(|i| coef[i] as f64);
    let spatial = idct2d(&coef_f);
    let px: [i32; BLOCK * BLOCK] = std::array::from_fn(|i| spatial[i].round() as i32 + 128);
    plane.set_block(bx, by, &px);
    Some(())
}

#[allow(clippy::too_many_arguments)]
fn decode_color_scan(
    entropy: &[u8],
    width: usize,
    height: usize,
    samp: usize,
    qts: &[Option<QuantTable>; 2],
    dcs: &[Option<DecTable>; 2],
    acs: &[Option<DecTable>; 2],
) -> Result<RgbImage, DecodeError> {
    let (cw, ch) = (width.div_ceil(samp), height.div_ceil(samp));
    let mut y_plane = GrayImage::new(width, height);
    let mut cb_plane = GrayImage::new(cw, ch);
    let mut cr_plane = GrayImage::new(cw, ch);
    let mut r = BitReader::new(entropy);
    let mut preds = [0i32; 3];
    // MCUs cover samp*8 x samp*8 luma pixels.
    let mcu_x = width.div_ceil(samp * BLOCK);
    let mcu_y = height.div_ceil(samp * BLOCK);
    let total = mcu_x * mcu_y * (samp * samp + 2);
    let mut done = 0usize;
    let table = |t: usize| -> Result<(&DecTable, &DecTable, &QuantTable), DecodeError> {
        Ok((
            dcs[t].as_ref().ok_or(DecodeError::BadSegment("DHT"))?,
            acs[t].as_ref().ok_or(DecodeError::BadSegment("DHT"))?,
            qts[t].as_ref().ok_or(DecodeError::BadSegment("DQT"))?,
        ))
    };
    for my in 0..mcu_y {
        for mx in 0..mcu_x {
            // Y blocks of the MCU, raster order.
            for sy in 0..samp {
                for sx in 0..samp {
                    let (dc, ac, qt) = table(0)?;
                    decode_one_block(
                        &mut r,
                        dc,
                        ac,
                        qt,
                        &mut preds[0],
                        &mut y_plane,
                        mx * samp + sx,
                        my * samp + sy,
                    )
                    .ok_or(DecodeError::EntropyTruncated {
                        decoded: done,
                        expected: total,
                    })?;
                    done += 1;
                }
            }
            // One chroma block each.
            for (c, plane) in [(1usize, &mut cb_plane), (2, &mut cr_plane)] {
                let (dc, ac, qt) = table(1)?;
                decode_one_block(&mut r, dc, ac, qt, &mut preds[c], plane, mx, my).ok_or(
                    DecodeError::EntropyTruncated {
                        decoded: done,
                        expected: total,
                    },
                )?;
                done += 1;
            }
        }
    }
    // Upsample chroma back to full resolution (nearest neighbour).
    let mut planes = [
        y_plane,
        GrayImage::new(width, height),
        GrayImage::new(width, height),
    ];
    for ypix in 0..height {
        for xpix in 0..width {
            planes[1].pixels[ypix * width + xpix] = cb_plane.get_clamped(xpix / samp, ypix / samp);
            planes[2].pixels[ypix * width + xpix] = cr_plane.get_clamped(xpix / samp, ypix / samp);
        }
    }
    Ok(from_planes(&planes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_conversion_roundtrip() {
        for px in [
            [0u8, 0, 0],
            [255, 255, 255],
            [255, 0, 0],
            [0, 255, 0],
            [0, 0, 255],
            [12, 200, 99],
        ] {
            let back = ycbcr_to_rgb(rgb_to_ycbcr(px));
            for c in 0..3 {
                assert!(
                    (back[c] as i32 - px[c] as i32).abs() <= 2,
                    "{px:?} -> {back:?}"
                );
            }
        }
    }

    #[test]
    fn primaries_map_to_expected_ycbcr() {
        // White: Y=255, Cb=Cr=128. Red: high Cr.
        assert_eq!(rgb_to_ycbcr([255, 255, 255]), [255, 128, 128]);
        let red = rgb_to_ycbcr([255, 0, 0]);
        assert!(red[2] > 200, "{red:?}");
        let blue = rgb_to_ycbcr([0, 0, 255]);
        assert!(blue[1] > 200, "{blue:?}");
    }

    #[test]
    fn chroma_tables_are_prefix_free() {
        for spec in [dc_chroma_spec(), ac_chroma_spec()] {
            let total: usize = spec.bits.iter().map(|&b| b as usize).sum();
            assert_eq!(total, spec.vals.len());
            // Kraft inequality holds with equality margin for a valid code.
            let kraft: f64 = spec
                .bits
                .iter()
                .enumerate()
                .map(|(i, &n)| n as f64 / (1u64 << (i + 1)) as f64)
                .sum();
            assert!(kraft <= 1.0 + 1e-12, "kraft {kraft}");
        }
    }

    #[test]
    fn color_roundtrip_quality() {
        let img = RgbImage::test_card(48, 40);
        let bytes = encode_color(&img, 90);
        let back = decode_color(&bytes).unwrap();
        assert_eq!((back.width, back.height), (48, 40));
        let psnr = img.psnr(&back);
        assert!(psnr > 28.0, "psnr {psnr}");
    }

    #[test]
    fn quality_ordering_color() {
        let img = RgbImage::test_card(32, 32);
        let lo = encode_color(&img, 20);
        let hi = encode_color(&img, 95);
        assert!(hi.len() > lo.len());
        let psnr_lo = img.psnr(&decode_color(&lo).unwrap());
        let psnr_hi = img.psnr(&decode_color(&hi).unwrap());
        assert!(psnr_hi > psnr_lo + 3.0);
    }

    #[test]
    fn gray_input_stays_gray() {
        // A neutral image has flat chroma; the color path must not invent
        // color.
        let mut img = RgbImage::new(24, 24);
        for (i, px) in img.pixels.iter_mut().enumerate() {
            let v = ((i * 7) % 251) as u8;
            *px = [v, v, v];
        }
        let back = decode_color(&encode_color(&img, 85)).unwrap();
        for px in &back.pixels {
            let spread = px.iter().max().unwrap().abs_diff(*px.iter().min().unwrap());
            assert!(spread <= 6, "{px:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_color(&[1, 2, 3]).is_err());
    }

    #[test]
    fn subsampled_roundtrip_quality() {
        let img = RgbImage::test_card(48, 48);
        let bytes = encode_color_420(&img, 90);
        let back = decode_color(&bytes).unwrap();
        assert_eq!((back.width, back.height), (48, 48));
        let psnr = img.psnr(&back);
        assert!(psnr > 24.0, "psnr {psnr}");
    }

    #[test]
    fn subsampling_shrinks_the_stream() {
        let img = RgbImage::test_card(64, 64);
        let full = encode_color(&img, 85);
        let sub = encode_color_420(&img, 85);
        assert!(
            sub.len() < full.len(),
            "4:2:0 {} should beat 4:4:4 {}",
            sub.len(),
            full.len()
        );
        // The hue-wheel card is chroma-dense, so 4:2:0 gives up real
        // fidelity — but the image must stay recognizable.
        let p_full = img.psnr(&decode_color(&full).unwrap());
        let p_sub = img.psnr(&decode_color(&sub).unwrap());
        assert!(p_sub > 25.0 && p_full > p_sub, "{p_full} vs {p_sub}");
    }

    #[test]
    fn subsampled_odd_dimensions() {
        // Dimensions not multiples of 16 exercise MCU padding.
        let img = RgbImage::test_card(35, 21);
        let back = decode_color(&encode_color_420(&img, 88)).unwrap();
        assert_eq!((back.width, back.height), (35, 21));
        assert!(img.psnr(&back) > 22.0);
    }

    #[test]
    fn downsample_box_filter() {
        let mut p = GrayImage::new(4, 2);
        p.pixels.copy_from_slice(&[10, 20, 30, 40, 50, 60, 70, 80]);
        let d = downsample_2x2(&p);
        assert_eq!((d.width, d.height), (2, 1));
        assert_eq!(d.pixels, vec![35, 55]); // (10+20+50+60+2)/4, (30+40+70+80+2)/4
    }
}
