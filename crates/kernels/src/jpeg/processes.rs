//! The paper's JPEG Encoder process network (Table 3).
//!
//! Processes `p0..p9` are the main pipeline (shift, DCT, Alpha, Quantize,
//! ZigZag, Hman1..Hman5 — Huffman is split five ways because its code
//! tables exceed one tile's instruction memory). `p10` is the quarter-DCT
//! helper `dct`, and `p11..p13` are the CP16/CP32/CP64 copy helpers in two
//! flavours (memory-optimal vs time-optimal).
//!
//! Two parameter sources are provided:
//!
//! * [`paper_network`] — the exact Table 3 annotations, used to reproduce
//!   the paper's Tables 4-5 and Figures 16-17,
//! * a measured variant — the same pipeline annotated with cycle counts
//!   measured by executing our generated PE programs (`programs.rs`),
//!   reported side-by-side in EXPERIMENTS.md.

use cgra_map::{ProcessNetwork, ProcessSpec};

/// Blocks per image implied by the paper's Table 4 (419 us/block-unit x
/// 800 = 1/2.98 s per image for the one-tile mapping; a 200x200 image
/// padded to 200x256 is exactly 800 8x8 blocks).
pub const BLOCKS_PER_IMAGE: usize = 800;

/// Index of each pipeline process in the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JpegProcess {
    /// p0: level shift.
    Shift = 0,
    /// p1: full 8x8 DCT.
    Dct = 1,
    /// p2: alpha normalization.
    Alpha = 2,
    /// p3: quantization.
    Quantize = 3,
    /// p4: zig-zag reorder.
    ZigZag = 4,
    /// p5..p9: the five Huffman sub-processes.
    Hman1 = 5,
    /// p6.
    Hman2 = 6,
    /// p7.
    Hman3 = 7,
    /// p8.
    Hman4 = 8,
    /// p9.
    Hman5 = 9,
}

/// The Table 3 main pipeline `p0..p9` with the paper's annotations
/// (insts, data1, data2, data3, runtime cycles per 8x8 block).
pub fn paper_network() -> ProcessNetwork {
    ProcessNetwork::new(vec![
        ProcessSpec::new("shift", 11, 0, 2, 9, 720),
        ProcessSpec::new("DCT", 62, 64, 14, 13, 133_324),
        ProcessSpec::new("Alpha", 12, 64, 2, 7, 720),
        ProcessSpec::new("Quantize", 35, 64, 7, 7, 1_576),
        ProcessSpec::new("ZigZag", 65, 0, 0, 0, 65),
        ProcessSpec::new("Hman1", 71, 0, 10, 9, 7_934),
        ProcessSpec::new("Hman2", 56, 0, 10, 6, 1_587),
        ProcessSpec::new("Hman3", 151, 0, 43, 12, 1_651),
        ProcessSpec::new("Hman4", 180, 0, 17, 12, 2_300),
        ProcessSpec::new("Hman5", 109, 21, 14, 17, 6_823),
    ])
}

/// Table 3's auxiliary quarter-DCT `dct` (p10): the paper splits `DCT`
/// into four of these to relieve the pipeline bottleneck.
pub fn quarter_dct() -> ProcessSpec {
    ProcessSpec::new("dct", 62, 64, 14, 13, 33_372)
}

/// Table 3's copy helpers, memory-optimal flavour (small loops).
pub fn copy_processes_mem_optimal() -> Vec<ProcessSpec> {
    vec![
        ProcessSpec::new("CP16", 11, 0, 2, 2, 196),
        ProcessSpec::new("CP32", 11, 0, 2, 2, 369),
        ProcessSpec::new("CP64", 11, 0, 2, 2, 720),
    ]
}

/// Table 3's copy helpers, time-optimal flavour (straight-line).
pub fn copy_processes_time_optimal() -> Vec<ProcessSpec> {
    vec![
        ProcessSpec::new("CP16", 17, 0, 0, 0, 17),
        ProcessSpec::new("CP32", 33, 0, 0, 0, 33),
        ProcessSpec::new("CP64", 65, 0, 0, 0, 65),
    ]
}

/// The paper network with `DCT` replaced by four pipelined quarter-DCT
/// tiles (used by Table 4's implementations 4 and 5): the process chain
/// keeps one slot for `dct` and the mapping replicates it.
pub fn paper_network_split_dct() -> ProcessNetwork {
    let mut procs = paper_network().processes;
    procs[JpegProcess::Dct as usize] = quarter_dct();
    ProcessNetwork::new(procs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_totals() {
        let net = paper_network();
        assert_eq!(net.len(), 10);
        // Total main-pipeline work per block.
        assert_eq!(net.total_cycles(), 156_700);
        // DCT dominates (85% of the work) — the paper's motivation for
        // splitting it.
        assert_eq!(net.heaviest(), JpegProcess::Dct as usize);
        // Huffman does not fit one tile: p5..p9 instructions exceed 512.
        let hman_insts: usize = net.processes[5..=9].iter().map(|p| p.insts).sum();
        assert!(hman_insts > 512, "{hman_insts}");
        // ...but every individual process does fit.
        assert!(net.processes.iter().all(|p| p.insts <= 512));
    }

    #[test]
    fn quarter_dct_is_a_quarter() {
        let q = quarter_dct();
        let full = paper_network().processes[1].runtime_cycles;
        let ratio = full as f64 / q.runtime_cycles as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn copy_flavours_tradeoff() {
        let mem = copy_processes_mem_optimal();
        let time = copy_processes_time_optimal();
        for (m, t) in mem.iter().zip(&time) {
            // Time-optimal runs faster but uses more instruction slots.
            assert!(t.runtime_cycles < m.runtime_cycles);
            assert!(t.insts > m.insts);
        }
    }

    #[test]
    fn blocks_per_image_matches_table4_anchor() {
        // Impl 1: one tile, 419 us per block-unit in the paper; at 800
        // blocks/image that is 2.98 images/s — the published number.
        let time_per_image_s = 419e-6 * BLOCKS_PER_IMAGE as f64;
        let images_per_s = 1.0 / time_per_image_s;
        assert!((images_per_s - 2.98).abs() < 0.01, "{images_per_s}");
    }
}
