//! Zig-zag coefficient reordering (the `ZigZag` process).

/// `ZIGZAG[k]` is the natural (row-major) index of the k-th coefficient in
/// zig-zag scan order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Reorders a natural-order block into zig-zag order.
pub fn zigzag(block: &[i32; 64]) -> [i32; 64] {
    std::array::from_fn(|k| block[ZIGZAG[k]])
}

/// Reorders a zig-zag-order block back to natural order.
pub fn unzigzag(scan: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (k, &v) in scan.iter().enumerate() {
        out[ZIGZAG[k]] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
    }

    #[test]
    fn first_and_last_entries() {
        assert_eq!(ZIGZAG[0], 0); // DC first
        assert_eq!(ZIGZAG[1], 1); // then (0,1)
        assert_eq!(ZIGZAG[2], 8); // then (1,0)
        assert_eq!(ZIGZAG[63], 63); // (7,7) last
    }

    #[test]
    fn adjacent_scan_entries_are_grid_neighbours() {
        // Every step of the scan moves to a diagonally or orthogonally
        // adjacent cell.
        for w in ZIGZAG.windows(2) {
            let (r0, c0) = (w[0] / 8, w[0] % 8);
            let (r1, c1) = (w[1] / 8, w[1] % 8);
            assert!(r0.abs_diff(r1) <= 1 && c0.abs_diff(c1) <= 1, "{w:?}");
        }
    }

    #[test]
    fn roundtrip() {
        let block: [i32; 64] = std::array::from_fn(|i| i as i32 * 3 - 50);
        assert_eq!(unzigzag(&zigzag(&block)), block);
        let scan: [i32; 64] = std::array::from_fn(|i| (i as i32).pow(2) % 97);
        assert_eq!(zigzag(&unzigzag(&scan)), scan);
    }
}
