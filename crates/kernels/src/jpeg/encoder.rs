//! The complete baseline JPEG/JFIF grayscale encoder.
//!
//! This is the monolithic "golden" encoder: the process-network mapping of
//! the paper (shift -> DCT -> alpha -> quantize -> zigzag -> huffman) must
//! produce byte-identical entropy data, which the integration tests check.

use super::dct::dct2d_fixed;
use super::huffman::{ac_luma_spec, dc_luma_spec, encode_block, EncTable, HuffSpec};
use super::image::GrayImage;
use super::quant::QuantTable;
use super::zigzag::{zigzag, ZIGZAG};
use crate::jpeg::bitio::BitWriter;

/// Encoder configuration.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// IJG quality, 1..=100.
    pub quality: u8,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig { quality: 75 }
    }
}

/// Per-block stages, exposed so the process-network implementation can run
/// each step on a separate tile and compare intermediates.
pub mod stages {
    use super::*;

    /// `shift`: level-shift 8-bit samples to signed (`p - 128`).
    pub fn shift(block: &[u8; 64]) -> [i32; 64] {
        std::array::from_fn(|i| block[i] as i32 - 128)
    }

    /// `DCT` + `Alpha`: fixed-point 2-D DCT of a shifted block.
    pub fn dct(shifted: &[i32; 64]) -> [i32; 64] {
        dct2d_fixed(shifted)
    }

    /// `Quantize` — uses the reciprocal-multiply path, which is what the
    /// divider-less PE datapath computes; the process-network execution on
    /// tiles is byte-identical to this encoder because of it.
    pub fn quantize(coef: &[i32; 64], table: &QuantTable) -> [i32; 64] {
        table.quantize_recip(coef)
    }

    /// `ZigZag`.
    pub fn zig(q: &[i32; 64]) -> [i32; 64] {
        zigzag(q)
    }
}

/// Encodes a grayscale image to a complete JFIF byte stream.
pub fn encode(img: &GrayImage, cfg: &EncoderConfig) -> Vec<u8> {
    let qt = QuantTable::luma(cfg.quality);
    let dc_spec = dc_luma_spec();
    let ac_spec = ac_luma_spec();
    let enc_dc = EncTable::from_spec(&dc_spec);
    let enc_ac = EncTable::from_spec(&ac_spec);

    let mut out = Vec::new();
    write_headers(&mut out, img, &qt, &dc_spec, &ac_spec);

    // Entropy-coded segment.
    let mut w = BitWriter::new();
    let mut dc_pred = 0i32;
    for by in 0..img.blocks_y() {
        for bx in 0..img.blocks_x() {
            let scan = encode_block_pipeline(img, bx, by, &qt);
            encode_block(&mut w, &enc_dc, &enc_ac, &scan, &mut dc_pred);
        }
    }
    out.extend_from_slice(&w.finish());
    out.extend_from_slice(&[0xff, 0xd9]); // EOI
    out
}

/// Runs the per-block pipeline (shift..zigzag) for block `(bx, by)`.
pub fn encode_block_pipeline(img: &GrayImage, bx: usize, by: usize, qt: &QuantTable) -> [i32; 64] {
    let raw = img.block(bx, by);
    let shifted = stages::shift(&raw);
    let coef = stages::dct(&shifted);
    let q = stages::quantize(&coef, qt);
    stages::zig(&q)
}

fn write_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn write_marker(out: &mut Vec<u8>, m: u8) {
    out.extend_from_slice(&[0xff, m]);
}

fn write_headers(
    out: &mut Vec<u8>,
    img: &GrayImage,
    qt: &QuantTable,
    dc: &HuffSpec,
    ac: &HuffSpec,
) {
    write_marker(out, 0xd8); // SOI

    // APP0 / JFIF.
    write_marker(out, 0xe0);
    write_u16(out, 16);
    out.extend_from_slice(b"JFIF\0");
    out.extend_from_slice(&[1, 1, 0]); // v1.1, no density units
    write_u16(out, 1);
    write_u16(out, 1);
    out.extend_from_slice(&[0, 0]); // no thumbnail

    // DQT (table 0, zig-zag order on the wire).
    write_marker(out, 0xdb);
    write_u16(out, 2 + 1 + 64);
    out.push(0x00);
    for &nat in ZIGZAG.iter() {
        out.push(qt.q[nat] as u8);
    }

    // SOF0: baseline, 8-bit, one component.
    write_marker(out, 0xc0);
    write_u16(out, 2 + 6 + 3);
    out.push(8);
    write_u16(out, img.height as u16);
    write_u16(out, img.width as u16);
    out.push(1); // one component
    out.extend_from_slice(&[1, 0x11, 0]); // id 1, 1x1 sampling, qtable 0

    // DHT: DC table 0 and AC table 0.
    for (class, spec) in [(0u8, dc), (1u8, ac)] {
        write_marker(out, 0xc4);
        write_u16(out, 2 + 1 + 16 + spec.vals.len() as u16);
        out.push(class << 4);
        out.extend_from_slice(&spec.bits);
        out.extend_from_slice(&spec.vals);
    }

    // SOS.
    write_marker(out, 0xda);
    write_u16(out, 2 + 1 + 2 + 3);
    out.push(1);
    out.extend_from_slice(&[1, 0x00]); // component 1 uses DC 0 / AC 0
    out.extend_from_slice(&[0, 63, 0]); // full spectral range, no approx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_wellformed_markers() {
        let img = GrayImage::gradient(32, 24);
        let bytes = encode(&img, &EncoderConfig::default());
        assert_eq!(&bytes[0..2], &[0xff, 0xd8], "SOI");
        assert_eq!(&bytes[bytes.len() - 2..], &[0xff, 0xd9], "EOI");
        // APP0 directly after SOI.
        assert_eq!(&bytes[2..4], &[0xff, 0xe0]);
        assert_eq!(&bytes[6..10], b"JFIF");
        // Contains SOF0, DHT, DQT, SOS markers.
        for m in [0xc0u8, 0xc4, 0xdb, 0xda] {
            assert!(
                bytes.windows(2).any(|w| w == [0xff, m]),
                "missing marker {m:02x}"
            );
        }
    }

    #[test]
    fn flat_image_compresses_tightly() {
        let img = GrayImage::new(64, 64); // all black
        let bytes = encode(&img, &EncoderConfig::default());
        // 64 blocks of pure DC compress to a few bytes each at most.
        assert!(bytes.len() < 900, "{} bytes", bytes.len());
    }

    #[test]
    fn noise_is_larger_than_gradient() {
        let cfg = EncoderConfig::default();
        let smooth = encode(&GrayImage::gradient(64, 64), &cfg);
        let noisy = encode(&GrayImage::noise(64, 64, 5), &cfg);
        assert!(noisy.len() > smooth.len());
    }

    #[test]
    fn quality_monotonic_in_size() {
        let img = GrayImage::rings(64, 64);
        let lo = encode(&img, &EncoderConfig { quality: 20 });
        let hi = encode(&img, &EncoderConfig { quality: 95 });
        assert!(hi.len() > lo.len());
    }
}
