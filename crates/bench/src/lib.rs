//! # cgra-bench
//!
//! Shared helpers for the table/figure bench targets. Each `[[bench]]`
//! target with `harness = false` regenerates one table or figure of the
//! paper as plain text and asserts its qualitative invariants (orderings,
//! crossover windows) so a regression fails `cargo bench`.

#![warn(missing_docs)]

/// Prints a bench banner.
pub fn banner(what: &str, paper_ref: &str) {
    println!();
    println!("=== {what} ===");
    println!("reproduces: {paper_ref}");
    println!();
}

/// Asserts with a message, printing PASS/FAIL so the bench log records the
/// invariant checks.
pub fn check(name: &str, ok: bool) {
    if ok {
        println!("  [check] {name}: ok");
    } else {
        println!("  [check] {name}: FAILED");
        panic!("invariant failed: {name}");
    }
}

/// Formats a floating value with a fixed number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Times `body` with a short warmup and reports the per-iteration mean.
///
/// A dependency-free stand-in for a Criterion `bench_function`: runs the
/// closure until ~0.2 s has elapsed (at least 10 iterations), then prints
/// `name: <mean> per iter` and returns the mean duration in nanoseconds.
pub fn time_it<F: FnMut()>(name: &str, mut body: F) -> f64 {
    use std::time::Instant;
    // Warmup.
    for _ in 0..3 {
        body();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        body();
        iters += 1;
        if (iters >= 10 && start.elapsed().as_millis() >= 200) || iters >= 1_000_000 {
            break;
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    let human = if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    println!("  {name}: {human} per iter ({iters} iters)");
    ns
}
