//! # cgra-bench
//!
//! Shared helpers for the table/figure bench targets. Each `[[bench]]`
//! target with `harness = false` regenerates one table or figure of the
//! paper as plain text and asserts its qualitative invariants (orderings,
//! crossover windows) so a regression fails `cargo bench`.

#![warn(missing_docs)]

/// Prints a bench banner.
pub fn banner(what: &str, paper_ref: &str) {
    println!();
    println!("=== {what} ===");
    println!("reproduces: {paper_ref}");
    println!();
}

/// Asserts with a message, printing PASS/FAIL so the bench log records the
/// invariant checks.
pub fn check(name: &str, ok: bool) {
    if ok {
        println!("  [check] {name}: ok");
    } else {
        println!("  [check] {name}: FAILED");
        panic!("invariant failed: {name}");
    }
}

/// Formats a floating value with a fixed number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}
