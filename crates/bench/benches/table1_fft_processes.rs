//! Table 1: 1024-point radix-2 FFT process costs (BF0..BF9, vcp, hcp).
//!
//! Prints the paper's published row next to the row measured by executing
//! our generated PE programs on the cycle-accurate interpreter.

use cgra_bench::{banner, check};
use cgra_explore::fft_dse::FftProcessTimes;
use cgra_explore::report::render_table;
use cgra_fabric::CostModel;
use cgra_kernels::fft::programs::measure_processes;

fn main() {
    banner("Table 1 — 1024-point R2FFT processes", "IPDPSW'13 Table 1");
    let cost = CostModel::default();
    let measured = measure_processes(1024, 128, &cost);
    let paper = FftProcessTimes::paper_table1();

    let mut rows = Vec::new();
    for (i, m) in measured.iter().enumerate() {
        let paper_ns = if i < 10 {
            paper.bf_ns[i]
        } else if m.name == "vcp" {
            paper.vcp_ns
        } else {
            paper.hcp_ns
        };
        rows.push(vec![
            m.name.clone(),
            format!("{:.0}", paper_ns),
            format!("{:.0}", m.runtime_ns),
            format!("{}", m.twiddles),
            format!("{}", m.insts),
            format!("{}", m.cycles),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["process", "paper ns", "ours ns", "twiddles", "insts", "cycles"],
            &rows
        )
    );

    // Invariants shared with the paper's table.
    check(
        "cross stages BF0-BF2 share one runtime",
        measured[0].runtime_ns == measured[1].runtime_ns
            && measured[1].runtime_ns == measured[2].runtime_ns,
    );
    let tw: Vec<usize> = measured.iter().take(10).map(|m| m.twiddles).collect();
    check(
        "twiddle complement halves down the local stages",
        tw == vec![64, 64, 64, 64, 32, 16, 8, 4, 2, 1],
    );
    check(
        "BF runtimes in the paper's microsecond band (2-5us)",
        measured
            .iter()
            .take(10)
            .all(|m| m.runtime_ns > 1500.0 && m.runtime_ns < 6000.0),
    );
    check(
        "BF9 (h=1) costs the most block overhead of the local stages",
        measured[9].runtime_ns
            >= measured[4..10]
                .iter()
                .map(|m| m.runtime_ns)
                .fold(0.0, f64::max),
    );
    check(
        "hcp moves twice vcp's data",
        measured[11].runtime_ns > 1.8 * measured[10].runtime_ns,
    );
}
