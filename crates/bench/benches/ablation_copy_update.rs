//! Ablation: self-updating copy-process variables (Table 2's optimization)
//! off vs on, end to end through the tau model.

use cgra_bench::{banner, check};
use cgra_explore::fft_dse::TauModel;
use cgra_explore::report::render_table;

fn main() {
    banner(
        "Ablation — copy-variable self-update vs ICAP reload",
        "IPDPSW'13 Table 2 / Sec. 3.1",
    );
    let on = TauModel::paper_1024();
    let mut off = TauModel::paper_1024();
    off.optimized_copy = false;

    let mut rows = Vec::new();
    for cols in [1usize, 2, 5, 10] {
        let b_on = on.evaluate(cols, 0.0).unwrap();
        let b_off = off.evaluate(cols, 0.0).unwrap();
        rows.push(vec![
            cols.to_string(),
            format!("{:.1}", b_off.tau3),
            format!("{:.1}", b_on.tau3),
            format!("{:.0}", b_off.throughput()),
            format!("{:.0}", b_on.throughput()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "cols",
                "tau3 reload ns",
                "tau3 self-update ns",
                "FFT/s reload",
                "FFT/s self-update"
            ],
            &rows
        )
    );
    check(
        "self-update never hurts and helps whenever copies retarget",
        [1usize, 2, 5, 10]
            .iter()
            .all(|&c| on.throughput(c, 0.0).unwrap() >= off.throughput(c, 0.0).unwrap()),
    );
    check(
        "the tau3 saving matches Table 2's order of magnitude (>50x)",
        {
            let b_off = off.evaluate(1, 0.0).unwrap();
            let b_on = on.evaluate(1, 0.0).unwrap();
            b_off.tau3 / b_on.tau3.max(1e-9) > 50.0
        },
    );
}
