//! Figure 17: average tile utilization vs tile count (1..25) for the three
//! rebalancing algorithms.

use cgra_bench::{banner, check};
use cgra_explore::jpeg_dse::{rebalance_sweep, Algo};
use cgra_explore::report::{render_series, sparkline};
use cgra_fabric::CostModel;

fn main() {
    banner(
        "Figure 17 — average PE utilization vs tiles",
        "IPDPSW'13 Figure 17",
    );
    let cost = CostModel::default();
    let sweeps = [
        rebalance_sweep(Algo::One, 25, &cost),
        rebalance_sweep(Algo::Two, 25, &cost),
        rebalance_sweep(Algo::Opt, 25, &cost),
    ];
    let xs: Vec<f64> = (1..=25).map(|t| t as f64).collect();
    let ys: Vec<Vec<f64>> = sweeps
        .iter()
        .map(|s| s.iter().map(|p| p.utilization).collect())
        .collect();
    println!(
        "{}",
        render_series(
            "tiles",
            &[
                "reBalanceOne".into(),
                "reBalanceTwo".into(),
                "reBalanceOPT".into()
            ],
            &xs,
            &ys
        )
    );
    for (name, y) in ["One", "Two", "OPT"].iter().zip(&ys) {
        println!("  {name:>4}: {}", sparkline(y));
    }
    println!();

    check(
        "one tile is fully utilized",
        ys.iter().all(|y| (y[0] - 1.0).abs() < 1e-9),
    );
    check(
        "utilization dips mid-sweep while DCT still bottlenecks, then recovers",
        ys.iter().all(|y| {
            let min = y.iter().cloned().fold(f64::INFINITY, f64::min);
            min < 0.7 && y[24] > min + 0.1
        }),
    );
    check(
        "large rebalanced arrays stay mostly busy (util > 0.75 at 25 tiles)",
        ys.iter().all(|y| y[24] > 0.75),
    );
}
