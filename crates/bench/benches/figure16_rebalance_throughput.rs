//! Figure 16: images/s vs tile count (1..25) for the three rebalancing
//! algorithms.

use cgra_bench::{banner, check};
use cgra_explore::jpeg_dse::{rebalance_sweep, Algo};
use cgra_explore::report::{render_series, sparkline};
use cgra_fabric::CostModel;

fn main() {
    banner(
        "Figure 16 — rebalanced JPEG throughput vs tiles",
        "IPDPSW'13 Figure 16",
    );
    let cost = CostModel::default();
    let one = rebalance_sweep(Algo::One, 25, &cost);
    let two = rebalance_sweep(Algo::Two, 25, &cost);
    let opt = rebalance_sweep(Algo::Opt, 25, &cost);
    let xs: Vec<f64> = (1..=25).map(|t| t as f64).collect();
    let ys = vec![
        one.iter().map(|p| p.images_per_sec).collect::<Vec<_>>(),
        two.iter().map(|p| p.images_per_sec).collect::<Vec<_>>(),
        opt.iter().map(|p| p.images_per_sec).collect::<Vec<_>>(),
    ];
    println!(
        "{}",
        render_series(
            "tiles",
            &[
                "reBalanceOne".into(),
                "reBalanceTwo".into(),
                "reBalanceOPT".into()
            ],
            &xs,
            &ys
        )
    );
    for (name, y) in ["One", "Two", "OPT"].iter().zip(&ys) {
        println!("  {name:>4}: {}", sparkline(y));
    }
    println!();

    check(
        "throughput is non-decreasing in tiles for every algorithm",
        ys.iter().all(|y| y.windows(2).all(|w| w[1] >= w[0] - 1e-9)),
    );
    let same = (0..25)
        .filter(|&i| (ys[0][i] - ys[1][i]).abs() < 1e-6 && (ys[1][i] - ys[2][i]).abs() < 1e-6)
        .count();
    println!("  algorithms agree on {same}/25 tile counts");
    check(
        "the three algorithms agree in most cases (paper's observation)",
        same >= 15,
    );
    check(
        "OPT never loses to One or Two",
        (0..25).all(|i| ys[2][i] >= ys[0][i] - 1e-6 && ys[2][i] >= ys[1][i] - 1e-6),
    );
    check(
        "24 tiles reach tens of images/s (paper's Fig. 16 scale)",
        ys[0][23] > 30.0,
    );
}
