//! Figure 11: zoom of Figure 10 on 0..4000 ns — the region where the
//! column curves cross.

use cgra_bench::{banner, check};
use cgra_explore::fft_dse::{sweep_link_cost, TauModel};
use cgra_explore::report::render_series;

fn main() {
    banner(
        "Figure 11 — interesting part of Figure 10",
        "IPDPSW'13 Figure 11",
    );
    let model = TauModel::paper_1024();
    let series = sweep_link_cost(&model, 4000.0, 100.0);
    let xs: Vec<f64> = series[0].points.iter().map(|p| p.0).collect();
    let labels: Vec<String> = series
        .iter()
        .map(|s| format!("{} col(s)", s.cols))
        .collect();
    let ys: Vec<Vec<f64>> = series
        .iter()
        .map(|s| s.points.iter().map(|p| p.1).collect())
        .collect();
    println!("{}", render_series("link cost ns", &labels, &xs, &ys));

    // Sensitivity ordering (paper: "circuits with more columns are more
    // sensitive to link reconfiguration cost").
    // Compare drops over the crossover region (0..1500 ns, 15 steps).
    let rel_drop = |y: &Vec<f64>| (y[0] - y[15]) / y[0];
    let drops: Vec<f64> = ys.iter().map(rel_drop).collect();
    check(
        "sensitivity grows with column count",
        drops[3] > drops[2] && drops[2] > drops[1] && drops[1] > drops[0],
    );
    check(
        "one-column curve is by far the flattest (less than half the 10-column drop)",
        drops[0] < 0.5 * drops[3],
    );
    // Find the 10-vs-1 crossover.
    let mut crossover = None;
    for (i, &x) in xs.iter().enumerate() {
        if ys[3][i] < ys[0][i] {
            crossover = Some(x);
            break;
        }
    }
    let c = crossover.expect("curves must cross inside the zoom window");
    println!("  10-vs-1 column crossover at {c:.0} ns");
    check(
        "crossover falls in the paper's 700-1400 ns band",
        (700.0..1400.0).contains(&c),
    );
}
