//! Table 4: the five manual JPEG encoder mappings.

use cgra_bench::{banner, check};
use cgra_explore::jpeg_dse::{evaluate_manual, manual_implementations, paper_table4};
use cgra_explore::report::render_table;
use cgra_fabric::CostModel;

fn main() {
    banner(
        "Table 4 — JPEG encoder manual mappings",
        "IPDPSW'13 Table 4",
    );
    let cost = CostModel::default();
    let ours: Vec<_> = manual_implementations()
        .iter()
        .map(|i| evaluate_manual(i, &cost))
        .collect();
    let paper = paper_table4();

    let mut rows = Vec::new();
    for (o, p) in ours.iter().zip(&paper) {
        rows.push(vec![
            o.name.clone(),
            o.tiles.to_string(),
            format!("{:.0} / {:.0}", p.time_us, o.time_us),
            format!("{:.2} / {:.2}", p.avg_util, o.avg_util),
            format!("{:.2} / {:.2}", p.images_per_sec, o.images_per_sec),
            format!(
                "{} / {}",
                if p.reconfig { "yes" } else { "no" },
                if o.reconfig { "yes" } else { "no" }
            ),
            format!(
                "{} / {}",
                if p.relink { "yes" } else { "no" },
                if o.relink { "yes" } else { "no" }
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "impl",
                "tiles",
                "time us (paper/ours)",
                "util (paper/ours)",
                "img/s (paper/ours)",
                "reconfig",
                "reLink"
            ],
            &rows
        )
    );

    check(
        "every time-per-block within 25% of the paper",
        ours.iter()
            .zip(&paper)
            .all(|(o, p)| (o.time_us / p.time_us) > 0.8 && (o.time_us / p.time_us) < 1.25),
    );
    check(
        "Impl2 == Impl3 throughput (both DCT-bound)",
        (ours[1].images_per_sec - ours[2].images_per_sec).abs() < 0.1,
    );
    check(
        "Impl4/Impl5 are ~4x Impl2/Impl3 (split DCT)",
        ours[3].images_per_sec > 3.0 * ours[1].images_per_sec
            && ours[4].images_per_sec > 3.0 * ours[1].images_per_sec,
    );
    check(
        "Impl5 has the best utilization of the multi-tile mappings",
        ours[4].avg_util > ours[1].avg_util
            && ours[4].avg_util > ours[2].avg_util
            && ours[4].avg_util > ours[3].avg_util,
    );
    check(
        "reconfig/reLink flags match the paper row for row",
        ours.iter()
            .zip(&paper)
            .all(|(o, p)| o.reconfig == p.reconfig && o.relink == p.relink),
    );
}
