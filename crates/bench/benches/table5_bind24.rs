//! Table 5: reBalanceOne binding of the JPEG encoder to 24 tiles.

use cgra_bench::{banner, check};
use cgra_explore::jpeg_dse::bind_tiles;
use cgra_fabric::CostModel;

fn main() {
    banner(
        "Table 5 — binding processes to 24 tiles",
        "IPDPSW'13 Table 5",
    );
    let cost = CostModel::default();
    let Some((binding, pt)) = bind_tiles(24, &cost) else {
        println!("  no binding for 24 tiles");
        return;
    };
    println!("  paper: T1:p0  T2:p1(17)  T3:p2-4  T4:p5(2)  T5:p6  T6:p7-8  T7:p9");
    println!("  ours:  {}", binding.join("  "));
    println!();
    println!(
        "  throughput {:.1} images/s, utilization {:.2}",
        pt.images_per_sec, pt.utilization
    );
    println!();

    check("uses exactly 24 tiles", pt.assignment.tiles() == 24);
    let dct = pt
        .assignment
        .loads
        .iter()
        .find(|l| l.first <= 1 && l.last >= 1)
        .unwrap();
    check(
        "DCT soaks up most tiles (paper: 17 of 24)",
        dct.instances >= 12,
    );
    check(
        "the pipeline reaches tens of images per second",
        pt.images_per_sec > 30.0,
    );
    check(
        "Hman1 (p5) is the next process to be replicated (paper: p5(2))",
        pt.assignment
            .loads
            .iter()
            .any(|l| l.first == 5 && l.instances >= 2),
    );
    check(
        "the binding matches the paper's Table 5 exactly",
        binding == vec!["p0", "p1(17)", "p2-4", "p5(2)", "p6", "p7-8", "p9"],
    );
}
