//! Figure 10: 1024-point FFT throughput vs link reconfiguration cost
//! (0..5000 ns) for 1, 2, 5 and 10 columns.

use cgra_bench::{banner, check};
use cgra_explore::fft_dse::{sweep_link_cost, TauModel};
use cgra_explore::report::{render_series, sparkline};

fn main() {
    banner(
        "Figure 10 — throughput vs link reconfiguration cost",
        "IPDPSW'13 Figure 10",
    );
    let model = TauModel::paper_1024();
    let measured = TauModel::measured_1024();
    let series = sweep_link_cost(&model, 5000.0, 250.0);
    let xs: Vec<f64> = series[0].points.iter().map(|p| p.0).collect();
    let labels: Vec<String> = series
        .iter()
        .map(|s| format!("{} col(s)", s.cols))
        .collect();
    let ys: Vec<Vec<f64>> = series
        .iter()
        .map(|s| s.points.iter().map(|p| p.1).collect())
        .collect();
    println!("{}", render_series("link cost ns", &labels, &xs, &ys));
    for (s, y) in series.iter().zip(&ys) {
        println!("  {:>9}: {}", format!("{} cols", s.cols), sparkline(y));
    }
    println!();

    let at0: Vec<f64> = ys.iter().map(|y| y[0]).collect();
    check(
        "10 columns reach ~45000 FFT/s at zero link cost (paper: ~45000)",
        (40_000.0..50_000.0).contains(&at0[3]),
    );
    check(
        "column ordering at zero cost: 10 > 5 > 2 > 1",
        at0[3] > at0[2] && at0[2] > at0[1] && at0[1] > at0[0],
    );
    check(
        "every curve is non-increasing in link cost",
        ys.iter().all(|y| y.windows(2).all(|w| w[1] <= w[0] + 1e-9)),
    );
    check(
        "at 5000 ns many columns are a liability (10 cols below 1 col)",
        ys[3].last().unwrap() < ys[0].last().unwrap(),
    );

    // The same sweep with OUR interpreter-measured process runtimes
    // replacing the paper's Table 1 column.
    println!();
    println!("--- same model, process runtimes measured from our generated PE programs ---");
    let mseries = sweep_link_cost(&measured, 5000.0, 1000.0);
    let mxs: Vec<f64> = mseries[0].points.iter().map(|p| p.0).collect();
    let mys: Vec<Vec<f64>> = mseries
        .iter()
        .map(|s| s.points.iter().map(|p| p.1).collect())
        .collect();
    let mlabels: Vec<String> = mseries
        .iter()
        .map(|s| format!("{} col(s)", s.cols))
        .collect();
    println!("{}", render_series("link cost ns", &mlabels, &mxs, &mys));
    check(
        "the measured-runtime model preserves the column ordering at L=0",
        mys[3][0] > mys[2][0] && mys[2][0] > mys[1][0] && mys[1][0] > mys[0][0],
    );
    check(
        "and still shows the many-columns liability at high link cost",
        mys[3].last().unwrap() < mys[0].last().unwrap(),
    );
}
