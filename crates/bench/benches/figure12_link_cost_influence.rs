//! Figure 12: throughput vs number of columns for link costs 0..1500 ns.

use cgra_bench::{banner, check};
use cgra_explore::fft_dse::{sweep_columns, TauModel};
use cgra_explore::report::render_table;

fn main() {
    banner(
        "Figure 12 — link cost influence on the column count",
        "IPDPSW'13 Figure 12",
    );
    let model = TauModel::paper_1024();
    let costs: Vec<f64> = (0..=15).map(|i| i as f64 * 100.0).collect();
    let sweeps = sweep_columns(&model, &costs);

    let mut rows = Vec::new();
    for (l, pts) in &sweeps {
        let mut row = vec![format!("{l:.0}")];
        row.extend(pts.iter().map(|(_, t)| format!("{t:.0}")));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["cost ns", "1 col", "2 cols", "5 cols", "10 cols"], &rows)
    );

    let gain_10_vs_5 = |l: f64| {
        let pts = &sweeps[(l / 100.0) as usize].1;
        pts[3].1 / pts[2].1
    };
    check(
        "at zero cost more columns always help",
        sweeps[0].1.windows(2).all(|w| w[1].1 > w[0].1),
    );
    check(
        "by ~700 ns the 10-column gain over 5 columns has collapsed (paper: 'does not give noticeable performance')",
        gain_10_vs_5(0.0) > 1.5 && gain_10_vs_5(700.0) < 1.15,
    );
    let at1500 = &sweeps[15].1;
    check(
        "beyond ~1100 ns adding columns hurts (10 cols below 5 at 1500 ns)",
        at1500[3].1 < at1500[2].1,
    );
}
