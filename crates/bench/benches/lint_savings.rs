//! Lint auto-fix savings: simulated Eq. 1 reconfiguration time of the
//! FFT-1024 and streaming-JPEG schedules before and after the
//! `cgra-lint` reconfiguration-diff minimizer, with bit-exactness
//! checked word for word. Emits `BENCH_lint.json` at the repo root.

use cgra_bench::{banner, check, f};
use cgra_explore::jpeg_probe_blocks;
use cgra_explore::schedule::{fft_column_schedule, jpeg_stream_schedule, minimize_schedule};
use cgra_fabric::{CostModel, Mesh, DATA_WORDS};
use cgra_kernels::fft::fixed::Cfx;
use cgra_kernels::fft::partition::FftPlan;
use cgra_kernels::jpeg::quant::QuantTable;
use cgra_sim::{verify_epochs, ArraySim, Epoch, EpochRunner};
use cgra_verify::has_errors;

fn verify_epochs_or_panic(mesh: Mesh, epochs: &[Epoch], name: &str) {
    let diags = verify_epochs(mesh, epochs);
    assert!(!has_errors(&diags), "{name} must verify clean: {diags:?}");
}

/// Runs a schedule to completion, returning `(Σ tau ns, Σ T ns, final
/// data-memory image of every tile)`.
fn simulate(mesh: Mesh, epochs: &[Epoch], cost: &CostModel) -> (f64, f64, Vec<Vec<i64>>) {
    let mut runner = EpochRunner::new(ArraySim::new(mesh), *cost);
    let report = runner.run_schedule(epochs).expect("schedule runs");
    let mems = (0..mesh.tiles())
        .map(|t| {
            (0..DATA_WORDS)
                .map(|a| runner.sim.tiles[t].dmem.peek(a).expect("in range").value())
                .collect()
        })
        .collect();
    (report.total_reconfig_ns(), report.total_compute_ns(), mems)
}

struct Row {
    name: &'static str,
    removed: usize,
    pre_tau_ns: f64,
    post_tau_ns: f64,
}

fn measure(name: &'static str, mesh: Mesh, mut epochs: Vec<Epoch>, cost: &CostModel) -> Row {
    verify_epochs_or_panic(mesh, &epochs, name);
    let (pre_tau_ns, pre_compute, pre_mem) = simulate(mesh, &epochs, cost);
    let report = minimize_schedule(mesh, &mut epochs, cost);
    verify_epochs_or_panic(mesh, &epochs, name);
    let (post_tau_ns, post_compute, post_mem) = simulate(mesh, &epochs, cost);
    check(
        &format!("{name}: fixed schedule is bit-exact on every tile's data memory"),
        pre_mem == post_mem,
    );
    check(
        &format!("{name}: compute time unchanged by the fix"),
        (pre_compute - post_compute).abs() < 1e-9,
    );
    check(
        &format!("{name}: measured tau strictly drops"),
        post_tau_ns < pre_tau_ns,
    );
    check(
        &format!("{name}: measured drop matches the lint's prediction"),
        (pre_tau_ns - post_tau_ns - report.saved_ns()).abs() < 1e-6,
    );
    Row {
        name,
        removed: report.removals.len(),
        pre_tau_ns,
        post_tau_ns,
    }
}

fn main() {
    banner(
        "Lint auto-fix savings — Eq. 1 reconfiguration term, pre vs post fix",
        "IPDPSW'13 Eq. 1 (tau term), cgra-lint minimizer",
    );
    let cost = CostModel::default();

    let plan = FftPlan::new(1024, 128).expect("1024-point plan");
    let input: Vec<Cfx> = (0..1024)
        .map(|i| Cfx::from_f64((i as f64 * 0.13).sin() * 0.5, (i as f64 * 0.71).cos() * 0.5))
        .collect();
    let (fft_mesh, fft_epochs) = fft_column_schedule(&plan, &input);
    let fft = measure("fft-1024", fft_mesh, fft_epochs, &cost);

    let (jpeg_mesh, jpeg_epochs) =
        jpeg_stream_schedule(&jpeg_probe_blocks(), &QuantTable::luma(75));
    let jpeg = measure("jpeg-stream-1x3", jpeg_mesh, jpeg_epochs, &cost);

    println!();
    for r in [&fft, &jpeg] {
        println!(
            "  {:<16} removed {:>3} words   tau {:>10} -> {:>10} ns   (-{} ns)",
            r.name,
            r.removed,
            f(r.pre_tau_ns, 1),
            f(r.post_tau_ns, 1),
            f(r.pre_tau_ns - r.post_tau_ns, 1)
        );
    }

    let json = format!(
        "{{\n  \"schedules\": [\n{}\n  ]\n}}\n",
        [&fft, &jpeg]
            .iter()
            .map(|r| format!(
                "    {{\"name\": \"{}\", \"removed_words\": {}, \"pre_fix_tau_ns\": {:.3}, \
                 \"post_fix_tau_ns\": {:.3}}}",
                r.name, r.removed, r.pre_tau_ns, r.post_tau_ns
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    std::fs::write(path, json).expect("BENCH_lint.json is writable");
    println!("\n  wrote {path}");
}
