//! Micro-benchmarks over the core kernels and substrates.
//!
//! Includes the host-FFT baseline the paper cites ("throughput in a high
//! end PC computer is roughly 1000" 1024-point FFTs per second) — run
//! `cargo bench -p cgra-bench --bench micro_kernels` and compare the
//! `fft/reference_1024` time against the CGRA model's Figure 10 numbers.

use std::hint::black_box;

use cgra_bench::{banner, time_it};
use cgra_explore::fft_dse::TauModel;
use cgra_explore::jpeg_dse::{rebalance_sweep, Algo};
use cgra_fabric::CostModel;
use cgra_isa::encode_program;
use cgra_kernels::fft::fixed::{fft_fixed, Cfx};
use cgra_kernels::fft::partition::FftPlan;
use cgra_kernels::fft::pipeline::run_partitioned;
use cgra_kernels::fft::programs::{bf_program, load_points, run_program};
use cgra_kernels::fft::reference::{fft, Cf64};
use cgra_kernels::jpeg::encoder::{encode, EncoderConfig};
use cgra_kernels::jpeg::image::GrayImage;

fn signal(n: usize) -> Vec<Cf64> {
    (0..n)
        .map(|i| Cf64::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
        .collect()
}

fn bench_fft() {
    let sig = signal(1024);
    time_it("fft/reference_1024", || {
        let mut d = sig.clone();
        fft(&mut d);
        black_box(&d);
    });
    let fx: Vec<Cfx> = sig.iter().map(|&c| Cfx::from_c(c)).collect();
    time_it("fft/fixed_1024", || {
        let mut d = fx.clone();
        fft_fixed(&mut d);
        black_box(&d);
    });
    let plan = FftPlan::paper_1024();
    time_it("fft/partitioned_1024_m128", || {
        black_box(run_partitioned(plan, black_box(&fx)).unwrap());
    });
}

fn bench_interpreter() {
    let prog = bf_program(128, 64);
    let image = encode_program(&prog);
    let sample: Vec<Cfx> = (0..128)
        .map(|i| Cfx::from_f64((i as f64 * 0.2).sin(), 0.0))
        .collect();
    time_it("interpreter/bf_stage_m128", || {
        let mut t = cgra_fabric::Tile::new(0);
        load_points(&mut t, &sample);
        t.load_program(&image).unwrap();
        black_box(run_program(&mut t, &prog, 1_000_000));
    });
}

fn bench_jpeg() {
    let img = GrayImage::rings(200, 200);
    time_it("jpeg/encode_200x200_q75", || {
        black_box(encode(black_box(&img), &EncoderConfig::default()));
    });
}

fn bench_dse() {
    let model = TauModel::paper_1024();
    time_it("dse/tau_eval_all_columns", || {
        for cols in [1usize, 2, 5, 10] {
            black_box(model.throughput(cols, black_box(700.0)).unwrap());
        }
    });
    let cost = CostModel::default();
    time_it("dse/rebalance_opt_25_tiles", || {
        black_box(rebalance_sweep(Algo::Opt, 25, &cost));
    });
}

fn bench_entropy() {
    use cgra_fabric::Tile;
    use cgra_kernels::jpeg::entropy_programs::{load_entropy_tables, run_entropy_block};
    use cgra_kernels::jpeg::huffman::{ac_luma_spec, dc_luma_spec, EncTable};

    let dc = EncTable::from_spec(&dc_luma_spec());
    let ac = EncTable::from_spec(&ac_luma_spec());
    let scan: [i32; 64] =
        std::array::from_fn(|i| if i % 3 == 0 { (i as i32 % 31) - 15 } else { 0 });
    time_it("entropy/pe_huffman_block", || {
        let mut t = Tile::new(0);
        load_entropy_tables(&mut t, &dc, &ac);
        black_box(run_entropy_block(&mut t, &scan));
    });
}

fn bench_color() {
    use cgra_kernels::jpeg::color::{encode_color, encode_color_420, RgbImage};
    let img = RgbImage::test_card(96, 96);
    time_it("color/encode_444_96x96", || {
        black_box(encode_color(black_box(&img), 80));
    });
    time_it("color/encode_420_96x96", || {
        black_box(encode_color_420(black_box(&img), 80));
    });
}

fn bench_placement() {
    use cgra_fabric::Mesh;
    use cgra_map::anneal::{anneal, AnnealParams, EpochComms, PlacementProblem};
    let problem = PlacementProblem {
        mesh: Mesh::new(4, 4),
        stages: 10,
        epochs: vec![EpochComms {
            transfers: (0..9).map(|i| (i, i + 1, 400.0)).collect(),
        }],
        cost: CostModel::with_link_cost(200.0),
    };
    time_it("placement/anneal_10_stages_4x4", || {
        black_box(
            anneal(
                &problem,
                AnnealParams {
                    iterations: 500,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
    });
}

fn main() {
    banner(
        "micro_kernels",
        "host baselines + substrate micro-benchmarks",
    );
    bench_fft();
    bench_interpreter();
    bench_jpeg();
    bench_dse();
    bench_entropy();
    bench_color();
    bench_placement();
}
