//! Figures 13/14: the rebalancing walkthrough on the five-process example
//! chain (800/700/1400/900/900 ns), one tile to five tiles, under all
//! three algorithms.

use cgra_bench::{banner, check};
use cgra_explore::report::render_table;
use cgra_fabric::CostModel;
use cgra_map::rebalance::{rebalance_one, rebalance_opt, rebalance_two};
use cgra_map::{evaluate, ProcessNetwork, ProcessSpec};

fn chain() -> ProcessNetwork {
    let cycles = |ns: u64| ns * 2 / 5; // 2.5 ns/cycle
    ProcessNetwork::new(vec![
        ProcessSpec::new("p1", 10, 0, 0, 0, cycles(800)),
        ProcessSpec::new("p2", 10, 0, 0, 0, cycles(700)),
        ProcessSpec::new("p3", 10, 0, 0, 0, cycles(1400)),
        ProcessSpec::new("p4", 10, 0, 0, 0, cycles(900)),
        ProcessSpec::new("p5", 10, 0, 0, 0, cycles(900)),
    ])
}

fn main() {
    banner(
        "Figures 13/14 — rebalancing walkthrough",
        "IPDPSW'13 Figures 13-14",
    );
    let net = chain();
    let cost = CostModel::default();
    let algos = [
        ("reBalanceOne", rebalance_one(&net, 6, &cost)),
        ("reBalanceTwo", rebalance_two(&net, 6, &cost)),
        ("reBalanceOPT", rebalance_opt(&net, 6, &cost)),
    ];
    let mut rows = Vec::new();
    for (name, asgs) in &algos {
        for (t, asg) in asgs.iter().enumerate() {
            let m = evaluate(&net, asg, &cost);
            let desc: Vec<String> = asg
                .loads
                .iter()
                .map(|l| {
                    let base = if l.first == l.last {
                        format!("p{}", l.first + 1)
                    } else {
                        format!("p{}-{}", l.first + 1, l.last + 1)
                    };
                    if l.instances > 1 {
                        format!("{base}(x{})", l.instances)
                    } else {
                        base
                    }
                })
                .collect();
            rows.push(vec![
                name.to_string(),
                (t + 1).to_string(),
                desc.join(" | "),
                format!("{:.0}", m.interval_ns),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["algorithm", "tiles", "mapping", "interval ns"], &rows)
    );

    let one = &algos[0].1;
    let opt = &algos[2].1;
    let iv =
        |asgs: &Vec<cgra_map::Assignment>, t: usize| evaluate(&net, &asgs[t], &cost).interval_ns;
    check(
        "1 tile runs at 4700 ns (sum of the chain)",
        (iv(one, 0) - 4700.0).abs() < 1.0,
    );
    check(
        "greedy split at 2 tiles lands on 2900 ns (Fig. 13b)",
        (iv(one, 1) - 2900.0).abs() < 1.0,
    );
    check(
        "intervals never increase as tiles are added",
        (1..6).all(|t| iv(one, t) <= iv(one, t - 1) + 1e-9),
    );
    check(
        "OPT at 4 tiles reaches the 1400 ns bottleneck (p3 alone)",
        (iv(opt, 3) - 1500.0).abs() < 150.0,
    );
    check(
        "OPT <= One and Two at every size (Fig. 14's improvement)",
        (0..6).all(|t| iv(opt, t) <= iv(one, t) + 1e-6 && iv(opt, t) <= iv(&algos[1].1, t) + 1e-6),
    );
}
