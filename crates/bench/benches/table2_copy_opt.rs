//! Table 2: optimized copy processes — ICAP-reload vs self-updating cost.

use cgra_bench::{banner, check};
use cgra_explore::fft_dse::{copy_optimization_table, TauModel};
use cgra_explore::report::render_table;

fn main() {
    banner("Table 2 — optimized copy processes", "IPDPSW'13 Table 2");
    let model = TauModel::paper_1024();
    let rows = copy_optimization_table(&model);
    let paper_prev = [1066.6, 1066.6, 533.3, 0.0];
    let paper_new = [15.0, 15.0, 10.0, 0.0];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper_prev.iter().zip(&paper_new))
        .map(|(r, (pp, pn))| {
            vec![
                r.cols.to_string(),
                format!("{pp:.1}"),
                format!("{:.1}", r.prev_ns),
                format!("{pn:.1}"),
                format!("{:.1}", r.new_ns),
                format!("{:.1}", r.improvement_ns()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "cols",
                "paper prev ns",
                "ours prev ns",
                "paper new ns",
                "ours new ns",
                "ours improvement ns"
            ],
            &table
        )
    );
    check(
        "reload costs match the paper exactly (1066.6/1066.6/533.3/0)",
        (rows[0].prev_ns - 1066.6).abs() < 1.0
            && (rows[1].prev_ns - 1066.6).abs() < 1.0
            && (rows[2].prev_ns - 533.3).abs() < 1.0
            && rows[3].prev_ns.abs() < 1e-9,
    );
    check(
        "self-update is at least an order of magnitude cheaper",
        rows.iter().all(|r| r.new_ns <= r.prev_ns / 10.0 + 1e-9),
    );
    check(
        "10 columns never retarget copies",
        rows[3].prev_ns == 0.0 && rows[3].new_ns == 0.0,
    );
}
