//! Table 3: JPEG encoder process costs — the paper's annotations next to
//! the cycle counts of our generated PE stage programs.

use cgra_bench::{banner, check};
use cgra_explore::report::render_table;
use cgra_kernels::jpeg::image::GrayImage;
use cgra_kernels::jpeg::processes::{copy_processes_time_optimal, paper_network, quarter_dct};
use cgra_kernels::jpeg::programs::{
    dct_program, dct_quarter_program, load_jpeg_constants, load_pixels, quantize_program,
    run_block_pipeline, shift_program, zigzag_program,
};
use cgra_kernels::jpeg::quant::QuantTable;

fn main() {
    banner("Table 3 — JPEG encoder process costs", "IPDPSW'13 Table 3");
    let net = paper_network();
    let img = GrayImage::rings(8, 8);
    let (_, cycles) = run_block_pipeline(&img.block(0, 0), &QuantTable::luma(75));

    let ours = |name: &str| -> Option<(usize, u64)> {
        match name {
            "shift" => Some((shift_program().len(), cycles.shift)),
            "DCT" => Some((dct_program().len(), cycles.dct)),
            "Quantize" => Some((quantize_program().len(), cycles.quantize)),
            "ZigZag" => Some((zigzag_program().len(), cycles.zigzag)),
            _ => None,
        }
    };
    let mut rows = Vec::new();
    for p in &net.processes {
        let (oi, oc) = ours(&p.name)
            .map(|(i, c)| (i.to_string(), c.to_string()))
            .unwrap_or(("-".into(), "-".into()));
        rows.push(vec![
            p.name.clone(),
            p.insts.to_string(),
            p.data1.to_string(),
            p.data2.to_string(),
            p.data3.to_string(),
            p.runtime_cycles.to_string(),
            oi,
            oc,
        ]);
    }
    // Measure our quarter-DCT program.
    let qcycles = {
        let mut tile = cgra_fabric::Tile::new(0);
        load_jpeg_constants(&mut tile, &QuantTable::luma(75));
        load_pixels(&mut tile, &img.block(0, 0));
        cgra_kernels::fft::programs::run_program(&mut tile, &shift_program(), 100_000);
        cgra_kernels::fft::programs::run_program(&mut tile, &dct_quarter_program(0, 0), 1_000_000)
    };
    let q = quarter_dct();
    rows.push(vec![
        q.name,
        q.insts.to_string(),
        q.data1.to_string(),
        q.data2.to_string(),
        q.data3.to_string(),
        q.runtime_cycles.to_string(),
        dct_quarter_program(0, 0).len().to_string(),
        qcycles.to_string(),
    ]);
    for c in copy_processes_time_optimal() {
        rows.push(vec![
            format!("{} (time-opt)", c.name),
            c.insts.to_string(),
            c.data1.to_string(),
            c.data2.to_string(),
            c.data3.to_string(),
            c.runtime_cycles.to_string(),
            "-".into(),
            "-".into(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "process",
                "insts",
                "data1",
                "data2",
                "data3",
                "paper cycles",
                "our insts",
                "our cycles"
            ],
            &rows
        )
    );

    check(
        "zigzag: ours matches the paper exactly (65 cycles, 65 insts)",
        cycles.zigzag == 65 && zigzag_program().len() == 65,
    );
    check(
        "DCT dominates the pipeline in both parameter sets",
        net.heaviest() == 1 && cycles.dct > cycles.shift + cycles.quantize + cycles.zigzag,
    );
    check(
        "our separable DCT is far below the paper's naive 133k cycles",
        cycles.dct < 5_000,
    );
    check(
        "Huffman split: p5..p9 exceed one instruction memory together",
        net.processes[5..=9].iter().map(|p| p.insts).sum::<usize>() > 512,
    );
    check(
        "our quarter-DCT runs in well under half the full DCT's cycles",
        (qcycles as f64) < 0.5 * cycles.dct as f64,
    );
}
