//! Figure 7: four mappings of the 16-point radix-2 FFT onto tiles of
//! partition size M=4 — balanced splits pipeline well, the unequal split
//! (case d) does not.

use cgra_bench::{banner, check};
use cgra_explore::report::render_table;
use cgra_kernels::fft::partition::{FftPlan, StageSplit};

fn main() {
    banner(
        "Figure 7 — mappings of the 16-point R2FFT",
        "IPDPSW'13 Figure 7",
    );
    let plan = FftPlan::new(16, 4).expect("valid plan");
    let cases = [
        (
            "a) 4 tiles, 1 column x 4 stages",
            StageSplit::even(&plan, 1).unwrap(),
        ),
        (
            "b) 16 tiles, 4 columns x 1 stage",
            StageSplit::even(&plan, 4).unwrap(),
        ),
        (
            "c) 8 tiles, 2 columns, equal 2+2",
            StageSplit::even(&plan, 2).unwrap(),
        ),
        (
            "d) 8 tiles, 2 columns, unequal 3+1",
            StageSplit::custom(&plan, vec![3, 1]).unwrap(),
        ),
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(name, split)| {
            vec![
                name.to_string(),
                (plan.rows() * split.cols()).to_string(),
                format!("{:?}", split.per_col),
                if split.is_balanced() { "yes" } else { "no" }.into(),
                format!("{:.2}", split.imbalance()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["mapping", "tiles", "stages/col", "balanced", "imbalance"],
            &rows
        )
    );

    check(
        "cases a-c are balanced pipeline candidates",
        cases[..3].iter().all(|(_, s)| s.is_balanced()),
    );
    check(
        "case d is not a good pipelined mapping (paper's observation)",
        !cases[3].1.is_balanced() && cases[3].1.imbalance() > 1.4,
    );
    check(
        "the plan matches Figure 6 (4 rows, 4 stages, 2 cross-tile)",
        plan.rows() == 4 && plan.stages() == 4 && plan.cross_stages() == 2,
    );
}
