//! Ablation: the Sec. 3.1 twiddle-generation optimization (green tiles
//! squaring their way to the next stage's factors) vs reloading every
//! stage's complement over the ICAP.

use cgra_bench::{banner, check};
use cgra_explore::fft_dse::TauModel;
use cgra_explore::report::render_table;

fn main() {
    banner(
        "Ablation — twiddle generation vs full reload",
        "IPDPSW'13 Sec. 3.1 ('considerable reduction in data memory loading cost')",
    );
    let on = TauModel::paper_1024();
    let mut off = TauModel::paper_1024();
    off.twiddle_generation = false;

    let mut rows = Vec::new();
    for cols in [1usize, 2, 5, 10] {
        let t_on = on.throughput(cols, 0.0).unwrap();
        let t_off = off.throughput(cols, 0.0).unwrap();
        let tau1_on = on.evaluate(cols, 0.0).unwrap().tau1;
        let tau1_off = off.evaluate(cols, 0.0).unwrap().tau1;
        rows.push(vec![
            cols.to_string(),
            format!("{tau1_on:.0}"),
            format!("{tau1_off:.0}"),
            format!("{t_on:.0}"),
            format!("{t_off:.0}"),
            format!("{:.2}x", t_on / t_off),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "cols",
                "tau1 with gen ns",
                "tau1 reload-all ns",
                "FFT/s with gen",
                "FFT/s reload-all",
                "speedup"
            ],
            &rows
        )
    );

    check(
        "generation speeds up every in-column configuration",
        [1usize, 2, 5]
            .iter()
            .all(|&c| on.throughput(c, 0.0).unwrap() > off.throughput(c, 0.0).unwrap()),
    );
    check(
        "10 columns are unaffected (all twiddles preloaded)",
        on.throughput(10, 0.0).unwrap() == off.throughput(10, 0.0).unwrap(),
    );
    // The paper's headline: reload (log2N - log2M) * N/2 instead of
    // N * log2 N words.
    let naive_words = 1024.0 * 10.0;
    let ours_words = 3.0 * 512.0;
    check(
        "reload volume cut by the paper's claimed factor (>6x)",
        naive_words / ours_words > 6.0,
    );
}
