//! Figure 15: instantiating a heavy process (DCT) on several tiles — the
//! fan-out/fan-in communication pattern and its link/copy cost on the
//! mesh, planned with the multi-hop router.

use cgra_bench::{banner, check};
use cgra_explore::report::render_table;
use cgra_fabric::{CostModel, Mesh};
use cgra_map::routing::{placement_copy_cost, plan_route};

fn main() {
    banner(
        "Figure 15 — instantiating a tile n times for a heavy process",
        "IPDPSW'13 Figure 15 (DCT fan-out/fan-in)",
    );
    // Pipeline positions: 0 = producer (shift tile), 1..=4 = the four DCT
    // instances, 5 = consumer (quantize tile). The producer round-robins
    // blocks to the instances; each instance ships results to the consumer.
    let cost = CostModel::with_link_cost(500.0);
    let copy_ns = 720.0 * 2.5; // CP64's Table 3 runtime per hop

    let mut rows = Vec::new();
    let mut costs = Vec::new();
    for (name, mesh, order) in [
        // A thoughtful placement: producer and consumer in the middle
        // column, instances around them.
        (
            "2x3 clustered",
            Mesh::new(2, 3),
            vec![1usize, 0, 2, 3, 5, 4],
        ),
        // A poor placement: producer and consumer in opposite corners.
        (
            "2x3 stretched",
            Mesh::new(2, 3),
            vec![0usize, 1, 2, 4, 5, 3],
        ),
        // A single row forces long fan-out routes.
        ("1x6 linear", Mesh::new(1, 6), vec![0usize, 1, 2, 3, 4, 5]),
    ] {
        let mut transfers = Vec::new();
        for inst in 1..=4usize {
            transfers.push((0, inst, copy_ns)); // fan-out
            transfers.push((inst, 5, copy_ns)); // fan-in
        }
        let total = placement_copy_cost(&mesh, &order, &transfers, &cost).unwrap();
        let max_hops = transfers
            .iter()
            .map(|&(p, q, _)| plan_route(&mesh, order[p], order[q]).unwrap().len())
            .max()
            .unwrap();
        rows.push(vec![
            name.to_string(),
            format!("{total:.0}"),
            max_hops.to_string(),
        ]);
        costs.push(total);
    }
    println!(
        "{}",
        render_table(&["placement", "fan cost ns/block", "max hops"], &rows)
    );

    check(
        "clustering the instances around producer/consumer wins",
        costs[0] < costs[1] && costs[0] < costs[2],
    );
    check(
        "the linear array pays the most for the fan pattern",
        costs[2] >= costs[1],
    );
}
