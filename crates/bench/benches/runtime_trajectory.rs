//! Runtime trajectory of the example schedules: total Eq. 1 runtime,
//! reconfiguration overhead share and mean tile utilization for the
//! FFT-64, FFT-1024, 1x3 JPEG and streaming-JPEG schedules, measured
//! from the telemetry counter registry and cross-checked against the
//! static WCET bounds. Each schedule is then replayed under the
//! proof-gated hoisting plan (`lint::overlap`) for the hoisted series —
//! same computation, reconfiguration prefetched into proven idle
//! windows. Emits `BENCH_runtime.json` at the repo root.

use cgra_bench::{banner, check, f};
use cgra_explore::{build_example_schedule, hoist_schedule};
use cgra_fabric::CostModel;
use cgra_sim::{bound_epochs, ArraySim, EpochRunner, Recorder};
use cgra_telemetry::{conservation_violations, Counters};

struct Row {
    name: &'static str,
    epochs: u64,
    runtime_ns: f64,
    eq1_ns: f64,
    reconfig_ns: f64,
    overhead: f64,
    utilization: f64,
    words: u64,
    hoists: usize,
    hoisted_reconfig_ns: f64,
    hoisted_eq1_ns: f64,
}

fn measure(name: &'static str, cost: &CostModel) -> Row {
    let (mesh, epochs) = build_example_schedule(name).expect("known example schedule");
    let mut sim = ArraySim::new(mesh);
    let recorder = Recorder::new();
    sim.attach_sink(Box::new(recorder.clone()));
    let mut runner = EpochRunner::new(sim, *cost);
    let report = runner.run_schedule(&epochs).expect("schedule runs");
    runner.sim.detach_sink();

    let events = recorder.events();
    let violations = conservation_violations(&events);
    check(
        &format!("{name}: event stream conserves (no violations)"),
        violations.is_empty(),
    );
    let c = Counters::from_events(&events);
    check(
        &format!("{name}: every epoch observed"),
        c.epochs == epochs.len() as u64,
    );

    // The Eq. 1 total the runner reports must sit inside the static
    // WCET interval the timing engine derived without running a cycle.
    let bound = bound_epochs(mesh, cost, &epochs);
    let iv = bound.total_ns();
    check(
        &format!("{name}: measured Eq. 1 runtime sits inside the static WCET bound"),
        iv.contains(report.total_ns(), 1e-9),
    );

    // Hoisted series: replay the same schedule under the proof-gated
    // hoisting plan. The strict runner gate re-verifies every
    // certificate before a cycle executes, and the replay is bit-exact
    // (tests/hoist_soundness.rs) — only the Eq. 1 reconfiguration term
    // may shrink.
    let plan = hoist_schedule(mesh, &epochs, cost);
    let mut hoisted = EpochRunner::new(ArraySim::new(mesh), *cost);
    let hreport = hoisted
        .run_hoisted_schedule(&epochs, &plan)
        .expect("hoisted replay runs");
    check(
        &format!("{name}: hoisted reconfiguration matches the certified plan"),
        (hreport.total_reconfig_ns() - plan.reconfig_after_ns).abs() < 1e-6,
    );
    check(
        &format!("{name}: hoisting never grows reconfiguration"),
        hreport.total_reconfig_ns() <= report.total_reconfig_ns() + 1e-9,
    );

    let m = Counters::from_events(&events);
    Row {
        name,
        epochs: c.epochs,
        runtime_ns: cost.exec_ns(m.epoch_cycles),
        eq1_ns: report.total_ns(),
        reconfig_ns: m.reconfig_ns,
        overhead: m.reconfig_overhead(cost),
        utilization: m.utilization(),
        words: m.total_words_sent(),
        hoists: plan.hoists.len(),
        hoisted_reconfig_ns: hreport.total_reconfig_ns(),
        hoisted_eq1_ns: hreport.total_ns(),
    }
}

fn main() {
    banner(
        "Runtime trajectory — Eq. 1 runtime, reconfig overhead and utilization per schedule",
        "IPDPSW'13 Eq. 1, telemetry counter registry",
    );
    let cost = CostModel::default();
    let rows: Vec<Row> = ["fft-64", "fft-1024", "jpeg", "jpeg-stream"]
        .iter()
        .map(|name| measure(name, &cost))
        .collect();

    println!();
    println!(
        "  {:<12} {:>6} {:>14} {:>14} {:>10} {:>8} {:>8} {:>7} {:>14}",
        "schedule",
        "epochs",
        "runtime (ns)",
        "reconfig (ns)",
        "overhead",
        "util",
        "words",
        "hoists",
        "hoisted (ns)"
    );
    for r in &rows {
        println!(
            "  {:<12} {:>6} {:>14} {:>14} {:>9.1}% {:>7.1}% {:>8} {:>7} {:>14}",
            r.name,
            r.epochs,
            f(r.runtime_ns, 1),
            f(r.reconfig_ns, 1),
            r.overhead * 100.0,
            r.utilization * 100.0,
            r.words,
            r.hoists,
            f(r.hoisted_reconfig_ns, 1)
        );
    }

    // Qualitative invariants the trajectory must keep.
    check(
        "fft-1024 runs longer than fft-64",
        rows[1].runtime_ns > rows[0].runtime_ns,
    );
    check(
        "jpeg-stream moves twice the link words of the single-block schedule",
        rows[3].words == 2 * rows[2].words,
    );
    check(
        "reconfiguration dominates every quiescing schedule (the paper's motivation \
         for overlapping it with computation)",
        rows.iter().all(|r| r.overhead > 0.5),
    );
    for r in &rows {
        check(
            &format!("{}: utilization is a sane fraction", r.name),
            r.utilization > 0.0 && r.utilization <= 1.0,
        );
    }
    check(
        "fft-1024: proof-gated hoisting at least halves the reconfiguration time \
         (ISSUE 6 acceptance)",
        rows[1].hoisted_reconfig_ns * 2.0 <= rows[1].reconfig_ns,
    );

    let json = format!(
        "{{\n  \"schedules\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(|r| format!(
                "    {{\"name\": \"{}\", \"epochs\": {}, \"runtime_ns\": {:.3}, \
                 \"eq1_ns\": {:.3}, \"reconfig_ns\": {:.3}, \"reconfig_overhead\": {:.6}, \
                 \"mean_utilization\": {:.6}, \"words_moved\": {}, \"hoists\": {}, \
                 \"hoisted_reconfig_ns\": {:.3}, \"hoisted_eq1_ns\": {:.3}}}",
                r.name,
                r.epochs,
                r.runtime_ns,
                r.eq1_ns,
                r.reconfig_ns,
                r.overhead,
                r.utilization,
                r.words,
                r.hoists,
                r.hoisted_reconfig_ns,
                r.hoisted_eq1_ns
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    std::fs::write(path, json).expect("BENCH_runtime.json is writable");
    println!("\n  wrote {path}");
}
