//! DSE engine scaling: wall-time of the full FFT-1024 and JPEG sweeps
//! through the naive serial path (build + minimize + bound + simulate
//! every candidate independently — the pre-engine behavior) vs. the
//! parallel cached engine, cold and warm. Asserts the engine's two
//! contracts — byte-identical frontiers and a real speedup — and emits
//! `BENCH_dse.json` at the repo root.

use cgra_bench::{banner, check, f};
use cgra_explore::{run_sweep, run_sweep_naive, EngineConfig, SimCache, SweepSpec};
use std::time::Instant;

struct Row {
    sweep: &'static str,
    candidates: usize,
    shapes: u64,
    pruned: u64,
    simulated_cold: u64,
    serial_ms: f64,
    engine_cold_ms: f64,
    engine_warm_ms: f64,
    speedup_cold: f64,
    speedup_warm: f64,
    hit_rate_warm: f64,
    frontier_identical: bool,
}

fn measure(sweep: &'static str, jobs: usize, frontier: usize) -> Row {
    let spec = SweepSpec::named(sweep).expect("known sweep");
    let cfg = EngineConfig {
        jobs,
        frontier,
        prune: true,
    };
    let dir =
        std::env::temp_dir().join(format!("remorph-bench-dse-{sweep}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let t = Instant::now();
    let naive = run_sweep_naive(&spec, frontier).expect("naive sweep");
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;

    let cold_cache = SimCache::at_dir(&dir).expect("cache dir");
    let t = Instant::now();
    let cold = run_sweep(&spec, &cfg, &cold_cache).expect("cold engine sweep");
    let engine_cold_ms = t.elapsed().as_secs_f64() * 1e3;

    // Fresh instance over the same directory: warm hits come from disk.
    let warm_cache = SimCache::at_dir(&dir).expect("cache dir");
    let t = Instant::now();
    let warm = run_sweep(&spec, &cfg, &warm_cache).expect("warm engine sweep");
    let engine_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    std::fs::remove_dir_all(&dir).ok();

    let frontier_identical = cold.render_frontier() == naive.render_frontier()
        && warm.render_frontier() == cold.render_frontier();
    check(
        &format!("{sweep}: engine frontier is byte-identical to the serial reference"),
        frontier_identical,
    );
    check(
        &format!("{sweep}: sweep counters conserve"),
        cold.conservation_violations().is_empty() && warm.conservation_violations().is_empty(),
    );
    check(
        &format!("{sweep}: warm cache serves the whole frontier (>90% hit rate)"),
        warm.stats.hit_rate() > 0.9 && warm.stats.total.simulated == 0,
    );

    Row {
        sweep,
        candidates: cold.rows.len(),
        shapes: cold.stats.total.prepared,
        pruned: cold.stats.total.pruned,
        simulated_cold: cold.stats.total.simulated,
        serial_ms,
        engine_cold_ms,
        engine_warm_ms,
        speedup_cold: serial_ms / engine_cold_ms,
        speedup_warm: serial_ms / engine_warm_ms,
        hit_rate_warm: warm.stats.hit_rate(),
        frontier_identical,
    }
}

fn main() {
    banner(
        "DSE engine scaling — naive serial sweep vs. parallel cached engine",
        "IPDPSW'13 Sec. 3-4 design-space sweeps (Figures 10-12, Tables 4-5)",
    );
    let jobs = 4;
    println!("  --jobs {jobs}, default link-cost grid, default frontier\n");

    let rows = [measure("fft-1024", jobs, 6), measure("jpeg", jobs, 6)];

    println!();
    println!(
        "  {:<10} {:>5} {:>7} {:>11} {:>11} {:>11} {:>9} {:>9} {:>9}",
        "sweep",
        "cand",
        "shapes",
        "serial/ms",
        "cold/ms",
        "warm/ms",
        "spd-cold",
        "spd-warm",
        "hit-warm"
    );
    for r in &rows {
        println!(
            "  {:<10} {:>5} {:>7} {:>11} {:>11} {:>11} {:>8}x {:>8}x {:>8.0}%",
            r.sweep,
            r.candidates,
            r.shapes,
            f(r.serial_ms, 1),
            f(r.engine_cold_ms, 1),
            f(r.engine_warm_ms, 1),
            f(r.speedup_cold, 2),
            f(r.speedup_warm, 2),
            r.hit_rate_warm * 100.0
        );
    }

    let fft = &rows[0];
    check(
        "fft-1024: cold engine beats the serial sweep by >= 2x",
        fft.speedup_cold >= 2.0,
    );
    for r in &rows {
        check(
            &format!("{}: warm engine beats cold (cache does real work)", r.sweep),
            r.speedup_warm > r.speedup_cold,
        );
    }

    let json = format!(
        "{{\n  \"jobs\": {jobs},\n  \"sweeps\": [\n{}\n  ]\n}}\n",
        rows.iter()
            .map(|r| format!(
                "    {{\"sweep\": \"{}\", \"candidates\": {}, \"shapes\": {}, \"pruned\": {}, \
                 \"simulated_cold\": {}, \"serial_ms\": {:.3}, \"engine_cold_ms\": {:.3}, \
                 \"engine_warm_ms\": {:.3}, \"speedup_cold\": {:.3}, \"speedup_warm\": {:.3}, \
                 \"cache_hit_rate_warm\": {:.4}, \"frontier_identical\": {}}}",
                r.sweep,
                r.candidates,
                r.shapes,
                r.pruned,
                r.simulated_cold,
                r.serial_ms,
                r.engine_cold_ms,
                r.engine_warm_ms,
                r.speedup_cold,
                r.speedup_warm,
                r.hit_rate_warm,
                r.frontier_identical
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dse.json");
    std::fs::write(path, json).expect("BENCH_dse.json is writable");
    println!("\n  wrote {path}");
}
