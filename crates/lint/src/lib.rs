//! # cgra-lint
//!
//! Whole-schedule, inter-epoch dataflow lints for reMORPH epoch
//! schedules — the layer above `cgra-verify`: where the verifier checks
//! each epoch for *legality* (and threads may-init/const state forward),
//! this crate checks the schedule as one program for *waste and
//! lifetime hazards*, and can rewrite it:
//!
//! * **Lifetime / clobber analysis** — tracks every data-memory word's
//!   current definition (ICAP patch, program store, or inbound `T_copy`
//!   write) across the whole schedule and reports kills of data nothing
//!   ever read, with provenance: [`cgra_verify::Code::ClobberByPatch`]
//!   (L001, deny by default — patch writes are must-writes),
//!   [`cgra_verify::Code::ClobberByCopy`] (L002),
//!   [`cgra_verify::Code::ClobberByStore`] (L003) and
//!   [`cgra_verify::Code::DeadInit`] (L004) for patched words no program
//!   ever consumes.
//! * **Reconfiguration-diff minimizer** — a patch word whose payload
//!   equals the value the word statically already holds is a no-op
//!   rewrite ([`cgra_verify::Code::RedundantPatch`], L005). Each is
//!   recorded as a [`Removal`]; [`minimize_patches`] rewrites the patch
//!   list without them, and [`TransitionSavings`] prices the Eq. 1
//!   reconfiguration-time reduction per epoch switch.
//! * **Dead configuration state** — byte-identical program reloads
//!   ([`cgra_verify::Code::RedundantReload`], L006, allow by default:
//!   a reload is also what re-arms a halted PE) and instruction slots
//!   unreachable from the entry that the ICAP streams anyway
//!   ([`cgra_verify::Code::UnreachableImem`], L007).
//!
//! Every lint has a deny/warn/allow [`LintLevel`]; [`LintLevels`] is the
//! mutable table the `cgra-lint` driver binary exposes as `--level
//! name=deny` / `--deny-warnings`. Deny findings materialize as
//! [`cgra_verify::Severity::Error`] diagnostics, so
//! `cgra_sim::EpochRunner` can gate strict runs on them exactly as it
//! gates on verifier errors.
//!
//! The soundness argument for the minimizer (why dropping a [`Removal`]
//! is bit-exact at every cycle, not just at the end) is DESIGN.md
//! Section 11.

#![warn(missing_docs)]

pub mod fix;
pub mod level;
pub mod pass;

pub use fix::minimize_patches;
pub use level::{default_level, LintLevel, LintLevels, LINT_CODES};
pub use pass::{lint_schedule, LintReport, Removal, TransitionSavings};
