//! # cgra-lint
//!
//! Whole-schedule, inter-epoch dataflow lints for reMORPH epoch
//! schedules — the layer above `cgra-verify`: where the verifier checks
//! each epoch for *legality* (and threads may-init/const state forward),
//! this crate checks the schedule as one program for *waste and
//! lifetime hazards*, and can rewrite it:
//!
//! * **Lifetime / clobber analysis** — tracks every data-memory word's
//!   current definition (ICAP patch, program store, or inbound `T_copy`
//!   write) across the whole schedule and reports kills of data nothing
//!   ever read, with provenance: [`cgra_verify::Code::ClobberByPatch`]
//!   (L001, deny by default — patch writes are must-writes),
//!   [`cgra_verify::Code::ClobberByCopy`] (L002),
//!   [`cgra_verify::Code::ClobberByStore`] (L003) and
//!   [`cgra_verify::Code::DeadInit`] (L004) for patched words no program
//!   ever consumes.
//! * **Reconfiguration-diff minimizer** — a patch word whose payload
//!   equals the value the word statically already holds is a no-op
//!   rewrite ([`cgra_verify::Code::RedundantPatch`], L005). Each is
//!   recorded as a [`Removal`]; [`minimize_patches`] rewrites the patch
//!   list without them, and [`TransitionSavings`] prices the Eq. 1
//!   reconfiguration-time reduction per epoch switch.
//! * **Dead configuration state** — byte-identical program reloads
//!   ([`cgra_verify::Code::RedundantReload`], L006, allow by default:
//!   a reload is also what re-arms a halted PE) and instruction slots
//!   unreachable from the entry that the ICAP streams anyway
//!   ([`cgra_verify::Code::UnreachableImem`], L007).
//! * **Idle-window analysis and proof-gated hoisting** — [`overlap`]
//!   derives per-tile/per-epoch provably-idle cycle windows from the
//!   verifier effect summaries and the WCET bounds
//!   ([`cgra_verify::Code::IdleWindow`], L008), and [`plan_hoists`]
//!   prefetches tile rewrites into those windows through a background
//!   configuration port; every [`Hoist`] carries a machine-checkable
//!   [`HoistCertificate`] that [`verify_hoists`] re-derives
//!   independently ([`cgra_verify::Code::HoistRefused`], L011, deny by
//!   default), with refusals narrated as
//!   [`cgra_verify::Code::HoistInterference`] (L009) and applied moves
//!   as [`cgra_verify::Code::HoistApplied`] (L010).
//!
//! Every lint has a deny/warn/allow [`LintLevel`]; [`LintLevels`] is the
//! mutable table the `cgra-lint` driver binary exposes as `--level
//! name=deny` / `--deny-warnings`. Deny findings materialize as
//! [`cgra_verify::Severity::Error`] diagnostics, so
//! `cgra_sim::EpochRunner` can gate strict runs on them exactly as it
//! gates on verifier errors.
//!
//! The soundness argument for the minimizer (why dropping a [`Removal`]
//! is bit-exact at every cycle, not just at the end) is DESIGN.md
//! Section 11; the hoisting soundness argument (idle-window lattice,
//! non-interference obligations, double-buffer commit semantics) is
//! Section 13.

#![warn(missing_docs)]

pub mod fix;
pub mod level;
pub mod overlap;
pub mod pass;

pub use fix::minimize_patches;
pub use level::{default_level, LintLevel, LintLevels, LINT_CODES};
pub use overlap::{
    hoisted_bound, plan_hoists, verify_hoists, Claim, ClaimProof, Hoist, HoistCertificate,
    HoistOptions, HoistPlan, IdleWindow, Refusal, Segment,
};
pub use pass::{lint_schedule, LintReport, Removal, TransitionSavings};
