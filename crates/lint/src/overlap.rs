//! `lint::overlap` — whole-schedule static idle-window analysis and the
//! proof-gated reconfiguration hoisting transformer.
//!
//! The paper's central promise (Sec. 1, Eq. 1) is that partial
//! reconfiguration of some tiles *overlaps* computation in others; the
//! example schedules barely exploit it — most epochs stream their whole
//! switch through the foreground ICAP while every touched tile stalls.
//! This module turns the overlap story into a static analysis plus a
//! schedule transformer:
//!
//! 1. **Idle-window analysis.** For each tile and epoch it derives a
//!    provably-idle window from the verifier effect summaries and the
//!    WCET engine's per-program bounds. Every epoch offers two
//!    execution-free [`Segment`]s:
//!    * the **head** `[0, stall)`: the quiescence barrier means *no*
//!      tile executes while the foreground switch streams — touched
//!      tiles are stalled (their shadow plane is separate memory, so a
//!      background stream cannot collide with the active-plane rewrite)
//!      and untouched tiles are halted. Head capacity is the epoch's
//!      final foreground stall, tile-independent;
//!    * the per-tile **tail** after the stall: an untouched or
//!      patch-only tile never runs (a patch does not re-arm a halted
//!      PE), window `compute_best`; a reprogrammed tile computes for at
//!      most its own worst-case bound and then halts, window
//!      `compute_best - worst(tile)`, provably empty when the worst
//!      case is unbounded.
//!
//!    Windows are reported as [`cgra_verify::Code::IdleWindow`] (L008)
//!    with `cycles = head + tail`.
//! 2. **Proof-gated hoisting.** A per-slot reconfiguration payload of
//!    epoch `j` can be *prefetched*: streamed through a background port
//!    into the tile's shadow configuration plane during idle windows of
//!    earlier epochs, and committed — a zero-ICAP-cost plane swap — at
//!    the switch into `j`. Every [`Hoist`] carries a machine-checkable
//!    [`HoistCertificate`]; [`verify_hoists`] re-derives all three
//!    obligations independently and refuses the plan
//!    ([`cgra_verify::Code::HoistRefused`], L011, an error) on any
//!    mismatch:
//!    * **idle-window**: the claimed cycles exist and pack (the single
//!      background port serializes each epoch's claims per segment; a
//!      claim fits iff the segment's accumulated fill stays inside the
//!      re-derived window — the final stall for a head claim, the
//!      claiming tile's idle suffix for a tail claim),
//!    * **non-interference**: the payload is byte-identical to the
//!      slot it replaces and commits exactly where the original switch
//!      applied it, so the active-plane dataflow — the L001–L003
//!      clobber lattice and the V100–V103 race analysis — is untouched
//!      by construction; the shadow plane itself never exceeds its slot
//!      budget and never holds two payloads for one (tile, target),
//!    * **WCET-containment**: the hoisted epoch's recomputed
//!      reconfiguration charge and stall still bound the run (compute
//!      intervals are invariant — the same programs run — and the
//!      foreground charge only shrinks), checked exactly against the
//!      certificate's recorded before/after figures.
//!
//! Soundness of the fixed point: targets are processed in increasing
//! epoch order and claims only reach *earlier* epochs, so every window
//! is evaluated against the claimed epoch's **final** (post-hoisting)
//! stall — durations shrink before they are read, never after. The
//! committed payloads are applied at the original switch points, and
//! every re-armed tile still waits out the (shorter) foreground stall,
//! so the execution is cycle-aligned with the original schedule and the
//! replay is bit-exact (DESIGN.md Sec. 13).

use crate::level::LintLevels;
use cgra_fabric::{CostModel, Mesh, TileId};
use cgra_verify::{
    BoundCache, Code, Diagnostic, EpochSpec, ScheduleBound, ScheduleChecker, Severity,
};

/// How a tile spends one epoch, as far as the static analysis can prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileBusy {
    /// No setup touches the tile: halted for the whole epoch.
    Untouched,
    /// Patched but not reprogrammed: stalls, never runs.
    PatchOnly,
    /// Reprogrammed: busy up to `worst` cycles after the stall
    /// (`None` = no static bound; the tile is never provably idle).
    Programmed {
        /// Worst-case compute cycles of the loaded program.
        worst: Option<u64>,
    },
}

/// Per-slot payload sizes, aligned with [`EpochSpec::tiles`].
#[derive(Debug, Clone, Copy)]
struct SlotPayload {
    tile: TileId,
    data_words: usize,
    instr_words: usize,
}

/// Static per-epoch facts the planner and the re-verifier share.
struct EpochFacts {
    slots: Vec<SlotPayload>,
    links_changed: usize,
    /// Parallel-max best-case compute cycles over programmed tiles.
    compute_best: u64,
    busy: Vec<TileBusy>,
}

/// One analysis pass over the schedule: verifier state threaded across
/// epochs, WCET bounds per loaded program, payload sizes per slot.
fn epoch_facts(mesh: Mesh, epochs: &[EpochSpec]) -> Vec<EpochFacts> {
    let mut checker = ScheduleChecker::new(mesh);
    let mut cache = BoundCache::new();
    let mut prev_links = mesh.disconnected();
    let mut out = Vec::with_capacity(epochs.len());
    for e in epochs {
        let links_changed = prev_links.delta(e.links);
        prev_links = e.links.clone();
        let mut busy = vec![TileBusy::Untouched; mesh.tiles()];
        let slots: Vec<SlotPayload> = e
            .tiles
            .iter()
            .map(|spec| SlotPayload {
                tile: spec.tile,
                data_words: spec.data_patches.iter().map(|p| p.len()).sum(),
                instr_words: spec.program.map_or(0, <[_]>::len),
            })
            .collect();
        for spec in &e.tiles {
            if spec.tile >= mesh.tiles() {
                continue;
            }
            if spec.program.is_some() {
                busy[spec.tile] = TileBusy::Programmed { worst: None };
            } else if busy[spec.tile] == TileBusy::Untouched {
                busy[spec.tile] = TileBusy::PatchOnly;
            }
        }
        let analysis = checker.analyze_epoch(e);
        let mut compute_best = 0u64;
        for ta in &analysis.tiles {
            let pb = cache.bound(ta.prog, &ta.opts);
            compute_best = compute_best.max(pb.cycles.best);
            if ta.tile < busy.len() {
                busy[ta.tile] = TileBusy::Programmed {
                    worst: pb.cycles.worst,
                };
            }
        }
        out.push(EpochFacts {
            slots,
            links_changed,
            compute_best,
            busy,
        });
    }
    out
}

/// Foreground (non-hoisted) switch content of one epoch.
#[derive(Debug, Clone, Copy)]
struct Foreground {
    data_words: usize,
    instr_words: usize,
    links: usize,
}

impl Foreground {
    fn ns(&self, cost: &CostModel) -> f64 {
        cost.data_reload_ns(self.data_words)
            + cost.instr_reload_ns(self.instr_words)
            + cost.links_reconfig_ns(self.links)
    }

    fn stall(&self, cost: &CostModel) -> u64 {
        cost.stall_cycles(self.ns(cost))
    }
}

/// Every epoch has **two** provably-execution-free regions the
/// background port can stream in:
///
/// * the **head** `[0, stall)`: the quiescence barrier means no tile
///   executes before the switch completes — touched tiles are stalled
///   (their *active* plane is being rewritten; the shadow plane is a
///   separate memory), untouched tiles are halted. Head capacity is
///   tile-independent: the whole foreground stall.
/// * the per-tile **tail**: after the stall a tile is idle once it
///   halts — the whole compute phase for tiles that never re-arm,
///   `compute_best - worst` for reprogrammed tiles, nothing when the
///   worst case is unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// The stall region `[0, stall)` at the start of the epoch.
    Head,
    /// The tile's idle suffix of the compute phase.
    Tail,
}

/// The tail-segment window of `tile` in epoch `e` (head capacity is the
/// epoch's final foreground stall, independent of the tile).
fn tail_window(facts: &EpochFacts, tile: TileId) -> u64 {
    match facts.busy.get(tile).copied().unwrap_or(TileBusy::Untouched) {
        TileBusy::Untouched | TileBusy::PatchOnly => facts.compute_best,
        TileBusy::Programmed { worst: Some(w) } => facts.compute_best.saturating_sub(w),
        TileBusy::Programmed { worst: None } => 0,
    }
}

/// A provably-idle cycle window of one tile in one epoch (L008).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleWindow {
    /// The idle tile.
    pub tile: TileId,
    /// The epoch it is idle in.
    pub epoch: usize,
    /// Provably-idle cycles — the head (final foreground stall) plus
    /// the tile's tail window, under the post-hoisting stalls.
    pub cycles: u64,
}

/// One background-port reservation: `cycles` of streaming inside one
/// execution-free segment of `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// The epoch claimed from.
    pub epoch: usize,
    /// Which execution-free region of it.
    pub segment: Segment,
    /// Streaming cycles reserved there.
    pub cycles: u64,
}

/// The proof artifacts backing one claim: the claimed segment's capacity
/// and the background-port fill after the claim, both re-derived and
/// cross-checked by [`verify_hoists`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimProof {
    /// The claimed epoch.
    pub epoch: usize,
    /// The claimed segment.
    pub segment: Segment,
    /// The segment's capacity: the final foreground stall for
    /// [`Segment::Head`], the claiming tile's idle-suffix cycles for
    /// [`Segment::Tail`].
    pub window: u64,
    /// Port fill of the segment (total claimed cycles) including this
    /// claim; must fit inside `window`.
    pub fill_after: u64,
}

/// The machine-checkable justification carried by every [`Hoist`].
#[derive(Debug, Clone, PartialEq)]
pub struct HoistCertificate {
    /// One proof per claim, in claim order (idle-window obligation).
    pub claims: Vec<ClaimProof>,
    /// Peak shadow-plane occupancy of the tile while the payload is
    /// pending, bounded by the configured depth (non-interference).
    pub queue_peak: usize,
    /// The target epoch's switch charge before the hoist, ns.
    pub reconfig_before_ns: f64,
    /// The target epoch's switch charge after the hoist, ns
    /// (WCET-containment: the hoisted bound only shrinks).
    pub reconfig_after_ns: f64,
}

/// One applied hoist: the payload of `epochs[target].tiles[slot]`,
/// prefetched into earlier idle windows and committed at the original
/// switch point.
#[derive(Debug, Clone, PartialEq)]
pub struct Hoist {
    /// Epoch whose switch originally streamed the payload.
    pub target: usize,
    /// Slot index within the target epoch's tile list.
    pub slot: usize,
    /// The reconfigured tile.
    pub tile: TileId,
    /// Data words in the payload.
    pub data_words: usize,
    /// Instruction words in the payload.
    pub instr_words: usize,
    /// ICAP time of the payload, ns (what the target epoch saves).
    pub payload_ns: f64,
    /// Background-port streaming cycles the payload needs.
    pub stream_cycles: u64,
    /// Reservations that cover `stream_cycles`, all strictly before
    /// `target`, in the order they were packed.
    pub claims: Vec<Claim>,
    /// The discharged proofs.
    pub cert: HoistCertificate,
}

/// A candidate the planner refused, with the failed obligation (L009).
#[derive(Debug, Clone, PartialEq)]
pub struct Refusal {
    /// Epoch whose switch keeps the payload.
    pub target: usize,
    /// Slot index within the target epoch's tile list.
    pub slot: usize,
    /// The reconfigured tile.
    pub tile: TileId,
    /// ICAP time that stays in the foreground, ns.
    pub payload_ns: f64,
    /// Which proof failed and why.
    pub reason: String,
}

/// Planner knobs.
#[derive(Debug, Clone, Copy)]
pub struct HoistOptions {
    /// Shadow-plane slots per tile (pending prefetches a tile can hold).
    /// The default of 8 is sized for the FFT local stages, which queue
    /// one payload per remaining stage behind the cross-stage phase.
    pub shadow_depth: usize,
}

impl Default for HoistOptions {
    fn default() -> HoistOptions {
        HoistOptions { shadow_depth: 8 }
    }
}

/// The hoisting transform for one schedule: applied hoists with their
/// certificates, refusals, the idle-window map, and the materialized
/// L008–L010 diagnostics.
#[derive(Debug, Clone, Default)]
pub struct HoistPlan {
    /// Shadow-plane depth the plan was built for.
    pub shadow_depth: usize,
    /// Applied hoists, in (target, slot) order.
    pub hoists: Vec<Hoist>,
    /// Refused candidates.
    pub refused: Vec<Refusal>,
    /// Non-empty idle windows under the final stalls.
    pub windows: Vec<IdleWindow>,
    /// Σ foreground switch time before hoisting, ns.
    pub reconfig_before_ns: f64,
    /// Σ foreground switch time after hoisting, ns.
    pub reconfig_after_ns: f64,
    /// L008/L009/L010 findings at the configured levels.
    pub diags: Vec<Diagnostic>,
}

impl HoistPlan {
    /// Total ICAP time moved off the critical path, ns.
    pub fn hoisted_ns(&self) -> f64 {
        self.hoists.iter().map(|h| h.payload_ns).sum()
    }

    /// True when `epochs[target].tiles[slot]` is prefetched by this plan.
    pub fn is_hoisted(&self, target: usize, slot: usize) -> bool {
        self.hoists
            .iter()
            .any(|h| h.target == target && h.slot == slot)
    }

    /// The applied hoists targeting one epoch.
    pub fn hoists_for(&self, target: usize) -> impl Iterator<Item = &Hoist> {
        self.hoists.iter().filter(move |h| h.target == target)
    }
}

/// First patched word of a slot, for diagnostic provenance.
fn slot_word(e: &EpochSpec, slot: usize) -> Option<usize> {
    e.tiles
        .get(slot)
        .and_then(|s| s.data_patches.first())
        .map(|p| p.base)
}

/// Builds the hoisting plan for a schedule: computes the idle-window
/// map, packs every per-slot payload it can prove safe into earlier
/// windows (latest-first, so early shared capacity is preserved for the
/// early targets that have no other option), and discharges the three
/// certificates per hoist. Epoch 0 has nothing earlier and is never a
/// target; payloads that do not fit are refused with the failed
/// obligation. The input schedule is not modified — the plan is applied
/// by the simulator's hoisted runner and priced by [`hoisted_bound`].
pub fn plan_hoists(
    mesh: Mesh,
    epochs: &[EpochSpec],
    levels: &LintLevels,
    cost: &CostModel,
    opts: &HoistOptions,
) -> HoistPlan {
    let facts = epoch_facts(mesh, epochs);
    let n = epochs.len();
    let mut fg: Vec<Foreground> = facts
        .iter()
        .map(|f| Foreground {
            data_words: f.slots.iter().map(|s| s.data_words).sum(),
            instr_words: f.slots.iter().map(|s| s.instr_words).sum(),
            links: f.links_changed,
        })
        .collect();
    let mut plan = HoistPlan {
        shadow_depth: opts.shadow_depth.max(1),
        reconfig_before_ns: fg.iter().map(|f| f.ns(cost)).sum(),
        ..HoistPlan::default()
    };
    // Background-port fill per epoch and segment, and shadow occupancy
    // per (tile, epoch).
    let mut head_fill = vec![0u64; n];
    let mut tail_fill = vec![0u64; n];
    let mut occupancy = vec![vec![0usize; n]; mesh.tiles()];

    for j in 1..n {
        // Epochs before j are final: their own targets were processed
        // already, so their stalls only shrank before being read here.
        for (slot, payload) in facts[j].slots.clone().into_iter().enumerate() {
            if payload.tile >= mesh.tiles() {
                continue;
            }
            let payload_ns =
                cost.data_reload_ns(payload.data_words) + cost.instr_reload_ns(payload.instr_words);
            if payload_ns <= 0.0 {
                continue; // no-op slot, nothing to move
            }
            let stream_cycles = cost.stall_cycles(payload_ns);
            // Pack claims latest-first: windows close to j are useless
            // to earlier targets, early windows are everyone's.
            let mut remaining = stream_cycles;
            let mut claims = Vec::new();
            let mut proofs = Vec::new();
            for e in (0..j).rev() {
                if remaining == 0 {
                    break;
                }
                for segment in [Segment::Tail, Segment::Head] {
                    if remaining == 0 {
                        break;
                    }
                    let (window, fill) = match segment {
                        Segment::Tail => (tail_window(&facts[e], payload.tile), tail_fill[e]),
                        Segment::Head => (fg[e].stall(cost), head_fill[e]),
                    };
                    let free = window.saturating_sub(fill);
                    if free == 0 {
                        continue;
                    }
                    let c = free.min(remaining);
                    remaining -= c;
                    claims.push(Claim {
                        epoch: e,
                        segment,
                        cycles: c,
                    });
                    proofs.push(ClaimProof {
                        epoch: e,
                        segment,
                        window,
                        fill_after: fill + c,
                    });
                }
            }
            if remaining > 0 {
                plan.refused.push(Refusal {
                    target: j,
                    slot,
                    tile: payload.tile,
                    payload_ns,
                    reason: format!(
                        "idle-window deficit: {} of {} streaming cycles uncovered by \
                         provably-idle time before the epoch",
                        remaining, stream_cycles
                    ),
                });
                continue;
            }
            // Non-interference: the payload occupies one shadow slot of
            // its tile from its first claimed epoch until the commit.
            let first = claims.iter().map(|c| c.epoch).min().unwrap_or(j);
            let peak = (first..j)
                .map(|e| occupancy[payload.tile][e] + 1)
                .max()
                .unwrap_or(1);
            if peak > plan.shadow_depth {
                plan.refused.push(Refusal {
                    target: j,
                    slot,
                    tile: payload.tile,
                    payload_ns,
                    reason: format!(
                        "shadow plane full: occupancy would reach {} of {} slots",
                        peak, plan.shadow_depth
                    ),
                });
                continue;
            }
            // All three obligations discharge: commit the reservations.
            for c in &claims {
                match c.segment {
                    Segment::Head => head_fill[c.epoch] += c.cycles,
                    Segment::Tail => tail_fill[c.epoch] += c.cycles,
                }
            }
            for occ in &mut occupancy[payload.tile][first..j] {
                *occ += 1;
            }
            let before_ns = fg[j].ns(cost);
            fg[j].data_words -= payload.data_words;
            fg[j].instr_words -= payload.instr_words;
            plan.hoists.push(Hoist {
                target: j,
                slot,
                tile: payload.tile,
                data_words: payload.data_words,
                instr_words: payload.instr_words,
                payload_ns,
                stream_cycles,
                claims,
                cert: HoistCertificate {
                    claims: proofs,
                    queue_peak: peak,
                    reconfig_before_ns: before_ns,
                    reconfig_after_ns: fg[j].ns(cost),
                },
            });
        }
    }
    plan.reconfig_after_ns = fg.iter().map(|f| f.ns(cost)).sum();

    // The idle-window map under the final stalls, and the findings.
    for (e, f) in facts.iter().enumerate() {
        let stall = fg[e].stall(cost);
        for t in 0..mesh.tiles() {
            let cycles = stall.saturating_add(tail_window(f, t));
            if cycles > 0 {
                plan.windows.push(IdleWindow {
                    tile: t,
                    epoch: e,
                    cycles,
                });
                if let Some(sev) = levels.severity(Code::IdleWindow) {
                    plan.diags.push(
                        Diagnostic {
                            severity: sev,
                            ..Diagnostic::error(
                                Code::IdleWindow,
                                format!(
                                    "tile provably idle for {cycles} cycles — room to hide \
                                     {:.1} ns of background reconfiguration",
                                    cost.exec_ns(cycles)
                                ),
                            )
                        }
                        .on_tile(t)
                        .in_epoch(e),
                    );
                }
            }
        }
    }
    for h in &plan.hoists {
        if let Some(sev) = levels.severity(Code::HoistApplied) {
            let mut d = Diagnostic {
                severity: sev,
                ..Diagnostic::error(
                    Code::HoistApplied,
                    format!(
                        "{:.1} ns of switch payload ({} data + {} instr words) prefetched \
                         across {} idle window(s); certificates discharged",
                        h.payload_ns,
                        h.data_words,
                        h.instr_words,
                        h.claims.len()
                    ),
                )
            }
            .on_tile(h.tile)
            .in_epoch(h.target);
            if let Some(w) = slot_word(&epochs[h.target], h.slot) {
                d = d.at_word(w);
            }
            plan.diags.push(d);
        }
    }
    for r in &plan.refused {
        if let Some(sev) = levels.severity(Code::HoistInterference) {
            let mut d = Diagnostic {
                severity: sev,
                ..Diagnostic::error(
                    Code::HoistInterference,
                    format!(
                        "{:.1} ns of switch payload stays in the foreground: {}",
                        r.payload_ns, r.reason
                    ),
                )
            }
            .on_tile(r.tile)
            .in_epoch(r.target);
            if let Some(w) = slot_word(&epochs[r.target], r.slot) {
                d = d.at_word(w);
            }
            plan.diags.push(d);
        }
    }
    plan
}

/// Independently re-verifies every certificate of a plan against the
/// schedule it claims to transform. Any discrepancy — a payload that
/// does not match its slot, a claim at or after its target, a tail that
/// overflows a re-derived window, a shadow plane over depth or holding
/// two payloads for one (tile, target), or certificate figures that
/// disagree with the re-derivation — is a
/// [`cgra_verify::Code::HoistRefused`] (L011) **error**: a schedule
/// carrying a prefetch whose proofs fail is certainly broken and must
/// not run. An empty return means every obligation discharged.
pub fn verify_hoists(
    mesh: Mesh,
    epochs: &[EpochSpec],
    plan: &HoistPlan,
    cost: &CostModel,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let refuse = |h: &Hoist, msg: String| {
        Diagnostic {
            severity: Severity::Error,
            ..Diagnostic::error(Code::HoistRefused, msg)
        }
        .on_tile(h.tile)
        .in_epoch(h.target)
    };
    let facts = epoch_facts(mesh, epochs);
    let n = epochs.len();
    let depth = plan.shadow_depth.max(1);

    // Phase 1: payload identity and the final foreground per epoch.
    let mut fg: Vec<Foreground> = facts
        .iter()
        .map(|f| Foreground {
            data_words: f.slots.iter().map(|s| s.data_words).sum(),
            instr_words: f.slots.iter().map(|s| s.instr_words).sum(),
            links: f.links_changed,
        })
        .collect();
    let mut ok = vec![true; plan.hoists.len()];
    let mut seen = Vec::new();
    for (i, h) in plan.hoists.iter().enumerate() {
        let slot = facts.get(h.target).and_then(|f| f.slots.get(h.slot));
        let matches = slot.is_some_and(|s| {
            s.tile == h.tile && s.data_words == h.data_words && s.instr_words == h.instr_words
        });
        if !matches {
            diags.push(refuse(
                h,
                format!(
                    "payload does not match the schedule: slot {} of the target epoch is not \
                     a {}-data/{}-instr-word rewrite of this tile",
                    h.slot, h.data_words, h.instr_words
                ),
            ));
            ok[i] = false;
            continue;
        }
        if seen.contains(&(h.target, h.slot)) {
            diags.push(refuse(h, "slot is hoisted twice".to_string()));
            ok[i] = false;
            continue;
        }
        seen.push((h.target, h.slot));
        fg[h.target].data_words -= h.data_words;
        fg[h.target].instr_words -= h.instr_words;
    }

    // Phase 2: replay the claims in plan order against the re-derived
    // segment windows, port fills and occupancies.
    let mut head_fill = vec![0u64; n];
    let mut tail_fill = vec![0u64; n];
    let mut occupancy = vec![vec![0usize; mesh.tiles()]; n];
    for (i, h) in plan.hoists.iter().enumerate() {
        if !ok[i] {
            continue;
        }
        let payload_ns = cost.data_reload_ns(h.data_words) + cost.instr_reload_ns(h.instr_words);
        let stream_cycles = cost.stall_cycles(payload_ns);
        if (payload_ns - h.payload_ns).abs() > 1e-9 || stream_cycles != h.stream_cycles {
            diags.push(refuse(
                h,
                format!(
                    "certificate misprices the payload: {payload_ns:.3} ns / {stream_cycles} \
                     streaming cycles re-derived"
                ),
            ));
            continue;
        }
        let covered: u64 = h.claims.iter().map(|c| c.cycles).sum();
        if covered < stream_cycles {
            diags.push(refuse(
                h,
                format!(
                    "idle-window proof fails: claims cover {covered} of {stream_cycles} \
                     streaming cycles"
                ),
            ));
            continue;
        }
        if h.claims.len() != h.cert.claims.len() {
            diags.push(refuse(
                h,
                "certificate does not cover every claim".to_string(),
            ));
            continue;
        }
        let mut sound = true;
        for (c, p) in h.claims.iter().zip(&h.cert.claims) {
            if c.epoch >= h.target {
                diags.push(refuse(
                    h,
                    format!("claim in epoch {} is not before the target", c.epoch),
                ));
                sound = false;
                break;
            }
            let window = match c.segment {
                Segment::Head => fg[c.epoch].stall(cost),
                Segment::Tail => tail_window(&facts[c.epoch], h.tile),
            };
            let fill = match c.segment {
                Segment::Head => &mut head_fill[c.epoch],
                Segment::Tail => &mut tail_fill[c.epoch],
            };
            let fill_after = *fill + c.cycles;
            if fill_after > window {
                diags.push(refuse(
                    h,
                    format!(
                        "idle-window proof fails in epoch {} ({:?} segment): port fill \
                         {fill_after} exceeds the provable {window} cycles",
                        c.epoch, c.segment
                    ),
                ));
                sound = false;
                break;
            }
            if p.epoch != c.epoch
                || p.segment != c.segment
                || p.window != window
                || p.fill_after != fill_after
            {
                diags.push(refuse(
                    h,
                    format!(
                        "certificate drifted from the re-derivation in epoch {} \
                         ({:?} segment: window {window}, fill {fill_after})",
                        c.epoch, c.segment
                    ),
                ));
                sound = false;
                break;
            }
            *fill = fill_after;
        }
        if !sound {
            continue;
        }
        let first = h.claims.iter().map(|c| c.epoch).min().unwrap_or(h.target);
        let mut peak = 0usize;
        for occ in &mut occupancy[first..h.target] {
            occ[h.tile] += 1;
            peak = peak.max(occ[h.tile]);
        }
        if peak > depth || h.cert.queue_peak != peak {
            diags.push(refuse(
                h,
                format!(
                    "non-interference proof fails: shadow occupancy reaches {peak} of \
                     {depth} slots (certificate said {})",
                    h.cert.queue_peak
                ),
            ));
            continue;
        }
        let after_ns = fg[h.target].ns(cost);
        if h.cert.reconfig_after_ns < after_ns - 1e-9
            || h.cert.reconfig_after_ns > h.cert.reconfig_before_ns
        {
            diags.push(refuse(
                h,
                format!(
                    "WCET-containment proof fails: hoisted switch charge {:.3} ns vs \
                     re-derived floor {after_ns:.3} ns",
                    h.cert.reconfig_after_ns
                ),
            ));
            continue;
        }
    }
    diags
}

/// Reprices a static schedule bound under a hoisting plan: every
/// hoisted payload's words leave its target epoch's
/// [`cgra_fabric::cost::TransitionBreakdown`], and the epoch's
/// `reconfig_ns` / `stall_cycles` are re-derived. Compute and traffic
/// intervals are invariant — the same programs run at the same epoch
/// boundaries — so the hoisted bound still contains every observed
/// runtime the original bound contained, with a strictly smaller
/// reconfiguration term.
pub fn hoisted_bound(bound: &ScheduleBound, plan: &HoistPlan, cost: &CostModel) -> ScheduleBound {
    let mut out = bound.clone();
    for h in &plan.hoists {
        if let Some(eb) = out.epochs.get_mut(h.target) {
            eb.breakdown.data_words = eb.breakdown.data_words.saturating_sub(h.data_words);
            eb.breakdown.instr_words = eb.breakdown.instr_words.saturating_sub(h.instr_words);
            eb.reconfig_ns = eb.breakdown.total_ns(cost);
            eb.stall_cycles = cost.stall_cycles(eb.reconfig_ns);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_fabric::{DataPatch, Word};
    use cgra_isa::ops::d;
    use cgra_isa::Instr;
    use cgra_verify::TileSpec;

    fn counter_prog(trips: i32) -> Vec<Instr> {
        vec![
            Instr::Ldi {
                dst: d(0),
                imm: trips,
            },
            Instr::Nop,
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ]
    }

    fn idle_prog() -> Vec<Instr> {
        vec![Instr::Halt]
    }

    fn patch(base: usize, n: usize) -> DataPatch {
        DataPatch::new(base, vec![Word::wrap(3); n])
    }

    /// Two tiles: e0 runs a long counter on tile 0 while tile 1 halts at
    /// once; e1 rewrites tile 1. Tile 1's e0 idle tail must swallow the
    /// e1 payload.
    fn two_epoch_fixture() -> (
        Mesh,
        cgra_fabric::LinkConfig,
        Vec<Instr>,
        Vec<Instr>,
        Vec<Instr>,
        Vec<DataPatch>,
    ) {
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected();
        (
            mesh,
            links,
            counter_prog(200),
            idle_prog(),
            counter_prog(2),
            vec![patch(10, 8)],
        )
    }

    fn specs<'a>(
        links: &'a cgra_fabric::LinkConfig,
        p0: &'a [Instr],
        p1: &'a [Instr],
        p1b: &'a [Instr],
        patches: &'a [DataPatch],
    ) -> Vec<EpochSpec<'a>> {
        vec![
            EpochSpec {
                name: "warm",
                links,
                tiles: vec![
                    TileSpec {
                        tile: 0,
                        program: Some(p0),
                        data_patches: &[],
                    },
                    TileSpec {
                        tile: 1,
                        program: Some(p1),
                        data_patches: &[],
                    },
                ],
            },
            EpochSpec {
                name: "rewrite-1",
                links,
                tiles: vec![TileSpec {
                    tile: 1,
                    program: Some(p1b),
                    data_patches: patches,
                }],
            },
        ]
    }

    #[test]
    fn payload_hoists_into_idle_tail() {
        let (mesh, links, p0, p1, p1b, patches) = two_epoch_fixture();
        let es = specs(&links, &p0, &p1, &p1b, &patches);
        let cost = CostModel::default();
        let plan = plan_hoists(
            mesh,
            &es,
            &LintLevels::default(),
            &cost,
            &HoistOptions::default(),
        );
        // Tile 1's payload (4 instr + 8 data words = 466.7 ns, 187
        // cycles) fits tile 1's e0 window (counter runs 402 cycles,
        // tile 1 halts after 1).
        assert_eq!(plan.hoists.len(), 1, "{:?}", plan.refused);
        let h = &plan.hoists[0];
        assert_eq!((h.target, h.tile, h.slot), (1, 1, 0));
        assert_eq!((h.data_words, h.instr_words), (8, 4));
        assert!(h.claims.iter().all(|c| c.epoch == 0));
        assert!(h.cert.reconfig_after_ns < h.cert.reconfig_before_ns);
        assert!(plan.reconfig_after_ns < plan.reconfig_before_ns);
        assert!(plan
            .windows
            .iter()
            .any(|w| w.tile == 1 && w.epoch == 0 && w.cycles > 100));
        // The certificates re-verify clean.
        assert!(verify_hoists(mesh, &es, &plan, &cost).is_empty());
    }

    #[test]
    fn oversized_payload_is_refused() {
        let (mesh, links, p0, p1, p1b, _) = two_epoch_fixture();
        // 500 data words stream for ~6700 cycles; the window is ~400.
        let big = vec![patch(0, 500)];
        let es = specs(&links, &p0, &p1, &p1b, &big);
        let cost = CostModel::default();
        let plan = plan_hoists(
            mesh,
            &es,
            &LintLevels::default(),
            &cost,
            &HoistOptions::default(),
        );
        assert!(plan.hoists.is_empty());
        assert_eq!(plan.refused.len(), 1);
        assert!(plan.refused[0].reason.contains("idle-window deficit"));
        assert!((plan.reconfig_after_ns - plan.reconfig_before_ns).abs() < 1e-9);
    }

    #[test]
    fn fabricated_claims_are_refused_by_reverification() {
        let (mesh, links, p0, p1, p1b, patches) = two_epoch_fixture();
        let es = specs(&links, &p0, &p1, &p1b, &patches);
        let cost = CostModel::default();
        let good = plan_hoists(
            mesh,
            &es,
            &LintLevels::default(),
            &cost,
            &HoistOptions::default(),
        );
        assert_eq!(good.hoists.len(), 1);

        // A fabricated idle window: claim the busy tile-0 slot instead.
        let mut lying = good.clone();
        lying.hoists[0].tile = 0;
        let d = verify_hoists(mesh, &es, &lying, &cost);
        assert!(d
            .iter()
            .any(|d| d.code == Code::HoistRefused && d.is_error()));

        // Claims at/after the target are structurally unsound.
        let mut late = good.clone();
        for c in &mut late.hoists[0].claims {
            c.epoch = 1;
        }
        for p in &mut late.hoists[0].cert.claims {
            p.epoch = 1;
        }
        let d = verify_hoists(mesh, &es, &late, &cost);
        assert!(d.iter().any(|d| d.code == Code::HoistRefused));

        // Inflated window figures in the certificate are caught.
        let mut drifted = good.clone();
        for p in &mut drifted.hoists[0].cert.claims {
            p.window += 1_000_000;
        }
        let d = verify_hoists(mesh, &es, &drifted, &cost);
        assert!(d.iter().any(|d| d.code == Code::HoistRefused));

        // The honest plan still passes.
        assert!(verify_hoists(mesh, &es, &good, &cost).is_empty());
    }

    #[test]
    fn hoisted_bound_shrinks_only_reconfig() {
        let (mesh, links, p0, p1, p1b, patches) = two_epoch_fixture();
        let es = specs(&links, &p0, &p1, &p1b, &patches);
        let cost = CostModel::default();
        let plan = plan_hoists(
            mesh,
            &es,
            &LintLevels::default(),
            &cost,
            &HoistOptions::default(),
        );
        let base = cgra_verify::bound_schedule(mesh, &cost, &es);
        let hoisted = hoisted_bound(&base, &plan, &cost);
        assert_eq!(
            hoisted.total_compute_ns(),
            base.total_compute_ns(),
            "compute is invariant under hoisting"
        );
        let saved = base.total_reconfig_ns() - hoisted.total_reconfig_ns();
        assert!((saved - plan.hoisted_ns()).abs() < 1e-9);
        assert!(hoisted.epochs[1].reconfig_ns < base.epochs[1].reconfig_ns);
        assert_eq!(hoisted.epochs[0].reconfig_ns, base.epochs[0].reconfig_ns);
    }

    #[test]
    fn shadow_depth_gates_deep_queues() {
        // Three consecutive rewrites of tile 1 behind one long epoch:
        // with depth 1 only a prefix can be pending at once.
        let mesh = Mesh::new(1, 2);
        let links = mesh.disconnected();
        let p0 = counter_prog(3000);
        let p1 = idle_prog();
        let rewrites: Vec<Vec<Instr>> = (0..3).map(|_| counter_prog(2)).collect();
        let mut es = vec![EpochSpec {
            name: "warm",
            links: &links,
            tiles: vec![
                TileSpec {
                    tile: 0,
                    program: Some(&p0),
                    data_patches: &[],
                },
                TileSpec {
                    tile: 1,
                    program: Some(&p1),
                    data_patches: &[],
                },
            ],
        }];
        for r in &rewrites {
            es.push(EpochSpec {
                name: "rw",
                links: &links,
                tiles: vec![TileSpec {
                    tile: 1,
                    program: Some(r),
                    data_patches: &[],
                }],
            });
        }
        let cost = CostModel::default();
        let deep = plan_hoists(
            mesh,
            &es,
            &LintLevels::default(),
            &cost,
            &HoistOptions { shadow_depth: 8 },
        );
        let shallow = plan_hoists(
            mesh,
            &es,
            &LintLevels::default(),
            &cost,
            &HoistOptions { shadow_depth: 1 },
        );
        assert!(deep.hoists.len() > shallow.hoists.len());
        assert!(shallow
            .refused
            .iter()
            .any(|r| r.reason.contains("shadow plane full")));
        assert!(verify_hoists(mesh, &es, &deep, &cost).is_empty());
        assert!(verify_hoists(mesh, &es, &shallow, &cost).is_empty());
    }
}
