//! Applying lint removals: the reconfiguration-diff minimizer.
//!
//! [`minimize_patches`] rewrites one tile-slot's data-patch list with a
//! set of removable words dropped. A removal in the middle of a patch
//! splits it — the surviving words keep their exact base addresses and
//! payloads, so the fixed switch writes precisely the non-redundant
//! subset of the original words, in the original order.

use cgra_fabric::DataPatch;

/// Rewrites `patches` with the `(patch index, word index)` pairs in
/// `removed` dropped, splitting patches around the holes. Pairs that are
/// out of range are ignored; empty survivors are not emitted.
///
/// The result streams `Σ len - |removed|` data words and initializes
/// exactly the original address set minus the removed words.
pub fn minimize_patches(patches: &[DataPatch], removed: &[(usize, usize)]) -> Vec<DataPatch> {
    let mut out = Vec::with_capacity(patches.len());
    for (pi, p) in patches.iter().enumerate() {
        let mut run_start: Option<usize> = None;
        for wi in 0..=p.len() {
            let drop = wi == p.len() || removed.contains(&(pi, wi));
            match (drop, run_start) {
                (false, None) => run_start = Some(wi),
                (true, Some(s)) => {
                    out.push(DataPatch::new(p.base + s, p.words[s..wi].to_vec()));
                    run_start = None;
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_fabric::Word;

    fn patch(base: usize, vals: &[i64]) -> DataPatch {
        DataPatch::new(base, vals.iter().map(|&v| Word::wrap(v)).collect())
    }

    #[test]
    fn untouched_patches_survive_verbatim() {
        let ps = vec![patch(10, &[1, 2, 3]), patch(40, &[4])];
        assert_eq!(minimize_patches(&ps, &[]), ps);
    }

    #[test]
    fn middle_removal_splits_a_patch() {
        let ps = vec![patch(10, &[1, 2, 3, 4])];
        let fixed = minimize_patches(&ps, &[(0, 1)]);
        assert_eq!(fixed, vec![patch(10, &[1]), patch(12, &[3, 4])]);
    }

    #[test]
    fn edge_removals_trim_without_splitting() {
        let ps = vec![patch(5, &[1, 2, 3])];
        assert_eq!(minimize_patches(&ps, &[(0, 0)]), vec![patch(6, &[2, 3])]);
        assert_eq!(minimize_patches(&ps, &[(0, 2)]), vec![patch(5, &[1, 2])]);
    }

    #[test]
    fn fully_removed_patch_vanishes() {
        let ps = vec![patch(0, &[7, 8]), patch(20, &[9])];
        let fixed = minimize_patches(&ps, &[(0, 0), (0, 1)]);
        assert_eq!(fixed, vec![patch(20, &[9])]);
    }

    #[test]
    fn out_of_range_pairs_are_ignored() {
        let ps = vec![patch(0, &[1])];
        assert_eq!(minimize_patches(&ps, &[(3, 0), (0, 9)]), ps);
    }
}
