//! The whole-schedule lint pass.
//!
//! [`lint_schedule`] walks an epoch schedule once, carrying a per-tile,
//! per-word *definition* state across epochs:
//!
//! * every write is a **definition** tagged with its producer kind — an
//!   ICAP data patch, a local program store, or an inbound `T_copy`
//!   remote write — and the epoch it happened in,
//! * program reads **consume** the definitions of the words they touch
//!   (reads through unresolvable registers conservatively consume every
//!   definition on the tile),
//! * a write over an **unconsumed** definition is a *kill*, classified by
//!   the killer: [`Code::ClobberByPatch`] / [`Code::ClobberByCopy`] /
//!   [`Code::ClobberByStore`] when computed data dies,
//!   [`Code::DeadInit`] when a patched word dies unread,
//! * a patch word whose payload equals the value the schedule verifier
//!   already knows the word holds is a no-op rewrite
//!   ([`Code::RedundantPatch`]) and is recorded as a [`Removal`] the
//!   fixer can apply — removing it cannot change any memory state, so
//!   the fixed schedule is bit-exact and strictly cheaper under Eq. 1.
//!
//! Two configuration-diff lints ride the same walk: a tile reloaded with
//! the byte-identical program image ([`Code::RedundantReload`], priced
//! but *not* auto-removed — a reload is what re-arms a halted PE) and
//! instruction slots unreachable from the entry that the ICAP streams
//! anyway ([`Code::UnreachableImem`]).
//!
//! Soundness notes live in `DESIGN.md` Section 11. The short form: the
//! pass never reports a deny-level finding from a may-property (patch
//! writes are exact; havocked or register-unresolvable effect summaries
//! conservatively mark everything consumed), and a [`Removal`] is only
//! emitted when the surviving value is a *must*-constant, so applying it
//! preserves every intermediate memory state, not just the final one.

use crate::level::LintLevels;
use cgra_fabric::{CostModel, Mesh, TileId, TransitionBreakdown, DATA_WORDS};
use cgra_isa::encode_program;
use cgra_verify::{Cfg, Code, Diagnostic, EpochSpec, ScheduleChecker};

/// Who produced the value a data-memory word currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DefKind {
    /// An ICAP data patch wrote it during an epoch switch.
    Patch,
    /// The tile's own program stored it.
    Store,
    /// A neighbour's `T_copy` remote write delivered it.
    Inbound,
}

impl DefKind {
    fn describe(self) -> &'static str {
        match self {
            DefKind::Patch => "patch",
            DefKind::Store => "store",
            DefKind::Inbound => "inbound copy",
        }
    }
}

/// One live definition.
#[derive(Debug, Clone, Copy)]
struct Def {
    kind: DefKind,
    epoch: usize,
    read: bool,
}

/// A patch word the minimizer can drop: its payload equals the value the
/// word is statically known to already hold at switch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Removal {
    /// Epoch index in the schedule.
    pub epoch: usize,
    /// Index into that epoch's `tiles` list (mirrors the `setups` order
    /// of a `cgra_sim::Epoch`, which may list a tile more than once).
    pub slot: usize,
    /// The tile the patch targets.
    pub tile: TileId,
    /// Index into the slot's `data_patches`.
    pub patch: usize,
    /// Word offset within that patch.
    pub word: usize,
    /// The (unchanged) value the word holds.
    pub value: i64,
}

/// Before/after Eq. 1 decomposition of one epoch switch.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionSavings {
    /// Epoch index.
    pub epoch: usize,
    /// Epoch name.
    pub name: String,
    /// What the switch streams as scheduled.
    pub before: TransitionBreakdown,
    /// What it would stream with the removable patch words dropped.
    pub after: TransitionBreakdown,
}

impl TransitionSavings {
    /// Predicted Eq. 1 savings of minimizing this transition, ns.
    pub fn saved_ns(&self, cost: &CostModel) -> f64 {
        cost.data_reload_ns(self.before.data_words - self.after.data_words)
    }
}

/// Everything one lint run over a schedule produced.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Materialized findings (allowed lints are already dropped).
    pub diags: Vec<Diagnostic>,
    /// Patch words the minimizer may drop, in schedule order.
    pub removals: Vec<Removal>,
    /// Per-transition Eq. 1 decomposition, one entry per epoch.
    pub transitions: Vec<TransitionSavings>,
    /// The cost model the savings were priced with.
    pub cost: CostModel,
}

impl LintReport {
    /// True when any finding reached deny level.
    pub fn denied(&self) -> bool {
        cgra_verify::has_errors(&self.diags)
    }

    /// Findings of one code.
    pub fn count(&self, code: Code) -> usize {
        self.diags.iter().filter(|d| d.code == code).count()
    }

    /// Total predicted Eq. 1 savings of applying every removal, ns.
    pub fn saved_ns(&self) -> f64 {
        self.transitions
            .iter()
            .map(|t| t.saved_ns(&self.cost))
            .sum()
    }

    /// The removals targeting one `(epoch, slot)`, as `(patch, word)`
    /// pairs for [`crate::fix::minimize_patches`].
    pub fn removals_for(&self, epoch: usize, slot: usize) -> Vec<(usize, usize)> {
        self.removals
            .iter()
            .filter(|r| r.epoch == epoch && r.slot == slot)
            .map(|r| (r.patch, r.word))
            .collect()
    }
}

/// A kill event buffered for range-compressed reporting.
struct Kill {
    addr: usize,
    code: Code,
    def: Def,
}

/// Compresses kills into maximal runs of consecutive addresses that share
/// the code and the definition's kind/epoch, and emits one diagnostic per
/// run at the configured level.
fn emit_kills(
    diags: &mut Vec<Diagnostic>,
    levels: &LintLevels,
    mut kills: Vec<Kill>,
    tile: TileId,
    epoch: usize,
) {
    kills.sort_by_key(|k| k.addr);
    let mut i = 0;
    while i < kills.len() {
        let mut j = i + 1;
        while j < kills.len()
            && kills[j].addr == kills[j - 1].addr + 1
            && kills[j].code == kills[i].code
            && kills[j].def.kind == kills[i].def.kind
            && kills[j].def.epoch == kills[i].def.epoch
        {
            j += 1;
        }
        let (k, count) = (&kills[i], j - i);
        if let Some(sev) = levels.severity(k.code) {
            let span = if count == 1 {
                format!("d[{}]", k.addr)
            } else {
                format!("d[{}..{}]", k.addr, k.addr + count)
            };
            let what = match k.code {
                Code::ClobberByPatch => "reconfiguration patch destroys",
                Code::ClobberByCopy => "inbound copy overwrites",
                Code::ClobberByStore => "store overwrites",
                _ => "overwrite kills",
            };
            let message = if k.code == Code::DeadInit {
                format!(
                    "{span}: patched in epoch {} but overwritten before any program read it",
                    k.def.epoch
                )
            } else {
                format!(
                    "{span}: {what} data computed in epoch {} ({}) that no program read",
                    k.def.epoch,
                    k.def.kind.describe()
                )
            };
            diags.push(
                Diagnostic {
                    severity: sev,
                    ..Diagnostic::error(k.code, message)
                }
                .on_tile(tile)
                .in_epoch(epoch),
            );
        }
        i = j;
    }
}

/// Records a kill of any unconsumed definition at `addr` and installs the
/// new definition.
fn kill_and_define(
    state: &mut [Option<Def>],
    kills: &mut Vec<Kill>,
    addr: usize,
    killer: DefKind,
    epoch: usize,
) {
    if let Some(d) = state[addr] {
        if !d.read {
            let code = match d.kind {
                DefKind::Patch => Code::DeadInit,
                DefKind::Store | DefKind::Inbound => match killer {
                    DefKind::Patch => Code::ClobberByPatch,
                    DefKind::Inbound => Code::ClobberByCopy,
                    DefKind::Store => Code::ClobberByStore,
                },
            };
            kills.push(Kill { addr, code, def: d });
        }
    }
    state[addr] = Some(Def {
        kind: killer,
        epoch,
        read: false,
    });
}

/// Runs the whole-schedule lint pass. The schedule is assumed to already
/// pass [`cgra_verify::verify_schedule`] — lint findings on a schedule
/// the verifier rejects are not meaningful (overlapping patches, illegal
/// links and unknown tiles are skipped here, not re-reported).
pub fn lint_schedule(
    mesh: Mesh,
    epochs: &[EpochSpec],
    levels: &LintLevels,
    cost: &CostModel,
) -> LintReport {
    let mut checker = ScheduleChecker::new(mesh);
    let mut state: Vec<Vec<Option<Def>>> = vec![vec![None; DATA_WORDS]; mesh.tiles()];
    let mut last_image: Vec<Option<Vec<u128>>> = vec![None; mesh.tiles()];
    let mut prev_links = mesh.disconnected();
    let mut report = LintReport {
        diags: Vec::new(),
        removals: Vec::new(),
        transitions: Vec::with_capacity(epochs.len()),
        cost: *cost,
    };

    for (ei, e) in epochs.iter().enumerate() {
        // --- Transition decomposition (before minimization). -------------
        let mut before = TransitionBreakdown {
            data_words: 0,
            instr_words: 0,
            links: prev_links.delta(e.links),
        };
        prev_links = e.links.clone();
        let mut removed_here = 0usize;

        // --- Patches: redundancy + kills, against the pre-epoch state. ---
        for (slot, spec) in e.tiles.iter().enumerate() {
            let t = spec.tile;
            if t >= mesh.tiles() {
                continue;
            }
            before.instr_words += spec.program.map_or(0, <[_]>::len);
            let mut kills = Vec::new();
            for (pi, p) in spec.data_patches.iter().enumerate() {
                before.data_words += p.len();
                if p.base + p.len() > DATA_WORDS {
                    continue; // verifier error; nothing sound to say here
                }
                let mut redundant = 0usize;
                for (wi, w) in p.words.iter().enumerate() {
                    let addr = p.base + wi;
                    let value = w.value();
                    if checker.known_value(t, addr) == Some(value) {
                        // No-op rewrite: removable, and the definition
                        // state is deliberately left untouched (the word
                        // neither gains nor loses a pending value).
                        redundant += 1;
                        removed_here += 1;
                        report.removals.push(Removal {
                            epoch: ei,
                            slot,
                            tile: t,
                            patch: pi,
                            word: wi,
                            value,
                        });
                    } else {
                        kill_and_define(&mut state[t], &mut kills, addr, DefKind::Patch, ei);
                    }
                }
                if redundant > 0 {
                    if let Some(sev) = levels.severity(Code::RedundantPatch) {
                        report.diags.push(
                            Diagnostic {
                                severity: sev,
                                ..Diagnostic::error(
                                    Code::RedundantPatch,
                                    format!(
                                        "data patch at d[{}]: {redundant}/{} words rewrite values \
                                         the memory already holds ({:.1} ns removable)",
                                        p.base,
                                        p.len(),
                                        cost.data_reload_ns(redundant)
                                    ),
                                )
                            }
                            .on_tile(t)
                            .in_epoch(ei),
                        );
                    }
                }
            }
            emit_kills(&mut report.diags, levels, kills, t, ei);
        }

        // --- Advance the verifier state and collect effect summaries. ----
        let analysis = checker.analyze_epoch(e);

        // --- Configuration-diff lints on the loaded programs. ------------
        for ta in &analysis.tiles {
            let image = encode_program(ta.prog);
            if last_image[ta.tile].as_ref() == Some(&image) {
                if let Some(sev) = levels.severity(Code::RedundantReload) {
                    report.diags.push(
                        Diagnostic {
                            severity: sev,
                            ..Diagnostic::error(
                                Code::RedundantReload,
                                format!(
                                    "tile reloaded with the {}-instruction image it already \
                                     holds ({:.0} ns of ICAP time; the reload re-arms the PE, \
                                     so it is reported, not removed)",
                                    image.len(),
                                    cost.instr_reload_ns(image.len())
                                ),
                            )
                        }
                        .on_tile(ta.tile)
                        .in_epoch(ei),
                    );
                }
            }
            last_image[ta.tile] = Some(image);
            if ta.summary.is_some() {
                let cfg = Cfg::build(ta.prog);
                let reachable = cfg.reachable();
                let dead: usize = cfg
                    .blocks
                    .iter()
                    .zip(&reachable)
                    .filter(|(_, r)| !**r)
                    .map(|(b, _)| b.end - b.start)
                    .sum();
                if dead > 0 {
                    if let Some(sev) = levels.severity(Code::UnreachableImem) {
                        report.diags.push(
                            Diagnostic {
                                severity: sev,
                                ..Diagnostic::error(
                                    Code::UnreachableImem,
                                    format!(
                                        "{dead} of {} instruction slots are unreachable from \
                                         the entry ({:.0} ns of ICAP reload wasted)",
                                        ta.prog.len(),
                                        cost.instr_reload_ns(dead)
                                    ),
                                )
                            }
                            .on_tile(ta.tile)
                            .in_epoch(ei),
                        );
                    }
                }
            }
        }

        // --- Reads consume definitions. ----------------------------------
        for ta in &analysis.tiles {
            let Some(s) = &ta.summary else { continue };
            let havoc = s.written.len() == DATA_WORDS;
            if s.read_unknown || havoc {
                // The program may read (or, havocked, may have written
                // after reading) anything: conservatively consume every
                // definition on the tile.
                for d in state[ta.tile].iter_mut().flatten() {
                    d.read = true;
                }
            } else {
                for addr in s.read.iter() {
                    if let Some(d) = &mut state[ta.tile][addr] {
                        d.read = true;
                    }
                }
            }
        }

        // --- Inbound T_copy writes kill and define. ----------------------
        let mut inbound_kills: Vec<(TileId, Vec<Kill>)> = Vec::new();
        for ta in &analysis.tiles {
            let Some(s) = &ta.summary else { continue };
            if !s.has_remote_write {
                continue;
            }
            let Some(dir) = e.links.get(ta.tile) else {
                continue; // verifier error (remote write, no link)
            };
            let Some(dst) = mesh.neighbour(ta.tile, dir) else {
                continue;
            };
            if s.remote_unknown {
                // Could land anywhere: consume everything, claim nothing.
                for d in state[dst].iter_mut().flatten() {
                    d.read = true;
                }
                continue;
            }
            let mut kills = Vec::new();
            for addr in s.remote_written.iter() {
                kill_and_define(&mut state[dst], &mut kills, addr, DefKind::Inbound, ei);
            }
            inbound_kills.push((dst, kills));
        }
        for (dst, kills) in inbound_kills {
            emit_kills(&mut report.diags, levels, kills, dst, ei);
        }

        // --- Program stores kill and define. -----------------------------
        for ta in &analysis.tiles {
            let Some(s) = &ta.summary else { continue };
            if s.written.len() == DATA_WORDS {
                continue; // havoc: already consumed everything above
            }
            let mut kills = Vec::new();
            for addr in s.written.iter() {
                kill_and_define(&mut state[ta.tile], &mut kills, addr, DefKind::Store, ei);
            }
            emit_kills(&mut report.diags, levels, kills, ta.tile, ei);
        }

        let after = TransitionBreakdown {
            data_words: before.data_words - removed_here,
            ..before
        };
        report.transitions.push(TransitionSavings {
            epoch: ei,
            name: e.name.to_string(),
            before,
            after,
        });
    }

    // --- End of schedule: patched words nothing ever consumed. -----------
    for (t, words) in state.iter().enumerate() {
        let mut kills = Vec::new();
        for (addr, d) in words.iter().enumerate() {
            if let Some(d) = d {
                if d.kind == DefKind::Patch && !d.read {
                    kills.push(Kill {
                        addr,
                        code: Code::DeadInit,
                        def: *d,
                    });
                }
            }
        }
        // Stores and inbound copies surviving unread are the schedule's
        // outputs — never flagged. Range-compress and rewrite the message
        // for the end-of-schedule flavour.
        let mut diags = Vec::new();
        emit_kills(&mut diags, levels, kills, t, epochs.len().saturating_sub(1));
        for mut d in diags {
            if let Some((span, _)) = d.message.split_once(':') {
                d.message = format!("{span}: patched but never read by any program");
            }
            d.epoch = None;
            report.diags.push(d);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::LintLevel;
    use cgra_fabric::{DataPatch, Word};
    use cgra_isa::ops::{at, d};
    use cgra_isa::{Instr, ProgramBuilder};
    use cgra_verify::TileSpec;

    fn patch(base: usize, vals: &[i64]) -> DataPatch {
        DataPatch::new(base, vals.iter().map(|&v| Word::wrap(v)).collect())
    }

    /// Reads each listed word into scratch space, then halts.
    fn reader(addrs: &[u16]) -> Vec<Instr> {
        let mut p = ProgramBuilder::new();
        for (i, &a) in addrs.iter().enumerate() {
            p.mov(d(100 + i as u16), d(a));
        }
        p.halt();
        p.build().expect("reader is valid")
    }

    /// Stores `v` to `d[addr]` and halts.
    fn writer(addr: u16, v: i32) -> Vec<Instr> {
        let mut p = ProgramBuilder::new();
        p.ldi(d(addr), v);
        p.halt();
        p.build().expect("writer is valid")
    }

    fn halt() -> Vec<Instr> {
        vec![Instr::Halt]
    }

    fn lint(mesh: Mesh, epochs: &[EpochSpec]) -> LintReport {
        lint_schedule(mesh, epochs, &LintLevels::new(), &CostModel::default())
    }

    #[test]
    fn repatching_known_values_is_redundant_and_removable() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let read = reader(&[0, 1, 2, 3]);
        let p0 = [patch(0, &[1, 2, 3, 4])];
        let epochs = [
            EpochSpec {
                name: "load",
                links: &links,
                tiles: vec![TileSpec {
                    tile: 0,
                    program: Some(&read),
                    data_patches: &p0,
                }],
            },
            EpochSpec {
                name: "reload",
                links: &links,
                tiles: vec![TileSpec {
                    tile: 0,
                    program: Some(&read),
                    data_patches: &p0,
                }],
            },
        ];
        let r = lint(mesh, &epochs);
        assert_eq!(r.count(Code::RedundantPatch), 1, "{:#?}", r.diags);
        assert_eq!(r.count(Code::DeadInit), 0, "{:#?}", r.diags);
        assert!(!r.denied());
        assert_eq!(r.removals.len(), 4);
        assert_eq!(r.removals_for(1, 0), vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        assert!(
            r.removals_for(0, 0).is_empty(),
            "first send is not redundant"
        );
        assert_eq!(r.transitions[1].before.data_words, 4);
        assert_eq!(r.transitions[1].after.data_words, 0);
        let cost = CostModel::default();
        assert!((r.saved_ns() - cost.data_reload_ns(4)).abs() < 1e-9);
    }

    #[test]
    fn patch_over_unread_store_is_denied_with_provenance() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let w = writer(5, 7);
        let p1 = [patch(5, &[9])];
        let epochs = [
            EpochSpec {
                name: "compute",
                links: &links,
                tiles: vec![TileSpec {
                    tile: 0,
                    program: Some(&w),
                    data_patches: &[],
                }],
            },
            EpochSpec {
                name: "switch",
                links: &links,
                tiles: vec![TileSpec {
                    tile: 0,
                    program: None,
                    data_patches: &p1,
                }],
            },
        ];
        let r = lint(mesh, &epochs);
        assert_eq!(r.count(Code::ClobberByPatch), 1, "{:#?}", r.diags);
        assert!(r.denied(), "clobber-by-patch denies by default");
        let diag = r
            .diags
            .iter()
            .find(|d| d.code == Code::ClobberByPatch)
            .unwrap();
        assert!(diag.message.contains("epoch 0"), "{}", diag.message);
        assert!(diag.message.contains("store"), "{}", diag.message);
        assert_eq!(diag.tile, Some(0));
        assert_eq!(diag.epoch, Some(1));
        assert!(
            r.removals.is_empty(),
            "a clobbering word is never removable"
        );
    }

    #[test]
    fn store_over_unread_store_warns() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let w = writer(5, 7);
        let tiles = || {
            vec![TileSpec {
                tile: 0,
                program: Some(&w[..]),
                data_patches: &[][..],
            }]
        };
        let epochs = [
            EpochSpec {
                name: "first",
                links: &links,
                tiles: tiles(),
            },
            EpochSpec {
                name: "second",
                links: &links,
                tiles: tiles(),
            },
        ];
        let r = lint(mesh, &epochs);
        assert_eq!(r.count(Code::ClobberByStore), 1, "{:#?}", r.diags);
        assert!(!r.denied(), "clobber-by-store warns by default");
    }

    #[test]
    fn patched_word_nothing_reads_is_dead_init() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let h = halt();
        let p0 = [patch(0, &[5])];
        let epochs = [EpochSpec {
            name: "only",
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&h),
                data_patches: &p0,
            }],
        }];
        let r = lint(mesh, &epochs);
        assert_eq!(r.count(Code::DeadInit), 1, "{:#?}", r.diags);
        let diag = r.diags.iter().find(|d| d.code == Code::DeadInit).unwrap();
        assert!(diag.message.contains("never read"), "{}", diag.message);
        assert_eq!(diag.epoch, None, "end-of-schedule finding has no epoch");
        assert!(!r.denied());
    }

    #[test]
    fn identical_reload_is_reported_only_when_levelled_up() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let h = halt();
        let tile = || {
            vec![TileSpec {
                tile: 0,
                program: Some(&h[..]),
                data_patches: &[][..],
            }]
        };
        let epochs = [
            EpochSpec {
                name: "arm",
                links: &links,
                tiles: tile(),
            },
            EpochSpec {
                name: "rearm",
                links: &links,
                tiles: tile(),
            },
        ];
        let quiet = lint(mesh, &epochs);
        assert_eq!(
            quiet.count(Code::RedundantReload),
            0,
            "allowed by default: a reload is how a halted PE is re-armed"
        );
        let mut levels = LintLevels::new();
        levels.set(Code::RedundantReload, LintLevel::Warn);
        let loud = lint_schedule(mesh, &epochs, &levels, &CostModel::default());
        assert_eq!(loud.count(Code::RedundantReload), 1, "{:#?}", loud.diags);
        let diag = loud
            .diags
            .iter()
            .find(|d| d.code == Code::RedundantReload)
            .unwrap();
        assert_eq!(diag.epoch, Some(1));
    }

    #[test]
    fn instructions_after_halt_are_unreachable_imem() {
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let prog = vec![
            Instr::Halt,
            Instr::Mov {
                dst: d(0),
                a: cgra_isa::ops::imm(1),
            },
        ];
        let epochs = [EpochSpec {
            name: "e0",
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&prog),
                data_patches: &[],
            }],
        }];
        let r = lint(mesh, &epochs);
        assert_eq!(r.count(Code::UnreachableImem), 1, "{:#?}", r.diags);
        let diag = r
            .diags
            .iter()
            .find(|d| d.code == Code::UnreachableImem)
            .unwrap();
        assert!(diag.message.contains("1 of 2"), "{}", diag.message);
    }

    #[test]
    fn unresolvable_reads_conservatively_consume_everything() {
        // A loop reading through a post-incremented AR joins the register
        // to unknown, so the summary says "may read anything". The pass
        // must then treat every pending definition as consumed: no
        // dead-init finding, and no removal can be claimed later.
        let mesh = Mesh::new(1, 1);
        let links = mesh.disconnected();
        let mut p = ProgramBuilder::new();
        p.ldar(0, 0);
        p.ldi(d(120), 4);
        let l = p.here_label();
        p.mov(d(121), at(0));
        p.adar(0, 1);
        p.djnz(d(120), l);
        p.halt();
        let sweep = p.build().expect("sweeping reader is valid");
        let p0 = [patch(50, &[3])];
        let epochs = [EpochSpec {
            name: "sweep",
            links: &links,
            tiles: vec![TileSpec {
                tile: 0,
                program: Some(&sweep),
                data_patches: &p0,
            }],
        }];
        let r = lint(mesh, &epochs);
        assert_eq!(r.count(Code::DeadInit), 0, "{:#?}", r.diags);
        assert!(r.removals.is_empty());
    }
}
