//! Deny / warn / allow lint levels.
//!
//! Every lint code carries a default level; a [`LintLevels`] table maps
//! each `L`-code to its effective level and is what the driver CLI's
//! `--level name=deny` flags and the `--deny-warnings` switch mutate.
//! Deny findings become [`Severity::Error`] diagnostics (gate execution
//! exactly like verifier errors), warn findings become warnings, and
//! allowed findings are dropped before they are materialized.

use cgra_verify::{Code, Severity};

/// How a lint finding is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Drop the finding entirely.
    Allow,
    /// Report as a warning.
    Warn,
    /// Report as an error (aborts strict runs, fails the driver).
    Deny,
}

impl std::fmt::Display for LintLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintLevel::Allow => write!(f, "allow"),
            LintLevel::Warn => write!(f, "warn"),
            LintLevel::Deny => write!(f, "deny"),
        }
    }
}

/// Every lint code, in L-number order.
pub const LINT_CODES: [Code; 11] = [
    Code::ClobberByPatch,
    Code::ClobberByCopy,
    Code::ClobberByStore,
    Code::DeadInit,
    Code::RedundantPatch,
    Code::RedundantReload,
    Code::UnreachableImem,
    Code::IdleWindow,
    Code::HoistInterference,
    Code::HoistApplied,
    Code::HoistRefused,
];

/// The default level of each lint.
///
/// Only [`Code::ClobberByPatch`] denies by default: a patch *definitely*
/// rewrites its words, so a kill of unread computed data is a
/// must-property. The copy/store clobbers rest on may-write effect sets
/// and warn. [`Code::RedundantReload`] defaults to allow because on this
/// fabric a reload is also what re-arms a halted PE — the finding is
/// informational (Eq. 1 cost of the identical image), not actionable.
///
/// The hoisting codes: [`Code::IdleWindow`], [`Code::HoistInterference`]
/// and [`Code::HoistApplied`] are informational by default (they narrate
/// what the planner found, refused and did — schedules are not *wrong*
/// for having or lacking hoist opportunities), while
/// [`Code::HoistRefused`] denies: a schedule that *carries* a prefetch
/// whose certificates fail re-verification is certainly broken.
pub fn default_level(code: Code) -> LintLevel {
    match code {
        Code::ClobberByPatch => LintLevel::Deny,
        Code::ClobberByCopy => LintLevel::Warn,
        Code::ClobberByStore => LintLevel::Warn,
        Code::DeadInit => LintLevel::Warn,
        Code::RedundantPatch => LintLevel::Warn,
        Code::RedundantReload => LintLevel::Allow,
        Code::UnreachableImem => LintLevel::Warn,
        Code::IdleWindow => LintLevel::Allow,
        Code::HoistInterference => LintLevel::Allow,
        Code::HoistApplied => LintLevel::Allow,
        Code::HoistRefused => LintLevel::Deny,
        _ => LintLevel::Allow,
    }
}

/// Effective level per lint code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintLevels {
    levels: [LintLevel; LINT_CODES.len()],
}

impl Default for LintLevels {
    fn default() -> LintLevels {
        let mut levels = [LintLevel::Allow; LINT_CODES.len()];
        for (slot, code) in levels.iter_mut().zip(LINT_CODES) {
            *slot = default_level(code);
        }
        LintLevels { levels }
    }
}

impl LintLevels {
    /// The default table (see [`default_level`]).
    pub fn new() -> LintLevels {
        LintLevels::default()
    }

    /// The defaults with every warn-level lint raised to deny (the CI
    /// driver's `--deny-warnings`). Allowed lints stay allowed.
    pub fn deny_warnings(mut self) -> LintLevels {
        for l in &mut self.levels {
            if *l == LintLevel::Warn {
                *l = LintLevel::Deny;
            }
        }
        self
    }

    fn index(code: Code) -> Option<usize> {
        LINT_CODES.iter().position(|&c| c == code)
    }

    /// The effective level of `code` ([`LintLevel::Allow`] for codes that
    /// are not lints).
    pub fn get(&self, code: Code) -> LintLevel {
        match LintLevels::index(code) {
            Some(i) => self.levels[i],
            None => LintLevel::Allow,
        }
    }

    /// Sets the level of a lint code; non-lint codes are ignored.
    pub fn set(&mut self, code: Code, level: LintLevel) -> &mut LintLevels {
        if let Some(i) = LintLevels::index(code) {
            self.levels[i] = level;
        }
        self
    }

    /// The severity findings of `code` materialize with, `None` when the
    /// finding is allowed (dropped).
    pub fn severity(&self, code: Code) -> Option<Severity> {
        match self.get(code) {
            LintLevel::Allow => None,
            LintLevel::Warn => Some(Severity::Warning),
            LintLevel::Deny => Some(Severity::Error),
        }
    }

    /// Parses a `name=level` directive (e.g. `clobber-by-copy=deny`) and
    /// applies it. Errors name the unknown half.
    pub fn apply_directive(&mut self, directive: &str) -> Result<(), String> {
        let (name, level) = directive
            .split_once('=')
            .ok_or_else(|| format!("'{directive}': expected <lint-name>=<allow|warn|deny>"))?;
        let level = match level.trim() {
            "allow" => LintLevel::Allow,
            "warn" => LintLevel::Warn,
            "deny" => LintLevel::Deny,
            other => return Err(format!("'{other}' is not a level (allow|warn|deny)")),
        };
        let name = name.trim();
        let code = LINT_CODES
            .iter()
            .copied()
            .find(|c| c.name() == name || c.id() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = LINT_CODES.iter().map(|c| c.name()).collect();
                format!("'{name}' is not a lint (known: {})", known.join(", "))
            })?;
        self.set(code, level);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_taxonomy() {
        let l = LintLevels::default();
        assert_eq!(l.get(Code::ClobberByPatch), LintLevel::Deny);
        assert_eq!(l.get(Code::RedundantPatch), LintLevel::Warn);
        assert_eq!(l.get(Code::RedundantReload), LintLevel::Allow);
        // Non-lint codes have no level.
        assert_eq!(l.get(Code::UninitRead), LintLevel::Allow);
        assert_eq!(l.severity(Code::ClobberByPatch), Some(Severity::Error));
        assert_eq!(l.severity(Code::RedundantReload), None);
    }

    #[test]
    fn deny_warnings_raises_only_warns() {
        let l = LintLevels::default().deny_warnings();
        assert_eq!(l.get(Code::RedundantPatch), LintLevel::Deny);
        assert_eq!(l.get(Code::RedundantReload), LintLevel::Allow);
    }

    #[test]
    fn directives_parse_by_name_and_id() {
        let mut l = LintLevels::default();
        l.apply_directive("clobber-by-copy=deny").unwrap();
        assert_eq!(l.get(Code::ClobberByCopy), LintLevel::Deny);
        l.apply_directive("L006=warn").unwrap();
        assert_eq!(l.get(Code::RedundantReload), LintLevel::Warn);
        assert!(l.apply_directive("nope=deny").is_err());
        assert!(l.apply_directive("never-read-init=loud").is_err());
        assert!(l.apply_directive("malformed").is_err());
    }
}
