//! Control-flow graph construction.
//!
//! Basic blocks are maximal straight-line runs: a leader starts at pc 0,
//! at every branch target, and after every control transfer or `halt`.
//! Block successors follow the ISA's control semantics — `jmp` has one
//! successor, conditional branches and `djnz` two, `halt` none, and
//! everything else falls through. A block whose fallthrough would run
//! past the last instruction is marked [`Block::falls_off`].

use crate::effects::branch_target;
use cgra_isa::Instr;

/// One basic block: instructions `start..end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First pc of the block.
    pub start: usize,
    /// One past the last pc of the block.
    pub end: usize,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
    /// True when execution can run past the end of the program from here.
    pub falls_off: bool,
}

/// A program's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in program order; block 0 (when present) is the entry.
    pub blocks: Vec<Block>,
    /// Maps each pc to the index of its containing block.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `prog`. Branch targets outside the program are
    /// clamped out of the leader set (instruction validation catches them
    /// separately); an empty program yields an empty CFG.
    pub fn build(prog: &[Instr]) -> Cfg {
        let n = prog.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, i) in prog.iter().enumerate() {
            if let Some(t) = branch_target(i) {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
            let ends_block = matches!(i, Instr::Halt) || branch_target(i).is_some();
            if ends_block && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        let starts: Vec<usize> = (0..n).filter(|&pc| leader[pc]).collect();
        let mut block_of = vec![0usize; n];
        let mut blocks = Vec::with_capacity(starts.len());
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            block_of[start..end].fill(b);
            blocks.push(Block {
                start,
                end,
                succs: Vec::new(),
                falls_off: false,
            });
        }
        // Successors from each block's last instruction.
        for b in 0..blocks.len() {
            let last = &prog[blocks[b].end - 1];
            let end = blocks[b].end;
            let mut succs = Vec::new();
            let mut falls_off = false;
            let fallthrough = |succs: &mut Vec<usize>, falls_off: &mut bool| {
                if end < n {
                    succs.push(block_of[end]);
                } else {
                    *falls_off = true;
                }
            };
            match last {
                Instr::Halt => {}
                Instr::Jmp { target } => {
                    if (*target as usize) < n {
                        succs.push(block_of[*target as usize]);
                    }
                }
                i => {
                    if let Some(t) = branch_target(i) {
                        if (t as usize) < n {
                            succs.push(block_of[t as usize]);
                        }
                        fallthrough(&mut succs, &mut falls_off);
                    } else {
                        fallthrough(&mut succs, &mut falls_off);
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            blocks[b].succs = succs;
            blocks[b].falls_off = falls_off;
        }
        Cfg { blocks, block_of }
    }

    /// Index of the block containing `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Blocks from which some path reaches a `halt` (co-reachability over
    /// the reversed CFG from every halt-terminated block).
    pub fn can_halt(&self, prog: &[Instr]) -> Vec<bool> {
        let nb = self.blocks.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        let mut ok = vec![false; nb];
        let mut stack: Vec<usize> = (0..nb)
            .filter(|&b| matches!(prog[self.blocks[b].end - 1], Instr::Halt))
            .collect();
        for &b in &stack {
            ok[b] = true;
        }
        while let Some(b) = stack.pop() {
            for &p in &preds[b] {
                if !ok[p] {
                    ok[p] = true;
                    stack.push(p);
                }
            }
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_isa::ops::d;

    #[test]
    fn straight_line_is_one_block() {
        let prog = vec![Instr::Nop, Instr::Mov { dst: d(0), a: d(1) }, Instr::Halt];
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].succs, Vec::<usize>::new());
        assert!(!cfg.blocks[0].falls_off);
    }

    #[test]
    fn loop_splits_blocks() {
        // 0: ldi; 1: djnz ->1; 2: halt
        let prog = vec![
            Instr::Ldi { dst: d(0), imm: 4 },
            Instr::Djnz {
                dst: d(0),
                target: 1,
            },
            Instr::Halt,
        ];
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.block_of(1), 1);
        // djnz block loops to itself and falls through to halt.
        assert_eq!(cfg.blocks[1].succs, vec![1, 2]);
        let reach = cfg.reachable();
        assert!(reach.iter().all(|&r| r));
        let halt = cfg.can_halt(&prog);
        assert!(halt.iter().all(|&h| h));
    }

    #[test]
    fn fall_off_detected() {
        let prog = vec![Instr::Nop, Instr::Nop];
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].falls_off);
    }

    #[test]
    fn closed_jmp_cycle_cannot_halt() {
        // 0: jmp 1; 1: jmp 0; 2: halt (unreachable)
        let prog = vec![
            Instr::Jmp { target: 1 },
            Instr::Jmp { target: 0 },
            Instr::Halt,
        ];
        let cfg = Cfg::build(&prog);
        let reach = cfg.reachable();
        let halt = cfg.can_halt(&prog);
        assert!(reach[cfg.block_of(0)] && reach[cfg.block_of(1)]);
        assert!(!reach[cfg.block_of(2)]);
        assert!(!halt[cfg.block_of(0)] && !halt[cfg.block_of(1)]);
        assert!(halt[cfg.block_of(2)]);
    }

    #[test]
    fn empty_program_is_empty_cfg() {
        let cfg = Cfg::build(&[]);
        assert!(cfg.blocks.is_empty());
        assert!(cfg.reachable().is_empty());
    }
}
